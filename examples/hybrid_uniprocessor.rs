//! Theorem 14 live: lean-consensus on a hybrid-scheduled uniprocessor.
//!
//! With a scheduling quantum of at least 8 operations, every process
//! decides within 12 operations — even against an adversarial scheduler
//! that preempts processes right before their writes. This example sweeps
//! the quantum from 1 to 12 under that adversary and prints the worst
//! per-process operation count, showing the guarantee kick in at
//! quantum 8.
//!
//! Run with: `cargo run --release --example hybrid_uniprocessor [n]`

use noisy_consensus::engine::setup::{self, Algorithm};
use noisy_consensus::engine::sim::Sim;
use noisy_consensus::engine::Limits;
use noisy_consensus::sched::hybrid::{HybridSpec, WritePreemptor};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let inputs = setup::alternating(n);
    println!("lean-consensus on a uniprocessor, n = {n}, inputs alternating 0/1");
    println!("adversary: preempt any process about to write, when legal\n");
    println!("  quantum | decided? | max ops/process | Theorem 14 bound (12) holds?");
    println!("  --------+----------+-----------------+-----------------------------");

    for quantum in 1..=12u32 {
        let report = Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .hybrid(HybridSpec::uniform(n, quantum), |_| WritePreemptor)
            .limits(Limits::run_to_completion().with_max_ops(1_000_000))
            .build()
            .run(0);
        report.check_safety(&inputs).expect("safety");
        let max_ops = report.max_ops_per_process();
        let decided = report.outcome.decided();
        let bound_ok = decided && max_ops <= 12;
        println!(
            "  {quantum:>7} | {:>8} | {max_ops:>15} | {}",
            if decided { "yes" } else { "NO" },
            if quantum >= 8 {
                if bound_ok {
                    "yes (as proved)"
                } else {
                    "VIOLATED — bug!"
                }
            } else if bound_ok {
                "yes (not guaranteed)"
            } else {
                "no (quantum < 8: not guaranteed)"
            }
        );
        if quantum >= 8 {
            assert!(bound_ok, "Theorem 14 violated at quantum {quantum}");
        }
    }

    println!("\nwith quantum >= 8 the write-preemption attack is futile: whoever");
    println!("preempts the first writer must run a full quantum (two rounds) and");
    println!("decides before the victim is rescheduled.");
}
