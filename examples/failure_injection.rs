//! Failure injection: random halting and the adaptive leader-killer.
//!
//! Part 1 — §3.1.2's random failures: every operation kills its process
//! with probability `h`; lean-consensus still terminates (the survivors
//! race on) and safety never budges.
//!
//! Part 2 — §10's adaptive adversary: a crash adversary watches the race
//! and kills whichever process pulls a round ahead, up to `f` times.
//! The paper's restart argument bounds the damage by `O(f log n)`; the
//! measured rounds are in fact FLAT in `f`, supporting the paper's §10
//! conjecture that the true bound is `O(log n)`.
//!
//! Run with: `cargo run --release --example failure_injection [seed]`

use noisy_consensus::engine::setup::{self, Algorithm};
use noisy_consensus::engine::sim::Sim;
use noisy_consensus::sched::adversary::LeaderKiller;
use noisy_consensus::sched::{FailureModel, Noise, TimingModel};
use noisy_consensus::theory::OnlineStats;

fn main() {
    let seed0: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let n = 16;
    let trials = 200;

    println!("== Part 1: random halting failures (n = {n}, {trials} trials each) ==\n");
    println!("  h(n) per op | survivors decide | all died | mean first-decision round");
    println!("  ------------+------------------+----------+---------------------------");
    for h in [0.0, 0.001, 0.01, 0.05, 0.2] {
        let inputs = setup::half_and_half(n);
        let mut sim = Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .timing(TimingModel::figure1(Noise::Exponential { mean: 1.0 }))
            .faults(FailureModel::Random { per_op: h })
            .build();
        let mut decided = 0;
        let mut died = 0;
        let mut rounds = OnlineStats::new();
        for t in 0..trials {
            let report = sim.run(seed0 + t);
            report.check_safety(&inputs).expect("safety under failures");
            if report.decided_count() > 0 {
                decided += 1;
                if let Some(r) = report.first_decision_round {
                    rounds.push(r as f64);
                }
            } else {
                died += 1;
            }
        }
        println!(
            "  {h:>11} | {decided:>16} | {died:>8} | {:.2}",
            rounds.mean()
        );
    }

    println!("\n== Part 2: adaptive leader-killer (n = {n}, {trials} trials each) ==\n");
    println!("  crash budget f | mean first-decision round | mean rounds / (f+1)");
    println!("  ---------------+---------------------------+---------------------");
    for f in [0usize, 1, 2, 4, 8] {
        let inputs = setup::half_and_half(n);
        let mut sim = Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .timing(TimingModel::figure1(Noise::Exponential { mean: 1.0 }))
            .crash_adversary(move |_| LeaderKiller::new(f, 1))
            .build();
        let mut rounds = OnlineStats::new();
        for t in 0..trials {
            let report = sim.run(seed0 + 10_000 + t);
            report.check_safety(&inputs).expect("safety under crashes");
            if let Some(r) = report.first_decision_round {
                rounds.push(r as f64);
            }
        }
        println!(
            "  {f:>14} | {:>25.2} | {:.2}",
            rounds.mean(),
            rounds.mean() / (f as f64 + 1.0)
        );
    }
    println!("\nnote the rounds stay FLAT in f: killing frontrunners buys the");
    println!("adversary nothing, because termination comes from mass adoption of");
    println!("the leading team's value, not from one irreplaceable leader —");
    println!("evidence for the paper's section-10 conjecture that the true bound");
    println!("is O(log n) even with adaptive crashes (the proved bound is O(f log n)).");
}
