//! A miniature of the paper's Figure 1, printed as a table.
//!
//! Mean round at which the *first* process terminates, for the six
//! interarrival distributions of §9, over a log-spaced sweep of n.
//! (The full-scale reproduction with CSV output lives in
//! `cargo run --release -p nc-bench --bin repro -- --only E1`.)
//!
//! Run with: `cargo run --release --example figure1_mini [trials]`

use noisy_consensus::engine::{run_noisy, setup, Limits};
use noisy_consensus::sched::{Noise, TimingModel};
use noisy_consensus::theory::OnlineStats;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let ns = [1usize, 10, 100, 1000];

    println!("mean round of first termination ({trials} trials per point)\n");
    print!("{:<24}", "distribution");
    for n in ns {
        print!(" | n={n:<6}");
    }
    println!();
    println!("{}", "-".repeat(24 + ns.len() * 11));

    for (name, noise) in Noise::figure1_suite() {
        let timing = TimingModel::figure1(noise);
        print!("{name:<24}");
        for n in ns {
            let mut stats = OnlineStats::new();
            for t in 0..trials {
                let seed = 0xF16_0000 + t * 7919 + n as u64;
                let inputs = setup::half_and_half(n);
                let mut inst = setup::build(setup::Algorithm::Lean, &inputs, seed);
                let report = run_noisy(&mut inst, &timing, seed, Limits::first_decision());
                if let Some(r) = report.first_decision_round {
                    stats.push(r as f64);
                }
            }
            print!(" | {:<8.2}", stats.mean());
        }
        println!();
    }

    println!("\nshapes to notice (they mirror the paper's Figure 1):");
    println!("  * growth is logarithmic in n, with small constants;");
    println!("  * the two-point 2/3,4/3 distribution rises fastest;");
    println!("  * the tight normal(1,0.04) curve *falls* as n grows — more");
    println!("    processes mean more chances for one lucky sprinter.");
}
