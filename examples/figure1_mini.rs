//! A miniature of the paper's Figure 1, printed as a table.
//!
//! Mean round at which the *first* process terminates, for the six
//! interarrival distributions of §9, over a log-spaced sweep of n.
//! (The full-scale reproduction with CSV output lives in
//! `cargo run --release -p nc-bench --bin repro -- --only E1`.)
//!
//! Run with: `cargo run --release --example figure1_mini [trials]`

use noisy_consensus::engine::setup::{self, Algorithm};
use noisy_consensus::engine::sim::Sim;
use noisy_consensus::engine::Limits;
use noisy_consensus::sched::{Noise, TimingModel};
use noisy_consensus::theory::OnlineStats;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let ns = [1usize, 10, 100, 1000];

    println!("mean round of first termination ({trials} trials per point)\n");
    print!("{:<24}", "distribution");
    for n in ns {
        print!(" | n={n:<6}");
    }
    println!();
    println!("{}", "-".repeat(24 + ns.len() * 11));

    for (name, noise) in Noise::figure1_suite() {
        print!("{name:<24}");
        for n in ns {
            // One sweep per point: trial t runs with the historical
            // seed 0xF16_0000 + n + t * 7919.
            let rounds = Sim::new(Algorithm::Lean)
                .inputs(setup::half_and_half(n))
                .timing(TimingModel::figure1(noise))
                .limits(Limits::first_decision())
                .trials(trials)
                .seed0(0xF16_0000 + n as u64)
                .seed_stride(7919)
                .map(|report| report.first_decision_round);
            let mut stats = OnlineStats::new();
            for r in rounds.into_iter().flatten() {
                stats.push(r as f64);
            }
            print!(" | {:<8.2}", stats.mean());
        }
        println!();
    }

    println!("\nshapes to notice (they mirror the paper's Figure 1):");
    println!("  * growth is logarithmic in n, with small constants;");
    println!("  * the two-point 2/3,4/3 distribution rises fastest;");
    println!("  * the tight normal(1,0.04) curve *falls* as n grows — more");
    println!("    processes mean more chances for one lucky sprinter.");
}
