//! Watch the racing-bits mechanism at work under noisy scheduling.
//!
//! Simulates lean-consensus for a handful of processes under the paper's
//! model (exponential interarrival noise), then draws the final state of
//! the `a0`/`a1` arrays: the winning team's column of 1s reaches two
//! rounds beyond the losing team's, which is exactly the decision
//! condition.
//!
//! Run with: `cargo run --release --example noisy_race [n] [seed]`

use noisy_consensus::engine::setup::{self, Algorithm};
use noisy_consensus::engine::sim::Sim;
use noisy_consensus::memory::{Bit, RaceLayout};
use noisy_consensus::sched::{Noise, TimingModel};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let inputs = setup::half_and_half(n);
    println!("lean-consensus, n = {n}, inputs = {inputs:?}, seed = {seed}");
    println!("noise: exponential(1) per operation, starts dithered by U(0, 1e-8)\n");

    let mut sim = Sim::new(Algorithm::Lean)
        .inputs(inputs.clone())
        .timing(TimingModel::figure1(Noise::Exponential { mean: 1.0 }))
        .build();
    let report = sim.run(seed);
    report.check_safety(&inputs).expect("safety");

    // Draw the arrays from the memory the run left behind.
    let mem = sim.memory().expect("ran at least once");
    let layout = RaceLayout::at_base(0);
    let max_round = report.last_decision_round().unwrap_or(2);
    println!("final racing arrays (row = round, X = bit set):\n");
    println!("  round | a0 | a1");
    println!("  ------+----+----");
    for r in 1..=max_round {
        let a0 = mem.peek(layout.slot(Bit::Zero, r)) != 0;
        let a1 = mem.peek(layout.slot(Bit::One, r)) != 0;
        println!(
            "  {r:>5} |  {} |  {}",
            if a0 { "X" } else { "." },
            if a1 { "X" } else { "." }
        );
    }

    println!();
    for (pid, (d, round)) in report
        .decisions
        .iter()
        .zip(&report.decision_rounds)
        .enumerate()
    {
        println!(
            "  P{pid}: input {}, decided {} at round {} ({} ops)",
            inputs[pid],
            d.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
            round.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
            report.ops[pid],
        );
    }
    println!(
        "\noutcome: {} — agreed on {} (first decision at round {:?}, simulated time {:.2})",
        report.outcome,
        report
            .agreement_value()
            .map(|b| b.to_string())
            .unwrap_or_else(|| "-".into()),
        report.first_decision_round,
        report.sim_time,
    );
}
