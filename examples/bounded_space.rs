//! The §8 bounded-space combined protocol, pushed onto its backup path.
//!
//! lean-consensus alone needs unbounded arrays and — under a perfectly
//! symmetric lockstep schedule — never terminates. The combined protocol
//! caps it at `r_max` rounds and falls back to a bounded-space randomized
//! backup (adopt-commit rounds + a random-walk shared coin). This
//! example runs the worst case for lean (exact lockstep, split inputs)
//! and shows the seam working: every process crosses into the backup and
//! still agrees.
//!
//! Run with: `cargo run --release --example bounded_space [n] [r_max]`

use noisy_consensus::core::bounded::recommended_r_max;
use noisy_consensus::core::run_round_robin;
use noisy_consensus::engine::setup;
use noisy_consensus::memory::RaceLayout;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let r_max: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| recommended_r_max(n));

    let inputs = setup::alternating(n);
    println!("bounded lean-consensus (§8): n = {n}, r_max = {r_max}");
    println!("schedule: EXACT lockstep round-robin, inputs alternating 0/1");
    println!("(deterministic lean-consensus provably never terminates here)\n");

    let mut inst = setup::build(setup::Algorithm::Bounded { r_max }, &inputs, 7);
    let decisions = run_round_robin(&mut inst.procs, &mut inst.mem, 500_000_000)
        .expect("combined protocol must terminate (backup has a shared coin)");

    let lean_words = RaceLayout::words_for_rounds(r_max);
    println!("all processes decided: {decisions:?}");
    assert!(decisions.iter().all(|&d| d == decisions[0]), "agreement");

    for (pid, p) in inst.procs.iter().enumerate() {
        println!(
            "  P{pid}: input {}, decided {}, total ops {} (lean burned {} rounds first)",
            inputs[pid],
            decisions[pid],
            p.ops_completed(),
            r_max,
        );
    }

    println!("\nspace accounting (Theorem 15):");
    println!(
        "  lean arrays a0/a1:    {lean_words} bits ({} rounds + sentinels)",
        r_max
    );
    println!(
        "  recommended r_max(n): {} = O(log² n), so backup runs with probability n^-c",
        recommended_r_max(n)
    );
    println!(
        "  memory high-water:    {} words (lean region + backup region)",
        inst.mem.footprint_words()
    );
    println!("\nunder real (noisy) scheduling the backup almost never engages — see");
    println!("`cargo run --release -p nc-bench --bin repro -- --only E6` for the measured rates.");
}
