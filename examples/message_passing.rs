//! lean-consensus without shared memory: the §10 message-passing
//! extension.
//!
//! Each node hosts a replica, an ABD majority-quorum client, and an
//! unchanged lean-consensus state machine. Messages suffer exponential
//! random delays; a minority of nodes may crash mid-run. Agreement and
//! validity carry over from the shared-memory proofs because the
//! emulated registers are atomic.
//!
//! Run with: `cargo run --release --example message_passing [n] [seed]`

use noisy_consensus::msg::{run_message_passing, MsgConfig, Outcome};
use noisy_consensus::sched::Noise;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);

    println!("lean-consensus over ABD-emulated registers, n = {n} nodes");
    println!("message delays: exponential(1); inputs half 0 / half 1\n");

    let cfg = MsgConfig::new(n, Noise::Exponential { mean: 1.0 });
    let report = run_message_passing(&cfg, seed);
    assert_eq!(report.outcome, Outcome::Decided, "run must complete");

    for (i, (d, r)) in report.decisions.iter().zip(&report.rounds).enumerate() {
        println!(
            "  node {i}: decided {} at lean round {r} ({} emulated register ops)",
            d.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
            report.ops[i],
        );
    }
    println!(
        "\n{} messages sent, {} delivered, simulated time {:.1}",
        report.sent, report.deliveries, report.sim_time
    );

    // Now with a crashed minority.
    let crash_count = (n - 1) / 2;
    if crash_count > 0 {
        println!("\n-- again, crashing {crash_count} node(s) mid-run --");
        let crashes: Vec<(u32, u64)> = (0..crash_count as u32)
            .map(|i| (i, 50 + 80 * i as u64))
            .collect();
        let cfg = MsgConfig::new(n, Noise::Exponential { mean: 1.0 }).with_crashes(crashes);
        let report = run_message_passing(&cfg, seed + 1);
        assert_eq!(report.outcome, Outcome::Decided);
        for (i, d) in report.decisions.iter().enumerate() {
            let label = if i < crash_count { " (crashed)" } else { "" };
            println!(
                "  node {i}{label}: {}",
                d.map(|b| format!("decided {b}"))
                    .unwrap_or_else(|| "no decision".into())
            );
        }
        println!("\nABD quorums only need a majority: the survivors still agree.");
    }
}
