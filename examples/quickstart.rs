//! Quickstart: wait-free binary consensus on real threads.
//!
//! Eight threads propose conflicting bits to one `NativeConsensus`
//! object (lean-consensus over lock-free atomic arrays). All of them
//! walk away with the same decision — the OS scheduler plays the role of
//! the paper's noisy environment.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use noisy_consensus::{Bit, NativeConsensus};

fn main() {
    let threads = 8;
    let consensus = Arc::new(NativeConsensus::new());

    println!("proposing from {threads} threads (half 0, half 1)...\n");

    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let c = Arc::clone(&consensus);
            let input = Bit::from(i % 2 == 1);
            std::thread::spawn(move || {
                let decision = c.propose(input).expect("round limit not reached");
                (i, input, decision)
            })
        })
        .collect();

    let mut agreed = None;
    for h in handles {
        let (i, input, d) = h.join().expect("thread panicked");
        println!(
            "thread {i}: proposed {input}, decided {} at round {} after {} shared-memory ops",
            d.value, d.round, d.ops
        );
        match agreed {
            None => agreed = Some(d.value),
            Some(v) => assert_eq!(v, d.value, "agreement violated!"),
        }
    }

    println!(
        "\nagreement: every thread decided {}",
        agreed.expect("at least one thread")
    );
    println!("(re-run to see the other value win — the race is decided by scheduling noise)");
}
