//! Leader election via id consensus (footnote 2 of the paper).
//!
//! Binary consensus decides one bit; electing a *leader* needs agreement
//! on a whole process id. The paper's footnote: build a `lg n`-depth
//! tree of binary consensus objects. Here 8 worker threads race to elect
//! one of themselves; every thread learns the same winner, and the
//! winner is always an actual participant.
//!
//! Run with: `cargo run --release --example leader_election [workers]`

use noisy_consensus::core::id::IdConsensus;
use std::sync::Arc;

fn main() {
    let workers: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    println!("electing a leader among {workers} workers");
    let election = Arc::new(IdConsensus::new(workers));
    println!(
        "tree depth: {} levels of binary lean-consensus\n",
        election.depth()
    );

    let handles: Vec<_> = (0..workers)
        .map(|id| {
            let e = Arc::clone(&election);
            std::thread::spawn(move || {
                let winner = e.propose(id).expect("round limit");
                (id, winner)
            })
        })
        .collect();

    let mut elected = None;
    for h in handles {
        let (id, winner) = h.join().expect("worker panicked");
        println!("  worker {id}: the leader is {winner}");
        match elected {
            None => elected = Some(winner),
            Some(w) => assert_eq!(w, winner, "two different leaders elected!"),
        }
    }
    let leader = elected.unwrap();
    assert!(leader < workers, "leader must be a participant");
    println!("\nunanimous: worker {leader} leads.");
    println!("(each tree level is one deterministic lean-consensus race, decided");
    println!("by scheduling noise — no coins anywhere.)");
}
