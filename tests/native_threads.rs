//! Native-thread stress tests: lean-consensus on real atomics under the
//! real scheduler — the environment §9/§10 argue behaves like a noisy
//! scheduler in practice.

use std::sync::Arc;

use noisy_consensus::{Bit, NativeConsensus};

#[test]
fn stress_agreement_many_trials() {
    for trial in 0..50u64 {
        let threads = 2 + (trial as usize % 7);
        let consensus = Arc::new(NativeConsensus::new());
        let decisions: Vec<_> = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let c = Arc::clone(&consensus);
                    s.spawn(move |_| {
                        c.propose(Bit::from((i as u64 + trial).is_multiple_of(2)))
                            .expect("round limit")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();

        let v = decisions[0].value;
        assert!(
            decisions.iter().all(|d| d.value == v),
            "trial {trial}: {decisions:?}"
        );
        let lo = decisions.iter().map(|d| d.round).min().unwrap();
        let hi = decisions.iter().map(|d| d.round).max().unwrap();
        assert!(hi - lo <= 1, "trial {trial}: round spread {lo}..{hi}");
    }
}

#[test]
fn native_decisions_are_fast_in_practice() {
    // The paper's thesis, measured: real schedulers are noisy enough
    // that the race ends in a handful of rounds. We allow a huge margin
    // (64 rounds) — the point is it never drifts toward the round limit.
    for trial in 0..20u64 {
        let consensus = Arc::new(NativeConsensus::new());
        let max_round: usize = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let c = Arc::clone(&consensus);
                    s.spawn(move |_| c.propose(Bit::from(i % 2 == 0)).unwrap().round)
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .max()
                .unwrap()
        })
        .unwrap();
        assert!(max_round <= 64, "trial {trial}: round {max_round}");
    }
}

#[test]
fn unanimous_native_runs_cost_exactly_8_ops() {
    for input in Bit::BOTH {
        let consensus = Arc::new(NativeConsensus::new());
        let all_ops: Vec<u64> = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    let c = Arc::clone(&consensus);
                    s.spawn(move |_| c.propose(input).unwrap().ops)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert!(all_ops.iter().all(|&o| o == 8), "{all_ops:?}");
    }
}

#[test]
fn late_joiners_adopt_earlier_decision() {
    let consensus = Arc::new(NativeConsensus::new());
    let first = consensus.propose(Bit::One).unwrap();
    // 4 late joiners, all proposing the rival value, sequentially and
    // concurrently — every one must adopt the decided value.
    for _ in 0..2 {
        assert_eq!(consensus.propose(Bit::Zero).unwrap().value, first.value);
    }
    let late: Vec<Bit> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&consensus);
                s.spawn(move |_| c.propose(Bit::Zero).unwrap().value)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();
    assert!(late.iter().all(|&v| v == first.value), "{late:?}");
}

#[test]
fn many_consensus_objects_in_parallel() {
    // A "ledger" of 32 independent consensus instances decided by 4
    // threads each — the id-consensus building block the paper's
    // footnote 2 mentions (a tree of binary consensus objects).
    let objects: Vec<Arc<NativeConsensus>> =
        (0..32).map(|_| Arc::new(NativeConsensus::new())).collect();
    crossbeam::scope(|s| {
        for t in 0..4u64 {
            let objects: Vec<_> = objects.iter().map(Arc::clone).collect();
            s.spawn(move |_| {
                for (k, obj) in objects.iter().enumerate() {
                    let _ = obj
                        .propose(Bit::from((k as u64 + t).is_multiple_of(2)))
                        .unwrap();
                }
            });
        }
    })
    .unwrap();
    // All objects settled; re-proposing returns the settled value and
    // never flips.
    for obj in &objects {
        let a = obj.propose(Bit::Zero).unwrap().value;
        let b = obj.propose(Bit::One).unwrap().value;
        assert_eq!(a, b);
    }
}
