//! Cross-driver integration: one algorithm, three scheduling models, one
//! shared-memory semantics.
//!
//! These tests tie the whole workspace together: protocols built by
//! `nc-engine::setup`, driven through the [`Sim`] builder's three
//! schedules (noisy / adversarial / hybrid), recorded as histories,
//! validated against the sequential register specification from
//! `nc-memory`, and checked against the §5 lemmas from `nc-core`.

use std::collections::HashMap;

use noisy_consensus::engine::setup::{self, Algorithm};
use noisy_consensus::engine::RunOutcome;
use noisy_consensus::memory::{check_register_semantics_from, Bit, RaceLayout};
use noisy_consensus::sched::adversary::RandomInterleave;
use noisy_consensus::sched::hybrid::{HybridSpec, RandomHybrid};
use noisy_consensus::sched::{stream_rng, Noise, TimingModel};
use noisy_consensus::Sim;

fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Lean,
        Algorithm::Skipping,
        Algorithm::Randomized,
        Algorithm::Bounded { r_max: 8 },
        Algorithm::Backup,
    ]
}

#[test]
fn every_algorithm_under_every_driver_is_safe() {
    let inputs = setup::half_and_half(5);
    for alg in all_algorithms() {
        // Noisy schedule.
        let report = Sim::new(alg)
            .inputs(inputs.clone())
            .timing(TimingModel::figure1(Noise::Exponential { mean: 1.0 }))
            .build()
            .run(1);
        assert_eq!(report.outcome, RunOutcome::AllDecided, "{alg:?} noisy");
        report.check_safety(&inputs).unwrap();

        // Adversarial schedule (random interleave).
        let report = Sim::new(alg)
            .inputs(inputs.clone())
            .adversary(|seed| RandomInterleave::new(stream_rng(seed, 0, 4)))
            .build()
            .run(2);
        assert_eq!(
            report.outcome,
            RunOutcome::AllDecided,
            "{alg:?} adversarial"
        );
        report.check_safety(&inputs).unwrap();

        // Hybrid schedule (random legal policy).
        let report = Sim::new(alg)
            .inputs(inputs.clone())
            .hybrid(HybridSpec::uniform(inputs.len(), 8), |seed| {
                RandomHybrid::new(stream_rng(seed, 0, 4))
            })
            .build()
            .run(3);
        assert_eq!(report.outcome, RunOutcome::AllDecided, "{alg:?} hybrid");
        report.check_safety(&inputs).unwrap();
    }
}

#[test]
fn recorded_histories_satisfy_register_semantics_for_all_algorithms() {
    // End-to-end check that the engine + memory implement the
    // interleaving model the proofs assume, for every protocol's access
    // pattern (including the backup's counters).
    let inputs = setup::half_and_half(4);
    for alg in all_algorithms() {
        let mut sim = Sim::new(alg)
            .inputs(inputs.clone())
            .timing(TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 }))
            .record_history()
            .build();
        let report = sim.run(5);
        assert_eq!(report.outcome, RunOutcome::AllDecided, "{alg:?}");
        assert_eq!(sim.history().len() as u64, report.total_ops);

        // Sentinels are pre-seeded initial state for the lean family.
        let layout = RaceLayout::at_base(0);
        let mut initial = HashMap::new();
        if !matches!(alg, Algorithm::Backup) {
            initial.insert(layout.slot(Bit::Zero, 0), 1);
            initial.insert(layout.slot(Bit::One, 0), 1);
        }
        check_register_semantics_from(sim.history(), &initial)
            .unwrap_or_else(|e| panic!("{alg:?}: {e}"));
    }
}

#[test]
fn noisy_and_adversarial_agree_with_native_on_unanimity_cost() {
    // Lemma 3's "8 operations" is driver-independent: check it across
    // the simulated drivers and the native runner.
    for input in Bit::BOTH {
        let inputs = setup::unanimous(4, input);

        let report = Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .timing(TimingModel::figure1(Noise::Geometric { p: 0.5 }))
            .build()
            .run(1);
        assert!(
            report.ops.iter().all(|&o| o == 8),
            "noisy: {:?}",
            report.ops
        );

        let native = noisy_consensus::NativeConsensus::new();
        let d = native.propose(input).unwrap();
        assert_eq!(d.ops, 8);
        assert_eq!(d.value, input);
    }
}

#[test]
fn figure1_distributions_all_terminate_at_moderate_scale() {
    for (name, noise) in Noise::figure1_suite() {
        let inputs = setup::half_and_half(64);
        let report = Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .timing(TimingModel::figure1(noise))
            .build()
            .run(11);
        assert_eq!(report.outcome, RunOutcome::AllDecided, "{name}");
        report.check_safety(&inputs).unwrap();
        // Termination should be fast: generous cap at 100 rounds for
        // n = 64 (theory says ~log n with small constants).
        assert!(
            report.last_decision_round().unwrap() < 100,
            "{name}: {:?}",
            report.last_decision_round()
        );
    }
}

#[test]
fn bounded_protocol_backup_rate_is_low_under_noise() {
    // Theorem 15's economics: with r_max = recommended, the backup
    // should essentially never engage under noisy scheduling.
    let n = 16;
    let r_max = noisy_consensus::core::bounded::recommended_r_max(n);
    let trials = 50;
    let inputs = setup::half_and_half(n);
    let engaged: usize = Sim::new(Algorithm::Bounded { r_max })
        .inputs(inputs.clone())
        .timing(TimingModel::figure1(Noise::Exponential { mean: 1.0 }))
        .trials(trials)
        .map(|report| {
            report.check_safety(&inputs).unwrap();
            assert_eq!(report.outcome, RunOutcome::AllDecided);
            // Backup engagement is visible as rounds beyond r_max.
            usize::from(report.decision_rounds.iter().flatten().any(|&r| r > r_max))
        })
        .into_iter()
        .sum();
    assert_eq!(
        engaged, 0,
        "backup engaged in {engaged}/{trials} noisy runs at r_max={r_max}"
    );
}

#[test]
fn deterministic_reports_across_identical_runs() {
    let inputs = setup::half_and_half(12);
    let run = |seed| {
        let r = Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .timing(TimingModel::figure1(Noise::TwoPoint {
                lo: 2.0 / 3.0,
                hi: 4.0 / 3.0,
            }))
            .build()
            .run(seed);
        (r.decisions.clone(), r.total_ops, r.first_decision_round)
    };
    assert_eq!(run(99), run(99));
}
