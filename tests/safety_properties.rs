//! Property-based safety suite: the paper's §5 lemmas must hold for
//! EVERY schedule, every input vector, every algorithm variant, and
//! every crash pattern. Schedules, inputs, and crash plans are generated
//! by proptest; a failure here minimizes to a concrete counterexample
//! schedule.

use proptest::prelude::*;

use noisy_consensus::core::invariants::check_array_prefix;
use noisy_consensus::engine::adversarial::{run_adversarial, run_adversarial_with};
use noisy_consensus::engine::{setup, Algorithm, Limits};
use noisy_consensus::memory::{Bit, RaceLayout};
use noisy_consensus::sched::adversary::{CrashScript, Script};

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Lean,
        Algorithm::Skipping,
        Algorithm::Randomized,
        Algorithm::Bounded { r_max: 4 },
        Algorithm::Backup,
    ]
}

/// Runs a scripted schedule and checks agreement + validity on whatever
/// state it leaves behind (termination is NOT required — scripts are
/// finite).
fn run_and_check(alg: Algorithm, inputs: &[Bit], script: Vec<usize>, seed: u64) {
    let mut inst = setup::build(alg, inputs, seed);
    let mut adv = Script::new(script);
    let report = run_adversarial(&mut inst, &mut adv, Limits::run_to_completion());
    report
        .check_safety(inputs)
        .unwrap_or_else(|e| panic!("{alg:?}: {e}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Agreement and validity under arbitrary finite schedules, for every
    /// algorithm variant.
    #[test]
    fn all_variants_safe_under_arbitrary_schedules(
        inputs in proptest::collection::vec(any::<bool>(), 1..6),
        script in proptest::collection::vec(0usize..6, 0..400),
        seed in any::<u64>(),
    ) {
        let inputs: Vec<Bit> = inputs.into_iter().map(Bit::from).collect();
        for alg in algorithms() {
            run_and_check(alg, &inputs, script.clone(), seed);
        }
    }

    /// Lemma 2's array structure holds mid-execution for the lean
    /// variants: each racing array's set bits form a prefix rooted in a
    /// real input.
    #[test]
    fn lemma2_prefix_structure_under_arbitrary_schedules(
        inputs in proptest::collection::vec(any::<bool>(), 1..6),
        script in proptest::collection::vec(0usize..6, 0..300),
        seed in any::<u64>(),
    ) {
        let inputs: Vec<Bit> = inputs.into_iter().map(Bit::from).collect();
        for alg in [Algorithm::Lean, Algorithm::Skipping, Algorithm::Randomized] {
            let mut inst = setup::build(alg, &inputs, seed);
            let mut adv = Script::new(script.clone());
            let report = run_adversarial(&mut inst, &mut adv, Limits::run_to_completion());
            report.check_safety(&inputs).unwrap();
            let layout = RaceLayout::at_base(0);
            let max_round = inst.procs.iter().map(|p| p.round()).max().unwrap_or(1);
            check_array_prefix(
                |b, r| inst.mem.peek(layout.slot(b, r)) != 0,
                &inputs,
                max_round,
            )
            .unwrap_or_else(|e| panic!("{alg:?}: {e}"));
        }
    }

    /// Crashes at arbitrary points change nothing about safety.
    #[test]
    fn safety_with_arbitrary_crashes(
        inputs in proptest::collection::vec(any::<bool>(), 2..6),
        script in proptest::collection::vec(0usize..6, 0..300),
        crashes in proptest::collection::vec((0usize..6, 0u64..60), 0..4),
        seed in any::<u64>(),
    ) {
        let inputs: Vec<Bit> = inputs.into_iter().map(Bit::from).collect();
        for alg in algorithms() {
            let mut inst = setup::build(alg, &inputs, seed);
            let mut adv = Script::new(script.clone());
            let mut crash = CrashScript::new(
                crashes
                    .iter()
                    .map(|&(p, s)| (p % inputs.len(), s))
                    .collect(),
            );
            let report = run_adversarial_with(
                &mut inst,
                &mut adv,
                &mut crash,
                Limits::run_to_completion(),
            );
            report
                .check_safety(&inputs)
                .unwrap_or_else(|e| panic!("{alg:?}: {e}"));
        }
    }

    /// Validity cost (Lemma 3): under ANY schedule, unanimous inputs
    /// decide after exactly 8 operations per process for the paper's
    /// algorithm — provided the schedule runs long enough for everyone
    /// to finish.
    #[test]
    fn lemma3_exact_cost_under_arbitrary_schedules(
        n in 1usize..6,
        input in any::<bool>(),
        script in proptest::collection::vec(0usize..6, 0..200),
        seed in any::<u64>(),
    ) {
        let inputs = vec![Bit::from(input); n];
        let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
        // Append a generous round-robin tail so everyone finishes.
        let mut full = script;
        full.extend((0..n * 10).map(|i| i % n));
        let mut adv = Script::new(full);
        let report = run_adversarial(&mut inst, &mut adv, Limits::run_to_completion());
        report.check_safety(&inputs).unwrap();
        for (pid, d) in report.decisions.iter().enumerate() {
            prop_assert_eq!(*d, Some(Bit::from(input)));
            prop_assert_eq!(report.ops[pid], 8, "P{} used {} ops", pid, report.ops[pid]);
        }
    }
}

/// Directed regression: the exact interleaving from the paper's Lemma 4
/// proof sketch — a decider plus a maximal laggard — cannot disagree.
#[test]
fn decider_plus_laggard_regressions() {
    // All 2^k interleavings of two processes for a short horizon would be
    // expensive; instead enumerate all 3-phase splits: P0 runs a ops,
    // P1 runs b ops, P0 runs to completion, P1 runs to completion.
    for a in 0..12usize {
        for b in 0..12usize {
            let inputs = [Bit::One, Bit::Zero];
            let mut inst = setup::build(Algorithm::Lean, &inputs, 0);
            let mut script = Vec::new();
            script.extend(std::iter::repeat_n(0, a));
            script.extend(std::iter::repeat_n(1, b));
            script.extend(std::iter::repeat_n(0, 200));
            script.extend(std::iter::repeat_n(1, 200));
            script.extend((0..400).map(|i| i % 2)); // fair tail
            let mut adv = Script::new(script);
            let report = run_adversarial(&mut inst, &mut adv, Limits::run_to_completion());
            report
                .check_safety(&inputs)
                .unwrap_or_else(|e| panic!("a={a} b={b}: {e}"));
        }
    }
}
