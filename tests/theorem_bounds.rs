//! Statistical checks of the paper's quantitative claims, at test-suite
//! scale (the full-scale versions with tables live in `nc-bench`).
//!
//! All seeds are pinned and tolerances generous: these tests check
//! *shapes* (logarithmic growth, constant bounds, tail decay), not exact
//! constants.

use noisy_consensus::engine::setup::{self, Algorithm};
use noisy_consensus::engine::{Limits, RunOutcome};
use noisy_consensus::sched::hybrid::{HybridSpec, WritePreemptor};
use noisy_consensus::sched::{FailureModel, Noise, TimingModel};
use noisy_consensus::theory::{fit_log2, run_race, OnlineStats, RaceConfig, RaceOutcome};
use noisy_consensus::Sim;

fn mean_first_round(noise: Noise, n: usize, trials: u64, seed0: u64) -> f64 {
    let rounds = Sim::new(Algorithm::Lean)
        .inputs(setup::half_and_half(n))
        .timing(TimingModel::figure1(noise))
        .limits(Limits::first_decision())
        .trials(trials)
        .seed0(seed0)
        .map(|report| report.first_decision_round.expect("must terminate") as f64);
    let mut stats = OnlineStats::new();
    for r in rounds {
        stats.push(r);
    }
    stats.mean()
}

/// Theorem 12's shape: mean rounds grow like a + b·log₂ n with b > 0 and
/// a good logarithmic fit.
#[test]
fn theorem12_logarithmic_growth() {
    let mut points = Vec::new();
    for &n in &[2usize, 8, 32, 128, 512] {
        points.push((
            n as f64,
            mean_first_round(Noise::Exponential { mean: 1.0 }, n, 60, 0xA11CE),
        ));
    }
    let fit = fit_log2(&points);
    assert!(fit.slope > 0.05, "no growth: {fit} from {points:?}");
    assert!(fit.r2 > 0.7, "poor log fit: {fit} from {points:?}");
    // Small constants, per §9: even at n = 512 the mean should be tiny.
    assert!(points.last().unwrap().1 < 15.0, "{points:?}");
}

/// Theorem 12 with failures: h(n) > 0 still terminates (survivors race).
#[test]
fn theorem12_with_random_failures() {
    let trials = 40;
    let inputs = setup::half_and_half(32);
    let decided: usize = Sim::new(Algorithm::Lean)
        .inputs(inputs.clone())
        .timing(TimingModel::figure1(Noise::Exponential { mean: 1.0 }))
        .faults(FailureModel::Random { per_op: 0.01 })
        .trials(trials)
        .map(|report| {
            report.check_safety(&inputs).unwrap();
            usize::from(report.decided_count() > 0)
        })
        .into_iter()
        .sum();
    // With h = 1%, a 32-process race virtually always produces a winner
    // before extinction.
    assert!(
        decided as u64 >= trials * 9 / 10,
        "only {decided}/{trials} decided"
    );
}

/// Theorem 13's lower-bound mechanism: with the two-point {1,2}
/// distribution, disagreement persists past round k with probability
/// ≈ (1 - (1 - 2^-k)^(n/2))² — in particular the race is measurably
/// slower than with continuous noise.
#[test]
fn theorem13_two_point_is_slowest() {
    // {1, 2} is a pure time-rescaling of the paper's 2/3,4/3 Figure 1
    // entry, so round counts are directly comparable. The growth in n is
    // real but shallow (≈ +1 round across two orders of magnitude), so
    // measure a wide range with enough trials to resolve it.
    let n = 512;
    let two_point = mean_first_round(Noise::theorem13(), n, 200, 0xB0B);
    let exponential = mean_first_round(Noise::Exponential { mean: 1.0 }, n, 200, 0xB0B);
    assert!(
        two_point > exponential + 1.0,
        "two-point {two_point} should be well above exponential {exponential}"
    );
    // And it grows with n (the Ω(log n) direction).
    let small = mean_first_round(Noise::theorem13(), 2, 200, 0xB0B);
    assert!(two_point > small + 0.3, "no growth: {small} -> {two_point}");
}

/// Theorem 14: quantum ≥ 8 ⇒ ≤ 12 ops per process, adversarial
/// preemption included, across sizes and initial-quantum burns.
#[test]
fn theorem14_bound_is_hard() {
    for n in [2usize, 3, 5, 8] {
        for burn in [0u32, 4, 8] {
            let inputs = setup::alternating(n);
            let spec = HybridSpec::uniform(n, 8).with_initial_used(vec![burn; n]);
            let report = Sim::new(Algorithm::Lean)
                .inputs(inputs)
                .hybrid(spec, |_| WritePreemptor)
                .build()
                .run(0);
            assert_eq!(report.outcome, RunOutcome::AllDecided, "n={n} burn={burn}");
            assert!(
                report.ops.iter().all(|&o| o <= 12),
                "n={n} burn={burn}: ops {:?}",
                report.ops
            );
        }
    }
}

/// Theorem 15: expected ops of the bounded protocol stay within a small
/// constant factor of plain lean under noise.
#[test]
fn theorem15_bounded_costs_constant_factor() {
    let n = 16;
    let r_max = noisy_consensus::core::bounded::recommended_r_max(n);
    let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 });
    let trials = 30;
    let inputs = setup::half_and_half(n);
    let total_ops = |alg: Algorithm| {
        Sim::new(alg)
            .inputs(inputs.clone())
            .timing(timing.clone())
            .trials(trials)
            .map(|report| {
                report.check_safety(&inputs).unwrap();
                report.total_ops as f64
            })
    };
    let mut lean_ops = OnlineStats::new();
    let mut bounded_ops = OnlineStats::new();
    for x in total_ops(Algorithm::Lean) {
        lean_ops.push(x);
    }
    for x in total_ops(Algorithm::Bounded { r_max }) {
        bounded_ops.push(x);
    }
    // Identical seeds, identical timing: the bounded run should cost
    // exactly the same while the cutoff never fires.
    assert!(
        bounded_ops.mean() <= lean_ops.mean() * 1.05 + 8.0,
        "bounded {bounded_ops} vs lean {lean_ops}"
    );
}

/// Corollary 11 on the abstract race: E[R] fits a + b·log₂ n, and the
/// empirical tail decays fast (p99 within a small multiple of the mean).
#[test]
fn corollary11_race_statistics() {
    let mut points = Vec::new();
    for &n in &[4usize, 16, 64, 256] {
        let cfg = RaceConfig::new(n, 2, Noise::Uniform { lo: 0.0, hi: 2.0 });
        let mut stats = OnlineStats::new();
        for seed in 0..80 {
            match run_race(&cfg, seed) {
                RaceOutcome::Winner { round, .. } => stats.push(round as f64),
                other => panic!("race must end: {other:?}"),
            }
        }
        points.push((n as f64, stats.mean()));
    }
    let fit = fit_log2(&points);
    assert!(fit.slope > 0.0, "{fit}");
    assert!(points[3].1 < 30.0, "{points:?}");
}

/// The ablation the paper predicts (§4): skipping "superfluous"
/// operations slows termination (in rounds) under noisy scheduling.
#[test]
fn ablation_skipping_is_slower_in_rounds() {
    let n = 64;
    let trials = 60;
    let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 });
    let first_rounds = |alg: Algorithm| {
        Sim::new(alg)
            .inputs(setup::half_and_half(n))
            .timing(timing.clone())
            .limits(Limits::first_decision())
            .trials(trials)
            .map(|report| report.first_decision_round.unwrap() as f64)
    };
    let mut lean = OnlineStats::new();
    let mut skipping = OnlineStats::new();
    for x in first_rounds(Algorithm::Lean) {
        lean.push(x);
    }
    for x in first_rounds(Algorithm::Skipping) {
        skipping.push(x);
    }
    assert!(
        skipping.mean() > lean.mean(),
        "paper's paradox not reproduced: lean {lean} vs skipping {skipping}"
    );
}
