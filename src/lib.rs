//! # noisy-consensus
//!
//! A production-quality Rust reproduction of **James Aspnes, "Fast
//! Deterministic Consensus in a Noisy Environment" (PODC 2000)**:
//! the deterministic, wait-free **lean-consensus** protocol, the
//! **noisy-scheduling** environment model that makes it terminate in
//! `Θ(log n)` rounds, the **hybrid quantum/priority** uniprocessor model
//! that makes it terminate in 12 operations, the **bounded-space**
//! combined protocol, and the full experiment suite reproducing the
//! paper's Figure 1 and theorem-level claims.
//!
//! This crate is a facade: it re-exports the workspace's public API so
//! applications can depend on one crate.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`core`] | `nc-core` | lean-consensus + variants, [`core::Protocol`], native runner |
//! | [`memory`] | `nc-memory` | pluggable [`MemStore`] word-store planes, atomic arrays, history checker |
//! | [`sched`] | `nc-sched` | noise distributions, timing model, adversaries, hybrid scheduling |
//! | [`engine`] | `nc-engine` | noisy / adversarial / hybrid drivers, run reports |
//! | [`backup`] | `nc-backup` | bounded-space randomized backup consensus (§8) |
//! | [`theory`] | `nc-theory` | renewal races (Theorem 10), Lemma 5, statistics |
//! | [`msg`] | `nc-msg` | §10 extension: ABD register emulation over noisy channels |
//! | [`service`] | `nc-service` | consensus as a service: sharded multi-shot instance manager |
//! | [`adversary`] | `nc-adversary` | adaptive budget-limited adversaries, strategy-search tournament |
//!
//! The most common items are re-exported at the crate root.
//!
//! ## Decide something on real threads
//!
//! ```
//! use noisy_consensus::{Bit, NativeConsensus};
//! use std::sync::Arc;
//!
//! let consensus = Arc::new(NativeConsensus::new());
//! let handles: Vec<_> = (0..4)
//!     .map(|i| {
//!         let c = Arc::clone(&consensus);
//!         std::thread::spawn(move || c.propose(Bit::from(i % 2 == 0)).unwrap().value)
//!     })
//!     .collect();
//! let decisions: Vec<Bit> = handles.into_iter().map(|h| h.join().unwrap()).collect();
//! assert!(decisions.iter().all(|&d| d == decisions[0]));
//! ```
//!
//! ## Simulate the paper's model
//!
//! One typed builder ([`Sim`]) covers every execution model — noisy
//! scheduling, adversarial schedules, the hybrid uniprocessor — plus
//! failures, crash adversaries, history recording, and sweeps with
//! per-call parallelism:
//!
//! ```
//! use noisy_consensus::engine::setup::{self, Algorithm};
//! use noisy_consensus::sched::{Noise, TimingModel};
//! use noisy_consensus::Sim;
//!
//! let inputs = setup::half_and_half(100);
//! let mut sim = Sim::new(Algorithm::Lean)
//!     .inputs(inputs.clone())
//!     .timing(TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 }))
//!     .build();
//! let report = sim.run(7);
//! report.check_safety(&inputs).unwrap();
//! println!("first decision at round {:?}", report.first_decision_round);
//!
//! // A 200-trial sweep across 2 worker threads — bit-identical at any
//! // worker count or lane width.
//! let rounds = Sim::new(Algorithm::Lean)
//!     .inputs(inputs)
//!     .timing(TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 }))
//!     .limits(noisy_consensus::Limits::first_decision())
//!     .trials(200)
//!     .seed0(7)
//!     .threads(2)
//!     .map(|r| r.first_decision_round);
//! assert_eq!(rounds.len(), 200);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use nc_adversary as adversary;
pub use nc_backup as backup;
pub use nc_core as core;
pub use nc_engine as engine;
pub use nc_memory as memory;
pub use nc_msg as msg;
pub use nc_sched as sched;
pub use nc_service as service;
pub use nc_theory as theory;

pub use nc_adversary::{BudgetedAdversary, StrategyFamily, StrategyPoint, Tournament};
pub use nc_core::{
    Bit, BoundedLean, Decision, LeanConsensus, NativeConsensus, Protocol, ProtocolCore,
    RandomizedLean, RoundLimitError, SkippingLean, Status,
};
pub use nc_engine::{Limits, RunOutcome, RunReport, Sim, SimRun, TrialSet};
pub use nc_memory::{
    DenseRaceMemory, FaultSpec, FaultyMemory, MemStore, Op, Pid, RaceLayout, SegArray, SimMemory,
    Word,
};
pub use nc_sched::{Noise, TimingModel};
pub use nc_service::{CommitFact, InstanceStatus, NcService, ServiceConfig};
