//! Property-based tests of the ABD emulation: agreement and validity of
//! lean-consensus-over-ABD under proptest-generated delivery schedules
//! and inputs.
//!
//! The delivery schedule is the message-passing analogue of the
//! adversarial interleavings in the shared-memory safety suite: the
//! generated script picks which in-flight message is delivered next.
//! Schedules are finite, so runs may end undecided — like there, safety
//! is checked on whatever state is reached, and a fair random tail is
//! appended for the termination-dependent assertions.

use proptest::prelude::*;

use nc_memory::{Addr, Bit, RaceLayout, Word};
use nc_msg::node::{Dest, Node, Outgoing};
use nc_msg::Payload;

fn sentinels() -> Vec<(Addr, Word)> {
    let layout = RaceLayout::at_base(0);
    vec![
        (layout.slot(Bit::Zero, 0), 1),
        (layout.slot(Bit::One, 0), 1),
    ]
}

/// Drives nodes with a scripted delivery order (indices into the
/// in-flight queue), then a seeded pseudo-random tail up to `max_msgs`.
fn drive(inputs: &[Bit], script: &[usize], tail_seed: u64, max_msgs: u64) -> Vec<Option<Bit>> {
    let n = inputs.len();
    let mut nodes: Vec<Node> = inputs
        .iter()
        .enumerate()
        .map(|(i, &b)| Node::new(i as u32, n as u32, b, &sentinels()))
        .collect();
    let mut queue: Vec<(u32, Payload)> = Vec::new();
    let mut out: Vec<Outgoing> = Vec::new();
    for node in nodes.iter_mut() {
        node.kick(&mut out);
    }
    let mut lcg = tail_seed | 1;
    let mut delivered = 0u64;
    let mut cursor = 0usize;
    loop {
        for o in out.drain(..) {
            match o.to {
                Dest::One(to) => queue.push((to, o.payload)),
                Dest::All => queue.extend((0..n as u32).map(|to| (to, o.payload))),
            }
        }
        if queue.is_empty() || delivered >= max_msgs {
            break;
        }
        let k = match script.get(cursor) {
            Some(&s) => s % queue.len(),
            None => {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (lcg >> 33) as usize % queue.len()
            }
        };
        cursor += 1;
        let (to, payload) = queue.remove(k);
        delivered += 1;
        nodes[to as usize].on_message(payload, &mut out);
    }
    nodes.iter().map(|n| n.decision()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Agreement: under any delivery prefix + fair tail, all decisions
    /// (if any) are equal; validity: unanimous inputs decide the input.
    #[test]
    fn abd_lean_agreement_under_arbitrary_delivery(
        inputs in proptest::collection::vec(any::<bool>(), 1..5),
        script in proptest::collection::vec(0usize..64, 0..300),
        tail_seed in any::<u64>(),
    ) {
        let inputs: Vec<Bit> = inputs.into_iter().map(Bit::from).collect();
        let decisions = drive(&inputs, &script, tail_seed, 3_000_000);
        let decided: Vec<Bit> = decisions.iter().flatten().copied().collect();
        if let Some(&first) = decided.first() {
            prop_assert!(decided.iter().all(|&d| d == first), "disagreement: {decisions:?}");
        }
        if !inputs.is_empty() && inputs.iter().all(|&b| b == inputs[0]) {
            for d in decided {
                prop_assert_eq!(d, inputs[0], "validity broken");
            }
        }
    }

    /// A decided value never flips: replaying the same schedule longer
    /// keeps the same decisions (monotone stability of the emulation).
    #[test]
    fn decisions_are_stable_under_longer_schedules(
        inputs in proptest::collection::vec(any::<bool>(), 2..4),
        script in proptest::collection::vec(0usize..16, 0..100),
        tail_seed in any::<u64>(),
    ) {
        let inputs: Vec<Bit> = inputs.into_iter().map(Bit::from).collect();
        let short = drive(&inputs, &script, tail_seed, 50_000);
        let long = drive(&inputs, &script, tail_seed, 3_000_000);
        for (s, l) in short.iter().zip(&long) {
            if let Some(sv) = s {
                prop_assert_eq!(Some(*sv), *l, "decision changed with more deliveries");
            }
        }
    }
}
