//! Network-fault plane integration tests.
//!
//! The load-bearing test here is the **differential oracle**: an
//! independent reimplementation of the pre-fault simulator loop (the
//! exact event loop shipped before the fault plane existed — per-copy
//! delay draws from the `NOISE` stream in recipient order, `(time, seq)`
//! heap ordering, delivery-count crash plan, delivery cap). A run of
//! [`run_message_passing`] with [`NetFaultSpec::none`] must match it
//! field for field across the Figure 1 noise suite — proving that arming
//! the fault machinery costs the pristine path nothing, byte for byte.
//! The committed E13 golden CSVs pin the same property end-to-end.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use nc_memory::{Bit, RaceLayout, Word};
use nc_msg::node::{Dest, Node, Outgoing};
use nc_msg::sim::{run_message_passing, Channel, MsgConfig, Outcome};
use nc_msg::{NetFaultSpec, Payload, RecoverySpec};
use nc_sched::rng::salts;
use nc_sched::{stream_rng, Noise};

// ---------------------------------------------------------------------
// The pre-fault simulator, reimplemented verbatim as the oracle.
// ---------------------------------------------------------------------

struct InFlight {
    time: f64,
    seq: u64,
    to: u32,
    payload: Payload,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct OracleReport {
    decisions: Vec<Option<Bit>>,
    rounds: Vec<usize>,
    ops: Vec<u64>,
    deliveries: u64,
    sent: u64,
    sim_time: f64,
    completed: bool,
}

/// The historical `run_message_passing`: delays from `NOISE` stream 0,
/// one draw per recipient copy in recipient order, no other streams.
fn oracle(cfg: &MsgConfig, seed: u64) -> OracleReport {
    let layout = RaceLayout::at_base(0);
    let sentinels: Vec<(nc_memory::Addr, Word)> = vec![
        (layout.slot(Bit::Zero, 0), 1),
        (layout.slot(Bit::One, 0), 1),
    ];
    let mut nodes: Vec<Node> = cfg
        .inputs
        .iter()
        .enumerate()
        .map(|(i, &b)| Node::new(i as u32, cfg.n as u32, b, &sentinels))
        .collect();
    let mut alive = vec![true; cfg.n];
    let mut rng = stream_rng(seed, 0, salts::NOISE);
    let mut queue: BinaryHeap<InFlight> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut clock = 0.0f64;
    let mut sent = 0u64;

    let mut outbox: Vec<Outgoing> = Vec::new();
    for node in nodes.iter_mut() {
        node.kick(&mut outbox);
    }

    let mut deliveries = 0u64;
    let mut crash_plan = cfg.crashes.clone();

    loop {
        for out in outbox.drain(..) {
            let recipients = match out.to {
                Dest::One(to) => to..to + 1,
                Dest::All => 0..cfg.n as u32,
            };
            for to in recipients {
                seq += 1;
                sent += 1;
                queue.push(InFlight {
                    time: clock + cfg.delay.sample(&mut rng),
                    seq,
                    to,
                    payload: out.payload,
                });
            }
        }

        let all_live_decided = (0..cfg.n).all(|i| !alive[i] || nodes[i].decision().is_some());
        if all_live_decided {
            break;
        }
        let Some(msg) = queue.pop() else {
            break;
        };
        if deliveries >= cfg.max_deliveries {
            break;
        }
        deliveries += 1;
        clock = msg.time;

        crash_plan.retain(|&(node, after)| {
            if deliveries >= after {
                if let Some(a) = alive.get_mut(node as usize) {
                    *a = false;
                }
                false
            } else {
                true
            }
        });

        if alive[msg.to as usize] {
            nodes[msg.to as usize].on_message(msg.payload, &mut outbox);
        }
    }

    let completed = (0..cfg.n).all(|i| !alive[i] || nodes[i].decision().is_some());
    OracleReport {
        decisions: nodes.iter().map(|n| n.decision()).collect(),
        rounds: nodes.iter().map(|n| n.round()).collect(),
        ops: nodes.iter().map(|n| n.ops_done).collect(),
        deliveries,
        sent,
        sim_time: clock,
        completed,
    }
}

fn assert_matches_oracle(cfg: &MsgConfig, seed: u64, tag: &str) {
    let want = oracle(cfg, seed);
    let got = run_message_passing(cfg, seed);
    assert_eq!(got.decisions, want.decisions, "{tag}: decisions");
    assert_eq!(got.rounds, want.rounds, "{tag}: rounds");
    assert_eq!(got.ops, want.ops, "{tag}: ops");
    assert_eq!(got.deliveries, want.deliveries, "{tag}: deliveries");
    assert_eq!(got.sent, want.sent, "{tag}: sent");
    assert_eq!(
        got.sim_time.to_bits(),
        want.sim_time.to_bits(),
        "{tag}: sim_time must be bit-identical"
    );
    assert_eq!(
        got.outcome == Outcome::Decided,
        want.completed,
        "{tag}: outcome"
    );
    assert_eq!(
        (got.retries, got.gossip, got.lost, got.duplicated, got.cut),
        (0, 0, 0, 0, 0),
        "{tag}: fault-free run touched the fault/recovery plane"
    );
}

#[test]
fn faultless_config_is_byte_identical_to_the_prefault_simulator() {
    for (name, delay) in Noise::figure1_suite() {
        for seed in 0..3u64 {
            for n in [4usize, 5] {
                let cfg = MsgConfig::new(n, delay);
                assert!(cfg.faults.is_none(), "default config must be fault-free");
                assert_matches_oracle(&cfg, seed, &format!("{name} n={n} seed={seed}"));
            }
        }
    }
}

#[test]
fn faultless_crashy_config_is_byte_identical_too() {
    let cfg =
        MsgConfig::new(5, Noise::Exponential { mean: 1.0 }).with_crashes(vec![(0, 50), (1, 120)]);
    for seed in 0..3u64 {
        assert_matches_oracle(&cfg, seed, &format!("crashes seed={seed}"));
    }
}

// ---------------------------------------------------------------------
// Fault-plane behaviour.
// ---------------------------------------------------------------------

#[test]
fn partitioned_run_heals_and_terminates_without_cap_stall() {
    // Nodes {0, 1} are cut from the 3-node majority during [2, 40).
    // The majority can decide alone; the minority must catch up after
    // heal through retries and gossip — never by hitting the cap.
    for seed in 0..3u64 {
        let cfg = MsgConfig::new(5, Noise::Exponential { mean: 1.0 })
            .with_faults(NetFaultSpec::none().with_partition(2.0, 40.0, vec![0, 1]));
        let report = run_message_passing(&cfg, seed);
        assert_eq!(report.outcome, Outcome::Decided, "seed {seed}");
        assert!(report.cut > 0, "seed {seed}: partition never cut anything");
        assert!(report.retries > 0, "seed {seed}: no retries were needed?");
        let decisions: Vec<Bit> = report.decisions.iter().map(|d| d.unwrap()).collect();
        assert!(
            decisions.iter().all(|&d| d == decisions[0]),
            "seed {seed}: {decisions:?}"
        );
        // Everyone has a decide time, and none precedes the heal for the
        // minority side unless it decided before the cut started.
        for (i, t) in report.decide_times.iter().enumerate() {
            let t = t.unwrap_or_else(|| panic!("seed {seed}: node {i} has no decide time"));
            assert!(t <= report.sim_time);
        }
    }
}

#[test]
fn unhealed_partition_is_reported_as_starvation_not_cap_noise() {
    let mut cfg = MsgConfig::new(5, Noise::Exponential { mean: 1.0 })
        .with_faults(NetFaultSpec::none().with_partition(0.0, f64::INFINITY, vec![0, 1]));
    cfg.max_deliveries = 30_000;
    let report = run_message_passing(&cfg, 2);
    assert_eq!(report.outcome, Outcome::PartitionStarved);
    assert!(report.decisions[0].is_none() && report.decisions[1].is_none());
    assert_ne!(report.outcome, Outcome::Decided);
}

#[test]
fn loss_and_duplication_together_still_agree() {
    for seed in 0..3u64 {
        let cfg = MsgConfig::new(5, Noise::Exponential { mean: 1.0 })
            .with_faults(NetFaultSpec::none().with_loss(0.10).with_duplication(0.10));
        let report = run_message_passing(&cfg, seed);
        assert_eq!(report.outcome, Outcome::Decided, "seed {seed}");
        assert!(report.lost > 0 && report.duplicated > 0, "seed {seed}");
        let decisions: Vec<Bit> = report.decisions.iter().map(|d| d.unwrap()).collect();
        assert!(
            decisions.iter().all(|&d| d == decisions[0]),
            "seed {seed}: {decisions:?}"
        );
    }
}

#[test]
fn retry_only_recovery_heals_without_gossip() {
    for seed in 0..3u64 {
        let cfg = MsgConfig::new(5, Noise::Exponential { mean: 1.0 })
            .with_faults(NetFaultSpec::none().with_loss(0.05))
            .with_recovery(RecoverySpec::default().without_gossip());
        let report = run_message_passing(&cfg, seed);
        assert_eq!(report.outcome, Outcome::Decided, "seed {seed}");
        assert_eq!(report.gossip, 0, "gossip was disabled");
    }
}

#[test]
fn broadcast_channel_with_partition_heals_too() {
    for seed in 0..3u64 {
        let cfg = MsgConfig::new(5, Noise::Exponential { mean: 1.0 })
            .with_channel(Channel::Broadcast)
            .with_faults(NetFaultSpec::none().with_partition(2.0, 40.0, vec![0, 1]));
        let report = run_message_passing(&cfg, seed);
        assert_eq!(report.outcome, Outcome::Decided, "seed {seed}");
        let decisions: Vec<Bit> = report.decisions.iter().map(|d| d.unwrap()).collect();
        assert!(decisions.iter().all(|&d| d == decisions[0]), "seed {seed}");
    }
}

#[test]
fn faulty_runs_are_deterministic_in_cfg_and_seed() {
    let cfg = MsgConfig::new(5, Noise::Uniform { lo: 0.0, hi: 2.0 })
        .with_faults(
            NetFaultSpec::none()
                .with_loss(0.08)
                .with_duplication(0.05)
                .with_partition(3.0, 25.0, vec![0, 4]),
        )
        .with_shared_plane(vec![1, 2]);
    let a = run_message_passing(&cfg, 13);
    let b = run_message_passing(&cfg, 13);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.deliveries, b.deliveries);
    assert_eq!(a.sent, b.sent);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.gossip, b.gossip);
    assert_eq!(a.lost, b.lost);
    assert_eq!(a.duplicated, b.duplicated);
    assert_eq!(a.cut, b.cut);
    assert_eq!(a.sim_time.to_bits(), b.sim_time.to_bits());
    let ta: Vec<Option<u64>> = a.decide_times.iter().map(|t| t.map(f64::to_bits)).collect();
    let tb: Vec<Option<u64>> = b.decide_times.iter().map(|t| t.map(f64::to_bits)).collect();
    assert_eq!(ta, tb);
}
