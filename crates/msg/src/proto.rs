//! The ABD wire protocol.
//!
//! Every register is replicated at every node as a timestamped value;
//! timestamps are `(counter, writer)` pairs ordered lexicographically,
//! which makes concurrent writes totally ordered and the emulation
//! multi-writer safe.
//!
//! * **Read(addr)**: send `ReadQ` to all; collect a majority of `ReadR`;
//!   take the maximum stamp; *write back* that (stamp, value) with `Put`
//!   to a majority; return the value. (The write-back is what upgrades
//!   regular to atomic — a later read can't see an older value.)
//! * **Write(addr, v)**: send `WriteQ` to all; collect a majority of
//!   `WriteR` stamps; pick `counter = max + 1`, `writer = self`; `Put`
//!   the new (stamp, v) to a majority; done.

use std::fmt;

use nc_memory::{Addr, Bit, Word};

/// A logical timestamp: `(counter, writer)`, ordered lexicographically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Stamp {
    /// The write counter (monotone per register).
    pub counter: u64,
    /// The writing node (tie-breaker, makes stamps unique per write).
    pub writer: u32,
}

impl Stamp {
    /// The initial stamp of every register (value 0, "written" by
    /// nobody).
    pub const ZERO: Stamp = Stamp {
        counter: 0,
        writer: 0,
    };

    /// The successor stamp for a write by `writer`.
    pub fn next_for(self, writer: u32) -> Stamp {
        Stamp {
            counter: self.counter + 1,
            writer,
        }
    }
}

impl fmt::Display for Stamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.counter, self.writer)
    }
}

/// Identifier of one client operation, unique per node (`node`, `seq`).
/// Replies carrying a stale `op` are discarded by the client.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OpId {
    /// The node that issued the operation.
    pub node: u32,
    /// The node-local operation sequence number.
    pub seq: u64,
}

/// A protocol message payload.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Payload {
    /// Client → replica: what is your (stamp, value) for `addr`?
    ReadQ {
        /// Operation id for reply matching.
        op: OpId,
        /// Register being read.
        addr: Addr,
    },
    /// Replica → client: my copy of `addr`.
    ReadR {
        /// Operation id echoed.
        op: OpId,
        /// The replying replica (quorums count **distinct** replicas, so
        /// retransmitted or duplicated replies must be deduplicable).
        from: u32,
        /// Register stamp at the replica.
        stamp: Stamp,
        /// Register value at the replica.
        value: Word,
    },
    /// Client → replica: what is your stamp for `addr`? (write phase 1)
    WriteQ {
        /// Operation id for reply matching.
        op: OpId,
        /// Register being written.
        addr: Addr,
    },
    /// Replica → client: my stamp for the queried register.
    WriteR {
        /// Operation id echoed.
        op: OpId,
        /// The replying replica (see [`Payload::ReadR::from`]).
        from: u32,
        /// Register stamp at the replica.
        stamp: Stamp,
    },
    /// Client → replica: adopt (stamp, value) for `addr` if newer
    /// (read write-back and write phase 2 share this message).
    Put {
        /// Operation id for ack matching.
        op: OpId,
        /// Register being updated.
        addr: Addr,
        /// Stamp to install (if greater than the replica's).
        stamp: Stamp,
        /// Value to install.
        value: Word,
    },
    /// Replica → client: `Put` applied (or superseded — still an ack).
    Ack {
        /// Operation id echoed.
        op: OpId,
        /// The acking replica (see [`Payload::ReadR::from`]).
        from: u32,
    },
    /// Anti-entropy push between peers: the sender's decision (if any)
    /// plus one drip-fed replica entry. An undecided receiver adopts an
    /// incoming decision outright (decision adoption is safe: agreement
    /// of the underlying protocol makes every decision equal); the entry
    /// merges under the usual highest-stamp-wins rule, so repeated
    /// gossip rounds converge replica state across a healed partition.
    Gossip {
        /// The gossiping node.
        from: u32,
        /// The sender's decision, if it has one.
        decision: Option<Bit>,
        /// One replica entry (round-robin over the sender's replica).
        entry: Option<(Addr, Stamp, Word)>,
    },
}

impl Payload {
    /// The operation id this message belongs to (`None` for gossip,
    /// which is not tied to any client operation).
    pub fn op_id(&self) -> Option<OpId> {
        match *self {
            Payload::ReadQ { op, .. }
            | Payload::ReadR { op, .. }
            | Payload::WriteQ { op, .. }
            | Payload::WriteR { op, .. }
            | Payload::Put { op, .. }
            | Payload::Ack { op, .. } => Some(op),
            Payload::Gossip { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_order_lexicographically() {
        let a = Stamp {
            counter: 1,
            writer: 9,
        };
        let b = Stamp {
            counter: 2,
            writer: 0,
        };
        assert!(a < b);
        let c = Stamp {
            counter: 1,
            writer: 3,
        };
        assert!(c < a);
        assert_eq!(
            Stamp::ZERO,
            Stamp {
                counter: 0,
                writer: 0
            }
        );
    }

    #[test]
    fn next_stamp_beats_everything_seen() {
        let seen = Stamp {
            counter: 7,
            writer: 4,
        };
        let next = seen.next_for(2);
        assert!(next > seen);
        assert!(
            next > Stamp {
                counter: 7,
                writer: u32::MAX
            }
        );
        assert_eq!(next.writer, 2);
    }

    #[test]
    fn stamp_display() {
        assert_eq!(
            Stamp {
                counter: 3,
                writer: 1
            }
            .to_string(),
            "3.1"
        );
    }

    #[test]
    fn payload_op_id_extraction() {
        let op = OpId { node: 2, seq: 5 };
        let msgs = [
            Payload::ReadQ {
                op,
                addr: Addr::new(0),
            },
            Payload::ReadR {
                op,
                from: 1,
                stamp: Stamp::ZERO,
                value: 0,
            },
            Payload::WriteQ {
                op,
                addr: Addr::new(1),
            },
            Payload::WriteR {
                op,
                from: 1,
                stamp: Stamp::ZERO,
            },
            Payload::Put {
                op,
                addr: Addr::new(2),
                stamp: Stamp::ZERO,
                value: 1,
            },
            Payload::Ack { op, from: 1 },
        ];
        for m in msgs {
            assert_eq!(m.op_id(), Some(op));
        }
        let gossip = Payload::Gossip {
            from: 0,
            decision: Some(Bit::One),
            entry: None,
        };
        assert_eq!(gossip.op_id(), None);
    }
}
