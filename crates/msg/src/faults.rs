//! The deterministic network-fault plane and its recovery knobs.
//!
//! Mirrors what `nc_memory::FaultSpec` does for the word store: a
//! declarative, seeded description of every way the network may
//! misbehave — i.i.d. message **loss**, message **duplication**, and a
//! timed **partition schedule** (link-cut/heal intervals over node
//! groups) — consumed by [`crate::sim::run_message_passing`]. Loss and
//! duplication coins come from a dedicated stream
//! (`nc_sched::rng::salts::NET_FAULTS`), salted independently of the
//! delay-noise stream, so arming faults never perturbs the delays a
//! fault-free run would draw, and a run with
//! [`NetFaultSpec::none`] is byte-identical to the pre-fault simulator.
//!
//! [`RecoverySpec`] configures the two liveness mechanisms that make the
//! ABD client survive the faults: per-phase **retry with deterministic
//! timeout/backoff** (timeouts derived from the delay distribution via
//! [`nc_sched::Noise::timeout_hint`]) and periodic **gossip /
//! anti-entropy** (decision propagation plus drip-fed replica entries),
//! so minority-side nodes catch up and decide once a partition heals
//! instead of stalling at the delivery cap.

/// One timed link-cut window: messages between `side` and its
/// complement are dropped while `start <= t < end`.
///
/// Links *within* `side` and within the complement stay up, so both
/// halves keep making whatever progress their quorum share allows. Use
/// `end = f64::INFINITY` for a partition that never heals.
#[derive(Clone, PartialEq, Debug)]
pub struct Partition {
    /// Simulated time the links go down (inclusive).
    pub start: f64,
    /// Simulated time the links come back (exclusive).
    pub end: f64,
    /// Node ids on one side of the cut (the other side is the
    /// complement; ids outside `0..n` are ignored).
    pub side: Vec<u32>,
}

impl Partition {
    /// Whether the link `a <-> b` is cut at time `t`.
    pub fn cuts(&self, a: u32, b: u32, t: f64) -> bool {
        if t < self.start || t >= self.end {
            return false;
        }
        self.side.contains(&a) != self.side.contains(&b)
    }

    /// Checks this window against an `n`-node deployment; see
    /// [`NetFaultSpec::validate`].
    fn validate(&self, index: usize, n: usize) -> Result<(), NetFaultError> {
        if !(self.start >= 0.0 && self.start < self.end) {
            return Err(NetFaultError::EmptyWindow {
                index,
                start: self.start,
                end: self.end,
            });
        }
        let mut effective: Vec<u32> = self
            .side
            .iter()
            .copied()
            .filter(|&id| (id as usize) < n)
            .collect();
        effective.sort_unstable();
        effective.dedup();
        if effective.is_empty() {
            return Err(NetFaultError::EmptySide { index });
        }
        if effective.len() == n {
            return Err(NetFaultError::FullSide { index });
        }
        Ok(())
    }
}

/// Why a [`NetFaultSpec`] is rejected for a given deployment — every
/// variant is a degenerate shape that would silently act as a no-op cut
/// (or never take effect at all) if the run proceeded.
#[derive(Clone, PartialEq, Debug)]
pub enum NetFaultError {
    /// A partition window with `start >= end` (or a negative start):
    /// no instant ever falls inside it, so it cuts nothing.
    EmptyWindow {
        /// Index into [`NetFaultSpec::partitions`].
        index: usize,
        /// The window's start.
        start: f64,
        /// The window's end.
        end: f64,
    },
    /// A partition whose `side` names no node in `0..n` — both
    /// "sides" are the whole network, so no link crosses the cut.
    EmptySide {
        /// Index into [`NetFaultSpec::partitions`].
        index: usize,
    },
    /// A partition whose `side` contains every node in `0..n` — the
    /// complement is empty, so again no link crosses the cut.
    FullSide {
        /// Index into [`NetFaultSpec::partitions`].
        index: usize,
    },
}

impl std::fmt::Display for NetFaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetFaultError::EmptyWindow { index, start, end } => write!(
                f,
                "partition {index}: empty window [{start}, {end}) cuts nothing (need 0 <= start < end)"
            ),
            NetFaultError::EmptySide { index } => write!(
                f,
                "partition {index}: side names no node in the deployment, the cut is a no-op"
            ),
            NetFaultError::FullSide { index } => write!(
                f,
                "partition {index}: side contains every node, the complement is empty and the cut is a no-op"
            ),
        }
    }
}

impl std::error::Error for NetFaultError {}

/// Declarative network-fault injection for one message-passing run.
///
/// The default ([`NetFaultSpec::none`]) injects nothing and leaves the
/// simulator byte-identical to the fault-free path.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct NetFaultSpec {
    /// Per-message loss probability in `[0, 1]`.
    pub loss: f64,
    /// Per-message duplication probability in `[0, 1]` (the duplicate
    /// gets its own independent delay, drawn from the fault stream).
    pub duplicate: f64,
    /// Timed link-cut windows.
    pub partitions: Vec<Partition>,
}

impl NetFaultSpec {
    /// No faults: the simulator stays byte-identical to the pre-fault
    /// path (no fault stream is consumed, no recovery events scheduled).
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the per-message loss rate (builder-style).
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0,1]");
        self.loss = loss;
        self
    }

    /// Sets the per-message duplication rate (builder-style).
    pub fn with_duplication(mut self, duplicate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&duplicate),
            "duplication must be in [0,1]"
        );
        self.duplicate = duplicate;
        self
    }

    /// Adds a partition window cutting `side` off from the rest during
    /// `[start, end)` (builder-style).
    pub fn with_partition(mut self, start: f64, end: f64, side: Vec<u32>) -> Self {
        assert!(start >= 0.0 && end >= start, "need 0 <= start <= end");
        self.partitions.push(Partition { start, end, side });
        self
    }

    /// Whether this spec injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.loss == 0.0 && self.duplicate == 0.0 && self.partitions.is_empty()
    }

    /// Whether the recovery plane (retry timers + gossip) should be
    /// armed: any fault that can strand an ABD phase waiting forever.
    pub fn needs_recovery(&self) -> bool {
        !self.is_none()
    }

    /// Whether the link `a <-> b` is cut at time `t` by any window.
    pub fn cuts(&self, a: u32, b: u32, t: f64) -> bool {
        self.partitions.iter().any(|p| p.cuts(a, b, t))
    }

    /// Whether some partition window is in effect at time `t` (used to
    /// classify an undecided run as partition-starved rather than a
    /// plain cap hit).
    pub fn partition_active(&self, t: f64) -> bool {
        self.partitions.iter().any(|p| p.start <= t && t < p.end)
    }

    /// Rejects degenerate partition shapes for an `n`-node deployment.
    ///
    /// Three shapes pass [`Partition::cuts`] without ever cutting a
    /// link — `start >= end`, a `side` naming no node in `0..n`, and a
    /// `side` containing every node. Each used to silently degrade the
    /// run to fault-free; [`crate::run_message_passing`] now calls this
    /// up front so a misconfigured experiment fails loudly instead of
    /// reporting clean-network results. Out-of-range ids and duplicates
    /// within `side` are tolerated (ignored / deduplicated) as long as
    /// the *effective* side is a proper non-empty subset.
    pub fn validate(&self, n: usize) -> Result<(), NetFaultError> {
        for (index, p) in self.partitions.iter().enumerate() {
            p.validate(index, n)?;
        }
        Ok(())
    }
}

/// Retry/timeout and gossip configuration for the recovery plane.
///
/// Only consulted when the fault spec [`NetFaultSpec::needs_recovery`];
/// a fault-free run schedules no timers and no gossip, keeping the
/// pristine path byte-identical.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RecoverySpec {
    /// Phase timeout as a multiple of [`nc_sched::Noise::timeout_hint`]
    /// (a quorum phase is one request/reply round trip, so several mean
    /// delays of slack before the first resend).
    pub timeout_mult: f64,
    /// Multiplicative backoff applied per consecutive resend of the
    /// same phase.
    pub backoff: f64,
    /// Cap on the backoff exponent (bounds the longest retry gap).
    pub max_backoff_exp: u32,
    /// Gossip period as a multiple of the delay hint; `0` disables
    /// gossip (retry timers still run).
    pub gossip_mult: f64,
}

impl Default for RecoverySpec {
    fn default() -> Self {
        RecoverySpec {
            timeout_mult: 8.0,
            backoff: 1.5,
            max_backoff_exp: 10,
            gossip_mult: 12.0,
        }
    }
}

impl RecoverySpec {
    /// Disables gossip, leaving only retry timers (builder-style).
    pub fn without_gossip(mut self) -> Self {
        self.gossip_mult = 0.0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(NetFaultSpec::none().is_none());
        assert!(!NetFaultSpec::none().needs_recovery());
        assert!(!NetFaultSpec::none().with_loss(0.1).is_none());
        assert!(!NetFaultSpec::none().with_duplication(0.1).is_none());
        assert!(!NetFaultSpec::none()
            .with_partition(0.0, 1.0, vec![0])
            .is_none());
    }

    #[test]
    fn partition_cuts_only_across_the_side_during_the_window() {
        let spec = NetFaultSpec::none().with_partition(10.0, 20.0, vec![0, 1]);
        // Before / after the window: nothing is cut.
        assert!(!spec.cuts(0, 2, 9.99));
        assert!(!spec.cuts(0, 2, 20.0));
        // During: cross-cut links die, intra-side links live.
        assert!(spec.cuts(0, 2, 10.0));
        assert!(spec.cuts(2, 0, 15.0), "cut is symmetric");
        assert!(!spec.cuts(0, 1, 15.0), "same side stays connected");
        assert!(!spec.cuts(2, 3, 15.0), "complement stays connected");
        assert!(spec.partition_active(15.0));
        assert!(!spec.partition_active(25.0));
    }

    #[test]
    fn never_healing_partition_stays_active() {
        let spec = NetFaultSpec::none().with_partition(5.0, f64::INFINITY, vec![1]);
        assert!(spec.cuts(0, 1, 1e12));
        assert!(spec.partition_active(1e12));
    }

    #[test]
    fn overlapping_windows_union() {
        let spec = NetFaultSpec::none()
            .with_partition(0.0, 10.0, vec![0])
            .with_partition(5.0, 15.0, vec![1]);
        assert!(spec.cuts(0, 2, 2.0));
        assert!(spec.cuts(1, 2, 12.0));
        assert!(!spec.cuts(0, 2, 12.0), "first window already healed");
        // During the overlap 0 and 1 are each alone: 0<->1 is cut by both.
        assert!(spec.cuts(0, 1, 7.0));
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1]")]
    fn invalid_loss_rejected() {
        let _ = NetFaultSpec::none().with_loss(1.5);
    }

    #[test]
    fn validate_accepts_proper_cuts() {
        assert_eq!(NetFaultSpec::none().validate(5), Ok(()));
        let spec = NetFaultSpec::none()
            .with_partition(2.0, 7.5, vec![0, 1])
            .with_partition(5.0, f64::INFINITY, vec![4]);
        assert_eq!(spec.validate(5), Ok(()));
        // Duplicates and out-of-range ids are tolerated as long as the
        // effective side stays a proper non-empty subset.
        let messy = NetFaultSpec::none().with_partition(0.0, 1.0, vec![0, 0, 99]);
        assert_eq!(messy.validate(5), Ok(()));
    }

    #[test]
    fn validate_rejects_empty_window() {
        let spec = NetFaultSpec::none().with_partition(3.0, 3.0, vec![0]);
        assert_eq!(
            spec.validate(5),
            Err(NetFaultError::EmptyWindow {
                index: 0,
                start: 3.0,
                end: 3.0,
            })
        );
    }

    #[test]
    fn validate_rejects_empty_side() {
        // Literally empty, and empty after dropping out-of-range ids.
        let empty = NetFaultSpec::none().with_partition(0.0, 1.0, vec![]);
        assert_eq!(
            empty.validate(5),
            Err(NetFaultError::EmptySide { index: 0 })
        );
        let out_of_range = NetFaultSpec::none().with_partition(0.0, 1.0, vec![7, 8]);
        assert_eq!(
            out_of_range.validate(5),
            Err(NetFaultError::EmptySide { index: 0 })
        );
    }

    #[test]
    fn validate_rejects_side_covering_every_node() {
        // Directly, and via duplicates padding out the id list.
        let full = NetFaultSpec::none().with_partition(0.0, 1.0, vec![0, 1, 2]);
        assert_eq!(full.validate(3), Err(NetFaultError::FullSide { index: 0 }));
        let dup = NetFaultSpec::none().with_partition(0.0, 1.0, vec![0, 1, 1, 2, 2]);
        assert_eq!(dup.validate(3), Err(NetFaultError::FullSide { index: 0 }));
    }

    #[test]
    fn validate_reports_the_offending_window() {
        let spec = NetFaultSpec::none()
            .with_partition(0.0, 1.0, vec![0])
            .with_partition(2.0, 2.0, vec![1]);
        assert!(matches!(
            spec.validate(4),
            Err(NetFaultError::EmptyWindow { index: 1, .. })
        ));
    }
}
