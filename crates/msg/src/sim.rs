//! The noisy, faulty asynchronous network simulator.
//!
//! Every message suffers an independent random delay drawn from the
//! configured [`Noise`] distribution — the message-passing analogue of
//! the paper's noisy operation scheduling. Deliveries execute in time
//! order (deterministic tie-breaking), nodes may crash (dropping all
//! their future sends and deliveries), and the run ends when every live
//! node has decided.
//!
//! On top of the delay model sits a deterministic **network-fault
//! plane** ([`NetFaultSpec`]): i.i.d. message loss, duplication, and a
//! timed partition schedule, drawn from a stream salted independently of
//! the delay noise ([`salts::NET_FAULTS`]) so a run with
//! [`NetFaultSpec::none`] is byte-identical to the fault-free simulator.
//! Whenever faults are armed, a **recovery plane** ([`RecoverySpec`])
//! runs alongside: per-phase retry timers with deterministic
//! timeout/backoff (timeouts derived from the delay distribution via
//! [`Noise::timeout_hint`]) and periodic gossip/anti-entropy ticks
//! ([`salts::GOSSIP`] jitter), so quorum phases stranded by loss or a
//! partition are re-driven and minority-side nodes catch up after heal.
//!
//! Broadcasts can be expanded two ways ([`Channel`]): independent
//! per-recipient unicast delays (the default, matching E13), or a single
//! shared broadcast delay per send — the Clementi–Natale-style broadcast
//! model E17 compares against.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use nc_memory::{Bit, RaceLayout, Word};
use nc_sched::rng::salts;
use nc_sched::{stream_rng, Noise};
use rand::RngExt;

use crate::faults::{NetFaultError, NetFaultSpec, RecoverySpec};
use crate::node::{Dest, Node, Outgoing, SharedPlane};
use crate::proto::Payload;

/// How a [`Dest::All`] send is expanded into the network.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Channel {
    /// Each recipient's copy gets its own independent delay draw (the
    /// classic point-to-point model; the historical default).
    #[default]
    Unicast,
    /// All recipients share one delay draw per broadcast (a radio /
    /// LAN-style medium): recipients hear the message simultaneously,
    /// which removes the order-statistic straggler wait of unicast
    /// quorums. Loss and duplication then also apply per broadcast, not
    /// per copy; partitions still cut per link.
    Broadcast,
}

/// Configuration of one message-passing consensus run.
#[derive(Clone, PartialEq, Debug)]
pub struct MsgConfig {
    /// Number of nodes.
    pub n: usize,
    /// Per-message delay distribution.
    pub delay: Noise,
    /// Inputs (defaults to the Figure 1 half-and-half split).
    pub inputs: Vec<Bit>,
    /// Nodes to crash at a given delivered-message count:
    /// `(node, after_deliveries)`. Must leave a majority alive for the
    /// ABD quorums to answer.
    pub crashes: Vec<(u32, u64)>,
    /// Safety cap on total processed events (deliveries, retry timers,
    /// gossip ticks; in a fault-free run only deliveries exist, so this
    /// is the historical delivery cap).
    pub max_deliveries: u64,
    /// Network-fault injection (default: none).
    pub faults: NetFaultSpec,
    /// Retry/gossip tuning; only consulted when `faults` injects
    /// something (see [`NetFaultSpec::needs_recovery`]).
    pub recovery: RecoverySpec,
    /// Broadcast expansion model (default: unicast).
    pub channel: Channel,
    /// Nodes whose replica duties are served out of one shared
    /// [`SharedPlane`] (the bridge to `nc_memory`): a mixed
    /// shared-memory/message deployment. `None` or empty = all private.
    pub shared_plane: Option<Vec<u32>>,
}

impl MsgConfig {
    /// A failure-free run of `n` nodes with half-and-half inputs.
    pub fn new(n: usize, delay: Noise) -> Self {
        MsgConfig {
            n,
            delay,
            inputs: (0..n).map(|i| Bit::from(i >= n / 2)).collect(),
            crashes: Vec::new(),
            max_deliveries: 50_000_000,
            faults: NetFaultSpec::none(),
            recovery: RecoverySpec::default(),
            channel: Channel::Unicast,
            shared_plane: None,
        }
    }

    /// Replaces the inputs (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from `n`.
    pub fn with_inputs(mut self, inputs: Vec<Bit>) -> Self {
        assert_eq!(inputs.len(), self.n, "inputs length must equal n");
        self.inputs = inputs;
        self
    }

    /// Adds crash events (builder-style).
    pub fn with_crashes(mut self, crashes: Vec<(u32, u64)>) -> Self {
        self.crashes = crashes;
        self
    }

    /// Arms the network-fault plane (builder-style).
    pub fn with_faults(mut self, faults: NetFaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the recovery tuning (builder-style).
    pub fn with_recovery(mut self, recovery: RecoverySpec) -> Self {
        self.recovery = recovery;
        self
    }

    /// Selects the broadcast expansion model (builder-style).
    pub fn with_channel(mut self, channel: Channel) -> Self {
        self.channel = channel;
        self
    }

    /// Puts `nodes` on one shared memory plane (builder-style).
    pub fn with_shared_plane(mut self, nodes: Vec<u32>) -> Self {
        self.shared_plane = Some(nodes);
        self
    }

    /// Checks the whole configuration, returning the first problem
    /// found: a zero-node deployment, a crash plan that would destroy
    /// the majority quorum, or a degenerate partition shape
    /// ([`NetFaultSpec::validate`]).
    ///
    /// [`run_message_passing`] calls this eagerly, so a config error
    /// surfaces at the entry point instead of panicking (or silently
    /// no-opping) deep inside a worker thread. Service layers can call
    /// it themselves to turn bad configs into recoverable errors.
    pub fn validate(&self) -> Result<(), MsgConfigError> {
        if self.n == 0 {
            return Err(MsgConfigError::NoNodes);
        }
        // Count *distinct* in-range node ids: a plan may legitimately
        // list the same node twice (first entry wins; rest are no-ops).
        let mut crash_ids: Vec<u32> = self
            .crashes
            .iter()
            .map(|&(node, _)| node)
            .filter(|&node| (node as usize) < self.n)
            .collect();
        crash_ids.sort_unstable();
        crash_ids.dedup();
        if crash_ids.len() >= self.n.div_ceil(2) {
            return Err(MsgConfigError::MajorityCrash {
                crashed: crash_ids.len(),
                n: self.n,
            });
        }
        self.faults
            .validate(self.n)
            .map_err(MsgConfigError::Faults)?;
        Ok(())
    }
}

/// Why a [`MsgConfig`] is rejected (see [`MsgConfig::validate`]).
#[derive(Clone, PartialEq, Debug)]
pub enum MsgConfigError {
    /// `n == 0`: there is nothing to run.
    NoNodes,
    /// The crash plan kills a majority of distinct nodes — the ABD
    /// emulation requires `f < n/2`, so the run would block forever by
    /// construction.
    MajorityCrash {
        /// Distinct in-range nodes the plan crashes.
        crashed: usize,
        /// Deployment size.
        n: usize,
    },
    /// The fault plane holds a degenerate partition shape.
    Faults(NetFaultError),
}

impl std::fmt::Display for MsgConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsgConfigError::NoNodes => write!(f, "need at least one node"),
            MsgConfigError::MajorityCrash { crashed, n } => write!(
                f,
                "crashing {crashed} of {n} nodes would destroy the majority quorum"
            ),
            MsgConfigError::Faults(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MsgConfigError {}

/// How a message-passing run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Every live node decided.
    Decided,
    /// The network drained with no progress possible (crash-heavy run).
    Drained,
    /// The event cap was hit with no partition in effect.
    CapHit,
    /// The run was still (or again) inside a partition window when it
    /// ran out of events — the cut, not the cap, is what starved it.
    PartitionStarved,
}

/// The outcome of a message-passing run.
#[derive(Clone, Debug)]
pub struct MsgReport {
    /// Per-node decision (`None` for crashed-before-deciding nodes).
    pub decisions: Vec<Option<Bit>>,
    /// Per-node lean round at the end.
    pub rounds: Vec<usize>,
    /// Per-node emulated register operations completed.
    pub ops: Vec<u64>,
    /// Total messages delivered.
    pub deliveries: u64,
    /// Total messages sent (per recipient copy).
    pub sent: u64,
    /// Simulated time of the last processed event.
    pub sim_time: f64,
    /// How the run ended.
    pub outcome: Outcome,
    /// Phase retransmissions fired by the retry timers.
    pub retries: u64,
    /// Anti-entropy pushes initiated by the gossip timers.
    pub gossip: u64,
    /// Messages dropped by the loss coin.
    pub lost: u64,
    /// Extra copies injected by the duplication coin.
    pub duplicated: u64,
    /// Messages dropped by a partition window.
    pub cut: u64,
    /// Per-node simulated time of first decision (`None` = never).
    pub decide_times: Vec<Option<f64>>,
}

/// A simulator event: a message delivery, a client retry timer, or a
/// gossip tick.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// Deliver `payload` to `to`.
    Msg { to: u32, payload: Payload },
    /// Retry timer for `node`'s phase epoch `epoch` (`attempt` resends
    /// already fired; stale epochs die silently).
    Timeout { node: u32, epoch: u64, attempt: u32 },
    /// Periodic anti-entropy tick for `node`.
    GossipTick { node: u32 },
}

#[derive(Debug)]
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Arms a retry timer for node `i`'s current phase if recovery is on,
/// the node is waiting, and no timer chain guards this epoch yet.
#[allow(clippy::too_many_arguments)]
fn arm_timer(
    i: usize,
    nodes: &[Node],
    alive: &[bool],
    armed_epoch: &mut [u64],
    queue: &mut BinaryHeap<Scheduled>,
    seq: &mut u64,
    clock: f64,
    timeout0: f64,
) {
    if alive[i] && nodes[i].awaiting() && armed_epoch[i] != nodes[i].epoch() {
        armed_epoch[i] = nodes[i].epoch();
        *seq += 1;
        queue.push(Scheduled {
            time: clock + timeout0,
            seq: *seq,
            event: Event::Timeout {
                node: i as u32,
                epoch: armed_epoch[i],
                attempt: 0,
            },
        });
    }
}

/// Runs lean-consensus over ABD-emulated registers on a noisy — and
/// optionally faulty — network.
///
/// Deterministic in `(cfg, seed)`: the delay stream, the fault coins
/// ([`salts::NET_FAULTS`]) and the gossip jitter ([`salts::GOSSIP`]) are
/// all derived from `seed` through independent salts, so arming faults
/// never perturbs the delays of the fault-free path, and a config with
/// [`NetFaultSpec::none`] reproduces the pre-fault simulator event for
/// event.
///
/// # Panics
///
/// Panics if [`MsgConfig::validate`] rejects the configuration —
/// `cfg.n == 0`, a crash schedule killing a majority of **distinct**
/// nodes (the ABD emulation requires `f < n/2`; a run configured to
/// violate that would block forever by construction), or a degenerate
/// partition shape that would silently cut nothing. Call `validate`
/// first to handle these as recoverable errors instead.
pub fn run_message_passing(cfg: &MsgConfig, seed: u64) -> MsgReport {
    if let Err(e) = cfg.validate() {
        panic!("{e}");
    }

    let layout = RaceLayout::at_base(0);
    let sentinels: Vec<(nc_memory::Addr, Word)> = vec![
        (layout.slot(Bit::Zero, 0), 1),
        (layout.slot(Bit::One, 0), 1),
    ];
    let plane_members = cfg.shared_plane.clone().unwrap_or_default();
    let plane = if plane_members.is_empty() {
        None
    } else {
        Some(SharedPlane::new(&sentinels))
    };
    let mut nodes: Vec<Node> = cfg
        .inputs
        .iter()
        .enumerate()
        .map(|(i, &b)| match &plane {
            Some(plane) if plane_members.contains(&(i as u32)) => {
                Node::new_shared(i as u32, cfg.n as u32, b, std::rc::Rc::clone(plane))
            }
            _ => Node::new(i as u32, cfg.n as u32, b, &sentinels),
        })
        .collect();
    let mut alive = vec![true; cfg.n];

    let mut rng = stream_rng(seed, 0, salts::NOISE);
    let mut fault_rng = stream_rng(seed, 0, salts::NET_FAULTS);
    let mut gossip_rng = stream_rng(seed, 0, salts::GOSSIP);

    let mut queue: BinaryHeap<Scheduled> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut clock = 0.0f64;
    let mut sent = 0u64;
    let mut lost = 0u64;
    let mut duplicated = 0u64;
    let mut cut = 0u64;
    let mut retries = 0u64;
    let mut gossip_sent = 0u64;
    let mut decide_times: Vec<Option<f64>> = vec![None; cfg.n];

    let recovery_on = cfg.faults.needs_recovery();
    let hint = cfg.delay.timeout_hint().max(1e-6);
    let timeout0 = cfg.recovery.timeout_mult * hint;
    let gossip_interval = cfg.recovery.gossip_mult * hint;
    let mut armed_epoch = vec![u64::MAX; cfg.n];

    let mut outbox: Vec<Outgoing> = Vec::new();
    for node in nodes.iter_mut() {
        node.kick(&mut outbox);
    }
    if recovery_on {
        for i in 0..cfg.n {
            arm_timer(
                i,
                &nodes,
                &alive,
                &mut armed_epoch,
                &mut queue,
                &mut seq,
                clock,
                timeout0,
            );
        }
        if gossip_interval > 0.0 {
            for node in 0..cfg.n as u32 {
                let jitter: f64 = gossip_rng.random();
                seq += 1;
                queue.push(Scheduled {
                    time: gossip_interval * (1.0 + jitter),
                    seq,
                    event: Event::GossipTick { node },
                });
            }
        }
    }

    let mut events = 0u64;
    let mut deliveries = 0u64;
    let mut crash_plan = cfg.crashes.clone();

    loop {
        // Flush the outbox into the network. Every per-recipient copy
        // draws its delay from the noise stream in recipient order
        // (byte-compatible with the pre-fault simulator); fault coins
        // come from their own stream and only when the spec arms them.
        for out in outbox.drain(..) {
            if out.to == Dest::All && cfg.channel == Channel::Broadcast {
                // One shared delay and one loss/duplication draw for the
                // whole broadcast; partitions still cut per link.
                let delay = cfg.delay.sample(&mut rng);
                let lose_all = cfg.faults.loss > 0.0 && fault_rng.random::<f64>() < cfg.faults.loss;
                let dup_all =
                    cfg.faults.duplicate > 0.0 && fault_rng.random::<f64>() < cfg.faults.duplicate;
                let dup_delay = if dup_all {
                    cfg.delay.sample(&mut fault_rng)
                } else {
                    0.0
                };
                for to in 0..cfg.n as u32 {
                    sent += 1;
                    if cfg.faults.cuts(out.from, to, clock) {
                        cut += 1;
                        continue;
                    }
                    if lose_all {
                        lost += 1;
                        continue;
                    }
                    seq += 1;
                    queue.push(Scheduled {
                        time: clock + delay,
                        seq,
                        event: Event::Msg {
                            to,
                            payload: out.payload,
                        },
                    });
                    if dup_all {
                        duplicated += 1;
                        seq += 1;
                        queue.push(Scheduled {
                            time: clock + dup_delay,
                            seq,
                            event: Event::Msg {
                                to,
                                payload: out.payload,
                            },
                        });
                    }
                }
                continue;
            }
            let recipients = match out.to {
                Dest::One(to) => to..to + 1,
                Dest::All => 0..cfg.n as u32,
            };
            for to in recipients {
                let delay = cfg.delay.sample(&mut rng);
                seq += 1;
                sent += 1;
                if cfg.faults.cuts(out.from, to, clock) {
                    cut += 1;
                    continue;
                }
                if cfg.faults.loss > 0.0 && fault_rng.random::<f64>() < cfg.faults.loss {
                    lost += 1;
                    continue;
                }
                queue.push(Scheduled {
                    time: clock + delay,
                    seq,
                    event: Event::Msg {
                        to,
                        payload: out.payload,
                    },
                });
                if cfg.faults.duplicate > 0.0 && fault_rng.random::<f64>() < cfg.faults.duplicate {
                    duplicated += 1;
                    let dup_delay = cfg.delay.sample(&mut fault_rng);
                    seq += 1;
                    queue.push(Scheduled {
                        time: clock + dup_delay,
                        seq,
                        event: Event::Msg {
                            to,
                            payload: out.payload,
                        },
                    });
                }
            }
        }

        // Done when every live node decided (in-flight events are
        // irrelevant then) or when nothing remains scheduled.
        let all_live_decided = (0..cfg.n).all(|i| !alive[i] || nodes[i].decision().is_some());
        if all_live_decided {
            break;
        }
        let Some(next) = queue.pop() else {
            break; // network drained without progress (crash-heavy run)
        };
        if events >= cfg.max_deliveries {
            break;
        }
        events += 1;
        clock = next.time;

        match next.event {
            Event::Msg { to, payload } => {
                deliveries += 1;
                // Crash plan: crash nodes whose delivery count arrived.
                crash_plan.retain(|&(node, after)| {
                    if deliveries >= after {
                        if let Some(a) = alive.get_mut(node as usize) {
                            *a = false;
                        }
                        false
                    } else {
                        true
                    }
                });
                let i = to as usize;
                if alive[i] {
                    nodes[i].on_message(payload, &mut outbox);
                    if decide_times[i].is_none() && nodes[i].decision().is_some() {
                        decide_times[i] = Some(clock);
                    }
                    if recovery_on {
                        arm_timer(
                            i,
                            &nodes,
                            &alive,
                            &mut armed_epoch,
                            &mut queue,
                            &mut seq,
                            clock,
                            timeout0,
                        );
                    }
                }
            }
            Event::Timeout {
                node,
                epoch,
                attempt,
            } => {
                let i = node as usize;
                // Fire only if the guarded phase is still in flight; a
                // stale epoch means the phase completed (or was
                // abandoned for an adopted decision) and the chain dies.
                if alive[i] && nodes[i].awaiting() && nodes[i].epoch() == epoch {
                    retries += 1;
                    nodes[i].resend(&mut outbox);
                    let exp = (attempt + 1).min(cfg.recovery.max_backoff_exp);
                    let backoff = timeout0 * cfg.recovery.backoff.powi(exp as i32);
                    seq += 1;
                    queue.push(Scheduled {
                        time: clock + backoff,
                        seq,
                        event: Event::Timeout {
                            node,
                            epoch,
                            attempt: attempt + 1,
                        },
                    });
                }
            }
            Event::GossipTick { node } => {
                let i = node as usize;
                if alive[i] {
                    nodes[i].gossip(&mut outbox);
                    gossip_sent += 1;
                    let jitter: f64 = gossip_rng.random();
                    seq += 1;
                    queue.push(Scheduled {
                        time: clock + gossip_interval * (0.75 + 0.5 * jitter),
                        seq,
                        event: Event::GossipTick { node },
                    });
                }
            }
        }
    }

    let all_live_decided = (0..cfg.n).all(|i| !alive[i] || nodes[i].decision().is_some());
    let outcome = if all_live_decided {
        Outcome::Decided
    } else if cfg.faults.partition_active(clock) {
        Outcome::PartitionStarved
    } else if events >= cfg.max_deliveries {
        Outcome::CapHit
    } else {
        Outcome::Drained
    };
    MsgReport {
        decisions: nodes.iter().map(|n| n.decision()).collect(),
        rounds: nodes.iter().map(|n| n.round()).collect(),
        ops: nodes.iter().map(|n| n.ops_done).collect(),
        deliveries,
        sent,
        sim_time: clock,
        outcome,
        retries,
        gossip: gossip_sent,
        lost,
        duplicated,
        cut,
        decide_times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_free_runs_agree_across_distributions() {
        for (name, delay) in Noise::figure1_suite() {
            for seed in 0..3 {
                let cfg = MsgConfig::new(5, delay);
                let report = run_message_passing(&cfg, seed);
                assert_eq!(report.outcome, Outcome::Decided, "{name} seed {seed}");
                let decisions: Vec<Bit> = report.decisions.iter().map(|d| d.unwrap()).collect();
                assert!(
                    decisions.iter().all(|&d| d == decisions[0]),
                    "{name} seed {seed}: {decisions:?}"
                );
                // The fault-free path must not touch the recovery plane.
                assert_eq!(report.retries, 0);
                assert_eq!(report.gossip, 0);
                assert_eq!(report.lost + report.duplicated + report.cut, 0);
            }
        }
    }

    #[test]
    fn unanimous_inputs_decide_that_input() {
        for input in Bit::BOTH {
            let cfg =
                MsgConfig::new(4, Noise::Exponential { mean: 1.0 }).with_inputs(vec![input; 4]);
            let report = run_message_passing(&cfg, 9);
            assert_eq!(report.outcome, Outcome::Decided);
            assert!(report.decisions.iter().all(|&d| d == Some(input)));
            // Validity still costs exactly 8 emulated operations each.
            assert!(report.ops.iter().all(|&o| o == 8), "{:?}", report.ops);
        }
    }

    #[test]
    fn minority_crashes_do_not_block_the_quorum() {
        for seed in 0..5 {
            let cfg = MsgConfig::new(5, Noise::Exponential { mean: 1.0 })
                .with_crashes(vec![(0, 50), (1, 120)]);
            let report = run_message_passing(&cfg, seed);
            assert_eq!(report.outcome, Outcome::Decided, "seed {seed}");
            let live: Vec<Bit> = report.decisions[2..]
                .iter()
                .map(|d| d.expect("live node must decide"))
                .collect();
            assert!(live.iter().all(|&d| d == live[0]), "seed {seed}: {live:?}");
        }
    }

    #[test]
    #[should_panic(expected = "majority quorum")]
    fn majority_crash_plans_are_rejected() {
        let cfg =
            MsgConfig::new(4, Noise::Exponential { mean: 1.0 }).with_crashes(vec![(0, 1), (1, 2)]);
        run_message_passing(&cfg, 0);
    }

    #[test]
    fn duplicate_crash_entries_are_not_double_counted() {
        // Two entries for node 0 crash ONE node; at n = 4 that leaves a
        // 3-node majority and must be accepted (the old guard counted
        // entries, not distinct nodes, and spuriously rejected this).
        let cfg =
            MsgConfig::new(4, Noise::Exponential { mean: 1.0 }).with_crashes(vec![(0, 1), (0, 2)]);
        let report = run_message_passing(&cfg, 3);
        assert_eq!(report.outcome, Outcome::Decided);
        assert!(report.decisions[0].is_none(), "node 0 crashed undecided");
        let live: Vec<Bit> = report.decisions[1..]
            .iter()
            .map(|d| d.expect("live node must decide"))
            .collect();
        assert!(live.iter().all(|&d| d == live[0]), "{live:?}");
    }

    #[test]
    fn out_of_range_crash_ids_do_not_trip_the_guard() {
        // Ids >= n never crash anything real; they must not count
        // against the quorum budget either.
        let cfg = MsgConfig::new(4, Noise::Exponential { mean: 1.0 }).with_crashes(vec![
            (0, 40),
            (7, 1),
            (9, 2),
        ]);
        let report = run_message_passing(&cfg, 5);
        assert_eq!(report.outcome, Outcome::Decided);
    }

    #[test]
    fn determinism() {
        let cfg = MsgConfig::new(4, Noise::Uniform { lo: 0.0, hi: 2.0 });
        let a = run_message_passing(&cfg, 7);
        let b = run_message_passing(&cfg, 7);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.sent, b.sent);
    }

    #[test]
    fn message_cost_scales_with_quorum_size() {
        // Each emulated op costs two broadcast phases (2n messages) plus
        // replies; total traffic should be Θ(ops · n).
        let cfg = MsgConfig::new(5, Noise::Exponential { mean: 1.0 });
        let report = run_message_passing(&cfg, 3);
        let total_ops: u64 = report.ops.iter().sum();
        assert!(report.sent as f64 >= total_ops as f64 * 2.0 * 5.0 * 0.9);
        assert!(report.sent as f64 <= total_ops as f64 * 8.0 * 5.0);
    }

    #[test]
    fn rounds_are_bounded_but_larger_than_shared_memory() {
        // Quorum waits average ~2n message delays per emulated op, which
        // ATTENUATES the environment noise (order-statistic
        // concentration): the race stays tied longer than in raw shared
        // memory, so rounds are higher — but still bounded and
        // terminating. Documented in EXPERIMENTS.md (E13).
        let cfg = MsgConfig::new(9, Noise::Exponential { mean: 1.0 });
        for seed in 0..5 {
            let report = run_message_passing(&cfg, seed);
            assert_eq!(report.outcome, Outcome::Decided, "seed {seed}");
            let max_round = report.rounds.iter().max().unwrap();
            assert!(*max_round < 500, "seed {seed}: round {max_round}");
        }
    }

    #[test]
    #[should_panic(expected = "inputs length")]
    fn mismatched_inputs_panic() {
        let _ = MsgConfig::new(3, Noise::Exponential { mean: 1.0 }).with_inputs(vec![Bit::Zero]);
    }

    #[test]
    fn oversize_deployment_decides_without_panicking() {
        // Regression: n = 129 used to hit `assert!(n <= 128)` in the
        // node's quorum bitmask; the spilled mask must now carry a full
        // unanimous run to a decision.
        let cfg =
            MsgConfig::new(129, Noise::Exponential { mean: 1.0 }).with_inputs(vec![Bit::One; 129]);
        assert_eq!(cfg.validate(), Ok(()));
        let report = run_message_passing(&cfg, 2);
        assert_eq!(report.outcome, Outcome::Decided);
        assert!(report.decisions.iter().all(|&d| d == Some(Bit::One)));
        assert!(report.ops.iter().all(|&o| o == 8), "lean still costs 8 ops");
    }

    #[test]
    fn validate_surfaces_config_errors_without_running() {
        let zero = MsgConfig::new(0, Noise::Exponential { mean: 1.0 });
        assert_eq!(zero.validate(), Err(MsgConfigError::NoNodes));

        let majority =
            MsgConfig::new(4, Noise::Exponential { mean: 1.0 }).with_crashes(vec![(0, 1), (1, 2)]);
        assert_eq!(
            majority.validate(),
            Err(MsgConfigError::MajorityCrash { crashed: 2, n: 4 })
        );

        let degenerate = MsgConfig::new(4, Noise::Exponential { mean: 1.0 })
            .with_faults(NetFaultSpec::none().with_partition(1.0, 1.0, vec![0]));
        assert!(matches!(
            degenerate.validate(),
            Err(MsgConfigError::Faults(
                crate::NetFaultError::EmptyWindow { .. }
            ))
        ));
    }

    #[test]
    #[should_panic(expected = "cuts nothing")]
    fn degenerate_partitions_are_rejected_at_the_entry_point() {
        let cfg = MsgConfig::new(4, Noise::Exponential { mean: 1.0 })
            .with_faults(NetFaultSpec::none().with_partition(5.0, 5.0, vec![0]));
        run_message_passing(&cfg, 0);
    }

    #[test]
    #[should_panic(expected = "the cut is a no-op")]
    fn full_side_partitions_are_rejected_at_the_entry_point() {
        let cfg = MsgConfig::new(3, Noise::Exponential { mean: 1.0 })
            .with_faults(NetFaultSpec::none().with_partition(0.0, 9.0, vec![0, 1, 2]));
        run_message_passing(&cfg, 0);
    }

    #[test]
    fn lossy_runs_recover_via_retries() {
        for seed in 0..3 {
            let cfg = MsgConfig::new(5, Noise::Exponential { mean: 1.0 })
                .with_faults(NetFaultSpec::none().with_loss(0.05));
            let report = run_message_passing(&cfg, seed);
            assert_eq!(report.outcome, Outcome::Decided, "seed {seed}");
            assert!(report.lost > 0, "seed {seed}: loss coin never fired");
            let decisions: Vec<Bit> = report.decisions.iter().map(|d| d.unwrap()).collect();
            assert!(decisions.iter().all(|&d| d == decisions[0]));
        }
    }

    #[test]
    fn total_duplication_cannot_fake_quorums() {
        // Every message duplicated: distinct-replica counting must keep
        // the emulation correct (agreement + validity).
        let cfg = MsgConfig::new(4, Noise::Exponential { mean: 1.0 })
            .with_inputs(vec![Bit::One; 4])
            .with_faults(NetFaultSpec::none().with_duplication(1.0));
        let report = run_message_passing(&cfg, 11);
        assert_eq!(report.outcome, Outcome::Decided);
        assert!(report.duplicated > 0);
        assert!(report.decisions.iter().all(|&d| d == Some(Bit::One)));
    }

    #[test]
    fn broadcast_channel_reaches_agreement() {
        for seed in 0..3 {
            let cfg = MsgConfig::new(5, Noise::Exponential { mean: 1.0 })
                .with_channel(Channel::Broadcast);
            let report = run_message_passing(&cfg, seed);
            assert_eq!(report.outcome, Outcome::Decided, "seed {seed}");
            let decisions: Vec<Bit> = report.decisions.iter().map(|d| d.unwrap()).collect();
            assert!(decisions.iter().all(|&d| d == decisions[0]));
        }
    }

    #[test]
    fn mixed_shared_plane_deployment_agrees() {
        for seed in 0..3 {
            let cfg = MsgConfig::new(5, Noise::Exponential { mean: 1.0 })
                .with_shared_plane(vec![0, 1, 2]);
            let report = run_message_passing(&cfg, seed);
            assert_eq!(report.outcome, Outcome::Decided, "seed {seed}");
            let decisions: Vec<Bit> = report.decisions.iter().map(|d| d.unwrap()).collect();
            assert!(decisions.iter().all(|&d| d == decisions[0]), "seed {seed}");
        }
    }
}
