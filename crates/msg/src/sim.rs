//! The noisy asynchronous network simulator.
//!
//! Every message suffers an independent random delay drawn from the
//! configured [`Noise`] distribution — the message-passing analogue of
//! the paper's noisy operation scheduling. Deliveries execute in time
//! order (deterministic tie-breaking), nodes may crash (dropping all
//! their future sends and deliveries), and the run ends when every live
//! node's lean machine has decided.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use nc_memory::{Bit, RaceLayout, Word};
use nc_sched::rng::salts;
use nc_sched::{stream_rng, Noise};

use crate::node::{Node, Outgoing};
use crate::proto::Payload;

/// Configuration of one message-passing consensus run.
#[derive(Clone, PartialEq, Debug)]
pub struct MsgConfig {
    /// Number of nodes.
    pub n: usize,
    /// Per-message delay distribution.
    pub delay: Noise,
    /// Inputs (defaults to the Figure 1 half-and-half split).
    pub inputs: Vec<Bit>,
    /// Nodes to crash at a given delivered-message count:
    /// `(node, after_deliveries)`. Must leave a majority alive for the
    /// ABD quorums to answer.
    pub crashes: Vec<(u32, u64)>,
    /// Safety cap on total deliveries.
    pub max_deliveries: u64,
}

impl MsgConfig {
    /// A failure-free run of `n` nodes with half-and-half inputs.
    pub fn new(n: usize, delay: Noise) -> Self {
        MsgConfig {
            n,
            delay,
            inputs: (0..n).map(|i| Bit::from(i >= n / 2)).collect(),
            crashes: Vec::new(),
            max_deliveries: 50_000_000,
        }
    }

    /// Replaces the inputs (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from `n`.
    pub fn with_inputs(mut self, inputs: Vec<Bit>) -> Self {
        assert_eq!(inputs.len(), self.n, "inputs length must equal n");
        self.inputs = inputs;
        self
    }

    /// Adds crash events (builder-style).
    pub fn with_crashes(mut self, crashes: Vec<(u32, u64)>) -> Self {
        self.crashes = crashes;
        self
    }
}

/// The outcome of a message-passing run.
#[derive(Clone, Debug)]
pub struct MsgReport {
    /// Per-node decision (`None` for crashed-before-deciding nodes).
    pub decisions: Vec<Option<Bit>>,
    /// Per-node lean round at the end.
    pub rounds: Vec<usize>,
    /// Per-node emulated register operations completed.
    pub ops: Vec<u64>,
    /// Total messages delivered.
    pub deliveries: u64,
    /// Total messages sent.
    pub sent: u64,
    /// Simulated time of the last delivery.
    pub sim_time: f64,
    /// Whether every live node decided (false = delivery cap hit).
    pub completed: bool,
}

#[derive(Debug)]
struct InFlight {
    time: f64,
    seq: u64,
    to: u32,
    payload: Payload,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Runs lean-consensus over ABD-emulated registers on a noisy network.
///
/// Deterministic in `(cfg, seed)`.
///
/// # Panics
///
/// Panics if `cfg.n == 0` or the crash schedule would kill a majority
/// (the ABD emulation requires `f < n/2`; a run configured to violate
/// that would block forever by construction, so it is rejected eagerly).
pub fn run_message_passing(cfg: &MsgConfig, seed: u64) -> MsgReport {
    assert!(cfg.n > 0, "need at least one node");
    assert!(
        cfg.crashes.len() < cfg.n.div_ceil(2),
        "crashing {} of {} nodes would destroy the majority quorum",
        cfg.crashes.len(),
        cfg.n
    );
    let layout = RaceLayout::at_base(0);
    let sentinels: Vec<(nc_memory::Addr, Word)> = vec![
        (layout.slot(Bit::Zero, 0), 1),
        (layout.slot(Bit::One, 0), 1),
    ];
    let mut nodes: Vec<Node> = cfg
        .inputs
        .iter()
        .enumerate()
        .map(|(i, &b)| Node::new(i as u32, cfg.n as u32, b, &sentinels))
        .collect();
    let mut alive = vec![true; cfg.n];
    let mut rng = stream_rng(seed, 0, salts::NOISE);
    let mut queue: BinaryHeap<InFlight> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut clock = 0.0f64;
    let mut sent = 0u64;

    let mut outbox: Vec<Outgoing> = Vec::new();
    for node in nodes.iter_mut() {
        node.kick(&mut outbox);
    }

    let mut deliveries = 0u64;
    let mut crash_plan = cfg.crashes.clone();

    loop {
        // Flush the outbox into the network with fresh random delays.
        for out in outbox.drain(..) {
            seq += 1;
            sent += 1;
            queue.push(InFlight {
                time: clock + cfg.delay.sample(&mut rng),
                seq,
                to: out.to,
                payload: out.payload,
            });
        }

        // Done when every live node decided (undelivered messages are
        // irrelevant then) or when nothing remains in flight.
        let all_live_decided = (0..cfg.n).all(|i| !alive[i] || nodes[i].decision().is_some());
        if all_live_decided {
            break;
        }
        let Some(msg) = queue.pop() else {
            break; // network drained without progress (crash-heavy run)
        };
        if deliveries >= cfg.max_deliveries {
            break;
        }
        deliveries += 1;
        clock = msg.time;

        // Crash plan: crash nodes whose delivery count has arrived.
        crash_plan.retain(|&(node, after)| {
            if deliveries >= after {
                if let Some(a) = alive.get_mut(node as usize) {
                    *a = false;
                }
                false
            } else {
                true
            }
        });

        if alive[msg.to as usize] {
            nodes[msg.to as usize].on_message(msg.payload, &mut outbox);
        }
    }

    let completed = (0..cfg.n).all(|i| !alive[i] || nodes[i].decision().is_some());
    MsgReport {
        decisions: nodes.iter().map(|n| n.decision()).collect(),
        rounds: nodes.iter().map(|n| n.round()).collect(),
        ops: nodes.iter().map(|n| n.ops_done).collect(),
        deliveries,
        sent,
        sim_time: clock,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_free_runs_agree_across_distributions() {
        for (name, delay) in Noise::figure1_suite() {
            for seed in 0..3 {
                let cfg = MsgConfig::new(5, delay);
                let report = run_message_passing(&cfg, seed);
                assert!(report.completed, "{name} seed {seed}");
                let decisions: Vec<Bit> = report.decisions.iter().map(|d| d.unwrap()).collect();
                assert!(
                    decisions.iter().all(|&d| d == decisions[0]),
                    "{name} seed {seed}: {decisions:?}"
                );
            }
        }
    }

    #[test]
    fn unanimous_inputs_decide_that_input() {
        for input in Bit::BOTH {
            let cfg =
                MsgConfig::new(4, Noise::Exponential { mean: 1.0 }).with_inputs(vec![input; 4]);
            let report = run_message_passing(&cfg, 9);
            assert!(report.completed);
            assert!(report.decisions.iter().all(|&d| d == Some(input)));
            // Validity still costs exactly 8 emulated operations each.
            assert!(report.ops.iter().all(|&o| o == 8), "{:?}", report.ops);
        }
    }

    #[test]
    fn minority_crashes_do_not_block_the_quorum() {
        for seed in 0..5 {
            let cfg = MsgConfig::new(5, Noise::Exponential { mean: 1.0 })
                .with_crashes(vec![(0, 50), (1, 120)]);
            let report = run_message_passing(&cfg, seed);
            assert!(report.completed, "seed {seed}");
            let live: Vec<Bit> = report.decisions[2..]
                .iter()
                .map(|d| d.expect("live node must decide"))
                .collect();
            assert!(live.iter().all(|&d| d == live[0]), "seed {seed}: {live:?}");
        }
    }

    #[test]
    #[should_panic(expected = "majority quorum")]
    fn majority_crash_plans_are_rejected() {
        let cfg =
            MsgConfig::new(4, Noise::Exponential { mean: 1.0 }).with_crashes(vec![(0, 1), (1, 2)]);
        run_message_passing(&cfg, 0);
    }

    #[test]
    fn determinism() {
        let cfg = MsgConfig::new(4, Noise::Uniform { lo: 0.0, hi: 2.0 });
        let a = run_message_passing(&cfg, 7);
        let b = run_message_passing(&cfg, 7);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.sent, b.sent);
    }

    #[test]
    fn message_cost_scales_with_quorum_size() {
        // Each emulated op costs two broadcast phases (2n messages) plus
        // replies; total traffic should be Θ(ops · n).
        let cfg = MsgConfig::new(5, Noise::Exponential { mean: 1.0 });
        let report = run_message_passing(&cfg, 3);
        let total_ops: u64 = report.ops.iter().sum();
        assert!(report.sent as f64 >= total_ops as f64 * 2.0 * 5.0 * 0.9);
        assert!(report.sent as f64 <= total_ops as f64 * 8.0 * 5.0);
    }

    #[test]
    fn rounds_are_bounded_but_larger_than_shared_memory() {
        // Quorum waits average ~2n message delays per emulated op, which
        // ATTENUATES the environment noise (order-statistic
        // concentration): the race stays tied longer than in raw shared
        // memory, so rounds are higher — but still bounded and
        // terminating. Documented in EXPERIMENTS.md (E13).
        let cfg = MsgConfig::new(9, Noise::Exponential { mean: 1.0 });
        for seed in 0..5 {
            let report = run_message_passing(&cfg, seed);
            assert!(report.completed, "seed {seed}");
            let max_round = report.rounds.iter().max().unwrap();
            assert!(*max_round < 500, "seed {seed}: round {max_round}");
        }
    }

    #[test]
    #[should_panic(expected = "inputs length")]
    fn mismatched_inputs_panic() {
        let _ = MsgConfig::new(3, Noise::Exponential { mean: 1.0 }).with_inputs(vec![Bit::Zero]);
    }
}
