//! Message-passing extension (§10: "It would be interesting to see
//! whether a noisy scheduling assumption can be used to solve consensus
//! quickly in an asynchronous message-passing model").
//!
//! The classic bridge between the two models is the **ABD emulation**
//! (Attiya, Bar-Noy, Dolev): a multi-writer multi-reader atomic register
//! built from point-to-point channels and majority quorums, tolerating a
//! minority of crashed processes. Because the emulated registers are
//! atomic (linearizable), every execution of lean-consensus over them is
//! equivalent to an execution in the paper's interleaving shared-memory
//! model — safety carries over verbatim, and the noisy-delay assumption
//! moves from operations to *messages*.
//!
//! This crate provides:
//!
//! * [`proto`] — the wire protocol: timestamped values, read/write
//!   query/reply/put/ack messages plus anti-entropy gossip
//!   ([`proto::Payload`]).
//! * [`node`] — one node = one replica (hosting a share of every
//!   register) + one ABD client + one unchanged
//!   [`nc_core::LeanConsensus`] step machine driving it. Quorums count
//!   **distinct** replicas, phases are resendable, and a subset of nodes
//!   can serve replica duties out of a shared [`node::SharedPlane`]
//!   (bridging `nc_memory` for mixed deployments).
//! * [`faults`] — the deterministic network-fault plane: seeded message
//!   loss, duplication, and timed partition schedules
//!   ([`faults::NetFaultSpec`]), with retry/timeout and gossip tuning
//!   ([`faults::RecoverySpec`]).
//! * [`sim`] — a discrete-event network simulator: every message suffers
//!   an i.i.d. noisy delay (any [`nc_sched::Noise`]); nodes may crash,
//!   messages may be lost/duplicated/cut by a partition; retry timers
//!   and gossip keep the run live through the faults; the run ends when
//!   all live nodes decide (see [`sim::Outcome`]).
//!
//! # Example
//!
//! ```
//! use nc_msg::sim::{run_message_passing, MsgConfig};
//! use nc_sched::Noise;
//!
//! let cfg = MsgConfig::new(5, Noise::Exponential { mean: 1.0 });
//! let report = run_message_passing(&cfg, 42);
//! let decisions: Vec<_> = report.decisions.iter().flatten().collect();
//! assert_eq!(decisions.len(), 5);
//! assert!(decisions.iter().all(|&&d| d == *decisions[0]), "agreement");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod faults;
pub mod node;
pub mod proto;
pub mod sim;

pub use faults::{NetFaultError, NetFaultSpec, Partition, RecoverySpec};
pub use proto::{Payload, Stamp};
pub use sim::{run_message_passing, Channel, MsgConfig, MsgConfigError, MsgReport, Outcome};
