//! One message-passing node: replica + ABD client + lean-consensus.
//!
//! The node hosts a replica of every register (a map from address to the
//! highest-stamped value it has seen), an ABD client executing one
//! emulated register operation at a time, and an unchanged
//! [`nc_core::LeanConsensus`] step machine. Whenever the lean machine
//! surfaces a pending [`nc_memory::Op`], the client turns it into the
//! two-phase ABD exchange; when the quorum answers, the machine is
//! advanced — the step-machine design means lean-consensus itself never
//! learns it left shared memory.

use std::collections::HashMap;

use nc_core::{LeanConsensus, ProtocolCore, Status};
use nc_memory::{Addr, Bit, Op, Word};

use crate::proto::{OpId, Payload, Stamp};

/// A message handed to the network for delivery.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Outgoing {
    /// Destination node.
    pub to: u32,
    /// The payload.
    pub payload: Payload,
}

/// What the ABD client is currently doing.
#[derive(Clone, Debug, PartialEq)]
enum ClientPhase {
    /// No operation in flight (lean machine decided, or about to start).
    Idle,
    /// Read phase 1: collecting `ReadR` replies.
    ReadQuery {
        addr: Addr,
        acks: u32,
        best: (Stamp, Word),
    },
    /// Read phase 2 (write-back): collecting `Ack`s; will return `value`.
    ReadBack { acks: u32, value: Word },
    /// Write phase 1: collecting `WriteR` stamps.
    WriteQuery {
        addr: Addr,
        value: Word,
        acks: u32,
        best: Stamp,
    },
    /// Write phase 2: collecting `Ack`s.
    WritePut { acks: u32 },
}

/// One simulated node.
#[derive(Debug)]
pub struct Node {
    id: u32,
    n: u32,
    machine: LeanConsensus,
    replica: HashMap<Addr, (Stamp, Word)>,
    phase: ClientPhase,
    op_seq: u64,
    /// Emulated register operations completed (= lean-consensus ops).
    pub ops_done: u64,
    /// Messages this node has sent.
    pub msgs_sent: u64,
}

impl Node {
    /// Creates node `id` of `n`, proposing `input`.
    ///
    /// The sentinels `a0[0] = a1[0] = 1` are pre-seeded into the local
    /// replica of every node (initial state, exactly like the
    /// shared-memory runs install them before the first step). They get
    /// a stamp above [`Stamp::ZERO`] so quorum replies carrying them
    /// outrank a reader's "never heard anything" initial best — with the
    /// zero stamp, the seeded 1 would tie with the default 0 and lose,
    /// and lean-consensus would (unsoundly) decide at round 1.
    pub fn new(id: u32, n: u32, input: Bit, sentinels: &[(Addr, Word)]) -> Self {
        let mut replica = HashMap::new();
        for &(addr, value) in sentinels {
            replica.insert(addr, (Stamp::ZERO.next_for(0), value));
        }
        Node {
            id,
            n,
            machine: LeanConsensus::new(nc_memory::RaceLayout::at_base(0), input),
            replica,
            phase: ClientPhase::Idle,
            op_seq: 0,
            ops_done: 0,
            msgs_sent: 0,
        }
    }

    /// This node's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The decision, if the lean machine has decided.
    pub fn decision(&self) -> Option<Bit> {
        self.machine.status().decision()
    }

    /// The lean machine's current round.
    pub fn round(&self) -> usize {
        self.machine.round()
    }

    fn quorum(&self) -> u32 {
        self.n / 2 + 1
    }

    fn broadcast(&mut self, payload: Payload, out: &mut Vec<Outgoing>) {
        for to in 0..self.n {
            out.push(Outgoing { to, payload });
        }
        self.msgs_sent += self.n as u64;
    }

    fn fresh_op(&mut self) -> OpId {
        self.op_seq += 1;
        OpId {
            node: self.id,
            seq: self.op_seq,
        }
    }

    /// Starts the next emulated operation if the machine is pending and
    /// the client idle. Returns `true` if messages were emitted.
    pub fn kick(&mut self, out: &mut Vec<Outgoing>) -> bool {
        if self.phase != ClientPhase::Idle {
            return false;
        }
        match self.machine.status() {
            Status::Decided(_) => false,
            Status::Pending(Op::Read(addr)) => {
                let op = self.fresh_op();
                self.phase = ClientPhase::ReadQuery {
                    addr,
                    acks: 0,
                    best: (Stamp::ZERO, 0),
                };
                self.broadcast(Payload::ReadQ { op, addr }, out);
                true
            }
            Status::Pending(Op::Write(addr, value)) => {
                let op = self.fresh_op();
                self.phase = ClientPhase::WriteQuery {
                    addr,
                    value,
                    acks: 0,
                    best: Stamp::ZERO,
                };
                self.broadcast(Payload::WriteQ { op, addr }, out);
                true
            }
        }
    }

    /// Handles one delivered message (replica duties + client progress),
    /// emitting any replies / next-phase broadcasts.
    pub fn on_message(&mut self, payload: Payload, out: &mut Vec<Outgoing>) {
        match payload {
            // ----- replica side -----
            Payload::ReadQ { op, addr } => {
                let (stamp, value) = self.replica.get(&addr).copied().unwrap_or((Stamp::ZERO, 0));
                out.push(Outgoing {
                    to: op.node,
                    payload: Payload::ReadR { op, stamp, value },
                });
                self.msgs_sent += 1;
            }
            Payload::WriteQ { op, addr } => {
                let (stamp, _) = self.replica.get(&addr).copied().unwrap_or((Stamp::ZERO, 0));
                out.push(Outgoing {
                    to: op.node,
                    payload: Payload::WriteR { op, stamp },
                });
                self.msgs_sent += 1;
            }
            Payload::Put {
                op,
                addr,
                stamp,
                value,
            } => {
                let entry = self.replica.entry(addr).or_insert((Stamp::ZERO, 0));
                if stamp > entry.0 {
                    *entry = (stamp, value);
                }
                out.push(Outgoing {
                    to: op.node,
                    payload: Payload::Ack { op },
                });
                self.msgs_sent += 1;
            }

            // ----- client side -----
            Payload::ReadR { op, stamp, value } => {
                if !self.current_op(op) {
                    return;
                }
                if let ClientPhase::ReadQuery { addr, acks, best } = &mut self.phase {
                    *acks += 1;
                    if stamp > best.0 {
                        *best = (stamp, value);
                    }
                    if *acks > self.n / 2 {
                        // Phase 2: write back the freshest (stamp, value).
                        let (stamp, value) = *best;
                        let addr = *addr;
                        let op = self.fresh_op();
                        self.phase = ClientPhase::ReadBack { acks: 0, value };
                        self.broadcast(
                            Payload::Put {
                                op,
                                addr,
                                stamp,
                                value,
                            },
                            out,
                        );
                    }
                }
            }
            Payload::WriteR { op, stamp } => {
                if !self.current_op(op) {
                    return;
                }
                if let ClientPhase::WriteQuery {
                    addr,
                    value,
                    acks,
                    best,
                } = &mut self.phase
                {
                    *acks += 1;
                    if stamp > *best {
                        *best = stamp;
                    }
                    if *acks > self.n / 2 {
                        let addr = *addr;
                        let value = *value;
                        let stamp = best.next_for(self.id);
                        let op = self.fresh_op();
                        self.phase = ClientPhase::WritePut { acks: 0 };
                        self.broadcast(
                            Payload::Put {
                                op,
                                addr,
                                stamp,
                                value,
                            },
                            out,
                        );
                    }
                }
            }
            Payload::Ack { op } => {
                if !self.current_op(op) {
                    return;
                }
                let quorum = self.quorum();
                match &mut self.phase {
                    ClientPhase::ReadBack { acks, value } => {
                        *acks += 1;
                        if *acks >= quorum {
                            let v = *value;
                            self.finish_op(Some(v), out);
                        }
                    }
                    ClientPhase::WritePut { acks } => {
                        *acks += 1;
                        if *acks >= quorum {
                            self.finish_op(None, out);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Whether `op` belongs to the in-flight client phase (the client
    /// bumps `op_seq` per phase, so the current id is always `op_seq`).
    fn current_op(&self, op: OpId) -> bool {
        op.node == self.id && op.seq == self.op_seq
    }

    fn finish_op(&mut self, read_value: Option<Word>, out: &mut Vec<Outgoing>) {
        self.phase = ClientPhase::Idle;
        self.ops_done += 1;
        self.machine.advance(read_value);
        // Immediately start the next operation (the network delay model
        // lives on messages; per-op think time is optional and handled by
        // the simulator's kick scheduling).
        self.kick(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_memory::RaceLayout;

    fn sentinels() -> Vec<(Addr, Word)> {
        let layout = RaceLayout::at_base(0);
        vec![
            (layout.slot(Bit::Zero, 0), 1),
            (layout.slot(Bit::One, 0), 1),
        ]
    }

    /// Delivery loop with a seeded pseudo-random delivery order
    /// (`scramble = 0` gives strict FIFO). Strict FIFO is a symmetric,
    /// deterministic schedule that can tie split-input races forever —
    /// the message-passing incarnation of the paper's lockstep — so
    /// termination tests scramble the order.
    fn run_sync(nodes: &mut [Node], max_msgs: u64, scramble: u64) -> u64 {
        let mut queue: Vec<(u32, Payload)> = Vec::new();
        let mut out = Vec::new();
        let mut lcg = scramble.wrapping_mul(2).wrapping_add(1);
        for node in nodes.iter_mut() {
            node.kick(&mut out);
        }
        let mut delivered = 0;
        loop {
            queue.extend(out.drain(..).map(|o| (o.to, o.payload)));
            if queue.is_empty() || delivered >= max_msgs {
                return delivered;
            }
            let k = if scramble == 0 {
                0
            } else {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (lcg >> 33) as usize % queue.len()
            };
            let (to, payload) = queue.remove(k);
            delivered += 1;
            nodes[to as usize].on_message(payload, &mut out);
        }
    }

    #[test]
    fn solo_node_decides_its_input_via_quorum_of_one() {
        for input in Bit::BOTH {
            let mut nodes = vec![Node::new(0, 1, input, &sentinels())];
            run_sync(&mut nodes, 10_000, 0);
            assert_eq!(nodes[0].decision(), Some(input));
            assert_eq!(nodes[0].ops_done, 8, "lean still costs 8 emulated ops");
        }
    }

    #[test]
    fn three_nodes_unanimous_all_decide_input() {
        for input in Bit::BOTH {
            let mut nodes: Vec<Node> = (0..3)
                .map(|i| Node::new(i, 3, input, &sentinels()))
                .collect();
            run_sync(&mut nodes, 1_000_000, 0);
            for node in &nodes {
                assert_eq!(node.decision(), Some(input));
                assert_eq!(node.ops_done, 8);
            }
        }
    }

    #[test]
    fn mixed_inputs_agree_under_scrambled_delivery() {
        // (Strict FIFO can tie the race forever, like lockstep in shared
        // memory; a scrambled delivery order terminates.)
        for scramble in 1..=10u64 {
            let inputs = [Bit::Zero, Bit::One, Bit::One];
            let mut nodes: Vec<Node> = inputs
                .iter()
                .enumerate()
                .map(|(i, &b)| Node::new(i as u32, 3, b, &sentinels()))
                .collect();
            run_sync(&mut nodes, 5_000_000, scramble);
            let decisions: Vec<Bit> = nodes
                .iter()
                .map(|n| n.decision().expect("decided"))
                .collect();
            assert!(
                decisions.iter().all(|&d| d == decisions[0]),
                "{decisions:?}"
            );
        }
    }

    #[test]
    fn replica_adopts_only_newer_stamps() {
        let mut node = Node::new(0, 2, Bit::Zero, &[]);
        let mut out = Vec::new();
        let addr = Addr::new(5);
        let op = OpId { node: 1, seq: 1 };
        let newer = Stamp {
            counter: 2,
            writer: 1,
        };
        let older = Stamp {
            counter: 1,
            writer: 1,
        };
        node.on_message(
            Payload::Put {
                op,
                addr,
                stamp: newer,
                value: 7,
            },
            &mut out,
        );
        node.on_message(
            Payload::Put {
                op,
                addr,
                stamp: older,
                value: 9,
            },
            &mut out,
        );
        assert_eq!(node.replica.get(&addr), Some(&(newer, 7)));
        // Both puts were acked regardless.
        let acks = out
            .iter()
            .filter(|o| matches!(o.payload, Payload::Ack { .. }))
            .count();
        assert_eq!(acks, 2);
    }

    #[test]
    fn stale_replies_are_ignored() {
        let mut node = Node::new(0, 3, Bit::One, &sentinels());
        let mut out = Vec::new();
        node.kick(&mut out); // starts read of a0[1], op_seq = 1
        let stale = OpId { node: 0, seq: 99 };
        node.on_message(
            Payload::ReadR {
                op: stale,
                stamp: Stamp {
                    counter: 9,
                    writer: 9,
                },
                value: 1,
            },
            &mut out,
        );
        // Phase must still be the original query with zero acks.
        assert!(matches!(node.phase, ClientPhase::ReadQuery { acks: 0, .. }));
    }

    #[test]
    fn sentinel_reads_come_back_as_one() {
        // One node, quorum 1: the first lean op is a read of a0[1] = 0;
        // step through manually until the round-1 final read of the
        // sentinel a1[0], which must return 1 (pre-seeded replica).
        let mut nodes = vec![Node::new(0, 1, Bit::Zero, &sentinels())];
        run_sync(&mut nodes, 10_000, 0);
        // Decision at round 2 proves the sentinel read returned 1 at
        // round 1 (otherwise lean would have decided at round 1, which
        // is impossible by construction).
        assert_eq!(nodes[0].machine.decision_round(), Some(2));
    }
}
