//! One message-passing node: replica + ABD client + lean-consensus.
//!
//! The node hosts a replica of every register (a map from address to the
//! highest-stamped value it has seen), an ABD client executing one
//! emulated register operation at a time, and an unchanged
//! [`nc_core::LeanConsensus`] step machine. Whenever the lean machine
//! surfaces a pending [`nc_memory::Op`], the client turns it into the
//! two-phase ABD exchange; when the quorum answers, the machine is
//! advanced — the step-machine design means lean-consensus itself never
//! learns it left shared memory.
//!
//! Three robustness mechanisms ride on top of the classic emulation:
//!
//! * **Distinct-quorum counting.** Replies carry the replica id and each
//!   phase tracks responders in a bitmask, so retransmitted or
//!   network-duplicated replies can never fake a majority.
//! * **Resendable phases.** Every phase keeps enough state to rebroadcast
//!   its request verbatim ([`Node::resend`], same operation id); replicas
//!   are idempotent (highest-stamp-wins puts, re-replies deduplicated by
//!   the mask), so the simulator's retry timers make the client survive
//!   message loss and partitions.
//! * **Gossip / anti-entropy.** [`Node::gossip`] pushes the node's
//!   decision plus one drip-fed replica entry to a round-robin peer; an
//!   undecided receiver adopts an incoming decision outright (safe by
//!   agreement of the underlying protocol) and merges entries under the
//!   highest-stamp rule — after a partition heals, the minority side
//!   catches up instead of stalling.
//!
//! Nodes may also share a memory plane ([`SharedPlane`], a bridge to
//! [`nc_memory::SimMemory`]): plane members serve replica duties out of
//! one common store, modelling mixed shared-memory/message deployments.
//! Merging replicas is safe — replica state is a join-semilattice under
//! highest-stamp-wins, and a shared replica is simply the join of its
//! members' private states.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use nc_core::{LeanConsensus, ProtocolCore, Status};
use nc_memory::{Addr, Bit, Op, SimMemory, Word};

use crate::proto::{OpId, Payload, Stamp};

/// Destination of an outgoing message: one peer, or every node (the
/// simulator expands `All` according to the configured channel model —
/// independent unicast delays, or a single broadcast delay).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Dest {
    /// A single destination node.
    One(u32),
    /// Every node, including the sender.
    All,
}

/// A message handed to the network for delivery.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Outgoing {
    /// The sending node (the fault plane cuts links by endpoint pair).
    pub from: u32,
    /// Destination.
    pub to: Dest,
    /// The payload.
    pub payload: Payload,
}

/// A word store shared by a subset of nodes: the bridge between the
/// message-passing world and the engine's `nc_memory` planes.
///
/// Values live in a [`SimMemory`] (reads of never-written addresses
/// return 0, exactly like a private replica's default entry); stamps
/// live alongside in an ordered map. Plane members hand out and absorb
/// `(stamp, value)` pairs through the same highest-stamp-wins rule as
/// private replicas, so a `Put` applied by one member is instantly
/// visible to every member — the plane is the join of its members'
/// replicas, which the ABD emulation tolerates by construction.
#[derive(Debug)]
pub struct SharedPlane {
    mem: SimMemory,
    stamps: BTreeMap<Addr, Stamp>,
}

impl SharedPlane {
    /// Creates a plane pre-seeded with `sentinels` (same stamping rule
    /// as [`Node::new`]).
    pub fn new(sentinels: &[(Addr, Word)]) -> Rc<RefCell<Self>> {
        let mut plane = SharedPlane {
            mem: SimMemory::new(),
            stamps: BTreeMap::new(),
        };
        for &(addr, value) in sentinels {
            plane.put(addr, Stamp::ZERO.next_for(0), value);
        }
        Rc::new(RefCell::new(plane))
    }

    fn get(&mut self, addr: Addr) -> (Stamp, Word) {
        let stamp = self.stamps.get(&addr).copied().unwrap_or(Stamp::ZERO);
        (stamp, self.mem.read(addr))
    }

    fn put(&mut self, addr: Addr, stamp: Stamp, value: Word) {
        let current = self.stamps.get(&addr).copied().unwrap_or(Stamp::ZERO);
        if stamp > current {
            self.stamps.insert(addr, stamp);
            self.mem.write(addr, value);
        }
    }

    fn nth_entry(&mut self, k: usize) -> Option<(Addr, Stamp, Word)> {
        if self.stamps.is_empty() {
            return None;
        }
        let idx = k % self.stamps.len();
        let (&addr, &stamp) = self.stamps.iter().nth(idx)?;
        Some((addr, stamp, self.mem.read(addr)))
    }

    /// Words touched in the backing [`SimMemory`] (bridge introspection).
    pub fn footprint_words(&self) -> usize {
        self.mem.footprint_words()
    }
}

/// The node's replica state: private, or a shared plane.
#[derive(Debug)]
enum ReplicaStore {
    /// A private ordered map (ordered so gossip's entry drip is
    /// deterministic — `HashMap` iteration order is randomized per
    /// process and would break run reproducibility).
    Private(BTreeMap<Addr, (Stamp, Word)>),
    /// A plane shared with other nodes.
    Shared(Rc<RefCell<SharedPlane>>),
}

impl ReplicaStore {
    fn get(&mut self, addr: Addr) -> (Stamp, Word) {
        match self {
            ReplicaStore::Private(map) => map.get(&addr).copied().unwrap_or((Stamp::ZERO, 0)),
            ReplicaStore::Shared(plane) => plane.borrow_mut().get(addr),
        }
    }

    fn put(&mut self, addr: Addr, stamp: Stamp, value: Word) {
        match self {
            ReplicaStore::Private(map) => {
                let entry = map.entry(addr).or_insert((Stamp::ZERO, 0));
                if stamp > entry.0 {
                    *entry = (stamp, value);
                }
            }
            ReplicaStore::Shared(plane) => plane.borrow_mut().put(addr, stamp, value),
        }
    }

    fn nth_entry(&mut self, k: usize) -> Option<(Addr, Stamp, Word)> {
        match self {
            ReplicaStore::Private(map) => {
                if map.is_empty() {
                    return None;
                }
                let idx = k % map.len();
                map.iter()
                    .nth(idx)
                    .map(|(&addr, &(stamp, value))| (addr, stamp, value))
            }
            ReplicaStore::Shared(plane) => plane.borrow_mut().nth_entry(k),
        }
    }
}

/// Distinct-replica reply mask: which replicas the in-flight phase has
/// heard from. The inline `u128` covers n ≤ 128 with zero allocation
/// (the overwhelmingly common case); larger configurations spill to a
/// boxed word vector sized once per phase, so oversize deployments work
/// instead of panicking a worker thread.
#[derive(Clone, Debug, PartialEq)]
enum Heard {
    /// n ≤ 128: one inline mask word.
    Inline(u128),
    /// n > 128: `⌈n / 64⌉` mask words.
    Spilled(Box<[u64]>),
}

impl Heard {
    /// An empty mask sized for an `n`-node deployment.
    fn for_n(n: u32) -> Self {
        if n <= 128 {
            Heard::Inline(0)
        } else {
            Heard::Spilled(vec![0u64; n.div_ceil(64) as usize].into_boxed_slice())
        }
    }

    /// Records a reply from replica `from`; returns `false` when that
    /// replica was already counted (duplicate / retransmitted reply).
    fn insert(&mut self, from: u32) -> bool {
        match self {
            Heard::Inline(mask) => {
                let bit = 1u128 << from;
                if *mask & bit != 0 {
                    return false;
                }
                *mask |= bit;
                true
            }
            Heard::Spilled(words) => {
                let (word, bit) = ((from / 64) as usize, 1u64 << (from % 64));
                if words[word] & bit != 0 {
                    return false;
                }
                words[word] |= bit;
                true
            }
        }
    }

    /// Number of distinct replicas heard from.
    fn count(&self) -> u32 {
        match self {
            Heard::Inline(mask) => mask.count_ones(),
            Heard::Spilled(words) => words.iter().map(|w| w.count_ones()).sum(),
        }
    }
}

/// What the ABD client is currently doing. Every waiting phase tracks
/// the distinct replicas heard from (`heard`, a bitmask) and carries
/// enough state to rebroadcast its request verbatim on a retry timeout.
#[derive(Clone, Debug, PartialEq)]
enum ClientPhase {
    /// No operation in flight (lean machine decided, or about to start).
    Idle,
    /// Read phase 1: collecting `ReadR` replies.
    ReadQuery {
        addr: Addr,
        heard: Heard,
        best: (Stamp, Word),
    },
    /// Read phase 2 (write-back): collecting `Ack`s; will return `value`.
    ReadBack {
        addr: Addr,
        stamp: Stamp,
        value: Word,
        heard: Heard,
    },
    /// Write phase 1: collecting `WriteR` stamps.
    WriteQuery {
        addr: Addr,
        value: Word,
        heard: Heard,
        best: Stamp,
    },
    /// Write phase 2: collecting `Ack`s.
    WritePut {
        addr: Addr,
        stamp: Stamp,
        value: Word,
        heard: Heard,
    },
}

/// One simulated node.
#[derive(Debug)]
pub struct Node {
    id: u32,
    n: u32,
    machine: LeanConsensus,
    replica: ReplicaStore,
    phase: ClientPhase,
    /// Bumped on every phase transition; the simulator's retry timers
    /// carry the epoch they were armed for, so a stale timer (the phase
    /// it guarded already completed) dies silently.
    epoch: u64,
    op_seq: u64,
    /// Decision adopted from gossip (the local machine may still be
    /// mid-run; [`Node::decision`] prefers whichever exists).
    adopted: Option<Bit>,
    gossip_peer: u32,
    gossip_entry: usize,
    /// Emulated register operations completed (= lean-consensus ops).
    pub ops_done: u64,
    /// Messages this node has sent.
    pub msgs_sent: u64,
}

impl Node {
    /// Creates node `id` of `n`, proposing `input`, with a private
    /// replica.
    ///
    /// The sentinels `a0[0] = a1[0] = 1` are pre-seeded into the local
    /// replica of every node (initial state, exactly like the
    /// shared-memory runs install them before the first step). They get
    /// a stamp above [`Stamp::ZERO`] so quorum replies carrying them
    /// outrank a reader's "never heard anything" initial best — with the
    /// zero stamp, the seeded 1 would tie with the default 0 and lose,
    /// and lean-consensus would (unsoundly) decide at round 1.
    ///
    /// Any `n ≥ 1` is supported: the quorum mask keeps an inline `u128`
    /// fast path for n ≤ 128 and spills to a heap-backed bitset above.
    pub fn new(id: u32, n: u32, input: Bit, sentinels: &[(Addr, Word)]) -> Self {
        let mut replica = BTreeMap::new();
        for &(addr, value) in sentinels {
            replica.insert(addr, (Stamp::ZERO.next_for(0), value));
        }
        Self::with_store(id, n, input, ReplicaStore::Private(replica))
    }

    /// Creates node `id` of `n` whose replica duties are served out of
    /// `plane` (a shared word store; the plane carries the sentinels).
    pub fn new_shared(id: u32, n: u32, input: Bit, plane: Rc<RefCell<SharedPlane>>) -> Self {
        Self::with_store(id, n, input, ReplicaStore::Shared(plane))
    }

    fn with_store(id: u32, n: u32, input: Bit, replica: ReplicaStore) -> Self {
        Node {
            id,
            n,
            machine: LeanConsensus::new(nc_memory::RaceLayout::at_base(0), input),
            replica,
            phase: ClientPhase::Idle,
            epoch: 0,
            op_seq: 0,
            adopted: None,
            gossip_peer: id,
            gossip_entry: 0,
            ops_done: 0,
            msgs_sent: 0,
        }
    }

    /// This node's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The decision: the lean machine's, or one adopted from gossip.
    pub fn decision(&self) -> Option<Bit> {
        self.machine.status().decision().or(self.adopted)
    }

    /// The lean machine's current round.
    pub fn round(&self) -> usize {
        self.machine.round()
    }

    /// Whether an ABD phase is in flight (waiting on quorum replies).
    pub fn awaiting(&self) -> bool {
        self.phase != ClientPhase::Idle
    }

    /// The phase epoch (see the field doc; used by retry timers).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn set_phase(&mut self, phase: ClientPhase) {
        self.phase = phase;
        self.epoch += 1;
    }

    fn quorum(&self) -> u32 {
        self.n / 2 + 1
    }

    fn broadcast(&mut self, payload: Payload, out: &mut Vec<Outgoing>) {
        out.push(Outgoing {
            from: self.id,
            to: Dest::All,
            payload,
        });
        self.msgs_sent += self.n as u64;
    }

    fn reply(&mut self, to: u32, payload: Payload, out: &mut Vec<Outgoing>) {
        out.push(Outgoing {
            from: self.id,
            to: Dest::One(to),
            payload,
        });
        self.msgs_sent += 1;
    }

    fn fresh_op(&mut self) -> OpId {
        self.op_seq += 1;
        OpId {
            node: self.id,
            seq: self.op_seq,
        }
    }

    fn current_op_id(&self) -> OpId {
        OpId {
            node: self.id,
            seq: self.op_seq,
        }
    }

    /// Starts the next emulated operation if the machine is pending and
    /// the client idle. Returns `true` if messages were emitted.
    pub fn kick(&mut self, out: &mut Vec<Outgoing>) -> bool {
        if self.phase != ClientPhase::Idle || self.adopted.is_some() {
            return false;
        }
        match self.machine.status() {
            Status::Decided(_) => false,
            Status::Pending(Op::Read(addr)) => {
                let op = self.fresh_op();
                self.set_phase(ClientPhase::ReadQuery {
                    addr,
                    heard: Heard::for_n(self.n),
                    best: (Stamp::ZERO, 0),
                });
                self.broadcast(Payload::ReadQ { op, addr }, out);
                true
            }
            Status::Pending(Op::Write(addr, value)) => {
                let op = self.fresh_op();
                self.set_phase(ClientPhase::WriteQuery {
                    addr,
                    value,
                    heard: Heard::for_n(self.n),
                    best: Stamp::ZERO,
                });
                self.broadcast(Payload::WriteQ { op, addr }, out);
                true
            }
        }
    }

    /// Rebroadcasts the in-flight phase's request (same operation id —
    /// replies already collected keep counting; replicas re-reply
    /// idempotently and the `heard` mask deduplicates). Returns `false`
    /// when idle.
    pub fn resend(&mut self, out: &mut Vec<Outgoing>) -> bool {
        let op = self.current_op_id();
        let payload = match self.phase {
            ClientPhase::Idle => return false,
            ClientPhase::ReadQuery { addr, .. } => Payload::ReadQ { op, addr },
            ClientPhase::WriteQuery { addr, .. } => Payload::WriteQ { op, addr },
            ClientPhase::ReadBack {
                addr, stamp, value, ..
            }
            | ClientPhase::WritePut {
                addr, stamp, value, ..
            } => Payload::Put {
                op,
                addr,
                stamp,
                value,
            },
        };
        self.broadcast(payload, out);
        true
    }

    /// Emits one anti-entropy push to the next round-robin peer: the
    /// node's decision (if any) plus one replica entry, cycling through
    /// the replica so repeated rounds converge state. Returns the chosen
    /// peer.
    pub fn gossip(&mut self, out: &mut Vec<Outgoing>) -> u32 {
        // Round-robin peer selection, skipping self (n = 1 degenerates
        // to self-gossip, which is harmless).
        self.gossip_peer = (self.gossip_peer + 1) % self.n;
        if self.gossip_peer == self.id && self.n > 1 {
            self.gossip_peer = (self.gossip_peer + 1) % self.n;
        }
        let entry = self.replica.nth_entry(self.gossip_entry);
        self.gossip_entry = self.gossip_entry.wrapping_add(1);
        let payload = Payload::Gossip {
            from: self.id,
            decision: self.decision(),
            entry,
        };
        self.reply(self.gossip_peer, payload, out);
        self.gossip_peer
    }

    /// Handles one delivered message (replica duties + client progress),
    /// emitting any replies / next-phase broadcasts.
    pub fn on_message(&mut self, payload: Payload, out: &mut Vec<Outgoing>) {
        match payload {
            // ----- replica side -----
            Payload::ReadQ { op, addr } => {
                let (stamp, value) = self.replica.get(addr);
                let from = self.id;
                self.reply(
                    op.node,
                    Payload::ReadR {
                        op,
                        from,
                        stamp,
                        value,
                    },
                    out,
                );
            }
            Payload::WriteQ { op, addr } => {
                let (stamp, _) = self.replica.get(addr);
                let from = self.id;
                self.reply(op.node, Payload::WriteR { op, from, stamp }, out);
            }
            Payload::Put {
                op,
                addr,
                stamp,
                value,
            } => {
                self.replica.put(addr, stamp, value);
                let from = self.id;
                self.reply(op.node, Payload::Ack { op, from }, out);
            }

            // ----- client side -----
            Payload::ReadR {
                op,
                from,
                stamp,
                value,
            } => {
                if !self.current_op(op) {
                    return;
                }
                if let ClientPhase::ReadQuery { addr, heard, best } = &mut self.phase {
                    if !heard.insert(from) {
                        return; // duplicate / retransmitted reply
                    }
                    if stamp > best.0 {
                        *best = (stamp, value);
                    }
                    if heard.count() > self.n / 2 {
                        // Phase 2: write back the freshest (stamp, value).
                        let (stamp, value) = *best;
                        let addr = *addr;
                        let op = self.fresh_op();
                        self.set_phase(ClientPhase::ReadBack {
                            addr,
                            stamp,
                            value,
                            heard: Heard::for_n(self.n),
                        });
                        self.broadcast(
                            Payload::Put {
                                op,
                                addr,
                                stamp,
                                value,
                            },
                            out,
                        );
                    }
                }
            }
            Payload::WriteR { op, from, stamp } => {
                if !self.current_op(op) {
                    return;
                }
                if let ClientPhase::WriteQuery {
                    addr,
                    value,
                    heard,
                    best,
                } = &mut self.phase
                {
                    if !heard.insert(from) {
                        return;
                    }
                    if stamp > *best {
                        *best = stamp;
                    }
                    if heard.count() > self.n / 2 {
                        let addr = *addr;
                        let value = *value;
                        let stamp = best.next_for(self.id);
                        let op = self.fresh_op();
                        self.set_phase(ClientPhase::WritePut {
                            addr,
                            stamp,
                            value,
                            heard: Heard::for_n(self.n),
                        });
                        self.broadcast(
                            Payload::Put {
                                op,
                                addr,
                                stamp,
                                value,
                            },
                            out,
                        );
                    }
                }
            }
            Payload::Ack { op, from } => {
                if !self.current_op(op) {
                    return;
                }
                let quorum = self.quorum();
                match &mut self.phase {
                    ClientPhase::ReadBack { heard, value, .. } => {
                        if !heard.insert(from) {
                            return;
                        }
                        if heard.count() >= quorum {
                            let v = *value;
                            self.finish_op(Some(v), out);
                        }
                    }
                    ClientPhase::WritePut { heard, .. } => {
                        if !heard.insert(from) {
                            return;
                        }
                        if heard.count() >= quorum {
                            self.finish_op(None, out);
                        }
                    }
                    _ => {}
                }
            }

            // ----- gossip / anti-entropy -----
            Payload::Gossip {
                from,
                decision,
                entry,
            } => {
                if let Some((addr, stamp, value)) = entry {
                    self.replica.put(addr, stamp, value);
                }
                match (decision, self.decision()) {
                    (Some(d), None) => {
                        // Adopt: abandon the in-flight phase (its timer
                        // dies with the epoch bump) and decide.
                        self.adopted = Some(d);
                        self.set_phase(ClientPhase::Idle);
                    }
                    (None, Some(_)) => {
                        // Push-pull: an undecided peer asked — answer
                        // with our decision (and an entry of our own).
                        let entry = self.replica.nth_entry(self.gossip_entry);
                        self.gossip_entry = self.gossip_entry.wrapping_add(1);
                        let payload = Payload::Gossip {
                            from: self.id,
                            decision: self.decision(),
                            entry,
                        };
                        self.reply(from, payload, out);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Whether `op` belongs to the in-flight client phase (the client
    /// bumps `op_seq` per phase, so the current id is always `op_seq`).
    fn current_op(&self, op: OpId) -> bool {
        op.node == self.id && op.seq == self.op_seq
    }

    fn finish_op(&mut self, read_value: Option<Word>, out: &mut Vec<Outgoing>) {
        self.set_phase(ClientPhase::Idle);
        self.ops_done += 1;
        self.machine.advance(read_value);
        // Immediately start the next operation (the network delay model
        // lives on messages; per-op think time is optional and handled by
        // the simulator's kick scheduling).
        self.kick(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_memory::RaceLayout;

    fn sentinels() -> Vec<(Addr, Word)> {
        let layout = RaceLayout::at_base(0);
        vec![
            (layout.slot(Bit::Zero, 0), 1),
            (layout.slot(Bit::One, 0), 1),
        ]
    }

    fn expand(out: &mut Vec<Outgoing>, n: u32, queue: &mut Vec<(u32, Payload)>) {
        for o in out.drain(..) {
            match o.to {
                Dest::One(to) => queue.push((to, o.payload)),
                Dest::All => queue.extend((0..n).map(|to| (to, o.payload))),
            }
        }
    }

    /// Delivery loop with a seeded pseudo-random delivery order
    /// (`scramble = 0` gives strict FIFO). Strict FIFO is a symmetric,
    /// deterministic schedule that can tie split-input races forever —
    /// the message-passing incarnation of the paper's lockstep — so
    /// termination tests scramble the order.
    fn run_sync(nodes: &mut [Node], max_msgs: u64, scramble: u64) -> u64 {
        let n = nodes.len() as u32;
        let mut queue: Vec<(u32, Payload)> = Vec::new();
        let mut out = Vec::new();
        let mut lcg = scramble.wrapping_mul(2).wrapping_add(1);
        for node in nodes.iter_mut() {
            node.kick(&mut out);
        }
        let mut delivered = 0;
        loop {
            expand(&mut out, n, &mut queue);
            if queue.is_empty() || delivered >= max_msgs {
                return delivered;
            }
            let k = if scramble == 0 {
                0
            } else {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (lcg >> 33) as usize % queue.len()
            };
            let (to, payload) = queue.remove(k);
            delivered += 1;
            nodes[to as usize].on_message(payload, &mut out);
        }
    }

    #[test]
    fn solo_node_decides_its_input_via_quorum_of_one() {
        for input in Bit::BOTH {
            let mut nodes = vec![Node::new(0, 1, input, &sentinels())];
            run_sync(&mut nodes, 10_000, 0);
            assert_eq!(nodes[0].decision(), Some(input));
            assert_eq!(nodes[0].ops_done, 8, "lean still costs 8 emulated ops");
        }
    }

    #[test]
    fn three_nodes_unanimous_all_decide_input() {
        for input in Bit::BOTH {
            let mut nodes: Vec<Node> = (0..3)
                .map(|i| Node::new(i, 3, input, &sentinels()))
                .collect();
            run_sync(&mut nodes, 1_000_000, 0);
            for node in &nodes {
                assert_eq!(node.decision(), Some(input));
                assert_eq!(node.ops_done, 8);
            }
        }
    }

    #[test]
    fn mixed_inputs_agree_under_scrambled_delivery() {
        // (Strict FIFO can tie the race forever, like lockstep in shared
        // memory; a scrambled delivery order terminates.)
        for scramble in 1..=10u64 {
            let inputs = [Bit::Zero, Bit::One, Bit::One];
            let mut nodes: Vec<Node> = inputs
                .iter()
                .enumerate()
                .map(|(i, &b)| Node::new(i as u32, 3, b, &sentinels()))
                .collect();
            run_sync(&mut nodes, 5_000_000, scramble);
            let decisions: Vec<Bit> = nodes
                .iter()
                .map(|n| n.decision().expect("decided"))
                .collect();
            assert!(
                decisions.iter().all(|&d| d == decisions[0]),
                "{decisions:?}"
            );
        }
    }

    #[test]
    fn shared_plane_nodes_agree_with_private_nodes() {
        // Nodes 0 and 1 share a plane; node 2 is message-only. The mixed
        // deployment must still reach agreement under scrambled delivery.
        for scramble in 1..=5u64 {
            let plane = SharedPlane::new(&sentinels());
            let inputs = [Bit::Zero, Bit::One, Bit::One];
            let mut nodes = vec![
                Node::new_shared(0, 3, inputs[0], Rc::clone(&plane)),
                Node::new_shared(1, 3, inputs[1], Rc::clone(&plane)),
                Node::new(2, 3, inputs[2], &sentinels()),
            ];
            run_sync(&mut nodes, 5_000_000, scramble);
            let decisions: Vec<Bit> = nodes
                .iter()
                .map(|n| n.decision().expect("decided"))
                .collect();
            assert!(
                decisions.iter().all(|&d| d == decisions[0]),
                "scramble {scramble}: {decisions:?}"
            );
            assert!(plane.borrow().footprint_words() > 0, "plane was exercised");
        }
    }

    #[test]
    fn replica_adopts_only_newer_stamps() {
        let mut node = Node::new(0, 2, Bit::Zero, &[]);
        let mut out = Vec::new();
        let addr = Addr::new(5);
        let op = OpId { node: 1, seq: 1 };
        let newer = Stamp {
            counter: 2,
            writer: 1,
        };
        let older = Stamp {
            counter: 1,
            writer: 1,
        };
        node.on_message(
            Payload::Put {
                op,
                addr,
                stamp: newer,
                value: 7,
            },
            &mut out,
        );
        node.on_message(
            Payload::Put {
                op,
                addr,
                stamp: older,
                value: 9,
            },
            &mut out,
        );
        assert_eq!(node.replica.get(addr), (newer, 7));
        // Both puts were acked regardless.
        let acks = out
            .iter()
            .filter(|o| matches!(o.payload, Payload::Ack { .. }))
            .count();
        assert_eq!(acks, 2);
    }

    #[test]
    fn stale_replies_are_ignored() {
        let mut node = Node::new(0, 3, Bit::One, &sentinels());
        let mut out = Vec::new();
        node.kick(&mut out); // starts read of a0[1], op_seq = 1
        let stale = OpId { node: 0, seq: 99 };
        node.on_message(
            Payload::ReadR {
                op: stale,
                from: 1,
                stamp: Stamp {
                    counter: 9,
                    writer: 9,
                },
                value: 1,
            },
            &mut out,
        );
        // Phase must still be the original query with no replicas heard.
        assert!(matches!(&node.phase, ClientPhase::ReadQuery { heard, .. } if heard.count() == 0));
    }

    #[test]
    fn duplicated_replies_do_not_fake_a_quorum() {
        // n = 3 needs 2 distinct replicas; two copies of the same reply
        // must not advance the phase.
        let mut node = Node::new(0, 3, Bit::One, &sentinels());
        let mut out = Vec::new();
        node.kick(&mut out);
        let op = node.current_op_id();
        let reply = Payload::ReadR {
            op,
            from: 1,
            stamp: Stamp::ZERO,
            value: 0,
        };
        node.on_message(reply, &mut out);
        node.on_message(reply, &mut out);
        assert!(
            matches!(node.phase, ClientPhase::ReadQuery { .. }),
            "duplicate reply advanced the phase"
        );
        // A reply from a second replica completes the majority.
        node.on_message(
            Payload::ReadR {
                op,
                from: 2,
                stamp: Stamp::ZERO,
                value: 0,
            },
            &mut out,
        );
        assert!(matches!(node.phase, ClientPhase::ReadBack { .. }));
    }

    #[test]
    fn resend_rebroadcasts_the_current_phase_verbatim() {
        let mut node = Node::new(0, 3, Bit::One, &sentinels());
        let mut out = Vec::new();
        node.kick(&mut out);
        let original = out[0];
        out.clear();
        let epoch = node.epoch();
        assert!(node.resend(&mut out));
        assert_eq!(out[0], original, "resend must repeat the same request");
        assert_eq!(node.epoch(), epoch, "resend must not bump the epoch");
        // Idle nodes have nothing to resend.
        let mut idle = Node::new(1, 3, Bit::One, &sentinels());
        idle.adopted = Some(Bit::One);
        assert!(!idle.resend(&mut Vec::new()));
    }

    #[test]
    fn gossip_decision_is_adopted_by_undecided_peers() {
        let mut node = Node::new(0, 3, Bit::One, &sentinels());
        let mut out = Vec::new();
        node.kick(&mut out);
        assert!(node.awaiting());
        out.clear();
        node.on_message(
            Payload::Gossip {
                from: 2,
                decision: Some(Bit::Zero),
                entry: Some((Addr::new(9), Stamp::ZERO.next_for(2), 1)),
            },
            &mut out,
        );
        assert_eq!(node.decision(), Some(Bit::Zero), "adopted the decision");
        assert!(!node.awaiting(), "in-flight phase abandoned");
        assert_eq!(node.replica.get(Addr::new(9)), (Stamp::ZERO.next_for(2), 1));
        // A decided node answers an undecided gossiper (push-pull).
        out.clear();
        node.on_message(
            Payload::Gossip {
                from: 1,
                decision: None,
                entry: None,
            },
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0].payload,
            Payload::Gossip {
                decision: Some(Bit::Zero),
                ..
            }
        ));
        assert_eq!(out[0].to, Dest::One(1));
    }

    #[test]
    fn gossip_cycles_peers_and_entries() {
        let mut node = Node::new(1, 4, Bit::One, &sentinels());
        let mut out = Vec::new();
        let peers: Vec<u32> = (0..6).map(|_| node.gossip(&mut out)).collect();
        assert!(peers.iter().all(|&p| p != 1), "never gossips to self");
        let distinct: std::collections::BTreeSet<u32> = peers.iter().copied().collect();
        assert_eq!(distinct.len(), 3, "cycles through all peers");
        // Entries drip round-robin over the (sorted) replica.
        let entries: Vec<Addr> = out
            .iter()
            .filter_map(|o| match o.payload {
                Payload::Gossip {
                    entry: Some((addr, _, _)),
                    ..
                } => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(entries.len(), 6);
        assert_ne!(entries[0], entries[1], "cursor advances");
        assert_eq!(entries[0], entries[2], "and wraps");
    }

    #[test]
    fn heard_mask_inline_and_spilled_agree() {
        // The spilled representation must behave exactly like the
        // inline mask: idempotent inserts, exact distinct counts.
        for n in [1u32, 64, 128, 129, 130, 192, 257] {
            let mut heard = Heard::for_n(n);
            if n <= 128 {
                assert!(matches!(heard, Heard::Inline(0)));
            } else {
                assert!(matches!(&heard, Heard::Spilled(w) if w.len() == n.div_ceil(64) as usize));
            }
            for id in 0..n {
                assert!(heard.insert(id), "first insert of {id} (n = {n})");
                assert!(!heard.insert(id), "duplicate insert of {id} (n = {n})");
                assert_eq!(heard.count(), id + 1);
            }
        }
    }

    #[test]
    fn oversize_deployment_spills_mask_and_still_dedups() {
        // Regression for the old `assert!(n <= 128)`: n = 129 must
        // construct, and replica 128's reply must land in the spilled
        // mask's second word without shadowing replica 64 (which shares
        // its bit index mod 64).
        let mut node = Node::new(0, 129, Bit::One, &sentinels());
        let mut out = Vec::new();
        node.kick(&mut out);
        let op = node.current_op_id();
        for from in [64u32, 128, 128] {
            node.on_message(
                Payload::ReadR {
                    op,
                    from,
                    stamp: Stamp::ZERO,
                    value: 0,
                },
                &mut out,
            );
        }
        assert!(
            matches!(&node.phase, ClientPhase::ReadQuery { heard, .. } if heard.count() == 2),
            "expected 2 distinct replicas counted, phase = {:?}",
            node.phase
        );
    }

    #[test]
    fn sentinel_reads_come_back_as_one() {
        // One node, quorum 1: the first lean op is a read of a0[1] = 0;
        // step through manually until the round-1 final read of the
        // sentinel a1[0], which must return 1 (pre-seeded replica).
        let mut nodes = vec![Node::new(0, 1, Bit::Zero, &sentinels())];
        run_sync(&mut nodes, 10_000, 0);
        // Decision at round 2 proves the sentinel read returned 1 at
        // round 1 (otherwise lean would have decided at round 1, which
        // is impossible by construction).
        assert_eq!(nodes[0].machine.decision_round(), Some(2));
    }
}
