//! Untimed schedule adversaries and crash adversaries.
//!
//! The safety half of the paper (§5: agreement and validity) must hold
//! under **every** schedule, not just noisy ones. These adversaries drive
//! the engine's untimed executor: at each step the adversary picks which
//! enabled process performs its next operation, with full knowledge of
//! the execution so far — strictly stronger than the noisy scheduler, and
//! exactly what Lemmas 2–4 are proved against.
//!
//! Crash adversaries model the non-random failures discussed in §10: an
//! adaptive adversary that may kill processes based on the execution
//! (e.g. always killing the current leader), used by the `O(f log n)`
//! experiment.

use rand::rngs::SmallRng;
use rand::RngExt;

/// A snapshot of per-process execution state offered to adversaries.
///
/// All slices are indexed by process id. A process is *enabled* if it can
/// still take steps (it has neither decided nor crashed).
#[derive(Clone, Copy, Debug)]
pub struct ProcView<'a> {
    /// Whether each process can still take a step.
    pub enabled: &'a [bool],
    /// Each process's current protocol round (1-based; 0 before the first
    /// round starts).
    pub round: &'a [usize],
    /// Operations each process has executed so far.
    pub steps: &'a [u64],
}

impl ProcView<'_> {
    /// Ids of the currently enabled processes, in id order.
    pub fn enabled_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.enabled
            .iter()
            .enumerate()
            .filter_map(|(i, &e)| e.then_some(i))
    }

    /// The highest round among enabled processes, or `None` if none are
    /// enabled.
    pub fn max_round(&self) -> Option<usize> {
        self.enabled_ids().map(|i| self.round[i]).max()
    }

    /// The enabled process furthest ahead in the race, by `(round,
    /// steps)` with ties broken toward the lower id; `None` if no
    /// process is enabled.
    ///
    /// Adaptive adversaries key their interventions off this process —
    /// it is the one whose race lane is closest to producing a decision.
    pub fn leader(&self) -> Option<usize> {
        self.enabled_ids().max_by(|&a, &b| {
            (self.round[a], self.steps[a], std::cmp::Reverse(a)).cmp(&(
                self.round[b],
                self.steps[b],
                std::cmp::Reverse(b),
            ))
        })
    }

    /// How many rounds the leader is ahead of the best *other* enabled
    /// process (0 when tied or when fewer than one process is enabled).
    /// A solo enabled process's lead is its full round count, matching
    /// [`LeaderKiller`]'s runner-up-of-zero convention.
    pub fn lead(&self) -> usize {
        let Some(leader) = self.leader() else {
            return 0;
        };
        let runner_up = self
            .enabled_ids()
            .filter(|&i| i != leader)
            .map(|i| self.round[i])
            .max()
            .unwrap_or(0);
        self.round[leader].saturating_sub(runner_up)
    }

    /// The enabled process furthest behind, by `(round, steps)` with
    /// ties broken toward the lower id; `None` if no process is enabled.
    ///
    /// The canonical redirect target for budgeted adversaries: stepping
    /// the most-behind process keeps the race close, which is exactly
    /// what delays a lean-consensus decision.
    pub fn most_behind(&self) -> Option<usize> {
        self.enabled_ids()
            .min_by_key(|&i| (self.round[i], self.steps[i], i))
    }
}

/// Chooses which process performs the next operation.
///
/// Returning `None` ends the schedule: the engine stops stepping and
/// reports whatever state the run reached (used by scripted schedules and
/// by bounded adversaries in tests).
pub trait Adversary {
    /// Picks the next process to step, among the enabled ones in `view`.
    ///
    /// Implementations must return an enabled process id or `None`; the
    /// engine treats a disabled choice as a bug and panics.
    fn next(&mut self, view: ProcView<'_>) -> Option<usize>;
}

// Boxed adversaries forward, so factories can hand out `Box<dyn …>`
// (e.g. `nc_engine::sim::Sim::adversary` closures picking a variant at
// runtime) wherever a concrete adversary works.
impl<A: Adversary + ?Sized> Adversary for Box<A> {
    fn next(&mut self, view: ProcView<'_>) -> Option<usize> {
        (**self).next(view)
    }
}

/// Steps enabled processes cyclically in id order — the canonical "fair"
/// lockstep schedule. Against equal-split inputs this is close to the
/// worst case for lean-consensus termination, since nobody pulls ahead.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates a round-robin adversary starting from process 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Adversary for RoundRobin {
    fn next(&mut self, view: ProcView<'_>) -> Option<usize> {
        let n = view.enabled.len();
        for k in 0..n {
            let i = (self.cursor + k) % n;
            if view.enabled[i] {
                self.cursor = i + 1;
                return Some(i);
            }
        }
        None
    }
}

/// Steps a uniformly random enabled process each time.
///
/// This is the discrete analogue of exponential interarrival noise, and a
/// good generic stress schedule for property tests.
#[derive(Clone, Debug)]
pub struct RandomInterleave {
    rng: SmallRng,
}

impl RandomInterleave {
    /// Creates a random-interleaving adversary from its own RNG stream.
    pub fn new(rng: SmallRng) -> Self {
        RandomInterleave { rng }
    }
}

impl Adversary for RandomInterleave {
    fn next(&mut self, view: ProcView<'_>) -> Option<usize> {
        let enabled: Vec<usize> = view.enabled_ids().collect();
        if enabled.is_empty() {
            return None;
        }
        let k = self.rng.random_range(0..enabled.len());
        Some(enabled[k])
    }
}

/// Always steps the most-behind enabled process (fewest operations,
/// breaking ties by lower round then lower id).
///
/// This adversary actively prevents any process from pulling ahead — the
/// exact behaviour the noisy-scheduling model says is hard to sustain, and
/// the reason pure adversarial scheduling can stall lean-consensus
/// forever. Used to demonstrate non-termination risk and to stress the
/// bounded protocol's backup path.
#[derive(Clone, Debug, Default)]
pub struct AntiLeader;

impl Adversary for AntiLeader {
    fn next(&mut self, view: ProcView<'_>) -> Option<usize> {
        view.enabled_ids()
            .min_by_key(|&i| (view.steps[i], view.round[i], i))
    }
}

/// Replays a fixed list of process ids, skipping entries whose process is
/// no longer enabled; ends the schedule when exhausted.
///
/// The workhorse of property-based safety tests: proptest generates the
/// script, the engine replays it, and any agreement/validity violation is
/// a minimal counterexample schedule.
#[derive(Clone, Debug)]
pub struct Script {
    script: Vec<usize>,
    cursor: usize,
}

impl Script {
    /// Creates a scripted adversary from a list of process ids.
    pub fn new(script: Vec<usize>) -> Self {
        Script { script, cursor: 0 }
    }

    /// How many script entries remain unconsumed.
    pub fn remaining(&self) -> usize {
        self.script.len() - self.cursor
    }
}

impl Adversary for Script {
    fn next(&mut self, view: ProcView<'_>) -> Option<usize> {
        while self.cursor < self.script.len() {
            let pick = self.script[self.cursor] % view.enabled.len().max(1);
            self.cursor += 1;
            if view.enabled.get(pick).copied().unwrap_or(false) {
                return Some(pick);
            }
        }
        None
    }
}

/// Runs a single chosen process exclusively for as long as it is enabled,
/// then falls back to round-robin among the rest.
///
/// Exercises the wait-free fast path: a solo process must decide within
/// a bounded number of its own steps regardless of the others.
#[derive(Clone, Debug)]
pub struct Solo {
    /// The favoured process.
    favourite: usize,
    fallback: RoundRobin,
}

impl Solo {
    /// Creates an adversary that favours `favourite`.
    pub fn new(favourite: usize) -> Self {
        Solo {
            favourite,
            fallback: RoundRobin::new(),
        }
    }
}

impl Adversary for Solo {
    fn next(&mut self, view: ProcView<'_>) -> Option<usize> {
        if view.enabled.get(self.favourite).copied().unwrap_or(false) {
            Some(self.favourite)
        } else {
            self.fallback.next(view)
        }
    }
}

/// Decides which processes crash, adaptively, after each executed
/// operation (§10's non-random failures).
pub trait CrashAdversary {
    /// Returns the ids of processes to crash now. Called by the engine
    /// after every operation with the post-operation view.
    fn crash_now(&mut self, view: ProcView<'_>) -> Vec<usize>;
}

impl<C: CrashAdversary + ?Sized> CrashAdversary for Box<C> {
    fn crash_now(&mut self, view: ProcView<'_>) -> Vec<usize> {
        (**self).crash_now(view)
    }
}

/// Never crashes anyone.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoCrashes;

impl CrashAdversary for NoCrashes {
    fn crash_now(&mut self, _view: ProcView<'_>) -> Vec<usize> {
        Vec::new()
    }
}

/// The adaptive leader-killer: whenever some enabled process's round
/// exceeds every other enabled process's round by at least
/// `trigger_lead`, crash it — up to a budget of `f` crashes.
///
/// This is the strategy behind the paper's `O(f log n)` upper-bound
/// argument (§10): the adversary must spend one crash per emerging leader,
/// and between crashes the noisy race re-runs Theorem 12.
#[derive(Clone, Debug)]
pub struct LeaderKiller {
    budget: usize,
    trigger_lead: usize,
    crashed: Vec<usize>,
}

impl LeaderKiller {
    /// Creates a leader-killer allowed `budget` crashes, triggering when a
    /// leader is `trigger_lead` rounds ahead of all other enabled
    /// processes.
    pub fn new(budget: usize, trigger_lead: usize) -> Self {
        LeaderKiller {
            budget,
            trigger_lead: trigger_lead.max(1),
            crashed: Vec::new(),
        }
    }

    /// Ids crashed so far, in crash order.
    pub fn crashed(&self) -> &[usize] {
        &self.crashed
    }
}

impl CrashAdversary for LeaderKiller {
    fn crash_now(&mut self, view: ProcView<'_>) -> Vec<usize> {
        if self.budget == 0 {
            return Vec::new();
        }
        let mut enabled = view.enabled_ids();
        let Some(first) = enabled.next() else {
            return Vec::new();
        };
        // Find the leader and runner-up rounds among enabled processes.
        let mut leader = first;
        let mut leader_round = view.round[first];
        let mut runner_up = 0usize; // round of second place (0 if none)
        for i in enabled {
            let r = view.round[i];
            if r > leader_round {
                runner_up = leader_round;
                leader_round = r;
                leader = i;
            } else if r > runner_up {
                runner_up = r;
            }
        }
        if leader_round >= runner_up + self.trigger_lead {
            self.budget -= 1;
            self.crashed.push(leader);
            vec![leader]
        } else {
            Vec::new()
        }
    }
}

/// Crashes specific processes when they reach specific step counts —
/// a scripted, replayable failure pattern for regression tests.
#[derive(Clone, Debug)]
pub struct CrashScript {
    /// Pairs `(pid, steps)`: crash `pid` once it has executed `steps` ops.
    plan: Vec<(usize, u64)>,
}

impl CrashScript {
    /// Creates a scripted crash adversary from `(pid, step_count)` pairs.
    pub fn new(plan: Vec<(usize, u64)>) -> Self {
        CrashScript { plan }
    }
}

impl CrashAdversary for CrashScript {
    fn crash_now(&mut self, view: ProcView<'_>) -> Vec<usize> {
        let mut out = Vec::new();
        self.plan.retain(|&(pid, at)| {
            let due = view.steps.get(pid).is_some_and(|&s| s >= at)
                && view.enabled.get(pid).copied().unwrap_or(false);
            if due {
                out.push(pid);
                false
            } else {
                true
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;

    fn view<'a>(enabled: &'a [bool], round: &'a [usize], steps: &'a [u64]) -> ProcView<'a> {
        ProcView {
            enabled,
            round,
            steps,
        }
    }

    #[test]
    fn round_robin_cycles_enabled() {
        let mut adv = RoundRobin::new();
        let enabled = [true, true, true];
        let round = [0, 0, 0];
        let steps = [0, 0, 0];
        let v = view(&enabled, &round, &steps);
        let picks: Vec<usize> = (0..6).map(|_| adv.next(v).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_disabled() {
        let mut adv = RoundRobin::new();
        let enabled = [true, false, true];
        let round = [0, 0, 0];
        let steps = [0, 0, 0];
        let v = view(&enabled, &round, &steps);
        let picks: Vec<usize> = (0..4).map(|_| adv.next(v).unwrap()).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn round_robin_none_when_all_disabled() {
        let mut adv = RoundRobin::new();
        let enabled = [false, false];
        let round = [0, 0];
        let steps = [0, 0];
        assert_eq!(adv.next(view(&enabled, &round, &steps)), None);
    }

    #[test]
    fn random_interleave_only_picks_enabled() {
        let mut adv = RandomInterleave::new(stream_rng(1, 0, 0));
        let enabled = [false, true, false, true];
        let round = [0; 4];
        let steps = [0; 4];
        for _ in 0..100 {
            let pick = adv.next(view(&enabled, &round, &steps)).unwrap();
            assert!(pick == 1 || pick == 3);
        }
    }

    #[test]
    fn random_interleave_covers_all_enabled() {
        let mut adv = RandomInterleave::new(stream_rng(2, 0, 0));
        let enabled = [true; 5];
        let round = [0; 5];
        let steps = [0; 5];
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[adv.next(view(&enabled, &round, &steps)).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s), "some process never scheduled");
    }

    #[test]
    fn anti_leader_picks_most_behind() {
        let mut adv = AntiLeader;
        let enabled = [true, true, true];
        let round = [3, 1, 2];
        let steps = [12, 4, 8];
        assert_eq!(adv.next(view(&enabled, &round, &steps)), Some(1));
    }

    #[test]
    fn anti_leader_breaks_ties_by_id() {
        let mut adv = AntiLeader;
        let enabled = [true, true];
        let round = [1, 1];
        let steps = [4, 4];
        assert_eq!(adv.next(view(&enabled, &round, &steps)), Some(0));
    }

    #[test]
    fn script_replays_and_ends() {
        let mut adv = Script::new(vec![2, 0, 1]);
        let enabled = [true, true, true];
        let round = [0; 3];
        let steps = [0; 3];
        let v = view(&enabled, &round, &steps);
        assert_eq!(adv.next(v), Some(2));
        assert_eq!(adv.remaining(), 2);
        assert_eq!(adv.next(v), Some(0));
        assert_eq!(adv.next(v), Some(1));
        assert_eq!(adv.next(v), None);
    }

    #[test]
    fn script_skips_disabled_entries() {
        let mut adv = Script::new(vec![0, 0, 1]);
        let enabled = [false, true];
        let round = [0; 2];
        let steps = [0; 2];
        assert_eq!(adv.next(view(&enabled, &round, &steps)), Some(1));
        assert_eq!(adv.next(view(&enabled, &round, &steps)), None);
    }

    #[test]
    fn script_wraps_out_of_range_ids() {
        let mut adv = Script::new(vec![7]);
        let enabled = [true, true, true];
        let round = [0; 3];
        let steps = [0; 3];
        assert_eq!(adv.next(view(&enabled, &round, &steps)), Some(1)); // 7 % 3
    }

    #[test]
    fn solo_prefers_favourite_until_disabled() {
        let mut adv = Solo::new(1);
        let enabled = [true, true];
        let round = [0; 2];
        let steps = [0; 2];
        assert_eq!(adv.next(view(&enabled, &round, &steps)), Some(1));
        let enabled = [true, false];
        assert_eq!(adv.next(view(&enabled, &round, &steps)), Some(0));
    }

    #[test]
    fn no_crashes_is_inert() {
        let enabled = [true];
        let round = [5];
        let steps = [20];
        assert!(NoCrashes
            .crash_now(view(&enabled, &round, &steps))
            .is_empty());
    }

    #[test]
    fn leader_killer_kills_clear_leader() {
        let mut adv = LeaderKiller::new(2, 2);
        let enabled = [true, true, true];
        let round = [5, 3, 2];
        let steps = [20, 12, 8];
        assert_eq!(adv.crash_now(view(&enabled, &round, &steps)), vec![0]);
        assert_eq!(adv.crashed(), &[0]);
    }

    #[test]
    fn leader_killer_respects_trigger_lead() {
        let mut adv = LeaderKiller::new(2, 3);
        let enabled = [true, true];
        let round = [5, 3];
        let steps = [20, 12];
        assert!(adv.crash_now(view(&enabled, &round, &steps)).is_empty());
        let round = [6, 3];
        assert_eq!(adv.crash_now(view(&enabled, &round, &steps)), vec![0]);
    }

    #[test]
    fn leader_killer_exhausts_budget() {
        let mut adv = LeaderKiller::new(1, 1);
        let enabled = [true, true];
        let round = [5, 1];
        let steps = [20, 4];
        assert_eq!(adv.crash_now(view(&enabled, &round, &steps)).len(), 1);
        let round = [9, 1];
        assert!(adv.crash_now(view(&enabled, &round, &steps)).is_empty());
    }

    #[test]
    fn leader_killer_solo_process_is_a_leader() {
        // With one enabled process, runner-up round is 0; a big enough
        // lead still triggers.
        let mut adv = LeaderKiller::new(1, 2);
        let enabled = [true, false];
        let round = [4, 9];
        let steps = [16, 36];
        assert_eq!(adv.crash_now(view(&enabled, &round, &steps)), vec![0]);
    }

    #[test]
    fn crash_script_fires_at_step_counts() {
        let mut adv = CrashScript::new(vec![(0, 5), (1, 10)]);
        let enabled = [true, true];
        let round = [1, 1];
        let steps = [4, 4];
        assert!(adv.crash_now(view(&enabled, &round, &steps)).is_empty());
        let steps = [5, 9];
        assert_eq!(adv.crash_now(view(&enabled, &round, &steps)), vec![0]);
        let steps = [5, 10];
        assert_eq!(adv.crash_now(view(&enabled, &round, &steps)), vec![1]);
        // plan exhausted
        let steps = [99, 99];
        assert!(adv.crash_now(view(&enabled, &round, &steps)).is_empty());
    }

    #[test]
    fn crash_script_ignores_already_disabled() {
        let mut adv = CrashScript::new(vec![(0, 5)]);
        let enabled = [false, true];
        let round = [1, 1];
        let steps = [9, 9];
        assert!(adv.crash_now(view(&enabled, &round, &steps)).is_empty());
    }

    #[test]
    fn proc_view_helpers() {
        let enabled = [true, false, true];
        let round = [1, 7, 3];
        let steps = [0, 0, 0];
        let v = view(&enabled, &round, &steps);
        assert_eq!(v.enabled_ids().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(v.max_round(), Some(3)); // 7 is disabled
        let none_enabled = [false; 3];
        let v = view(&none_enabled, &round, &steps);
        assert_eq!(v.max_round(), None);
    }

    #[test]
    fn proc_view_leader_and_most_behind() {
        let enabled = [true, false, true, true];
        let round = [2, 9, 3, 3];
        let steps = [8, 36, 11, 12];
        let v = view(&enabled, &round, &steps);
        // 1 is disabled; 2 and 3 share the top round, 3 has more steps.
        assert_eq!(v.leader(), Some(3));
        assert_eq!(v.most_behind(), Some(0));
        assert_eq!(v.lead(), 0); // runner-up 2 is in the same round

        let round = [2, 9, 1, 5];
        let v = view(&enabled, &round, &steps);
        assert_eq!(v.leader(), Some(3));
        assert_eq!(v.lead(), 3); // 5 - max(2, 1)
    }

    #[test]
    fn proc_view_leader_ties_break_low_id() {
        let enabled = [true, true, true];
        let round = [4, 4, 4];
        let steps = [16, 16, 16];
        let v = view(&enabled, &round, &steps);
        assert_eq!(v.leader(), Some(0));
        assert_eq!(v.most_behind(), Some(0));
        assert_eq!(v.lead(), 0);
    }

    #[test]
    fn proc_view_solo_lead_is_full_round_count() {
        let enabled = [false, true];
        let round = [7, 4];
        let steps = [28, 16];
        let v = view(&enabled, &round, &steps);
        assert_eq!(v.leader(), Some(1));
        assert_eq!(v.lead(), 4);
        let none = [false, false];
        let v = view(&none, &round, &steps);
        assert_eq!(v.leader(), None);
        assert_eq!(v.lead(), 0);
        assert_eq!(v.most_behind(), None);
    }
}
