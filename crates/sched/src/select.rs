//! Runtime event-queue selection: one trait over the crate's queue
//! implementations plus a size heuristic choosing between them.
//!
//! The engine's queue traffic is almost entirely the *hold* pattern —
//! pop the earliest event, push one successor for the same process —
//! over a totally ordered key space ([`Event::key_cmp`] never returns
//! `Equal` for distinct queued events). Totality means the pop sequence
//! of any correct priority queue is **uniquely determined**, so queue
//! choice is purely a performance knob: swapping implementations cannot
//! change simulation results (pinned by the differential equivalence
//! suites in `nc-engine`).
//!
//! Two implementations compete:
//!
//! * [`EventQueue`] — the 4-ary tournament-select heap. Hold cost is one
//!   root-to-leaf Floyd walk: `O(log₄ len)` levels, one cache line per
//!   level. Wins at small and medium `n`, where the whole heap stays in
//!   L1/L2.
//! * [`EventTree`] — the branchless pid-indexed tournament tree. Hold
//!   cost is a fixed `O(log₁₆ n)` reduction with **no data-dependent
//!   branches at all**, so it shrugs off the mispredicts that grow with
//!   heap depth. It overtakes the heap once the heap walk gets deep and
//!   its line-per-level misses stop hiding (measured crossover on the
//!   reference VM: between n = 1000 and n = 10000 on the isolated hold
//!   benchmark; [`TREE_MIN_N`] holds the conservative production cut).
//!
//! [`QueuePolicy`] is the engine-facing knob: `Auto` applies the
//! heuristic per run, `Heap`/`Tree` force an implementation (used by the
//! differential tests, benchmarks, and anyone who has measured their own
//! crossover).

use crate::queue::{Event, EventQueue};
use crate::tree::EventTree;

/// Smallest process count at which [`QueuePolicy::Auto`] picks the
/// branchless [`EventTree`] over the 4-ary heap.
///
/// Set from the `event_queue` hold benchmark on the reference VM: the
/// tree's fixed `log₁₆ n` branchless reduction beats the heap's
/// `log₄ n` line-per-level walk once the heap no longer fits hot cache.
/// Re-tune on new hardware by running
/// `cargo bench -p nc-bench --bench event_queue`.
pub const TREE_MIN_N: usize = 4096;

/// Which queue implementation a simulation run should use.
///
/// The default (`Auto`) applies the [`TREE_MIN_N`] size heuristic per
/// run; the forced variants exist for differential tests and perf
/// ablations. Any choice produces bit-identical simulation results —
/// see the module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueuePolicy {
    /// Pick per run by process count: heap below [`TREE_MIN_N`], tree at
    /// or above it.
    #[default]
    Auto,
    /// Always the 4-ary tournament-select heap ([`EventQueue`]).
    Heap,
    /// Always the branchless tournament tree ([`EventTree`]).
    Tree,
}

/// A concrete queue implementation choice, after [`QueuePolicy`]'s
/// heuristic has been applied to a run's process count.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueKind {
    /// The 4-ary tournament-select heap.
    Heap,
    /// The branchless pid-indexed tournament tree.
    Tree,
}

impl QueuePolicy {
    /// Resolves the policy for a run with `n` processes.
    #[inline]
    pub fn kind_for(self, n: usize) -> QueueKind {
        match self {
            QueuePolicy::Auto => {
                if n >= TREE_MIN_N {
                    QueueKind::Tree
                } else {
                    QueueKind::Heap
                }
            }
            QueuePolicy::Heap => QueueKind::Heap,
            QueuePolicy::Tree => QueueKind::Tree,
        }
    }
}

/// The queue interface the simulation loops are generic over.
///
/// # Contract
///
/// Callers (the `nc-engine` drivers) maintain the engine invariants the
/// tree implementation depends on:
///
/// * at most one queued event per pid at any time;
/// * every queued `Event::pid()` is below the `n` given to
///   [`SimQueue::prepare`];
/// * [`SimQueue::reschedule_first`] is only called with an event whose
///   pid equals the current first event's pid (the hold operation).
///
/// Under that contract, and because the event key order is total, every
/// implementation yields the identical pop sequence.
pub trait SimQueue {
    /// Empties the queue and sizes it for pids `0..n`, keeping
    /// allocations for reuse across trials.
    fn prepare(&mut self, n: usize);

    /// Inserts a new event (used when priming a run).
    fn insert(&mut self, ev: Event);

    /// The earliest event, if any.
    fn first(&self) -> Option<Event>;

    /// Removes and returns the earliest event.
    fn pop_first(&mut self) -> Option<Event>;

    /// Replaces the earliest event with `ev` — the hold operation. `ev`
    /// must carry the same pid as the current first event.
    fn reschedule_first(&mut self, ev: Event);
}

impl SimQueue for EventQueue {
    #[inline]
    fn prepare(&mut self, _n: usize) {
        self.clear();
    }

    #[inline]
    fn insert(&mut self, ev: Event) {
        self.push(ev);
    }

    #[inline]
    fn first(&self) -> Option<Event> {
        self.peek().copied()
    }

    #[inline]
    fn pop_first(&mut self) -> Option<Event> {
        self.pop()
    }

    #[inline]
    fn reschedule_first(&mut self, ev: Event) {
        self.replace_top(ev);
    }
}

impl SimQueue for EventTree {
    #[inline]
    fn prepare(&mut self, n: usize) {
        self.reset(n);
    }

    #[inline]
    fn insert(&mut self, ev: Event) {
        self.set(ev);
    }

    #[inline]
    fn first(&self) -> Option<Event> {
        self.peek()
    }

    #[inline]
    fn pop_first(&mut self) -> Option<Event> {
        self.pop()
    }

    #[inline]
    fn reschedule_first(&mut self, ev: Event) {
        // The hold event carries the top's pid, so `set` reschedules the
        // popped slot in place — one leaf write + reduction, no separate
        // remove.
        self.set(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_policy_switches_at_the_threshold() {
        assert_eq!(QueuePolicy::Auto.kind_for(1), QueueKind::Heap);
        assert_eq!(QueuePolicy::Auto.kind_for(TREE_MIN_N - 1), QueueKind::Heap);
        assert_eq!(QueuePolicy::Auto.kind_for(TREE_MIN_N), QueueKind::Tree);
        assert_eq!(QueuePolicy::Auto.kind_for(usize::MAX), QueueKind::Tree);
    }

    #[test]
    fn forced_policies_ignore_n() {
        for n in [0, 1, TREE_MIN_N, 10 * TREE_MIN_N] {
            assert_eq!(QueuePolicy::Heap.kind_for(n), QueueKind::Heap);
            assert_eq!(QueuePolicy::Tree.kind_for(n), QueueKind::Tree);
        }
    }

    /// Hold-model traffic through the trait produces the identical pop
    /// sequence on both implementations.
    #[test]
    fn trait_impls_agree_on_hold_traffic() {
        fn run<Q: SimQueue>(q: &mut Q) -> Vec<(u64, u32)> {
            q.prepare(8);
            let mut seq = 0u64;
            for pid in 0..8u32 {
                q.insert(Event::new(pid as f64 * 0.37, seq, pid));
                seq += 1;
            }
            let mut log = Vec::new();
            for i in 0..200 {
                let top = q.first().unwrap();
                log.push((top.seq(), top.pid()));
                if i % 5 == 4 {
                    q.pop_first();
                } else {
                    let inc = 0.1 + (i as f64 * 0.731).fract();
                    q.reschedule_first(Event::new(top.time() + inc, seq, top.pid()));
                    seq += 1;
                }
                if q.first().is_none() {
                    break;
                }
            }
            while let Some(e) = q.pop_first() {
                log.push((e.seq(), e.pid()));
            }
            log
        }
        let mut heap = EventQueue::new();
        let mut tree = EventTree::new();
        assert_eq!(run(&mut heap), run(&mut tree));
    }
}
