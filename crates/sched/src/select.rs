//! Runtime event-queue selection: one trait over the crate's queue
//! implementations plus a size heuristic choosing between them.
//!
//! The engine's queue traffic is almost entirely the *hold* pattern —
//! pop the earliest event, push one successor for the same process —
//! over a totally ordered key space ([`Event::key_cmp`] never returns
//! `Equal` for distinct queued events). Totality means the pop sequence
//! of any correct priority queue is **uniquely determined**, so queue
//! choice is purely a performance knob: swapping implementations cannot
//! change simulation results (pinned by the differential equivalence
//! suites in `nc-engine`).
//!
//! Two implementations compete:
//!
//! * [`EventQueue`] — the 4-ary tournament-select heap. Hold cost is one
//!   root-to-leaf Floyd walk: `O(log₄ len)` levels, one cache line per
//!   level. Wins at small and medium `n`, where the whole heap stays in
//!   L1/L2.
//! * [`EventTree`] — the branchless pid-indexed tournament tree. Hold
//!   cost is a fixed `O(log₁₆ n)` reduction with **no data-dependent
//!   branches at all**, so it shrugs off the mispredicts that grow with
//!   heap depth. It overtakes the heap once the heap walk gets deep and
//!   its line-per-level misses stop hiding (measured crossover on the
//!   reference VM: between n = 1000 and n = 10000 on the isolated hold
//!   benchmark; [`TREE_MIN_N`] holds the conservative production cut).
//!
//! [`QueuePolicy`] is the engine-facing knob: `Auto` applies the
//! heuristic per run, `Heap`/`Tree` force an implementation (used by the
//! differential tests, benchmarks, and anyone who has measured their own
//! crossover).

use crate::queue::{Event, EventQueue};
use crate::tree::EventTree;

/// Smallest process count at which [`QueuePolicy::Auto`] picks the
/// branchless [`EventTree`] over the 4-ary heap.
///
/// Set from the `event_queue` hold benchmark on the reference VM: the
/// tree's fixed `log₁₆ n` branchless reduction beats the heap's
/// `log₄ n` line-per-level walk once the heap no longer fits hot cache.
/// Re-confirmed under the engine's end-to-end probe
/// (`bench_engine --probe --n {2048,4096,8192}`): per-event, the tree
/// loses at 2048, roughly ties at 4096, and wins at 8192. Re-tune on
/// new hardware by running `cargo bench -p nc-bench --bench event_queue`.
pub const TREE_MIN_N: usize = 4096;

/// The [`QueuePolicy::Auto`] crossover used instead of [`TREE_MIN_N`]
/// when the engine drives the queue through its **batched** core
/// (micro-batch K > 1).
///
/// Batched selection replaces the heap's hold re-key (one root
/// replacement) with pop + insert per event; the tree pays a full
/// root-to-leaf replay per pop that its deduplicated
/// [`SimQueue::insert_batch`] scatter cannot win back. Measured on the
/// reference VM (`bench_engine --probe`): with K ∈ {4, 16} the heap
/// beats the tree at *every* probed size (n = 100 through 8192 — e.g.
/// 11.5M vs 7.9M events/s at n = 8192, K = 16), so the batched
/// crossover sits beyond the measured range and this cut is a
/// conservative extrapolation. Any choice is still result-identical;
/// this only picks the faster plane.
pub const TREE_MIN_N_BATCHED: usize = 16_384;

/// Which queue implementation a simulation run should use.
///
/// The default (`Auto`) applies the [`TREE_MIN_N`] size heuristic per
/// run; the forced variants exist for differential tests and perf
/// ablations. Any choice produces bit-identical simulation results —
/// see the module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueuePolicy {
    /// Pick per run by process count: heap below [`TREE_MIN_N`], tree at
    /// or above it.
    #[default]
    Auto,
    /// Always the 4-ary tournament-select heap ([`EventQueue`]).
    Heap,
    /// Always the branchless tournament tree ([`EventTree`]).
    Tree,
}

/// A concrete queue implementation choice, after [`QueuePolicy`]'s
/// heuristic has been applied to a run's process count.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueKind {
    /// The 4-ary tournament-select heap.
    Heap,
    /// The branchless pid-indexed tournament tree.
    Tree,
}

impl QueuePolicy {
    /// Resolves the policy for a run with `n` processes driven by the
    /// per-event loop.
    #[inline]
    pub fn kind_for(self, n: usize) -> QueueKind {
        self.kind_for_batch(n, 1)
    }

    /// Resolves the policy for a run with `n` processes and engine
    /// micro-batch size `batch`: `Auto` cuts over to the tree at
    /// [`TREE_MIN_N`] per-event (`batch <= 1`) and at the much higher
    /// [`TREE_MIN_N_BATCHED`] under the batched core (see the constants'
    /// docs for the measurements).
    #[inline]
    pub fn kind_for_batch(self, n: usize, batch: usize) -> QueueKind {
        match self {
            QueuePolicy::Auto => {
                let cut = if batch > 1 {
                    TREE_MIN_N_BATCHED
                } else {
                    TREE_MIN_N
                };
                if n >= cut {
                    QueueKind::Tree
                } else {
                    QueueKind::Heap
                }
            }
            QueuePolicy::Heap => QueueKind::Heap,
            QueuePolicy::Tree => QueueKind::Tree,
        }
    }
}

/// The queue interface the simulation loops are generic over.
///
/// # Contract
///
/// Callers (the `nc-engine` drivers) maintain the engine invariants the
/// tree implementation depends on:
///
/// * at most one queued event per pid at any time;
/// * every queued `Event::pid()` is below the `n` given to
///   [`SimQueue::prepare`];
/// * [`SimQueue::reschedule_first`] is only called with an event whose
///   pid equals the current first event's pid (the hold operation).
///
/// Under that contract, and because the event key order is total, every
/// implementation yields the identical pop sequence.
pub trait SimQueue {
    /// Empties the queue and sizes it for pids `0..n`, keeping
    /// allocations for reuse across trials.
    fn prepare(&mut self, n: usize);

    /// Inserts a new event (used when priming a run).
    fn insert(&mut self, ev: Event);

    /// The earliest event, if any.
    fn first(&self) -> Option<Event>;

    /// Removes and returns the earliest event.
    fn pop_first(&mut self) -> Option<Event>;

    /// Replaces the earliest event with `ev` — the hold operation. `ev`
    /// must carry the same pid as the current first event.
    fn reschedule_first(&mut self, ev: Event);

    /// Removes up to `max` earliest events in pop order, appending them
    /// to `out`. Exactly equivalent to calling [`SimQueue::pop_first`]
    /// `max` times (stopping when the queue empties) — the batched
    /// engine core uses it to drain a micro-batch in one call.
    #[inline]
    fn pop_first_batch(&mut self, out: &mut Vec<Event>, max: usize) {
        for _ in 0..max {
            match self.pop_first() {
                Some(ev) => out.push(ev),
                None => break,
            }
        }
    }

    /// Inserts a whole batch of events, exactly equivalent to
    /// [`SimQueue::insert`] on each in order. Implementations may share
    /// internal recomputation across the batch (the tournament tree
    /// recomputes each dirty ancestor block once per level instead of
    /// once per event).
    #[inline]
    fn insert_batch(&mut self, evs: &[Event]) {
        for &ev in evs {
            self.insert(ev);
        }
    }
}

impl SimQueue for EventQueue {
    #[inline]
    fn prepare(&mut self, _n: usize) {
        self.clear();
    }

    #[inline]
    fn insert(&mut self, ev: Event) {
        self.push(ev);
    }

    #[inline]
    fn first(&self) -> Option<Event> {
        self.peek().copied()
    }

    #[inline]
    fn pop_first(&mut self) -> Option<Event> {
        self.pop()
    }

    #[inline]
    fn reschedule_first(&mut self, ev: Event) {
        self.replace_top(ev);
    }
}

impl SimQueue for EventTree {
    #[inline]
    fn prepare(&mut self, n: usize) {
        self.reset(n);
    }

    #[inline]
    fn insert(&mut self, ev: Event) {
        self.set(ev);
    }

    #[inline]
    fn first(&self) -> Option<Event> {
        self.peek()
    }

    #[inline]
    fn pop_first(&mut self) -> Option<Event> {
        self.pop()
    }

    #[inline]
    fn reschedule_first(&mut self, ev: Event) {
        // The hold event carries the top's pid, so `set` reschedules the
        // popped slot in place — one leaf write + reduction, no separate
        // remove.
        self.set(ev);
    }

    #[inline]
    fn insert_batch(&mut self, evs: &[Event]) {
        // Shared-ancestor scatter: one reduction per dirty block per
        // level (see `EventTree::set_batch`).
        self.set_batch(evs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_policy_switches_at_the_threshold() {
        assert_eq!(QueuePolicy::Auto.kind_for(1), QueueKind::Heap);
        assert_eq!(QueuePolicy::Auto.kind_for(TREE_MIN_N - 1), QueueKind::Heap);
        assert_eq!(QueuePolicy::Auto.kind_for(TREE_MIN_N), QueueKind::Tree);
        assert_eq!(QueuePolicy::Auto.kind_for(usize::MAX), QueueKind::Tree);
    }

    #[test]
    fn auto_policy_uses_the_batched_crossover_when_batching() {
        for batch in [2, 16, 64] {
            assert_eq!(
                QueuePolicy::Auto.kind_for_batch(TREE_MIN_N, batch),
                QueueKind::Heap,
                "batched K={batch} keeps the heap at the per-event cut"
            );
            assert_eq!(
                QueuePolicy::Auto.kind_for_batch(TREE_MIN_N_BATCHED, batch),
                QueueKind::Tree
            );
        }
        // K <= 1 is the per-event loop: the original cut applies.
        for batch in [0, 1] {
            assert_eq!(
                QueuePolicy::Auto.kind_for_batch(TREE_MIN_N, batch),
                QueueKind::Tree
            );
        }
        // Forced policies ignore the batch size too.
        assert_eq!(
            QueuePolicy::Heap.kind_for_batch(usize::MAX, 64),
            QueueKind::Heap
        );
        assert_eq!(QueuePolicy::Tree.kind_for_batch(0, 64), QueueKind::Tree);
    }

    #[test]
    fn forced_policies_ignore_n() {
        for n in [0, 1, TREE_MIN_N, 10 * TREE_MIN_N] {
            assert_eq!(QueuePolicy::Heap.kind_for(n), QueueKind::Heap);
            assert_eq!(QueuePolicy::Tree.kind_for(n), QueueKind::Tree);
        }
    }

    /// Hold-model traffic through the trait produces the identical pop
    /// sequence on both implementations.
    #[test]
    fn trait_impls_agree_on_hold_traffic() {
        fn run<Q: SimQueue>(q: &mut Q) -> Vec<(u64, u32)> {
            q.prepare(8);
            let mut seq = 0u64;
            for pid in 0..8u32 {
                q.insert(Event::new(pid as f64 * 0.37, seq, pid));
                seq += 1;
            }
            let mut log = Vec::new();
            for i in 0..200 {
                let top = q.first().unwrap();
                log.push((top.seq(), top.pid()));
                if i % 5 == 4 {
                    q.pop_first();
                } else {
                    let inc = 0.1 + (i as f64 * 0.731).fract();
                    q.reschedule_first(Event::new(top.time() + inc, seq, top.pid()));
                    seq += 1;
                }
                if q.first().is_none() {
                    break;
                }
            }
            while let Some(e) = q.pop_first() {
                log.push((e.seq(), e.pid()));
            }
            log
        }
        let mut heap = EventQueue::new();
        let mut tree = EventTree::new();
        assert_eq!(run(&mut heap), run(&mut tree));
    }

    /// The batch primitives are exactly their singleton equivalents on
    /// both implementations, for every batch size the engine uses.
    #[test]
    fn batch_primitives_match_singleton_ops() {
        fn run<Q: SimQueue>(q: &mut Q, k: usize, batched: bool) -> Vec<(u64, u32)> {
            q.prepare(16);
            let mut seq = 0u64;
            let starts: Vec<Event> = (0..16u32)
                .map(|pid| {
                    let e = Event::new(pid as f64 * 0.43, seq, pid);
                    seq += 1;
                    e
                })
                .collect();
            if batched {
                q.insert_batch(&starts);
            } else {
                for &e in &starts {
                    q.insert(e);
                }
            }
            let mut log = Vec::new();
            let mut popped = Vec::new();
            for round in 0..40 {
                popped.clear();
                if batched {
                    q.pop_first_batch(&mut popped, k);
                } else {
                    for _ in 0..k {
                        match q.pop_first() {
                            Some(e) => popped.push(e),
                            None => break,
                        }
                    }
                }
                log.extend(popped.iter().map(|e| (e.seq(), e.pid())));
                let succs: Vec<Event> = popped
                    .iter()
                    .map(|e| {
                        let inc = 0.2 + ((round * 31) as f64 * 0.617).fract();
                        let s = Event::new(e.time() + inc, seq, e.pid());
                        seq += 1;
                        s
                    })
                    .collect();
                // Stop reinserting near the end so the queue drains.
                if round < 30 {
                    if batched {
                        q.insert_batch(&succs);
                    } else {
                        for &s in &succs {
                            q.insert(s);
                        }
                    }
                }
            }
            while let Some(e) = q.pop_first() {
                log.push((e.seq(), e.pid()));
            }
            log
        }
        for k in [1usize, 3, 4, 8, 16, 64] {
            let mut heap_a = EventQueue::new();
            let mut heap_b = EventQueue::new();
            let mut tree_a = EventTree::new();
            let mut tree_b = EventTree::new();
            let reference = run(&mut heap_a, k, false);
            assert_eq!(run(&mut heap_b, k, true), reference, "heap k={k}");
            assert_eq!(run(&mut tree_a, k, false), reference, "tree loop k={k}");
            assert_eq!(run(&mut tree_b, k, true), reference, "tree batch k={k}");
        }
    }
}
