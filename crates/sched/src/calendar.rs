//! A **calendar queue** specialized to the engine's workload: an O(1)
//! "hold"-model priority queue over at most one event per process.
//!
//! The [`crate::queue::EventQueue`] heap pays `Θ(log n)` data-dependent
//! comparisons per hold; at simulation scale those comparisons (and
//! their branch mispredicts) dominate the whole engine. This structure
//! exploits three properties the noisy-scheduling driver guarantees:
//!
//! 1. **Monotone times** — every inserted event's time is `≥` the
//!    current minimum minus nothing: successors are `min + Δ` with
//!    `Δ ≥ 0` (the model's delays and noise are non-negative). (A
//!    defensive "move the cursor back" path keeps even out-of-model
//!    negative increments correct, just slower.)
//! 2. **One event per process** — the engine schedules at most one
//!    pending operation per process, so the queue can be fully
//!    **intrusive**: a fixed `next[pid]` array forms per-bucket linked
//!    lists, and steady state allocates nothing at all.
//! 3. **Clustered times** — under any i.i.d. noise with scale `m`, the
//!    `n` next-event times live in a window of width `O(m)`, so buckets
//!    of width `δ ≈ m/n` hold `O(1)` events each.
//!
//! The calendar maps time to an absolute bucket index (an
//! order-preserving `f64` transform followed by one multiply), keeps `K`
//! rotating buckets, and spills events beyond the horizon into an
//! unsorted overflow list that is migrated lazily as the cursor
//! advances. Pop scans the current bucket for the exact `(time, seq)`
//! minimum, so the pop sequence is **identical to any correct priority
//! queue** — bucket width and bucket count affect only speed, never
//! order (the differential property tests pin this against the heap).

use crate::queue::Event;

/// Sentinel for "no process" in the intrusive lists.
const NONE: u32 = u32::MAX;

/// Largest absolute bucket index [`CalendarQueue::bucket_of`] produces.
/// Clamping below `u64::MAX` by more than the maximum bucket count keeps
/// `cur_abs + K` horizon arithmetic exact, so astronomically late events
/// (the paper's pathological `2^{k²}` noise) still migrate out of the
/// overflow list instead of sitting beyond a saturated horizon forever.
const BUCKET_CAP: u64 = u64::MAX - (1 << 24);

/// One per-process event slot in the calendar.
#[derive(Clone, Copy, Debug)]
struct Slot {
    /// The event's 16-byte sort key (invalid when not queued).
    ev: Event,
    /// Absolute bucket index this event was filed under.
    bucket_abs: u64,
    /// Next pid in the same bucket's list (or [`NONE`]).
    next: u32,
    /// Whether this pid currently has an event queued.
    queued: bool,
}

/// A monotone, intrusive calendar queue of [`Event`]s keyed by process
/// id.
///
/// Call [`CalendarQueue::reset`] with the process count and a bucket
/// width before each run; then [`CalendarQueue::push`],
/// [`CalendarQueue::peek`], [`CalendarQueue::pop`] and
/// [`CalendarQueue::replace_top`] mirror the heap API (with `peek`
/// taking `&mut self` to cache its scan).
///
/// # Example
///
/// ```
/// use nc_sched::calendar::CalendarQueue;
/// use nc_sched::queue::Event;
///
/// let mut q = CalendarQueue::new();
/// q.reset(2, 0.5);
/// q.push(Event::new(2.0, 1, 0));
/// q.push(Event::new(1.0, 2, 1));
/// assert_eq!(q.peek().unwrap().pid(), 1);
/// q.replace_top(Event::new(3.0, 3, 1));
/// assert_eq!(q.peek().unwrap().pid(), 0);
/// ```
#[derive(Debug, Default)]
pub struct CalendarQueue {
    /// `heads[i]` = (stamp, first pid) — valid only when stamp matches,
    /// which lets `reset` skip clearing `K` buckets per trial.
    heads: Vec<(u32, u32)>,
    stamp: u32,
    slots: Vec<Slot>,
    /// Bucket count mask (`K - 1`; `K` is a power of two).
    mask: u64,
    /// Reciprocal bucket width in key units (see [`Self::bucket_of`]).
    inv_delta: f64,
    /// Absolute bucket index the scan cursor is at.
    cur_abs: u64,
    /// Events currently filed in calendar buckets.
    in_buckets: usize,
    /// Events beyond the horizon, unsorted.
    overflow: Vec<u32>,
    /// Smallest `bucket_abs` among overflow events (stale-above: it may
    /// undershoot after migrations, never overshoot).
    overflow_min: u64,
    /// Cached result of the last [`Self::peek`]: (pid, predecessor pid
    /// or NONE). Invalidated by any mutation.
    cached_min: Option<(u32, u32)>,
}

impl CalendarQueue {
    /// An empty calendar; size it with [`CalendarQueue::reset`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the queue and sizes it for pids `0..n` with bucket width
    /// `delta` (simulated-time units). `delta` affects only performance:
    /// any positive, finite value is correct. Non-finite or non-positive
    /// values are replaced by `1.0`.
    pub fn reset(&mut self, n: usize, delta: f64) {
        let delta = if delta.is_finite() && delta > 0.0 {
            delta
        } else {
            1.0
        };
        let k = (n.max(16)).next_power_of_two().min(1 << 22);
        if self.heads.len() != k || self.stamp == u32::MAX {
            self.heads.clear();
            self.heads.resize(k, (u32::MAX, NONE));
            self.stamp = 0;
        }
        self.stamp = self.stamp.wrapping_add(1);
        self.mask = (k - 1) as u64;
        self.inv_delta = delta.recip();
        self.cur_abs = 0;
        self.in_buckets = 0;
        self.overflow.clear();
        self.overflow_min = u64::MAX;
        self.cached_min = None;
        self.slots.clear();
        self.slots.resize(
            n,
            Slot {
                ev: Event::new(0.0, 0, 0),
                bucket_abs: 0,
                next: NONE,
                queued: false,
            },
        );
    }

    /// Number of queued events.
    #[inline]
    pub fn len(&self) -> usize {
        self.in_buckets + self.overflow.len()
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The absolute bucket index of a time key. Monotone in the event
    /// time: the key map preserves order and `u64 → f64 → u64` with a
    /// positive factor and saturating cast preserves it too.
    #[inline]
    fn bucket_of(&self, ev: &Event) -> u64 {
        // Times are non-negative in the model, so their mapped keys are
        // offset by 2^63; subtract it to keep the f64 conversion in a
        // precise range. Negative times saturate to bucket 0 — monotone,
        // and merely a performance corner.
        let t = ev.time_key.saturating_sub(0x8000_0000_0000_0000);
        // The mapped key is monotone but not linear in time; convert
        // back through the bits for a linear scale. The cast saturates
        // huge products, and the clamp keeps horizon arithmetic exact.
        ((f64::from_bits(t) * self.inv_delta) as u64).min(BUCKET_CAP)
    }

    /// Inserts `ev` for its pid.
    ///
    /// # Panics
    ///
    /// Debug-asserts the pid is in range and not already queued.
    pub fn push(&mut self, ev: Event) {
        self.cached_min = None;
        let pid = ev.pid() as usize;
        debug_assert!(pid < self.slots.len(), "pid {pid} out of range");
        debug_assert!(!self.slots[pid].queued, "pid {pid} already queued");
        let b = self.bucket_of(&ev);
        if self.in_buckets == 0 && self.overflow.is_empty() {
            // First event re-anchors the cursor outright.
            self.cur_abs = b;
        } else if b < self.cur_abs {
            // Out-of-model (negative increment) or pre-start insert:
            // move the cursor back. Everything between is empty or
            // later, so correctness is unaffected.
            self.cur_abs = b;
        }
        let slot = &mut self.slots[pid];
        slot.ev = ev;
        slot.bucket_abs = b;
        slot.queued = true;
        if b >= self.cur_abs.saturating_add(self.mask + 1) {
            self.overflow.push(pid as u32);
            self.overflow_min = self.overflow_min.min(b);
        } else {
            self.file_into_bucket(pid as u32, b);
        }
    }

    #[inline]
    fn file_into_bucket(&mut self, pid: u32, bucket_abs: u64) {
        let idx = (bucket_abs & self.mask) as usize;
        let head = &mut self.heads[idx];
        let prev = if head.0 == self.stamp { head.1 } else { NONE };
        *head = (self.stamp, pid);
        self.slots[pid as usize].next = prev;
        self.in_buckets += 1;
    }

    /// Moves overflow events whose buckets now fall inside the horizon
    /// into their buckets. Called when the cursor catches up with the
    /// overflow.
    fn migrate_overflow(&mut self) {
        let horizon = self.cur_abs.saturating_add(self.mask + 1);
        let mut new_min = u64::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            let pid = self.overflow[i];
            let b = self.slots[pid as usize].bucket_abs;
            if b < horizon {
                self.overflow.swap_remove(i);
                self.file_into_bucket(pid, b);
            } else {
                new_min = new_min.min(b);
                i += 1;
            }
        }
        self.overflow_min = new_min;
    }

    /// Finds the minimum event: advances the cursor over empty buckets,
    /// migrating overflow as it goes, then scans the first non-empty
    /// bucket for the exact `(time, seq)` minimum. Returns
    /// `(pid, predecessor)` for O(1) unlinking.
    fn scan_min(&mut self) -> Option<(u32, u32)> {
        if let Some(hit) = self.cached_min {
            return Some(hit);
        }
        if self.is_empty() {
            return None;
        }
        loop {
            if self.in_buckets == 0 {
                // Everything lives in the overflow: jump straight to its
                // first bucket and migrate.
                self.cur_abs = self.overflow_min;
                self.migrate_overflow();
                continue;
            }
            if self.overflow_min <= self.cur_abs {
                self.migrate_overflow();
            }
            let idx = (self.cur_abs & self.mask) as usize;
            let head = self.heads[idx];
            if head.0 == self.stamp && head.1 != NONE {
                // Scan the bucket's list for the smallest key, but only
                // among events of *this* absolute bucket (an index can
                // also hold horizon-edge events one rotation ahead).
                let mut best = NONE;
                let mut best_prev = NONE;
                let mut best_key = u128::MAX;
                let mut prev = NONE;
                let mut cur = head.1;
                let mut saw_current = false;
                while cur != NONE {
                    let slot = &self.slots[cur as usize];
                    if slot.bucket_abs == self.cur_abs {
                        saw_current = true;
                        let k = slot.ev.key();
                        if k < best_key {
                            best_key = k;
                            best = cur;
                            best_prev = prev;
                        }
                    }
                    prev = cur;
                    cur = slot.next;
                }
                if saw_current {
                    self.cached_min = Some((best, best_prev));
                    return Some((best, best_prev));
                }
            }
            self.cur_abs += 1;
        }
    }

    /// The earliest event, if any (cached until the next mutation).
    #[inline]
    pub fn peek(&mut self) -> Option<Event> {
        self.scan_min().map(|(pid, _)| self.slots[pid as usize].ev)
    }

    /// Unlinks the event of `pid` given its list predecessor.
    #[inline]
    fn unlink(&mut self, pid: u32, prev: u32) {
        let idx = (self.slots[pid as usize].bucket_abs & self.mask) as usize;
        let next = self.slots[pid as usize].next;
        if prev == NONE {
            self.heads[idx].1 = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        self.slots[pid as usize].queued = false;
        self.in_buckets -= 1;
        self.cached_min = None;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        let (pid, prev) = self.scan_min()?;
        let ev = self.slots[pid as usize].ev;
        self.unlink(pid, prev);
        Some(ev)
    }

    /// Replaces the earliest event with `ev` — the O(1) hold operation.
    /// (Unlike [`crate::queue::EventQueue::replace_top`] this does not
    /// return the new minimum: computing it costs a scan, and the
    /// engine's loop re-peeks at the top of the next iteration anyway.)
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty.
    pub fn replace_top(&mut self, ev: Event) {
        let (pid, prev) = self.scan_min().expect("replace_top on empty queue");
        self.unlink(pid, prev);
        self.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use proptest::prelude::*;

    fn drain(q: &mut CalendarQueue) -> Vec<Event> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.reset(5, 0.8);
        for (i, t) in [5.0, 1.0, 3.0, 2.0, 4.0].iter().enumerate() {
            q.push(Event::new(*t, i as u64, i as u32));
        }
        let times: Vec<f64> = drain(&mut q).iter().map(|e| e.time()).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn equal_times_break_by_seq() {
        let mut q = CalendarQueue::new();
        q.reset(3, 1.0);
        q.push(Event::new(1.0, 7, 0));
        q.push(Event::new(1.0, 3, 1));
        q.push(Event::new(1.0, 5, 2));
        let seqs: Vec<u64> = drain(&mut q).iter().map(|e| e.seq()).collect();
        assert_eq!(seqs, vec![3, 5, 7]);
    }

    #[test]
    fn far_future_events_go_through_overflow() {
        let mut q = CalendarQueue::new();
        q.reset(4, 0.01); // horizon = 16-ish buckets * 0.01
        q.push(Event::new(0.0, 0, 0));
        q.push(Event::new(1000.0, 1, 1));
        q.push(Event::new(2.0f64.powi(80), 2, 2));
        q.push(Event::new(0.005, 3, 3));
        let order: Vec<u32> = drain(&mut q).iter().map(|e| e.pid()).collect();
        assert_eq!(order, vec![0, 3, 1, 2]);
    }

    #[test]
    fn reset_reuses_without_leaking_state() {
        let mut q = CalendarQueue::new();
        for trial in 0..50u64 {
            q.reset(8, 0.25);
            for pid in 0..8u32 {
                q.push(Event::new(trial as f64 + pid as f64 * 0.1, pid as u64, pid));
            }
            let drained = drain(&mut q);
            assert_eq!(drained.len(), 8, "trial {trial}");
            assert!(drained.windows(2).all(|w| w[0].key_cmp(&w[1]).is_lt()));
        }
    }

    #[test]
    fn degenerate_delta_is_still_correct() {
        for delta in [f64::NAN, 0.0, -3.0, f64::INFINITY, 1e300, 1e-300] {
            let mut q = CalendarQueue::new();
            q.reset(4, delta);
            for pid in 0..4u32 {
                q.push(Event::new(4.0 - pid as f64, pid as u64, pid));
            }
            let pids: Vec<u32> = drain(&mut q).iter().map(|e| e.pid()).collect();
            assert_eq!(pids, vec![3, 2, 1, 0], "delta {delta}");
        }
    }

    #[test]
    #[should_panic(expected = "replace_top on empty queue")]
    fn replace_top_empty_panics() {
        let mut q = CalendarQueue::new();
        q.reset(1, 1.0);
        q.replace_top(Event::new(1.0, 1, 0));
    }

    proptest! {
        /// Differential test against the heap under hold-model traffic:
        /// identical pop sequences for any increments (including zero,
        /// huge, and mixed magnitudes) and any bucket width.
        #[test]
        fn hold_traffic_matches_heap(
            starts in proptest::collection::vec(0.0f64..10.0, 1..40),
            incs in proptest::collection::vec(0.0f64..1e3, 0..200),
            delta_exp in -12i32..12,
            huge_tail in any::<bool>(),
        ) {
            let n = starts.len();
            let mut cal = CalendarQueue::new();
            cal.reset(n, 2.0f64.powi(delta_exp));
            let mut heap = EventQueue::new();
            let mut seq = 0u64;
            for (pid, &t) in starts.iter().enumerate() {
                let e = Event::new(t, seq, pid as u32);
                seq += 1;
                cal.push(e);
                heap.push(e);
            }
            for (i, &inc) in incs.iter().enumerate() {
                let top_h = *heap.peek().unwrap();
                let top_c = cal.peek().unwrap();
                prop_assert_eq!(top_h, top_c, "diverged before hold {}", i);
                // Occasionally produce an extreme jump to exercise the
                // overflow path.
                let inc = if huge_tail && i % 13 == 0 { inc * 1e12 } else { inc };
                let new = Event::new(top_h.time() + inc, seq, top_h.pid());
                seq += 1;
                heap.pop();
                heap.push(new);
                cal.replace_top(new);
            }
            let heap_rest: Vec<Event> = std::iter::from_fn(|| heap.pop()).collect();
            let cal_rest: Vec<Event> = std::iter::from_fn(|| cal.pop()).collect();
            prop_assert_eq!(heap_rest, cal_rest);
        }

        /// Mixed push/pop traffic (no hold structure) also matches,
        /// including events pushed behind the cursor (the defensive
        /// move-back path).
        #[test]
        fn push_pop_traffic_matches_heap(
            ops in proptest::collection::vec((any::<bool>(), 0.0f64..50.0), 1..120),
        ) {
            let n = ops.len();
            let mut cal = CalendarQueue::new();
            cal.reset(n, 0.5);
            let mut heap = EventQueue::new();
            let mut next_pid = 0u32;
            let mut seq = 0u64;
            for &(is_pop, t) in &ops {
                if is_pop {
                    prop_assert_eq!(heap.pop(), cal.pop());
                } else {
                    let e = Event::new(t, seq, next_pid);
                    next_pid += 1;
                    seq += 1;
                    heap.push(e);
                    cal.push(e);
                }
            }
            let heap_rest: Vec<Event> = std::iter::from_fn(|| heap.pop()).collect();
            let cal_rest: Vec<Event> = std::iter::from_fn(|| cal.pop()).collect();
            prop_assert_eq!(heap_rest, cal_rest);
        }
    }
}
