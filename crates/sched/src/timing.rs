//! The noisy-scheduling timing model (§3.1).
//!
//! The adversary chooses, for each process `i`:
//!
//! 1. an arbitrary starting time `Δ_i0` ([`StartTimes`]);
//! 2. a non-negative delay `Δ_ij ≤ M` before each operation
//!    ([`DelayPolicy`]);
//! 3. the common noise distribution of the i.i.d. extra delays `X_ij`
//!    ([`crate::noise::OpNoise`]; per operation type, not restricted
//!    beyond non-negativity and non-degeneracy).
//!
//! With random halting failures (§3.1.2), each operation additionally
//! carries `H_ij ∈ {0, ∞}` with `P[H_ij = ∞] = h(n)` ([`FailureModel`]).
//! The time of process `i`'s `j`-th operation is
//! `S'_ij = Δ_i0 + Σ_{k≤j} (Δ_ik + X_ik + H_ik)`; once any `H` is
//! infinite, the process never performs another operation.
//!
//! [`TimingModel`] bundles all four choices. The discrete-event engine
//! holds one per simulation and calls [`TimingModel::start_for`] once per
//! process and [`TimingModel::op_increment`] once per operation.

use rand::{Rng, RngExt};

use nc_memory::OpKind;

use crate::noise::{Noise, OpNoise};

/// The adversary's choice of starting times `Δ_i0`.
#[derive(Clone, PartialEq, Debug)]
pub enum StartTimes {
    /// All processes start at time 0, plus an independent uniform dither
    /// in `[0, dither)`. The paper's Figure 1 simulations use
    /// `dither = 1e-8` to rule out simultaneous operations.
    Simultaneous {
        /// Width of the uniform dither window.
        dither: f64,
    },
    /// Process `i` starts at `i · gap`, plus a uniform dither.
    ///
    /// Models staggered arrivals — e.g. one early process racing ahead of
    /// late joiners, the regime where lean-consensus's adaptivity shows.
    Staggered {
        /// Gap between consecutive processes' starts.
        gap: f64,
        /// Width of the uniform dither window.
        dither: f64,
    },
    /// Explicit per-process starting times (the fully general adversary).
    /// Process `i` uses entry `i`; processes beyond the vector start at 0.
    Explicit(Vec<f64>),
}

impl StartTimes {
    /// The paper's Figure 1 setting: common start, `1e-8` dither.
    pub const fn dithered() -> Self {
        StartTimes::Simultaneous { dither: 1e-8 }
    }

    /// Draws the starting time `Δ_i0` for process `pid`.
    pub fn start_for<R: Rng>(&self, pid: usize, rng: &mut R) -> f64 {
        match self {
            StartTimes::Simultaneous { dither } => dither * rng.random::<f64>(),
            StartTimes::Staggered { gap, dither } => {
                pid as f64 * gap + dither * rng.random::<f64>()
            }
            StartTimes::Explicit(starts) => starts.get(pid).copied().unwrap_or(0.0),
        }
    }
}

impl Default for StartTimes {
    fn default() -> Self {
        StartTimes::dithered()
    }
}

/// The adversary's per-operation delays `Δ_ij`, bounded by the model
/// constant `M` ([`DelayPolicy::bound_m`]).
///
/// These are the *deterministic* part of the schedule — the paper's
/// analysis must hold for every choice here, so the experiment suite
/// exercises several shapes.
#[derive(Clone, PartialEq, Debug, Default)]
pub enum DelayPolicy {
    /// No adversarial delay (`Δ_ij = 0`): pure noise.
    #[default]
    None,
    /// The same fixed delay before every operation of every process.
    Constant {
        /// The delay; also the model bound `M`.
        delta: f64,
    },
    /// Every `period`-th operation of each process suffers an extra
    /// delay — a bursty adversary that stalls processes rhythmically.
    Periodic {
        /// Burst period in operations (≥ 1).
        period: u64,
        /// Extra delay applied on burst operations.
        extra: f64,
    },
    /// A distinct constant delay per process (handicapping chosen
    /// processes). Processes beyond the vector get zero.
    PerProcess(Vec<f64>),
    /// The §10 *statistical adversary*: no per-operation bound, only the
    /// budget constraint `Σ_{j≤r} Δ_ij ≤ r·m`. This policy saves its
    /// budget for `period - 1` operations and spends the accumulated
    /// `period · m` in one burst — a Zeno-flavoured schedule the paper
    /// conjectures still yields O(log n) termination (its proof of
    /// Lemma 9 does not cover it).
    SaveAndSpend {
        /// The per-operation *average* budget `m`.
        m: f64,
        /// Burst period in operations (≥ 1): delays `0, …, 0, period·m`.
        period: u64,
    },
}

impl DelayPolicy {
    /// The delay `Δ_ij` for process `pid`'s operation number `op_index`
    /// (1-based, matching the paper's `j ≥ 1`).
    pub fn delta(&self, pid: usize, op_index: u64) -> f64 {
        match self {
            DelayPolicy::None => 0.0,
            DelayPolicy::Constant { delta } => *delta,
            DelayPolicy::Periodic { period, extra } => {
                let p = (*period).max(1);
                if op_index.is_multiple_of(p) {
                    *extra
                } else {
                    0.0
                }
            }
            DelayPolicy::PerProcess(deltas) => deltas.get(pid).copied().unwrap_or(0.0),
            DelayPolicy::SaveAndSpend { m, period } => {
                let p = (*period).max(1);
                if op_index.is_multiple_of(p) {
                    *m * p as f64
                } else {
                    0.0
                }
            }
        }
    }

    /// The model constant `M`: an upper bound on every `Δ_ij` this policy
    /// produces. For [`DelayPolicy::SaveAndSpend`] this is the burst
    /// size — note that policy deliberately respects only the §10
    /// *statistical* constraint `Σ_{j≤r} Δ_ij ≤ r·m`, not a useful
    /// per-operation bound.
    pub fn bound_m(&self) -> f64 {
        match self {
            DelayPolicy::None => 0.0,
            DelayPolicy::Constant { delta } => *delta,
            DelayPolicy::Periodic { extra, .. } => *extra,
            DelayPolicy::PerProcess(deltas) => deltas.iter().copied().fold(0.0, f64::max),
            DelayPolicy::SaveAndSpend { m, period } => *m * (*period).max(1) as f64,
        }
    }
}

/// Random halting failures: `H_ij = ∞` with probability `h(n)` per
/// operation, independently (§3.1.2).
///
/// The paper's analysis assumes `h(n) = o(1)`; the experiments sweep
/// constants. Adaptive (schedule-dependent) crashes are *not* expressible
/// here by design — they live in [`crate::adversary::CrashAdversary`] and
/// are applied by the engine.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum FailureModel {
    /// No random failures (`h(n) = 0`).
    #[default]
    None,
    /// Each operation independently halts the process with probability
    /// `per_op`.
    Random {
        /// The per-operation halting probability `h(n)`, in `[0, 1]`.
        per_op: f64,
    },
}

impl FailureModel {
    /// Samples `H_ij`: `true` means the process halts before this
    /// operation (the operation never occurs).
    ///
    /// # Panics
    ///
    /// Panics if the configured probability is outside `[0, 1]`.
    pub fn halts<R: Rng>(&self, rng: &mut R) -> bool {
        match *self {
            FailureModel::None => false,
            FailureModel::Random { per_op } => {
                assert!(
                    (0.0..=1.0).contains(&per_op),
                    "halting probability must be in [0,1]"
                );
                per_op > 0.0 && rng.random::<f64>() < per_op
            }
        }
    }

    /// The per-operation halting probability.
    pub fn per_op(&self) -> f64 {
        match *self {
            FailureModel::None => 0.0,
            FailureModel::Random { per_op } => per_op,
        }
    }
}

/// The complete noisy-scheduling timing model: everything the adversary
/// and nature choose about *when* operations happen.
///
/// # Example
///
/// ```
/// use nc_sched::{Noise, TimingModel};
/// use rand::SeedableRng;
///
/// let model = TimingModel::figure1(Noise::Exponential { mean: 1.0 });
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
/// let start = model.start.start_for(0, &mut rng);
/// assert!(start < 1e-8);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct TimingModel {
    /// Starting times `Δ_i0`.
    pub start: StartTimes,
    /// Adversarial per-operation delays `Δ_ij`.
    pub delay: DelayPolicy,
    /// Operation noise `X_ij`.
    pub noise: OpNoise,
    /// Random halting failures `H_ij`.
    pub failures: FailureModel,
}

impl TimingModel {
    /// The Figure 1 configuration for a given interarrival distribution:
    /// common dithered start, no adversarial delays, no failures.
    pub fn figure1(noise: Noise) -> Self {
        TimingModel {
            start: StartTimes::dithered(),
            delay: DelayPolicy::None,
            noise: OpNoise::same(noise),
            failures: FailureModel::None,
        }
    }

    /// Replaces the failure model (builder-style).
    pub fn with_failures(mut self, failures: FailureModel) -> Self {
        self.failures = failures;
        self
    }

    /// Replaces the delay policy (builder-style).
    pub fn with_delay(mut self, delay: DelayPolicy) -> Self {
        self.delay = delay;
        self
    }

    /// Replaces the start-time policy (builder-style).
    pub fn with_start(mut self, start: StartTimes) -> Self {
        self.start = start;
        self
    }

    /// Draws the starting time `Δ_i0` of process `pid`.
    pub fn start_for<R: Rng>(&self, pid: usize, rng: &mut R) -> f64 {
        self.start.start_for(pid, rng)
    }

    /// Draws the time increment `Δ_ij + X_ij + H_ij` for process `pid`'s
    /// operation number `op_index` (1-based) of kind `kind`.
    ///
    /// Returns `None` if the process halts (`H_ij = ∞`); otherwise the
    /// finite increment.
    pub fn op_increment<R: Rng>(
        &self,
        pid: usize,
        op_index: u64,
        kind: OpKind,
        noise_rng: &mut R,
        failure_rng: &mut R,
    ) -> Option<f64> {
        if self.failures.halts(failure_rng) {
            return None;
        }
        Some(self.delay.delta(pid, op_index) + self.noise.sample(kind, noise_rng))
    }
}

impl Default for TimingModel {
    /// The Figure 1 configuration with exponential(1) noise — the
    /// "schedule one uniformly random process per unit time" model.
    fn default() -> Self {
        TimingModel::figure1(Noise::Exponential { mean: 1.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn dithered_starts_are_tiny_and_distinct() {
        let st = StartTimes::dithered();
        let mut r = rng();
        let starts: Vec<f64> = (0..100).map(|i| st.start_for(i, &mut r)).collect();
        for &s in &starts {
            assert!((0.0..1e-8).contains(&s));
        }
        let mut sorted = starts.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        assert_eq!(sorted.len(), starts.len(), "dithered starts collided");
    }

    #[test]
    fn staggered_starts_grow_with_pid() {
        let st = StartTimes::Staggered {
            gap: 10.0,
            dither: 0.0,
        };
        let mut r = rng();
        assert_eq!(st.start_for(0, &mut r), 0.0);
        assert_eq!(st.start_for(3, &mut r), 30.0);
    }

    #[test]
    fn explicit_starts_fall_back_to_zero() {
        let st = StartTimes::Explicit(vec![5.0, 7.0]);
        let mut r = rng();
        assert_eq!(st.start_for(0, &mut r), 5.0);
        assert_eq!(st.start_for(1, &mut r), 7.0);
        assert_eq!(st.start_for(2, &mut r), 0.0);
    }

    #[test]
    fn save_and_spend_respects_the_statistical_budget() {
        // Σ_{j<=r} Δ_ij <= r·m for every prefix r.
        let policy = DelayPolicy::SaveAndSpend { m: 0.5, period: 8 };
        let mut total = 0.0;
        for op in 1..=200u64 {
            total += policy.delta(0, op);
            assert!(
                total <= 0.5 * op as f64 + 1e-12,
                "budget violated at op {op}: {total}"
            );
        }
        // And the budget is actually spent (bursts of period·m).
        assert_eq!(policy.delta(0, 8), 4.0);
        assert_eq!(policy.delta(0, 7), 0.0);
        assert_eq!(policy.bound_m(), 4.0);
    }

    #[test]
    fn delay_policies_respect_bound_m() {
        let policies = [
            DelayPolicy::None,
            DelayPolicy::Constant { delta: 0.5 },
            DelayPolicy::Periodic {
                period: 3,
                extra: 2.0,
            },
            DelayPolicy::PerProcess(vec![0.1, 0.9, 0.4]),
            DelayPolicy::SaveAndSpend { m: 0.5, period: 4 },
        ];
        for policy in policies {
            let m = policy.bound_m();
            for pid in 0..5 {
                for op in 1..20u64 {
                    let d = policy.delta(pid, op);
                    assert!(d >= 0.0 && d <= m, "{policy:?} delta {d} > M {m}");
                }
            }
        }
    }

    #[test]
    fn periodic_delays_hit_every_period() {
        let p = DelayPolicy::Periodic {
            period: 4,
            extra: 1.5,
        };
        assert_eq!(p.delta(0, 4), 1.5);
        assert_eq!(p.delta(0, 8), 1.5);
        assert_eq!(p.delta(0, 5), 0.0);
        // period 0 is clamped to 1 (every op)
        let always = DelayPolicy::Periodic {
            period: 0,
            extra: 1.0,
        };
        assert_eq!(always.delta(0, 1), 1.0);
    }

    #[test]
    fn failure_model_none_never_halts() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(!FailureModel::None.halts(&mut r));
        }
    }

    #[test]
    fn failure_model_rate_is_respected() {
        let fm = FailureModel::Random { per_op: 0.1 };
        let mut r = rng();
        let n = 100_000;
        let halts = (0..n).filter(|_| fm.halts(&mut r)).count();
        let frac = halts as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "halt fraction {frac}");
        assert_eq!(fm.per_op(), 0.1);
        assert_eq!(FailureModel::None.per_op(), 0.0);
    }

    #[test]
    fn failure_model_zero_probability_never_halts() {
        let fm = FailureModel::Random { per_op: 0.0 };
        let mut r = rng();
        for _ in 0..1000 {
            assert!(!fm.halts(&mut r));
        }
    }

    #[test]
    #[should_panic(expected = "halting probability")]
    fn failure_model_invalid_probability_panics() {
        FailureModel::Random { per_op: 1.5 }.halts(&mut rng());
    }

    #[test]
    fn op_increment_combines_delay_and_noise() {
        let model = TimingModel::figure1(Noise::Constant { value: 1.0 })
            .with_delay(DelayPolicy::Constant { delta: 0.25 });
        let mut nr = rng();
        let mut fr = rng();
        let inc = model
            .op_increment(0, 1, OpKind::Read, &mut nr, &mut fr)
            .unwrap();
        assert_eq!(inc, 1.25);
    }

    #[test]
    fn op_increment_none_when_halted() {
        let model = TimingModel::default().with_failures(FailureModel::Random { per_op: 1.0 });
        let mut nr = rng();
        let mut fr = rng();
        assert_eq!(
            model.op_increment(0, 1, OpKind::Write, &mut nr, &mut fr),
            None
        );
    }

    #[test]
    fn builders_replace_fields() {
        let m = TimingModel::default()
            .with_start(StartTimes::Staggered {
                gap: 1.0,
                dither: 0.0,
            })
            .with_delay(DelayPolicy::Constant { delta: 0.5 })
            .with_failures(FailureModel::Random { per_op: 0.01 });
        assert_eq!(m.delay.bound_m(), 0.5);
        assert_eq!(m.failures.per_op(), 0.01);
        assert!(matches!(m.start, StartTimes::Staggered { .. }));
    }

    #[test]
    fn default_model_is_figure1_exponential() {
        let m = TimingModel::default();
        assert_eq!(
            m.noise.for_kind(OpKind::Read),
            &Noise::Exponential { mean: 1.0 }
        );
        assert_eq!(m.failures, FailureModel::None);
        assert_eq!(m.delay, DelayPolicy::None);
    }
}
