//! Scheduling models for the `noisy-consensus` workspace.
//!
//! Aspnes's *Fast Deterministic Consensus in a Noisy Environment*
//! (PODC 2000) proves termination of lean-consensus under two environment
//! models, both of which this crate implements as data + policy objects
//! that the discrete-event engine (`nc-engine`) consumes:
//!
//! * **Noisy scheduling** (§3.1): process `i`'s `j`-th operation occurs at
//!   `S_ij = Δ_i0 + Σ_{k≤j} (Δ_ik + X_ik + H_ik)` where the adversary
//!   picks the start times `Δ_i0` ([`StartTimes`]), bounded delays
//!   `Δ_ij ≤ M` ([`DelayPolicy`]), and the noise distribution of the
//!   i.i.d. `X_ij` ([`Noise`], [`OpNoise`]); `H_ij ∈ {0, ∞}` models random
//!   halting failures ([`FailureModel`]). [`TimingModel`] bundles the four.
//! * **Hybrid quantum + priority scheduling** (§3.2, §7): a uniprocessor
//!   with a pre-emptive scheduler; [`hybrid`] defines the legality rules
//!   (who may run next) and adversarial/benign pick policies.
//!
//! For safety testing — where the paper's guarantees must hold under *any*
//! schedule — [`adversary`] provides untimed schedule adversaries
//! (round-robin, random interleaving, anti-leader, replayable scripts)
//! and crash adversaries (including the adaptive leader-killer discussed
//! in §10).
//!
//! # Example: the Figure 1 noise suite
//!
//! ```
//! use nc_sched::Noise;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! for (name, noise) in Noise::figure1_suite() {
//!     let x = noise.sample(&mut rng);
//!     assert!(x >= 0.0, "{name} produced a negative delay");
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod calendar;
pub mod hybrid;
pub mod noise;
pub mod queue;
pub mod rng;
pub mod select;
pub mod timing;
pub mod tree;

pub use adversary::{Adversary, CrashAdversary, ProcView};
pub use calendar::CalendarQueue;
pub use hybrid::{HybridPolicy, HybridSpec, HybridView};
pub use noise::{Noise, OpNoise};
pub use queue::{Event as QueuedEvent, EventQueue};
pub use rng::stream_rng;
pub use select::{QueueKind, QueuePolicy, SimQueue};
pub use timing::{DelayPolicy, FailureModel, StartTimes, TimingModel};
pub use tree::EventTree;
