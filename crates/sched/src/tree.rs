//! A branchless **tournament tree** over per-process event slots — an
//! alternative event queue kept for benchmarking and future hardware.
//!
//! Motivation: comparison-based queues spend much of the simulation hot
//! loop in **branch mispredicts** — every comparison on random event
//! times is a coin-flip branch. This structure removes data-dependent
//! branches entirely:
//!
//! * An [`Event`] is already a 16-byte integer
//!   sort key `(mapped time, seq, pid)` — and its **low 24 bits are the
//!   pid**. So `min` over the `u128` keys is simultaneously the
//!   earliest event *and* its owner: no index bookkeeping at all.
//! * The engine holds at most one event per process, so the tree's
//!   leaves are a **fixed pid-indexed array** (`u128::MAX` = no event).
//! * Internal nodes store the min of a 16-slot block. Updating a leaf
//!   recomputes one balanced 16-wide `min` reduction per level — pure
//!   `cmp`+`select` chains the compiler lowers without a single
//!   data-dependent branch. Peek reads the root.
//!
//! **Measured outcome** (see `nc-bench`'s `event_queue` bench and
//! `BENCH_engine.json`): on the current reference machine the zero-
//! mispredict property does not pay for the `u128::min` dependency
//! chains — each select is a multi-µop `cmp`/`sbb`/`cmov` sequence with
//! ~4-6 cycle latency, serialized along the reduction — and the 4-ary
//! tournament-select heap ([`crate::queue::EventQueue`]) wins, so the
//! engine uses the heap. The tree is kept (fully tested, differentially
//! pinned to the heap) because the trade flips on wider cores or with
//! SIMD `min`, and as the measurement record for that decision.
//!
//! Determinism: `min` over total integer keys is exact — the pop
//! sequence is identical to every other queue in this crate (pinned by
//! differential property tests).

use crate::queue::Event;

/// Fan-out of the reduction tree (power of two). Sixteen 16-byte keys
/// span four cache lines and reduce in fifteen `min` ops arranged as a
/// depth-4 balanced tree — wider fan-out halves the number of levels
/// (and their serial store-to-load dependencies) at the same total
/// comparison count.
const ARITY: usize = 16;
const ARITY_LOG2: u32 = ARITY.trailing_zeros();

/// Sentinel key for "no event in this slot". Real events cannot collide
/// with it: their time keys come from finite `f64`s, which never map to
/// all-ones.
const EMPTY: u128 = u128::MAX;

/// A fixed-capacity tournament tree of at most one event per process.
///
/// [`EventTree::reset`] sizes it for pids `0..n`; [`EventTree::set`]
/// inserts or reschedules a process's event, [`EventTree::remove`]
/// clears one, [`EventTree::peek`]/[`EventTree::pop`] read the global
/// earliest.
///
/// # Example
///
/// ```
/// use nc_sched::queue::Event;
/// use nc_sched::tree::EventTree;
///
/// let mut q = EventTree::new();
/// q.reset(2);
/// q.set(Event::new(2.0, 1, 0));
/// q.set(Event::new(1.0, 2, 1));
/// assert_eq!(q.peek().unwrap().pid(), 1);
/// q.set(Event::new(3.0, 3, 1)); // reschedule pid 1: the hold operation
/// assert_eq!(q.peek().unwrap().pid(), 0);
/// ```
#[derive(Debug, Default)]
pub struct EventTree {
    /// `levels[0]` = pid-indexed leaf keys (padded with [`EMPTY`] to a
    /// multiple of [`ARITY`]); each higher level holds the 8-block mins
    /// of the one below; the last level is a single root.
    levels: Vec<Vec<u128>>,
    len: usize,
    /// Reusable dirty-index buffer for [`EventTree::set_batch`].
    scratch: Vec<usize>,
}

/// Balanced 16-wide `min` reduction of one block: latency depth 4 (vs 15
/// for a running min), every `min` a branchless compare+select.
#[inline(always)]
fn block_min(b: &[u128]) -> u128 {
    let m01 = b[0].min(b[1]);
    let m23 = b[2].min(b[3]);
    let m45 = b[4].min(b[5]);
    let m67 = b[6].min(b[7]);
    let m89 = b[8].min(b[9]);
    let mab = b[10].min(b[11]);
    let mcd = b[12].min(b[13]);
    let mef = b[14].min(b[15]);
    m01.min(m23)
        .min(m45.min(m67))
        .min(m89.min(mab).min(mcd.min(mef)))
}

impl EventTree {
    /// An empty tree; size it with [`EventTree::reset`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the tree and sizes it for pids `0..n`, reusing existing
    /// storage when the capacity matches.
    pub fn reset(&mut self, n: usize) {
        let mut width = n.max(1).next_multiple_of(ARITY);
        let mut depth = 0;
        loop {
            if self.levels.len() == depth {
                self.levels.push(Vec::new());
            }
            let level = &mut self.levels[depth];
            level.clear();
            level.resize(width, EMPTY);
            depth += 1;
            if width == 1 {
                break;
            }
            width = (width / ARITY).max(1);
            if width > 1 {
                width = width.next_multiple_of(ARITY);
            }
        }
        self.levels.truncate(depth);
        self.len = 0;
    }

    /// Number of queued events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The earliest event, if any — a single root read.
    #[inline]
    pub fn peek(&self) -> Option<Event> {
        let root = self.levels[self.levels.len() - 1][0];
        if root == EMPTY {
            None
        } else {
            Some(Event {
                time_key: (root >> 64) as u64,
                seq_pid: root as u64,
            })
        }
    }

    /// Inserts or reschedules the event of `ev.pid()` — the engine's
    /// branchless hold operation: one leaf write plus one 8-wide `min`
    /// reduction per level.
    #[inline]
    pub fn set(&mut self, ev: Event) {
        let pid = ev.pid() as usize;
        debug_assert!(pid < self.levels[0].len(), "pid {pid} out of range");
        if self.levels[0][pid] == EMPTY {
            self.len += 1;
        }
        self.update(pid, ev.key());
    }

    /// Inserts or reschedules a whole batch of events, equivalent to
    /// [`EventTree::set`] on each in order (last write per pid wins).
    ///
    /// Sharing is the point: the batched engine core scatters K
    /// successor events at once, and events close in time land in
    /// neighbouring leaf blocks, so each dirty ancestor block is
    /// recomputed **once per level** instead of once per event — for a
    /// K-event batch inside one 16-leaf block that is `depth` reductions
    /// instead of `K · depth`.
    pub fn set_batch(&mut self, evs: &[Event]) {
        match evs {
            [] => return,
            [ev] => {
                self.set(*ev);
                return;
            }
            _ => {}
        }
        let mut dirty = std::mem::take(&mut self.scratch);
        dirty.clear();
        for ev in evs {
            let pid = ev.pid() as usize;
            debug_assert!(pid < self.levels[0].len(), "pid {pid} out of range");
            if self.levels[0][pid] == EMPTY {
                self.len += 1;
            }
            self.levels[0][pid] = ev.key();
            dirty.push(pid);
        }
        for l in 0..self.levels.len() - 1 {
            for idx in dirty.iter_mut() {
                *idx >>= ARITY_LOG2;
            }
            dirty.sort_unstable();
            dirty.dedup();
            let (lo, hi) = self.levels.split_at_mut(l + 1);
            let level = &lo[l];
            for &parent in &dirty {
                let block = parent << ARITY_LOG2;
                hi[0][parent] = block_min(&level[block..block + ARITY]);
            }
        }
        self.scratch = dirty;
    }

    /// Removes the event of `pid`, if present.
    #[inline]
    pub fn remove(&mut self, pid: u32) {
        let pid = pid as usize;
        debug_assert!(pid < self.levels[0].len(), "pid {pid} out of range");
        if self.levels[0][pid] != EMPTY {
            self.len -= 1;
            self.update(pid, EMPTY);
        }
    }

    /// Removes and returns the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<Event> {
        let top = self.peek()?;
        self.len -= 1;
        self.update(top.pid() as usize, EMPTY);
        Some(top)
    }

    /// Writes `key` at leaf `idx` and recomputes the block min on every
    /// level above. The fixed-width reduction is the whole point: eight
    /// loads and seven `u128::min`s per level, no data-dependent
    /// branches anywhere.
    #[inline]
    fn update(&mut self, mut idx: usize, key: u128) {
        self.levels[0][idx] = key;
        for l in 0..self.levels.len() - 1 {
            let (lo, hi) = self.levels.split_at_mut(l + 1);
            let level = &lo[l];
            let block = idx & !(ARITY - 1);
            let m = block_min(&level[block..block + ARITY]);
            idx >>= ARITY_LOG2;
            hi[0][idx] = m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventTree::new();
        q.reset(5);
        for (i, t) in [5.0, 1.0, 3.0, 2.0, 4.0].iter().enumerate() {
            q.set(Event::new(*t, i as u64, i as u32));
        }
        assert_eq!(q.len(), 5);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time()).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_break_by_seq() {
        let mut q = EventTree::new();
        q.reset(3);
        q.set(Event::new(1.0, 7, 0));
        q.set(Event::new(1.0, 3, 1));
        q.set(Event::new(1.0, 5, 2));
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq()).collect();
        assert_eq!(seqs, vec![3, 5, 7]);
    }

    #[test]
    fn set_reschedules_in_place() {
        let mut q = EventTree::new();
        q.reset(2);
        q.set(Event::new(1.0, 1, 0));
        q.set(Event::new(2.0, 2, 1));
        q.set(Event::new(5.0, 3, 0)); // pid 0 rescheduled later
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek().unwrap().pid(), 1);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.pid()).collect();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn remove_clears_slots() {
        let mut q = EventTree::new();
        q.reset(4);
        for pid in 0..4u32 {
            q.set(Event::new(pid as f64, pid as u64, pid));
        }
        q.remove(0);
        q.remove(0); // idempotent
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek().unwrap().pid(), 1);
    }

    #[test]
    fn single_process_tree_works() {
        let mut q = EventTree::new();
        q.reset(1);
        assert!(q.peek().is_none());
        q.set(Event::new(0.5, 1, 0));
        assert_eq!(q.pop().unwrap().time(), 0.5);
        assert!(q.pop().is_none());
    }

    #[test]
    fn reset_reuses_and_clears() {
        let mut q = EventTree::new();
        for trial in 0..20 {
            let n = 1 + (trial * 37) % 500;
            q.reset(n);
            assert!(q.is_empty());
            for pid in 0..n as u32 {
                q.set(Event::new(pid as f64 * 0.25, pid as u64, pid));
            }
            assert_eq!(q.len(), n);
            assert_eq!(q.peek().unwrap().pid(), 0);
        }
    }

    #[test]
    fn large_n_boundaries() {
        // Exercise multi-level trees around padding boundaries.
        for n in [7usize, 8, 9, 63, 64, 65, 511, 512, 513, 4097] {
            let mut q = EventTree::new();
            q.reset(n);
            for pid in (0..n as u32).rev() {
                q.set(Event::new(pid as f64, pid as u64, pid));
            }
            let popped: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.pid()).collect();
            assert_eq!(popped, (0..n as u32).collect::<Vec<_>>(), "n = {n}");
        }
    }

    proptest! {
        /// Differential test against the heap under hold-model traffic.
        #[test]
        fn hold_traffic_matches_heap(
            starts in proptest::collection::vec(0.0f64..10.0, 1..60),
            incs in proptest::collection::vec(0.0f64..1e3, 0..200),
        ) {
            use crate::queue::EventQueue;
            let n = starts.len();
            let mut tree = EventTree::new();
            tree.reset(n);
            let mut heap = EventQueue::new();
            let mut seq = 0u64;
            for (pid, &t) in starts.iter().enumerate() {
                let e = Event::new(t, seq, pid as u32);
                seq += 1;
                tree.set(e);
                heap.push(e);
            }
            for (i, &inc) in incs.iter().enumerate() {
                let top_h = *heap.peek().unwrap();
                let top_t = tree.peek().unwrap();
                prop_assert_eq!(top_h, top_t, "diverged before hold {}", i);
                let new = Event::new(top_h.time() + inc, seq, top_h.pid());
                seq += 1;
                heap.pop();
                heap.push(new);
                tree.set(new);
            }
            let heap_rest: Vec<Event> = std::iter::from_fn(|| heap.pop()).collect();
            let tree_rest: Vec<Event> = std::iter::from_fn(|| tree.pop()).collect();
            prop_assert_eq!(heap_rest, tree_rest);
        }

        /// set_batch is exactly a loop of set, for any batch shape
        /// (singletons, duplicates, cross-block spreads, reschedules).
        #[test]
        fn set_batch_matches_set_loop(
            n in 1usize..300,
            batches in proptest::collection::vec(
                proptest::collection::vec((0usize..300, 0.0f64..100.0), 0..24),
                1..12,
            ),
        ) {
            let mut batched = EventTree::new();
            batched.reset(n);
            let mut looped = EventTree::new();
            looped.reset(n);
            let mut seq = 0u64;
            for batch in &batches {
                let evs: Vec<Event> = batch
                    .iter()
                    .map(|&(pid, t)| {
                        let e = Event::new(t, seq, (pid % n) as u32);
                        seq += 1;
                        e
                    })
                    .collect();
                for &e in &evs {
                    looped.set(e);
                }
                batched.set_batch(&evs);
                prop_assert_eq!(batched.len(), looped.len());
                prop_assert_eq!(batched.peek(), looped.peek());
            }
            let a: Vec<Event> = std::iter::from_fn(|| batched.pop()).collect();
            let b: Vec<Event> = std::iter::from_fn(|| looped.pop()).collect();
            prop_assert_eq!(a, b);
        }

        /// Arbitrary set/remove traffic keeps the root exact.
        #[test]
        fn set_remove_traffic_matches_model(
            ops in proptest::collection::vec((0usize..32, 0.0f64..50.0, any::<bool>()), 1..150),
        ) {
            let mut tree = EventTree::new();
            tree.reset(32);
            let mut model: Vec<Option<Event>> = vec![None; 32];
            let mut seq = 0u64;
            for &(pid, t, is_remove) in &ops {
                if is_remove {
                    tree.remove(pid as u32);
                    model[pid] = None;
                } else {
                    let e = Event::new(t, seq, pid as u32);
                    seq += 1;
                    tree.set(e);
                    model[pid] = Some(e);
                }
                let expect = model
                    .iter()
                    .flatten()
                    .copied()
                    .min_by(|a, b| a.key_cmp(b));
                prop_assert_eq!(tree.peek(), expect);
                prop_assert_eq!(tree.len(), model.iter().flatten().count());
            }
        }
    }
}
