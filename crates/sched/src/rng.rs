//! Deterministic per-stream random number generation.
//!
//! Every stochastic component of a simulation (each process's noise
//! stream, the failure coin, the backup protocol's local coins, the
//! schedule adversary) draws from its own independently-seeded generator,
//! derived from one run seed. This makes whole experiments reproducible
//! from a single `u64` and keeps streams independent of each other and of
//! iteration order.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — mixes a 64-bit value into a well-distributed
/// 64-bit value. Used to derive independent stream seeds from
/// `(run_seed, stream_id, salt)` triples.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates the deterministic RNG for stream `stream` with purpose tag
/// `salt`, derived from `run_seed`.
///
/// Distinct `(run_seed, stream, salt)` triples yield independent
/// generators; identical triples yield identical generators.
///
/// ```
/// use nc_sched::stream_rng;
/// use rand::RngExt;
///
/// let mut a = stream_rng(42, 0, 1);
/// let mut b = stream_rng(42, 0, 1);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
///
/// let mut c = stream_rng(42, 1, 1);
/// assert_ne!(stream_rng(42, 0, 1).random::<u64>(), c.random::<u64>());
/// ```
pub fn stream_rng(run_seed: u64, stream: u64, salt: u64) -> SmallRng {
    let mixed = splitmix64(
        splitmix64(run_seed ^ 0xA076_1D64_78BD_642F)
            ^ splitmix64(stream.wrapping_mul(0xE703_7ED1_A0B4_28DB))
            ^ salt.wrapping_mul(0x8EBC_6AF0_9C88_C6E3),
    );
    SmallRng::seed_from_u64(mixed)
}

/// Derives trial `t`'s run seed from a sweep's base seed — the standard
/// derivation for **new** scenarios and sweeps.
///
/// Each `(seed0, t, salt)` triple maps through the SplitMix64 finalizer
/// to a well-distributed, collision-free seed, so nearby trial indices
/// (and nearby base seeds) produce unrelated runs, and two sweeps in one
/// scenario can share a base seed without sharing any trial stream by
/// using distinct salts.
///
/// The 13 pre-existing experiments (E1–E14) intentionally do **not**
/// use this helper: they keep their historical affine derivations
/// (`seed0 + t * <stride>`, or E1's xor-multiply) verbatim, because the
/// committed golden CSVs and every recorded result pin those exact
/// per-trial seeds — switching them would invalidate all goldens for
/// zero scientific gain. New scenarios must use `trial_seed` (see
/// `docs/experiments.md`).
///
/// ```
/// use nc_sched::rng::trial_seed;
///
/// // Deterministic, and sensitive to every component.
/// assert_eq!(trial_seed(42, 7, 0), trial_seed(42, 7, 0));
/// assert_ne!(trial_seed(42, 7, 0), trial_seed(42, 8, 0));
/// assert_ne!(trial_seed(42, 7, 0), trial_seed(42, 7, 1));
/// assert_ne!(trial_seed(42, 7, 0), trial_seed(43, 7, 0));
/// ```
pub fn trial_seed(seed0: u64, t: u64, salt: u64) -> u64 {
    splitmix64(
        splitmix64(seed0 ^ 0x6C62_272E_07BB_0142)
            ^ splitmix64(t.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93),
    )
}

/// Well-known salts, so call sites across crates can't accidentally share
/// a stream.
pub mod salts {
    /// Per-process operation noise `X_ij`.
    pub const NOISE: u64 = 1;
    /// Per-process halting failures `H_ij`.
    pub const FAILURE: u64 = 2;
    /// Start-time dithering `Δ_i0`.
    pub const START: u64 = 3;
    /// Schedule adversary choices.
    pub const ADVERSARY: u64 = 4;
    /// Protocol-local coins (randomized baseline, backup shared coin).
    pub const COIN: u64 = 5;
    /// Value-fault injection streams (`nc_memory::FaultyMemory`,
    /// armed per trial by the engine through `MemStore::reseed`).
    pub const VALUE_FAULTS: u64 = 6;
    /// Network-fault injection (`nc_msg` message loss / duplication),
    /// salted independently of the delay-noise stream so arming faults
    /// never perturbs the delays a fault-free run would draw.
    pub const NET_FAULTS: u64 = 7;
    /// Gossip / anti-entropy scheduling jitter (`nc_msg` recovery plane).
    pub const GOSSIP: u64 = 8;
    /// Per-instance seed derivation in the `nc_service` instance table
    /// (`trial_seed(service_seed, instance_id, SERVICE)`), salted so a
    /// service and a `TrialSet` sweep sharing a base seed never share a
    /// per-run stream.
    pub const SERVICE: u64 = 9;
    /// Adversary-strategy seed derivation in `nc_adversary`: each
    /// strategy point in a tournament draws its seed via
    /// `trial_seed(tournament_seed, point_index, STRATEGY)`, and each
    /// trial under that point via `trial_seed(point_seed, t, STRATEGY)`,
    /// so two tournaments sharing a base seed — or a tournament and a
    /// plain `TrialSet` sweep — never share a per-run stream.
    pub const STRATEGY: u64 = 10;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_triple_same_stream() {
        let xs: Vec<u64> = (0..8).map(|_| 0).collect::<Vec<_>>();
        let mut a = stream_rng(1, 2, 3);
        let mut b = stream_rng(1, 2, 3);
        for _ in xs {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = stream_rng(1, 2, 3);
        let mut b = stream_rng(2, 2, 3);
        let va: Vec<u64> = (0..4).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_stream_id_different_stream() {
        let mut a = stream_rng(1, 2, 3);
        let mut b = stream_rng(1, 3, 3);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn different_salt_different_stream() {
        let mut a = stream_rng(1, 2, salts::NOISE);
        let mut b = stream_rng(1, 2, salts::FAILURE);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn trial_seed_is_deterministic_and_component_sensitive() {
        assert_eq!(trial_seed(1, 2, 3), trial_seed(1, 2, 3));
        // A small grid of (seed0, t, salt) triples must be collision
        // free — affine trial seeds (seed0 + t) collide across sweeps
        // (sweep 1 trial 1 == sweep 2 trial 0), which is exactly what
        // the helper exists to prevent.
        let mut seen = std::collections::HashSet::new();
        for seed0 in 0..8u64 {
            for t in 0..8u64 {
                for salt in 0..4u64 {
                    assert!(
                        seen.insert(trial_seed(seed0, t, salt)),
                        "collision at ({seed0}, {t}, {salt})"
                    );
                }
            }
        }
    }

    #[test]
    fn splitmix_distributes_small_inputs() {
        // Consecutive small seeds should not produce obviously correlated
        // outputs; check all bytes differ somewhere across a small sample.
        let outs: Vec<u64> = (0..16u64).map(splitmix64).collect();
        let mut all = outs.clone();
        all.dedup();
        assert_eq!(all.len(), outs.len(), "splitmix collided on small inputs");
    }
}
