//! Noise distributions for the noisy-scheduling model (§3.1, §9).
//!
//! The model places almost no restriction on the common distribution `F`
//! of the per-operation delays `X_ij`: it must produce non-negative values
//! and must not be concentrated on a point. This module implements every
//! distribution the paper uses:
//!
//! * the six interarrival distributions of the **Figure 1** simulations
//!   ([`Noise::figure1_suite`]);
//! * the **two-point** distribution `{1, 2}` of the Ω(log n) lower bound
//!   (Theorem 13);
//! * the **pathological** distribution `X = 2^{k²} w.p. 2^{-k}` of the
//!   unfairness result (Theorem 1);
//! * a **constant** (degenerate) distribution, which *violates* the model
//!   assumption and exists to demonstrate why the assumption is needed
//!   (lockstep executions never terminate).

use std::fmt;

use rand::{Rng, RngExt};

use nc_memory::OpKind;

/// Cap on `k` for [`Noise::Pathological`]: `2^{30²} = 2^{900}` is the
/// largest representable step before `2^{k²}` overflows `f64`
/// (`2^{31²} = 2^{961}` still fits but leaves no headroom for sums).
pub const PATHOLOGICAL_MAX_K: u32 = 30;

/// A non-negative delay distribution for operation noise `X_ij`.
///
/// All variants sample non-negative values. [`Noise::is_degenerate`]
/// reports whether the distribution is concentrated on a point (which the
/// model forbids; degenerate variants are provided for adversarial
/// demonstrations only).
///
/// # Example
///
/// ```
/// use nc_sched::Noise;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let noise = Noise::Exponential { mean: 1.0 };
/// let x = noise.sample(&mut rng);
/// assert!(x >= 0.0);
/// assert_eq!(noise.mean(), Some(1.0));
/// assert!(!noise.is_degenerate());
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Noise {
    /// Exponential with the given mean (a Poisson process with no initial
    /// delay — also equivalent, as the paper notes, to picking one process
    /// uniformly at random per time unit).
    Exponential {
        /// Mean of the distribution (`1/λ`). Must be positive.
        mean: f64,
    },
    /// A fixed delay plus an exponential: the paper's "0.5 + exponential
    /// with mean 0.5" delayed Poisson process.
    DelayedExponential {
        /// The fixed offset added to every sample. Must be non-negative.
        delay: f64,
        /// Mean of the exponential part. Must be positive.
        mean: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower endpoint. Must be non-negative.
        lo: f64,
        /// Exclusive upper endpoint. Must exceed `lo`.
        hi: f64,
    },
    /// Two values with equal probability (the paper's `2/3, 4/3` Figure 1
    /// entry and the `{1, 2}` distribution of Theorem 13).
    TwoPoint {
        /// First value. Must be non-negative.
        lo: f64,
        /// Second value. Must be non-negative.
        hi: f64,
    },
    /// Geometric on `{1, 2, 3, …}` with success probability `p`
    /// (`P[X = k] = p (1-p)^{k-1}`).
    Geometric {
        /// Success probability in `(0, 1)`.
        p: f64,
    },
    /// Normal rejected outside `(lo, hi)` — the paper's "normal with mean
    /// 1 and standard deviation 0.2, rejecting points outside (0, 2)".
    TruncatedNormal {
        /// Mean of the underlying normal.
        mean: f64,
        /// Standard deviation of the underlying normal. Must be positive.
        sd: f64,
        /// Lower rejection bound. Must be non-negative.
        lo: f64,
        /// Upper rejection bound. Must exceed `lo`.
        hi: f64,
    },
    /// A point mass. **Violates** the model's non-degeneracy assumption;
    /// kept for demonstrating lockstep non-termination.
    Constant {
        /// The single value produced. Must be non-negative.
        value: f64,
    },
    /// Theorem 1's unfairness distribution: `X = 2^{k²}` with probability
    /// `2^{-k}` for `k = 1, 2, …`, truncated at `k = max_k` (the leftover
    /// tail mass collapses onto `2^{max_k²}`). Its expectation diverges;
    /// even the truncated version has astronomically heavy tails.
    Pathological {
        /// Truncation point; clamped to [`PATHOLOGICAL_MAX_K`].
        max_k: u32,
    },
}

impl Noise {
    /// The six interarrival distributions of Figure 1, in the paper's
    /// listing order (§9), with the paper's labels.
    pub fn figure1_suite() -> [(&'static str, Noise); 6] {
        [
            (
                "normal(1,0.04)",
                Noise::TruncatedNormal {
                    mean: 1.0,
                    sd: 0.2,
                    lo: 0.0,
                    hi: 2.0,
                },
            ),
            (
                "2/3,4/3",
                Noise::TwoPoint {
                    lo: 2.0 / 3.0,
                    hi: 4.0 / 3.0,
                },
            ),
            (
                "0.5 + exponential(0.5)",
                Noise::DelayedExponential {
                    delay: 0.5,
                    mean: 0.5,
                },
            ),
            ("geometric(0.5)", Noise::Geometric { p: 0.5 }),
            ("uniform [0,2]", Noise::Uniform { lo: 0.0, hi: 2.0 }),
            ("exponential(1)", Noise::Exponential { mean: 1.0 }),
        ]
    }

    /// The `{1, 2}` equal-probability distribution used in the Ω(log n)
    /// lower bound of Theorem 13.
    pub const fn theorem13() -> Noise {
        Noise::TwoPoint { lo: 1.0, hi: 2.0 }
    }

    /// Theorem 1's heavy-tailed unfairness distribution at the default
    /// truncation.
    pub const fn pathological() -> Noise {
        Noise::Pathological {
            max_k: PATHOLOGICAL_MAX_K,
        }
    }

    /// Draws one delay.
    ///
    /// # Panics
    ///
    /// Panics if the distribution's parameters are invalid (e.g.
    /// non-positive `mean`, `p` outside `(0, 1)`, `hi <= lo`).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            Noise::Exponential { mean } => {
                assert!(mean > 0.0, "exponential mean must be positive");
                sample_exponential(rng, mean)
            }
            Noise::DelayedExponential { delay, mean } => {
                assert!(delay >= 0.0, "delay must be non-negative");
                assert!(mean > 0.0, "exponential mean must be positive");
                delay + sample_exponential(rng, mean)
            }
            Noise::Uniform { lo, hi } => {
                assert!(lo >= 0.0 && hi > lo, "uniform needs 0 <= lo < hi");
                lo + (hi - lo) * rng.random::<f64>()
            }
            Noise::TwoPoint { lo, hi } => {
                assert!(
                    lo >= 0.0 && hi >= 0.0,
                    "two-point values must be non-negative"
                );
                if rng.random::<bool>() {
                    hi
                } else {
                    lo
                }
            }
            Noise::Geometric { p } => {
                assert!(p > 0.0 && p < 1.0, "geometric p must be in (0,1)");
                sample_geometric(rng, p)
            }
            Noise::TruncatedNormal { mean, sd, lo, hi } => {
                assert!(sd > 0.0, "normal sd must be positive");
                assert!(lo >= 0.0 && hi > lo, "truncation needs 0 <= lo < hi");
                loop {
                    let x = mean + sd * sample_standard_normal(rng);
                    if x > lo && x < hi {
                        return x;
                    }
                }
            }
            Noise::Constant { value } => {
                assert!(value >= 0.0, "constant delay must be non-negative");
                value
            }
            Noise::Pathological { max_k } => {
                let cap = max_k.clamp(1, PATHOLOGICAL_MAX_K);
                // k is geometric(1/2) on {1, 2, ...}, clamped to cap (the
                // clamp collects the truncated tail mass).
                let k = (sample_geometric(rng, 0.5) as u32).min(cap);
                2f64.powi((k * k) as i32)
            }
        }
    }

    /// Draws `out.len()` delays into `out`, identical to calling
    /// [`Noise::sample`] once per slot in order.
    ///
    /// The engine's hot loop uses this to batch draws per process: the
    /// variant dispatch and parameter validation happen once per batch
    /// instead of once per event, while the consumed value sequence — and
    /// therefore every simulation result — is exactly the same, because
    /// each process draws from its own private stream.
    ///
    /// # Panics
    ///
    /// Panics if the distribution's parameters are invalid (same rules
    /// as [`Noise::sample`]).
    pub fn fill<R: Rng>(&self, rng: &mut R, out: &mut [f64]) {
        match *self {
            Noise::Exponential { mean } => {
                assert!(mean > 0.0, "exponential mean must be positive");
                for slot in out {
                    *slot = sample_exponential(rng, mean);
                }
            }
            Noise::DelayedExponential { delay, mean } => {
                assert!(delay >= 0.0, "delay must be non-negative");
                assert!(mean > 0.0, "exponential mean must be positive");
                for slot in out {
                    *slot = delay + sample_exponential(rng, mean);
                }
            }
            Noise::Uniform { lo, hi } => {
                assert!(lo >= 0.0 && hi > lo, "uniform needs 0 <= lo < hi");
                let span = hi - lo;
                for slot in out {
                    *slot = lo + span * rng.random::<f64>();
                }
            }
            Noise::TwoPoint { lo, hi } => {
                assert!(
                    lo >= 0.0 && hi >= 0.0,
                    "two-point values must be non-negative"
                );
                for slot in out {
                    *slot = if rng.random::<bool>() { hi } else { lo };
                }
            }
            Noise::Geometric { p } => {
                assert!(p > 0.0 && p < 1.0, "geometric p must be in (0,1)");
                for slot in out {
                    *slot = sample_geometric(rng, p);
                }
            }
            Noise::Constant { value } => {
                assert!(value >= 0.0, "constant delay must be non-negative");
                out.fill(value);
            }
            // Rejection (TruncatedNormal) and heavy-tail clamping
            // (Pathological) have per-sample control flow anyway; reuse
            // the scalar sampler to keep one source of truth.
            Noise::TruncatedNormal { .. } | Noise::Pathological { .. } => {
                for slot in out {
                    *slot = self.sample(rng);
                }
            }
        }
    }

    /// The distribution's mean, if finite and analytically known.
    ///
    /// [`Noise::Pathological`] returns `None`: its untruncated expectation
    /// `Σ 2^{-k} · 2^{k²}` diverges (Theorem 1).
    pub fn mean(&self) -> Option<f64> {
        match *self {
            Noise::Exponential { mean } => Some(mean),
            Noise::DelayedExponential { delay, mean } => Some(delay + mean),
            Noise::Uniform { lo, hi } => Some((lo + hi) / 2.0),
            Noise::TwoPoint { lo, hi } => Some((lo + hi) / 2.0),
            Noise::Geometric { p } => Some(1.0 / p),
            // The truncation at ±5 sd of the Figure 1 parameters removes
            // negligible, *symmetric* mass, so the mean is (to double
            // precision on symmetric bounds) the normal mean.
            Noise::TruncatedNormal {
                mean,
                sd: _,
                lo,
                hi,
            } => {
                let symmetric = (mean - lo - (hi - mean)).abs() < 1e-12;
                if symmetric {
                    Some(mean)
                } else {
                    None
                }
            }
            Noise::Constant { value } => Some(value),
            Noise::Pathological { .. } => None,
        }
    }

    /// A deterministic per-delay timescale for retry timeouts: the mean
    /// when it is finite and known, otherwise a generous constant.
    ///
    /// The `nc_msg` recovery plane multiplies this by its
    /// `timeout_mult` to decide when an unacknowledged quorum phase is
    /// resent — "delay-distribution-derived" so the same retry policy
    /// adapts across the Figure 1 suite without per-distribution tuning.
    /// Heavy-tailed distributions with no usable mean (pathological,
    /// asymmetric truncations) fall back to `4.0`, a few multiples of
    /// every Figure 1 mean: timeouts only trigger resends, so a too-short
    /// hint costs duplicate (idempotent) messages, never correctness.
    pub fn timeout_hint(&self) -> f64 {
        self.mean().unwrap_or(4.0)
    }

    /// Whether the distribution is concentrated on a single point — the
    /// one shape the noisy-scheduling model forbids (§3.1).
    pub fn is_degenerate(&self) -> bool {
        match *self {
            Noise::Constant { .. } => true,
            Noise::Uniform { lo, hi } => hi <= lo,
            Noise::TwoPoint { lo, hi } => lo == hi,
            _ => false,
        }
    }
}

impl fmt::Display for Noise {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Noise::Exponential { mean } => write!(f, "exponential({mean})"),
            Noise::DelayedExponential { delay, mean } => {
                write!(f, "{delay} + exponential({mean})")
            }
            Noise::Uniform { lo, hi } => write!(f, "uniform[{lo},{hi}]"),
            Noise::TwoPoint { lo, hi } => write!(f, "twopoint{{{lo},{hi}}}"),
            Noise::Geometric { p } => write!(f, "geometric({p})"),
            Noise::TruncatedNormal { mean, sd, lo, hi } => {
                write!(f, "normal({mean},{}) on ({lo},{hi})", sd * sd)
            }
            Noise::Constant { value } => write!(f, "constant({value})"),
            Noise::Pathological { max_k } => write!(f, "pathological(k<={max_k})"),
        }
    }
}

/// Per-operation-type noise: the model allows a distinct distribution
/// `F_π` for each operation type π (read or write).
///
/// Most experiments use the same distribution for both; the constructor
/// [`OpNoise::same`] covers that case.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct OpNoise {
    read: Noise,
    write: Noise,
}

impl OpNoise {
    /// One distribution for both operation types.
    pub const fn same(noise: Noise) -> Self {
        OpNoise {
            read: noise,
            write: noise,
        }
    }

    /// Distinct distributions per type.
    pub const fn per_kind(read: Noise, write: Noise) -> Self {
        OpNoise { read, write }
    }

    /// The distribution applied to operations of kind `kind`.
    pub const fn for_kind(&self, kind: OpKind) -> &Noise {
        match kind {
            OpKind::Read => &self.read,
            OpKind::Write => &self.write,
        }
    }

    /// Draws a delay for an operation of kind `kind`.
    pub fn sample<R: Rng>(&self, kind: OpKind, rng: &mut R) -> f64 {
        self.for_kind(kind).sample(rng)
    }

    /// Whether either per-type distribution is degenerate.
    pub fn is_degenerate(&self) -> bool {
        self.read.is_degenerate() || self.write.is_degenerate()
    }

    /// The single distribution applied to **all** operation kinds, if
    /// reads and writes share one (the common case, and the condition
    /// for the engine's batched-draw fast path: with per-kind
    /// distributions the next draw depends on the next operation's kind,
    /// which is not known in advance).
    pub fn uniform_kind(&self) -> Option<&Noise> {
        if self.read == self.write {
            Some(&self.read)
        } else {
            None
        }
    }
}

fn sample_exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    // Inverse CDF; 1 - u in (0, 1] avoids ln(0).
    let u: f64 = rng.random();
    -mean * (1.0 - u).ln()
}

fn sample_geometric<R: Rng>(rng: &mut R, p: f64) -> f64 {
    // Inverse CDF on {1, 2, ...}: k = ceil(ln(1-u) / ln(1-p)).
    let u: f64 = rng.random();
    let k = ((1.0 - u).ln() / (1.0 - p).ln()).ceil();
    k.max(1.0)
}

fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Box–Muller; u1 in (0, 1] avoids ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xC0FFEE)
    }

    fn sample_mean(noise: Noise, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| noise.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn all_figure1_distributions_are_valid_for_the_model() {
        for (name, noise) in Noise::figure1_suite() {
            assert!(!noise.is_degenerate(), "{name} is degenerate");
            let mut r = rng();
            for _ in 0..1000 {
                let x = noise.sample(&mut r);
                assert!(x >= 0.0, "{name} sampled negative {x}");
                assert!(x.is_finite(), "{name} sampled non-finite {x}");
            }
        }
    }

    #[test]
    fn figure1_means_match_the_paper() {
        // Five of the six Figure 1 distributions have mean 1; the
        // geometric(0.5) entry has mean 1/p = 2.
        for (name, noise) in Noise::figure1_suite() {
            let expected = if name == "geometric(0.5)" { 2.0 } else { 1.0 };
            assert_eq!(noise.mean(), Some(expected), "{name} mean");
        }
    }

    #[test]
    fn empirical_means_match_analytic_means() {
        let cases = [
            Noise::Exponential { mean: 1.0 },
            Noise::Exponential { mean: 2.5 },
            Noise::DelayedExponential {
                delay: 0.5,
                mean: 0.5,
            },
            Noise::Uniform { lo: 0.0, hi: 2.0 },
            Noise::TwoPoint {
                lo: 2.0 / 3.0,
                hi: 4.0 / 3.0,
            },
            Noise::Geometric { p: 0.5 },
            Noise::Geometric { p: 0.1 },
            Noise::TruncatedNormal {
                mean: 1.0,
                sd: 0.2,
                lo: 0.0,
                hi: 2.0,
            },
            Noise::Constant { value: 3.25 },
        ];
        for noise in cases {
            let analytic = noise.mean().unwrap();
            let empirical = sample_mean(noise, 200_000);
            let tol = 0.02 * analytic.max(1.0);
            assert!(
                (empirical - analytic).abs() < tol,
                "{noise}: empirical {empirical} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let noise = Noise::Uniform { lo: 0.25, hi: 0.75 };
        let mut r = rng();
        for _ in 0..10_000 {
            let x = noise.sample(&mut r);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn two_point_produces_both_values_roughly_evenly() {
        let noise = Noise::TwoPoint { lo: 1.0, hi: 2.0 };
        let mut r = rng();
        let n = 100_000;
        let his = (0..n).filter(|_| noise.sample(&mut r) == 2.0).count();
        let frac = his as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "hi fraction {frac}");
    }

    #[test]
    fn geometric_support_is_positive_integers() {
        let noise = Noise::Geometric { p: 0.5 };
        let mut r = rng();
        for _ in 0..10_000 {
            let x = noise.sample(&mut r);
            assert!(x >= 1.0);
            assert_eq!(x.fract(), 0.0, "geometric sampled non-integer {x}");
        }
    }

    #[test]
    fn geometric_pmf_shape() {
        // P[X = 1] should be ~p, P[X = 2] ~ p(1-p).
        let noise = Noise::Geometric { p: 0.5 };
        let mut r = rng();
        let n = 100_000;
        let mut ones = 0;
        let mut twos = 0;
        for _ in 0..n {
            match noise.sample(&mut r) as u64 {
                1 => ones += 1,
                2 => twos += 1,
                _ => {}
            }
        }
        assert!((ones as f64 / n as f64 - 0.5).abs() < 0.01);
        assert!((twos as f64 / n as f64 - 0.25).abs() < 0.01);
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let noise = Noise::TruncatedNormal {
            mean: 1.0,
            sd: 0.8,
            lo: 0.0,
            hi: 2.0,
        };
        let mut r = rng();
        for _ in 0..10_000 {
            let x = noise.sample(&mut r);
            assert!(x > 0.0 && x < 2.0);
        }
    }

    #[test]
    fn truncated_normal_asymmetric_mean_unknown() {
        let noise = Noise::TruncatedNormal {
            mean: 1.0,
            sd: 0.2,
            lo: 0.5,
            hi: 2.0,
        };
        assert_eq!(noise.mean(), None);
    }

    #[test]
    fn pathological_support_is_powers() {
        let noise = Noise::pathological();
        let mut r = rng();
        for _ in 0..10_000 {
            let x = noise.sample(&mut r);
            assert!(x.is_finite());
            // Every sample is 2^{k²}: log2 is a perfect square.
            let l = x.log2().round() as u32;
            let k = (l as f64).sqrt().round() as u32;
            assert_eq!(k * k, l, "sample {x} is not 2^(k^2)");
            assert!((1..=PATHOLOGICAL_MAX_K).contains(&k));
        }
    }

    #[test]
    fn pathological_mean_diverges() {
        assert_eq!(Noise::pathological().mean(), None);
        // Truncated means grow without bound in the truncation point:
        // E[X | k <= K] >= 2^{-K} 2^{K²} = 2^{K² - K}, monotone in K.
        // Check the partial series Σ_{k<=K} 2^{-k} 2^{k²} is strictly
        // increasing and astronomically large already at K = 10.
        let mut partial = 0.0f64;
        let mut last = 0.0f64;
        for k in 1..=10u32 {
            partial += 2f64.powi(-(k as i32)) * 2f64.powi((k * k) as i32);
            assert!(partial > last);
            last = partial;
        }
        assert!(partial > 1e20);
    }

    #[test]
    fn timeout_hint_tracks_the_mean_with_a_heavy_tail_fallback() {
        assert_eq!(Noise::Exponential { mean: 2.5 }.timeout_hint(), 2.5);
        assert_eq!(Noise::Uniform { lo: 0.0, hi: 2.0 }.timeout_hint(), 1.0);
        // No finite/known mean => the fixed fallback.
        assert_eq!(Noise::pathological().timeout_hint(), 4.0);
        assert_eq!(
            Noise::TruncatedNormal {
                mean: 1.0,
                sd: 0.2,
                lo: 0.5,
                hi: 2.0
            }
            .timeout_hint(),
            4.0
        );
    }

    #[test]
    fn constant_is_degenerate() {
        assert!(Noise::Constant { value: 1.0 }.is_degenerate());
        assert!(!Noise::theorem13().is_degenerate());
        assert!(Noise::TwoPoint { lo: 1.0, hi: 1.0 }.is_degenerate());
    }

    #[test]
    fn theorem13_distribution_is_one_or_two() {
        let noise = Noise::theorem13();
        let mut r = rng();
        for _ in 0..1000 {
            let x = noise.sample(&mut r);
            assert!(x == 1.0 || x == 2.0);
        }
    }

    #[test]
    fn op_noise_same_and_per_kind() {
        let same = OpNoise::same(Noise::Exponential { mean: 1.0 });
        assert_eq!(same.for_kind(OpKind::Read), same.for_kind(OpKind::Write));
        let split = OpNoise::per_kind(
            Noise::Constant { value: 1.0 },
            Noise::Uniform { lo: 0.0, hi: 1.0 },
        );
        assert!(split.is_degenerate()); // read side is constant
        assert_eq!(
            split.for_kind(OpKind::Read),
            &Noise::Constant { value: 1.0 }
        );
        let mut r = rng();
        assert_eq!(split.sample(OpKind::Read, &mut r), 1.0);
        assert!(split.sample(OpKind::Write, &mut r) < 1.0);
    }

    #[test]
    fn fill_matches_sequential_sampling_exactly() {
        let cases = [
            Noise::Exponential { mean: 1.0 },
            Noise::DelayedExponential {
                delay: 0.5,
                mean: 0.5,
            },
            Noise::Uniform { lo: 0.0, hi: 2.0 },
            Noise::TwoPoint {
                lo: 2.0 / 3.0,
                hi: 4.0 / 3.0,
            },
            Noise::Geometric { p: 0.5 },
            Noise::TruncatedNormal {
                mean: 1.0,
                sd: 0.2,
                lo: 0.0,
                hi: 2.0,
            },
            Noise::Constant { value: 1.0 },
            Noise::pathological(),
        ];
        for noise in cases {
            let mut a = rng();
            let mut b = rng();
            let sequential: Vec<f64> = (0..257).map(|_| noise.sample(&mut a)).collect();
            let mut batched = vec![0.0; 257];
            // Uneven batch boundaries must not matter.
            noise.fill(&mut b, &mut batched[..100]);
            noise.fill(&mut b, &mut batched[100..103]);
            noise.fill(&mut b, &mut batched[103..]);
            assert_eq!(sequential, batched, "{noise}");
        }
    }

    #[test]
    fn uniform_kind_detects_shared_distribution() {
        let same = OpNoise::same(Noise::Exponential { mean: 1.0 });
        assert_eq!(same.uniform_kind(), Some(&Noise::Exponential { mean: 1.0 }));
        let split = OpNoise::per_kind(
            Noise::Exponential { mean: 1.0 },
            Noise::Uniform { lo: 0.0, hi: 1.0 },
        );
        assert_eq!(split.uniform_kind(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Noise::Exponential { mean: 1.0 }.to_string(),
            "exponential(1)"
        );
        assert_eq!(Noise::pathological().to_string(), "pathological(k<=30)");
        assert_eq!(
            Noise::TruncatedNormal {
                mean: 1.0,
                sd: 0.2,
                lo: 0.0,
                hi: 2.0
            }
            .to_string(),
            "normal(1,0.04000000000000001) on (0,2)"
        );
    }

    #[test]
    #[should_panic(expected = "exponential mean must be positive")]
    fn invalid_exponential_panics() {
        Noise::Exponential { mean: 0.0 }.sample(&mut rng());
    }

    #[test]
    #[should_panic(expected = "geometric p must be in (0,1)")]
    fn invalid_geometric_panics() {
        Noise::Geometric { p: 1.0 }.sample(&mut rng());
    }

    #[test]
    fn normal_sampler_moments() {
        let mut r = rng();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}
