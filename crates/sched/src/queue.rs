//! The engine's event queue: a **4-ary min-heap** of 16-byte integer
//! keys with an in-place **peek-and-replace** fast path.
//!
//! The discrete-event engine's common case pops the earliest event and
//! immediately pushes exactly one successor *for the same process* (the
//! classic "hold" operation). With `std::collections::BinaryHeap` that
//! costs a full pop + push per event, with two tree traversals whose
//! comparison branches are data-dependent — on random event times they
//! mispredict constantly, and the mispredicts dominate the queue cost.
//! [`EventQueue::replace_top`] restructures the work three ways:
//!
//! * **One traversal, not two** — Floyd's bottom-up heapify: walk a hole
//!   from the root to a leaf along the smallest-child path, drop the
//!   replacement in, sift it back up (usually zero steps). The walk's
//!   trip count depends only on the heap size, so its loop branches are
//!   perfectly predictable.
//! * **Branchless comparisons** — an [`Event`] is two `u64` words
//!   forming one 128-bit sort key: the event time's bits mapped through
//!   the order-preserving [`f64` → `u64` transform](Event::new) (exactly
//!   `f64::total_cmp`'s order), then `(seq, pid)`. Key comparisons are
//!   pure integer compares the compiler lowers to conditional moves —
//!   no data-dependent branches at all in child selection.
//! * **4-ary fan-out** — half the levels of a binary heap, and all four
//!   children share one cache line (4 × 16 bytes), so the walk touches
//!   one line per level.
//!
//! Ordering is the engine's deterministic tie-break: earlier time first,
//! equal times broken by insertion sequence. Because the key order is
//! **total** and `seq` values are unique, the pop sequence of any
//! correct priority queue is uniquely determined — so swapping queue
//! implementations can never change simulation results (pinned by the
//! equivalence tests against the naive `BinaryHeap` driver).

use std::cmp::Ordering;

/// Fan-out of the heap. Four 16-byte events fill one cache line.
const ARITY: usize = 4;

/// Bits of the low key word reserved for the process id.
pub const PID_BITS: u32 = 24;

/// Maximum process id an [`Event`] can carry (`2^24 - 1` ≈ 16.7M).
pub const MAX_PID: u32 = (1 << PID_BITS) - 1;

/// Maximum sequence number an [`Event`] can carry (`2^40 - 1` ≈ 1.1e12
/// scheduled events per run — two orders of magnitude above the default
/// operation budget).
pub const MAX_SEQ: u64 = (1 << (64 - PID_BITS)) - 1;

/// A scheduled simulation event: process [`Event::pid`]'s next operation
/// occurs at simulated time [`Event::time`]; [`Event::seq`] is the
/// insertion sequence number used for deterministic tie-breaking.
///
/// Stored as a 16-byte integer sort key — see [the module docs](self)
/// for why. Construct with [`Event::new`] and read fields through the
/// accessors; the key encoding is lossless, so `time()` returns exactly
/// the `f64` passed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The event time's bits, mapped so unsigned integer order equals
    /// `f64::total_cmp` order.
    pub(crate) time_key: u64,
    /// `seq << PID_BITS | pid`.
    pub(crate) seq_pid: u64,
}

/// Order-preserving `f64` → `u64` map: flips the sign bit of positives
/// and all bits of negatives, so `u64` order equals `total_cmp` order.
#[inline]
fn map_time(t: f64) -> u64 {
    let b = t.to_bits();
    b ^ ((((b as i64) >> 63) as u64) | 0x8000_0000_0000_0000)
}

/// Inverse of [`map_time`].
#[inline]
fn unmap_time(k: u64) -> f64 {
    let b = k ^ (((!(k as i64)) >> 63) as u64 | 0x8000_0000_0000_0000);
    f64::from_bits(b)
}

impl Event {
    /// Packs `(time, seq, pid)` into a 16-byte sort key.
    ///
    /// # Panics
    ///
    /// Debug-asserts `pid <= MAX_PID` and `seq <= MAX_SEQ`; in release
    /// builds out-of-range values would corrupt tie-breaking, and no
    /// workload in this workspace approaches either limit.
    #[inline]
    pub fn new(time: f64, seq: u64, pid: u32) -> Self {
        debug_assert!(pid <= MAX_PID, "pid {pid} exceeds {MAX_PID}");
        debug_assert!(seq <= MAX_SEQ, "seq {seq} exceeds {MAX_SEQ}");
        Event {
            time_key: map_time(time),
            seq_pid: (seq << PID_BITS) | pid as u64,
        }
    }

    /// The simulated occurrence time (bit-exact round trip of the value
    /// given to [`Event::new`]).
    #[inline]
    pub fn time(&self) -> f64 {
        unmap_time(self.time_key)
    }

    /// The insertion sequence number.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq_pid >> PID_BITS
    }

    /// The owning process id.
    #[inline]
    pub fn pid(&self) -> u32 {
        (self.seq_pid & MAX_PID as u64) as u32
    }

    /// The full 128-bit sort key: `(time, seq, pid)` lexicographic.
    #[inline]
    pub(crate) fn key(&self) -> u128 {
        ((self.time_key as u128) << 64) | self.seq_pid as u128
    }

    /// The engine's total event order: `(time, seq)` lexicographic with
    /// `total_cmp` semantics on time.
    ///
    /// Totality (the property the engine's determinism rests on): the
    /// time map preserves `total_cmp`'s total order bit-for-bit, and the
    /// unique `seq` breaks every remaining tie, so distinct queued
    /// events never compare `Equal`.
    #[inline]
    pub fn key_cmp(&self, other: &Event) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// An indexed 4-ary min-heap of [`Event`]s on `(time, seq)`.
///
/// # Example
///
/// ```
/// use nc_sched::queue::{Event, EventQueue};
///
/// let mut q = EventQueue::with_capacity(4);
/// q.push(Event::new(2.0, 1, 0));
/// q.push(Event::new(1.0, 2, 1));
/// assert_eq!(q.peek().unwrap().pid(), 1);
/// // Pop-and-push of the common case, as one traversal:
/// let new_top = q.replace_top(Event::new(3.0, 3, 1));
/// assert_eq!(new_top.pid(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    heap: Vec<Event>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
        }
    }

    /// Number of queued events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all events, keeping the allocation (for reuse across
    /// trials).
    #[inline]
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// The earliest event, if any.
    #[inline]
    pub fn peek(&self) -> Option<&Event> {
        self.heap.first()
    }

    /// Inserts an event (sift-up).
    #[inline]
    pub fn push(&mut self, ev: Event) {
        self.heap.push(ev);
        self.sift_up(self.heap.len() - 1, ev);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        let len = self.heap.len();
        match len {
            0 => None,
            1 => self.heap.pop(),
            _ => {
                let top = self.heap[0];
                let last = self.heap.pop().expect("len >= 2");
                let hole = self.walk_hole_down(self.heap.len());
                self.heap[hole] = last;
                self.sift_up(hole, last);
                Some(top)
            }
        }
    }

    /// Replaces the earliest event with `ev` in place and returns a copy
    /// of the resulting earliest event.
    ///
    /// Equivalent to `pop(); push(ev); *peek()` as one Floyd traversal —
    /// the engine's hot "hold" operation. See the module docs for the
    /// design.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty.
    #[inline]
    pub fn replace_top(&mut self, ev: Event) -> Event {
        assert!(!self.heap.is_empty(), "replace_top on empty queue");
        let hole = self.walk_hole_down(self.heap.len());
        self.heap[hole] = ev;
        self.sift_up(hole, ev);
        self.heap[0]
    }

    /// Walks a hole from the root to a leaf, moving the smallest child
    /// up at each level; returns the final hole index. `len` is the
    /// logical heap length to respect (callers may have virtually
    /// removed the tail element).
    #[inline]
    fn walk_hole_down(&mut self, len: usize) -> usize {
        let mut hole = 0usize;
        loop {
            let first = ARITY * hole + 1;
            if first >= len {
                return hole;
            }
            let best = if len - first >= ARITY {
                // Full node: min-of-4 as a pairwise tournament. The
                // child values are effectively random, so a sequential
                // "running best" scan would mispredict its branches
                // roughly half the time — the tournament's independent
                // (index, key) selects compile to conditional moves,
                // keeping the walk branch-free on the hot path.
                let k0 = self.heap[first].key();
                let k1 = self.heap[first + 1].key();
                let k2 = self.heap[first + 2].key();
                let k3 = self.heap[first + 3].key();
                let (a, ka) = if k1 < k0 {
                    (first + 1, k1)
                } else {
                    (first, k0)
                };
                let (b, kb) = if k3 < k2 {
                    (first + 3, k3)
                } else {
                    (first + 2, k2)
                };
                if kb < ka {
                    b
                } else {
                    a
                }
            } else {
                // Partial leaf-edge node (at most once per walk).
                let mut best = first;
                let mut best_key = self.heap[first].key();
                for c in first + 1..len {
                    let k = self.heap[c].key();
                    if k < best_key {
                        best = c;
                        best_key = k;
                    }
                }
                best
            };
            self.heap[hole] = self.heap[best];
            hole = best;
        }
    }

    /// Moves `ev` (already written at index `i`) up to its heap
    /// position.
    #[inline]
    fn sift_up(&mut self, mut i: usize, ev: Event) {
        let key = ev.key();
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if key < self.heap[parent].key() {
                self.heap[i] = self.heap[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = ev;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ev(time: f64, seq: u64) -> Event {
        Event::new(time, seq, seq as u32 & MAX_PID)
    }

    #[test]
    fn key_roundtrip_is_exact() {
        for t in [
            0.0,
            -0.0,
            1.5e-8,
            1.0,
            2.0f64.powi(900),
            -3.25,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ] {
            let e = Event::new(t, 123, 45);
            assert_eq!(e.time().to_bits(), t.to_bits(), "time {t}");
            assert_eq!(e.seq(), 123);
            assert_eq!(e.pid(), 45);
        }
        let e = Event::new(7.0, MAX_SEQ, MAX_PID);
        assert_eq!(e.seq(), MAX_SEQ);
        assert_eq!(e.pid(), MAX_PID);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (i, t) in [5.0, 1.0, 3.0, 2.0, 4.0].iter().enumerate() {
            q.push(ev(*t, i as u64));
        }
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time()).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn equal_times_break_by_seq() {
        let mut q = EventQueue::new();
        q.push(ev(1.0, 7));
        q.push(ev(1.0, 3));
        q.push(ev(1.0, 5));
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq()).collect();
        assert_eq!(seqs, vec![3, 5, 7]);
    }

    #[test]
    fn replace_top_equals_pop_then_push() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for (i, t) in [9.0, 2.0, 7.0, 4.0, 6.0, 3.0].iter().enumerate() {
            a.push(ev(*t, i as u64));
            b.push(ev(*t, i as u64));
        }
        let new = ev(5.0, 10);
        let top_a = a.replace_top(new);
        b.pop();
        b.push(new);
        let top_b = *b.peek().unwrap();
        assert_eq!(top_a, top_b);
        let rest_a: Vec<Event> = std::iter::from_fn(|| a.pop()).collect();
        let rest_b: Vec<Event> = std::iter::from_fn(|| b.pop()).collect();
        assert_eq!(rest_a, rest_b);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut q = EventQueue::with_capacity(8);
        for i in 0..8 {
            q.push(ev(i as f64, i));
        }
        let cap = q.heap.capacity();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.heap.capacity(), cap);
    }

    #[test]
    #[should_panic(expected = "replace_top on empty queue")]
    fn replace_top_empty_panics() {
        EventQueue::new().replace_top(ev(1.0, 1));
    }

    proptest! {
        /// The key order is total and antisymmetric over arbitrary
        /// (time-bits, seq) pairs — including equal, infinite, and NaN
        /// times — and agrees with `(total_cmp, seq)` lexicographic.
        #[test]
        fn key_cmp_is_total_and_stable(
            raw in proptest::collection::vec((0u64..u64::MAX, 0u64..1000), 2..40),
        ) {
            let evs: Vec<Event> = raw
                .iter()
                .map(|&(bits, seq)| Event::new(f64::from_bits(bits), seq, 0))
                .collect();
            for a in &evs {
                prop_assert_eq!(a.key_cmp(a), std::cmp::Ordering::Equal);
                for b in &evs {
                    prop_assert_eq!(a.key_cmp(b), b.key_cmp(a).reverse());
                    let reference = a
                        .time()
                        .total_cmp(&b.time())
                        .then_with(|| a.seq().cmp(&b.seq()));
                    prop_assert_eq!(a.key_cmp(b), reference);
                    // Distinct seqs never tie, even at bit-equal times.
                    if a.seq() != b.seq() {
                        prop_assert!(a.key_cmp(b) != std::cmp::Ordering::Equal);
                    }
                }
            }
        }

        /// Heap pops exactly sort by the key, under arbitrary interleaved
        /// push/replace traffic mirrored against a sorted-model oracle.
        #[test]
        fn heap_matches_sorted_model(
            times in proptest::collection::vec(0.0f64..100.0, 1..60),
            replacements in proptest::collection::vec(0.0f64..100.0, 0..30),
        ) {
            let mut q = EventQueue::new();
            let mut model: Vec<Event> = Vec::new();
            let mut seq = 0u64;
            for &t in &times {
                let e = ev(t, seq);
                seq += 1;
                q.push(e);
                model.push(e);
            }
            for &t in &replacements {
                model.sort_by(|a, b| a.key_cmp(b));
                let e = ev(t, seq);
                seq += 1;
                q.replace_top(e);
                model[0] = e;
            }
            model.sort_by(|a, b| a.key_cmp(b));
            let popped: Vec<Event> = std::iter::from_fn(|| q.pop()).collect();
            prop_assert_eq!(popped, model);
        }

        /// Interleaved pops keep the heap consistent too (pop uses the
        /// same hole walk as replace_top).
        #[test]
        fn push_pop_interleave_matches_model(
            ops in proptest::collection::vec((any::<bool>(), 0.0f64..50.0), 1..80),
        ) {
            let mut q = EventQueue::new();
            let mut model: Vec<Event> = Vec::new();
            let mut seq = 0u64;
            for &(is_pop, t) in &ops {
                if is_pop {
                    model.sort_by(|a, b| a.key_cmp(b));
                    let expect = if model.is_empty() { None } else { Some(model.remove(0)) };
                    prop_assert_eq!(q.pop(), expect);
                } else {
                    let e = ev(t, seq);
                    seq += 1;
                    q.push(e);
                    model.push(e);
                }
            }
            model.sort_by(|a, b| a.key_cmp(b));
            let drained: Vec<Event> = std::iter::from_fn(|| q.pop()).collect();
            prop_assert_eq!(drained, model);
        }
    }
}
