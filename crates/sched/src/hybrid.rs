//! Hybrid quantum + priority scheduling on a uniprocessor (§3.2, §7).
//!
//! The model of Anderson–Moir (PODC 1999), as used by the paper:
//! processes time-share one processor under a pre-emptive scheduler.
//! Each process has a priority; a running process
//!
//! * may be pre-empted **at any time** by a process of strictly higher
//!   priority,
//! * may be pre-empted by an **equal**-priority process only once it has
//!   exhausted its *quantum* — a minimum number of operations it must be
//!   allowed to complete between being scheduled and becoming vulnerable,
//! * is never pre-empted by a lower-priority process while runnable.
//!
//! A process need not start the protocol at the beginning of a quantum: it
//! may have burned part (or all) of its first quantum on unrelated work
//! ([`HybridSpec::initial_used`]).
//!
//! Theorem 14: with quantum ≥ 8, every process running lean-consensus
//! decides after at most 12 operations. [`HybridSpec::legal_next`]
//! encodes the legality rules; the engine's hybrid driver enforces them
//! and lets a [`HybridPolicy`] (the adversary) choose among legal moves.

use rand::rngs::SmallRng;
use rand::RngExt;

/// Static description of a hybrid-scheduled uniprocessor system.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HybridSpec {
    /// The scheduling quantum: operations a newly-scheduled process must
    /// be allowed before equal-priority pre-emption. Theorem 14 needs 8.
    pub quantum: u32,
    /// Per-process priority; **higher values pre-empt lower ones**.
    pub priorities: Vec<u32>,
    /// Quantum already consumed by "other work" when each process is
    /// first scheduled within the protocol execution (§3.2: a process may
    /// start the protocol mid-quantum). Later schedulings always begin a
    /// fresh quantum. Values are clamped to `quantum`.
    pub initial_used: Vec<u32>,
}

impl HybridSpec {
    /// A system of `n` equal-priority processes with the given quantum and
    /// no initial quantum usage.
    pub fn uniform(n: usize, quantum: u32) -> Self {
        HybridSpec {
            quantum,
            priorities: vec![0; n],
            initial_used: vec![0; n],
        }
    }

    /// A system of `n` processes with distinct priorities `0..n` (process
    /// `n-1` is highest) and the given quantum.
    pub fn ladder(n: usize, quantum: u32) -> Self {
        HybridSpec {
            quantum,
            priorities: (0..n as u32).collect(),
            initial_used: vec![0; n],
        }
    }

    /// Replaces the initial quantum usage (builder-style). Clamped to the
    /// quantum at use time.
    pub fn with_initial_used(mut self, initial_used: Vec<u32>) -> Self {
        self.initial_used = initial_used;
        self
    }

    /// Number of processes in the system.
    pub fn len(&self) -> usize {
        self.priorities.len()
    }

    /// Whether the system has no processes.
    pub fn is_empty(&self) -> bool {
        self.priorities.is_empty()
    }

    /// The quantum a process has already used when scheduled for the
    /// `first` time (`true`) or re-scheduled (`false`).
    pub fn used_at_schedule(&self, pid: usize, first: bool) -> u32 {
        if first {
            self.initial_used
                .get(pid)
                .copied()
                .unwrap_or(0)
                .min(self.quantum)
        } else {
            0
        }
    }

    /// Computes the set of processes that may legally execute the next
    /// operation.
    ///
    /// * `current`: the currently scheduled process, if any.
    /// * `used_in_quantum`: operations `current` has completed in its
    ///   present quantum (including any initial burn).
    /// * `runnable`: per-process, whether the process still has protocol
    ///   operations to perform (not decided, not halted).
    ///
    /// Rules: the current runnable process may always continue; strictly
    /// higher-priority runnable processes may pre-empt at any time;
    /// equal-priority runnable processes only once
    /// `used_in_quantum >= quantum`; lower-priority processes never
    /// pre-empt a runnable process. If there is no runnable current
    /// process, every runnable process is legal (the adversary may have
    /// delayed any subset, so it picks who wakes first).
    pub fn legal_next(
        &self,
        current: Option<usize>,
        used_in_quantum: u32,
        runnable: &[bool],
    ) -> Vec<usize> {
        assert_eq!(
            runnable.len(),
            self.len(),
            "runnable mask length {} != process count {}",
            runnable.len(),
            self.len()
        );
        match current {
            Some(c) if runnable.get(c).copied().unwrap_or(false) => {
                let cur_pri = self.priorities[c];
                let exhausted = used_in_quantum >= self.quantum;
                (0..self.len())
                    .filter(|&j| {
                        if !runnable[j] {
                            return false;
                        }
                        if j == c {
                            return true;
                        }
                        let pj = self.priorities[j];
                        pj > cur_pri || (exhausted && pj == cur_pri)
                    })
                    .collect()
            }
            _ => (0..self.len()).filter(|&j| runnable[j]).collect(),
        }
    }
}

/// Execution snapshot offered to a [`HybridPolicy`] when it must choose
/// the next process. All slices are indexed by process id.
#[derive(Clone, Copy, Debug)]
pub struct HybridView<'a> {
    /// The currently scheduled process, if any.
    pub current: Option<usize>,
    /// The processes the model allows to run next (always non-empty when
    /// the policy is consulted).
    pub legal: &'a [usize],
    /// Each process's current protocol round.
    pub round: &'a [usize],
    /// Protocol operations each process has executed.
    pub steps: &'a [u64],
    /// Whether each process's *pending* operation is a write — the
    /// information the Theorem 14 worst case exploits (pre-empt just
    /// before the round-1 write).
    pub pending_write: &'a [bool],
}

/// The scheduler adversary for the hybrid model: picks the next process
/// among the legal candidates.
pub trait HybridPolicy {
    /// Chooses the next process from `view.legal`. Returning `None` ends
    /// the run (treated as schedule exhaustion by the driver).
    fn pick(&mut self, view: HybridView<'_>) -> Option<usize>;
}

// Boxed policies forward, so factories can hand out `Box<dyn …>`
// (e.g. `nc_engine::sim::Sim::hybrid` closures picking a policy at
// runtime) wherever a concrete policy works.
impl<P: HybridPolicy + ?Sized> HybridPolicy for Box<P> {
    fn pick(&mut self, view: HybridView<'_>) -> Option<usize> {
        (**self).pick(view)
    }
}

/// A benign scheduler: keeps the current process running; when it stops,
/// schedules the lowest-id legal process.
#[derive(Clone, Copy, Debug, Default)]
pub struct BenignHybrid;

impl HybridPolicy for BenignHybrid {
    fn pick(&mut self, view: HybridView<'_>) -> Option<usize> {
        if let Some(c) = view.current {
            if view.legal.contains(&c) {
                return Some(c);
            }
        }
        view.legal.first().copied()
    }
}

/// Schedules a uniformly random legal process each step — chaotic but
/// legal time-sharing.
#[derive(Clone, Debug)]
pub struct RandomHybrid {
    rng: SmallRng,
}

impl RandomHybrid {
    /// Creates a random hybrid policy from its own RNG stream.
    pub fn new(rng: SmallRng) -> Self {
        RandomHybrid { rng }
    }
}

impl HybridPolicy for RandomHybrid {
    fn pick(&mut self, view: HybridView<'_>) -> Option<usize> {
        if view.legal.is_empty() {
            return None;
        }
        let k = self.rng.random_range(0..view.legal.len());
        Some(view.legal[k])
    }
}

/// The Theorem 14 adversary: whenever the current process is about to
/// perform a *write* and some other process may legally pre-empt it,
/// switch — preferring the legal process with the smallest step count to
/// keep the race as tied as possible. Otherwise keeps the current process
/// running (to burn its quantum towards exhaustion).
#[derive(Clone, Copy, Debug, Default)]
pub struct WritePreemptor;

impl HybridPolicy for WritePreemptor {
    fn pick(&mut self, view: HybridView<'_>) -> Option<usize> {
        let cur = view.current.filter(|c| view.legal.contains(c));
        match cur {
            Some(c) => {
                let about_to_write = view.pending_write.get(c).copied().unwrap_or(false);
                if about_to_write {
                    // Try to strand the write: hand the processor to the
                    // most-behind other legal process.
                    let victim = view
                        .legal
                        .iter()
                        .copied()
                        .filter(|&j| j != c)
                        .min_by_key(|&j| (view.steps[j], j));
                    if let Some(v) = victim {
                        return Some(v);
                    }
                }
                Some(c)
            }
            None => view
                .legal
                .iter()
                .copied()
                .min_by_key(|&j| (view.steps[j], j)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;

    #[test]
    fn uniform_and_ladder_constructors() {
        let u = HybridSpec::uniform(3, 8);
        assert_eq!(u.len(), 3);
        assert!(!u.is_empty());
        assert_eq!(u.priorities, vec![0, 0, 0]);
        let l = HybridSpec::ladder(3, 8);
        assert_eq!(l.priorities, vec![0, 1, 2]);
        assert!(HybridSpec::uniform(0, 8).is_empty());
    }

    #[test]
    fn current_process_may_always_continue() {
        let spec = HybridSpec::uniform(3, 8);
        let legal = spec.legal_next(Some(1), 0, &[true, true, true]);
        assert!(legal.contains(&1));
        // Equal priority, quantum not exhausted: only current is legal.
        assert_eq!(legal, vec![1]);
    }

    #[test]
    fn equal_priority_preempts_only_after_quantum() {
        let spec = HybridSpec::uniform(3, 8);
        let fresh = spec.legal_next(Some(0), 7, &[true, true, true]);
        assert_eq!(fresh, vec![0]);
        let exhausted = spec.legal_next(Some(0), 8, &[true, true, true]);
        assert_eq!(exhausted, vec![0, 1, 2]);
    }

    #[test]
    fn higher_priority_preempts_any_time() {
        let spec = HybridSpec::ladder(3, 8); // priorities 0,1,2
        let legal = spec.legal_next(Some(0), 0, &[true, true, true]);
        assert_eq!(legal, vec![0, 1, 2]);
        let legal = spec.legal_next(Some(1), 0, &[true, true, true]);
        assert_eq!(legal, vec![1, 2]);
        let legal = spec.legal_next(Some(2), 0, &[true, true, true]);
        assert_eq!(legal, vec![2]);
    }

    #[test]
    fn lower_priority_never_preempts_runnable() {
        let spec = HybridSpec::ladder(2, 4);
        // current = high priority, mid-quantum and exhausted: low priority
        // still illegal while current is runnable.
        assert_eq!(spec.legal_next(Some(1), 0, &[true, true]), vec![1]);
        assert_eq!(spec.legal_next(Some(1), 99, &[true, true]), vec![1]);
    }

    #[test]
    fn anyone_runs_when_current_stops() {
        let spec = HybridSpec::ladder(3, 8);
        // current decided (not runnable): every runnable process is legal.
        let legal = spec.legal_next(Some(2), 3, &[true, true, false]);
        assert_eq!(legal, vec![0, 1]);
        // no current at all
        let legal = spec.legal_next(None, 0, &[false, true, true]);
        assert_eq!(legal, vec![1, 2]);
    }

    #[test]
    fn no_runnable_processes_means_no_legal_moves() {
        let spec = HybridSpec::uniform(2, 8);
        assert!(spec.legal_next(Some(0), 0, &[false, false]).is_empty());
        assert!(spec.legal_next(None, 0, &[false, false]).is_empty());
    }

    #[test]
    #[should_panic(expected = "runnable mask length")]
    fn mismatched_mask_panics() {
        HybridSpec::uniform(2, 8).legal_next(None, 0, &[true]);
    }

    #[test]
    fn used_at_schedule_clamps_and_resets() {
        let spec = HybridSpec::uniform(2, 8).with_initial_used(vec![5, 100]);
        assert_eq!(spec.used_at_schedule(0, true), 5);
        assert_eq!(spec.used_at_schedule(1, true), 8); // clamped
        assert_eq!(spec.used_at_schedule(0, false), 0); // re-schedule
        assert_eq!(spec.used_at_schedule(9, true), 0); // out of range
    }

    fn view<'a>(
        current: Option<usize>,
        legal: &'a [usize],
        round: &'a [usize],
        steps: &'a [u64],
        pending_write: &'a [bool],
    ) -> HybridView<'a> {
        HybridView {
            current,
            legal,
            round,
            steps,
            pending_write,
        }
    }

    #[test]
    fn benign_policy_keeps_current() {
        let mut p = BenignHybrid;
        let legal = [0usize, 1, 2];
        let round = [1, 1, 1];
        let steps = [3, 0, 0];
        let pw = [false, false, false];
        assert_eq!(p.pick(view(Some(0), &legal, &round, &steps, &pw)), Some(0));
        // current not legal -> lowest id legal
        let legal2 = [1usize, 2];
        assert_eq!(p.pick(view(Some(0), &legal2, &round, &steps, &pw)), Some(1));
        assert_eq!(p.pick(view(None, &legal2, &round, &steps, &pw)), Some(1));
    }

    #[test]
    fn random_policy_picks_only_legal() {
        let mut p = RandomHybrid::new(stream_rng(5, 0, 0));
        let legal = [1usize, 3];
        let round = [0; 4];
        let steps = [0; 4];
        let pw = [false; 4];
        for _ in 0..50 {
            let pick = p.pick(view(Some(1), &legal, &round, &steps, &pw)).unwrap();
            assert!(pick == 1 || pick == 3);
        }
        assert_eq!(p.pick(view(None, &[], &round, &steps, &pw)), None);
    }

    #[test]
    fn write_preemptor_strands_writes() {
        let mut p = WritePreemptor;
        let legal = [0usize, 1, 2];
        let round = [1, 1, 1];
        let steps = [2, 5, 1];
        // current 0 about to write, others legal: picks most-behind (2).
        let pw = [true, false, false];
        assert_eq!(p.pick(view(Some(0), &legal, &round, &steps, &pw)), Some(2));
        // current 0 about to read: stays.
        let pw = [false, false, false];
        assert_eq!(p.pick(view(Some(0), &legal, &round, &steps, &pw)), Some(0));
    }

    #[test]
    fn write_preemptor_stays_when_alone_legal() {
        let mut p = WritePreemptor;
        let legal = [0usize];
        let round = [1];
        let steps = [2];
        let pw = [true];
        assert_eq!(p.pick(view(Some(0), &legal, &round, &steps, &pw)), Some(0));
    }

    #[test]
    fn write_preemptor_fresh_start_picks_most_behind() {
        let mut p = WritePreemptor;
        let legal = [0usize, 1];
        let round = [2, 1];
        let steps = [8, 3];
        let pw = [false, false];
        assert_eq!(p.pick(view(None, &legal, &round, &steps, &pw)), Some(1));
    }
}
