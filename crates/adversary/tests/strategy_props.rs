//! Property tests over the whole strategy space: every point of every
//! family must yield a *valid* adversary — it only ever picks enabled
//! processes (the engine panics otherwise, so merely completing the run
//! is the assertion), never spends more budget than its schedule
//! granted, and preserves the protocol's safety properties on whatever
//! state the run reaches.

use proptest::prelude::*;

use nc_adversary::{BudgetSchedule, BudgetedAdversary, StrategyPoint, TargetRule};
use nc_engine::adversarial::drive_adversarial;
use nc_engine::{setup, Algorithm, Limits, RunOutcome};
use nc_sched::adversary::{Adversary, NoCrashes, ProcView, RandomInterleave};
use nc_sched::rng::salts;
use nc_sched::stream_rng;

fn budget_strategy() -> impl Strategy<Value = Option<BudgetSchedule>> {
    prop_oneof![
        Just(None),
        (0u64..=32).prop_map(|b| Some(BudgetSchedule::Constant(b))),
        (0u64..=6).prop_map(|m| Some(BudgetSchedule::PerRound(m))),
    ]
}

fn rule_strategy() -> impl Strategy<Value = TargetRule> {
    prop_oneof![
        Just(TargetRule::StallLeader),
        Just(TargetRule::NearDecision),
        Just(TargetRule::RoundBoundary),
        Just(TargetRule::CatchUp),
    ]
}

fn point_strategy() -> impl Strategy<Value = StrategyPoint> {
    (budget_strategy(), rule_strategy(), 0u32..=4).prop_map(|(budget, rule, trigger)| {
        StrategyPoint {
            budget,
            rule,
            trigger,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_point_yields_a_budget_respecting_valid_adversary(
        point in point_strategy(),
        n in 2usize..=8,
        seed in 0u64..1000,
    ) {
        let inputs = setup::half_and_half(n);
        let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
        let mut adv = point.build(seed);
        let report = drive_adversarial(
            &mut inst,
            &mut adv,
            &mut NoCrashes,
            Limits::first_decision().with_max_ops(5_000),
        );
        // Valid picks: drive_adversarial panics on a disabled pick, so
        // reaching here at all is the validity assertion. The schedule
        // source never runs dry (processes stay enabled until decision
        // or cap), so only these two outcomes exist:
        prop_assert!(matches!(
            report.outcome,
            RunOutcome::FirstDecision | RunOutcome::OpCapReached
        ));
        // Budget-respecting: every override cost a granted token.
        prop_assert!(adv.spent() <= adv.granted());
        if point.budget.is_none() {
            prop_assert_eq!(adv.granted(), 0);
            prop_assert_eq!(adv.spent(), 0);
        }
        // Safety holds on whatever state the run reached.
        report.check_safety(&inputs).unwrap();
        // The progress telemetry the tournament scores is coherent.
        prop_assert!(report.max_round >= 1);
        if let Some(first) = report.first_decision_round {
            prop_assert!(report.max_round >= first);
        }
    }

    #[test]
    fn oblivious_point_is_pickwise_identical_to_random_interleave(
        n in 2usize..=6,
        seed in 0u64..500,
    ) {
        // Full-run equivalence: the zero-budget point and
        // RandomInterleave on the same stream produce identical
        // RunReports, which is what makes the tournament's baseline an
        // apples-to-apples comparison.
        let inputs = setup::half_and_half(n);
        let limits = Limits::first_decision().with_max_ops(5_000);
        let mut inst_a = setup::build(Algorithm::Lean, &inputs, seed);
        let mut a = StrategyPoint::oblivious().build(seed);
        let report_a = drive_adversarial(&mut inst_a, &mut a, &mut NoCrashes, limits);
        let mut inst_b = setup::build(Algorithm::Lean, &inputs, seed);
        let mut b = RandomInterleave::new(stream_rng(seed, 0, salts::ADVERSARY));
        let report_b = drive_adversarial(&mut inst_b, &mut b, &mut NoCrashes, limits);
        prop_assert_eq!(report_a, report_b);
    }

    #[test]
    fn picks_are_enabled_on_arbitrary_views(
        point in point_strategy(),
        seed in 0u64..1000,
        enabled in collection::vec(any::<bool>(), 1..10),
        state in (
            collection::vec(1usize..50, 10..11),
            collection::vec(0u64..200, 10..11),
        ),
    ) {
        // Harsher than real executions: arbitrary (even inconsistent)
        // views must still only produce enabled picks or None.
        let (rounds, steps) = state;
        let n = enabled.len();
        let mut adv = BudgetedAdversary::new(point, seed);
        for _ in 0..20 {
            let view = ProcView {
                enabled: &enabled,
                round: &rounds[..n],
                steps: &steps[..n],
            };
            match adv.next(view) {
                Some(pick) => prop_assert!(enabled[pick], "disabled pick {pick}"),
                None => prop_assert!(enabled.iter().all(|&e| !e)),
            }
            prop_assert!(adv.spent() <= adv.granted());
        }
    }
}
