//! The tournament's determinism contract: results are a pure function
//! of `(family, n, trials, seed0, max_ops)` — byte-identical at every
//! worker-thread count and lane width, for both the grid sweep and the
//! beam search. This is the adversary-plane edition of the engine's
//! serial-vs-parallel suite (`crates/bench/tests/determinism.rs`).

use nc_adversary::{StrategyFamily, Tournament};

fn tournament(threads: usize, lanes: usize) -> Tournament {
    Tournament::new(6)
        .trials(4)
        .seed0(11)
        .max_ops(40_000)
        .threads(threads)
        .lanes(lanes)
}

#[test]
fn sweep_is_bitwise_identical_serial_vs_parallel() {
    let family = StrategyFamily::standard();
    let reference = tournament(1, 1).sweep(&family);
    for threads in [2usize, 4] {
        assert_eq!(
            reference,
            tournament(threads, 1).sweep(&family),
            "sweep diverged at {threads} workers"
        );
    }
}

#[test]
fn sweep_is_bitwise_identical_across_lane_widths() {
    // Adversarial schedules run lanes sequentially in the engine, but
    // the knob must still be inert — this pins that contract from the
    // tournament's side.
    let family = StrategyFamily::standard();
    let reference = tournament(1, 1).sweep(&family);
    for lanes in [2usize, 4, 7] {
        for threads in [1usize, 4] {
            assert_eq!(
                reference,
                tournament(threads, lanes).sweep(&family),
                "sweep diverged at {threads} workers × {lanes} lanes"
            );
        }
    }
}

#[test]
fn beam_is_bitwise_identical_serial_vs_parallel() {
    let family = StrategyFamily::standard();
    let reference = tournament(1, 1).beam(&family, 3, 4);
    assert_eq!(
        reference,
        tournament(4, 2).beam(&family, 3, 4),
        "beam search diverged between serial and 4 workers"
    );
    // Refined leaders carry the deeper trial count.
    assert_eq!(
        reference.scores.iter().filter(|s| s.trials == 16).count(),
        3
    );
}

#[test]
fn adaptive_family_dominates_oblivious_baseline() {
    // The acceptance property at test scale: the strongest adaptive
    // strategy forces at least as many rounds as the oblivious
    // baseline. (BENCH_adversary.json records the same comparison at
    // full scale for every n.)
    let result = tournament(0, 1).sweep(&StrategyFamily::standard());
    let oblivious = result.oblivious().expect("family includes the baseline");
    let worst = result.worst_adaptive().expect("family has adaptive points");
    assert!(
        worst.mean_round >= oblivious.mean_round,
        "adaptive {} ({}) < oblivious ({})",
        worst.label,
        worst.mean_round,
        oblivious.mean_round
    );
}
