//! Budget-limited adaptive adversaries.
//!
//! Each adversary here follows the engine's oblivious uniform-random
//! base schedule (the same stream [`RandomInterleave`] would draw from
//! `stream_rng(run_seed, 0, salts::ADVERSARY)`) and may *override* a
//! base pick — always redirecting to the most-behind enabled process —
//! by spending one budget token per override. With zero budget the
//! pick sequence is identical to the oblivious schedule, which anchors
//! every tournament comparison.
//!
//! [`RandomInterleave`]: nc_sched::adversary::RandomInterleave

use rand::rngs::SmallRng;
use rand::RngExt;

use nc_sched::adversary::{Adversary, CrashAdversary, ProcView};
use nc_sched::rng::salts;
use nc_sched::stream_rng;

use crate::strategy::{BudgetSchedule, StrategyPoint, TargetRule};

/// Operations per lean-consensus round; a process's round ends with its
/// decisive `ReadPrevRival` (the only operation that can decide).
const OPS_PER_ROUND: u64 = 4;

/// The core budget-limited adaptive adversary: one [`StrategyPoint`]
/// made executable.
///
/// Before every operation the engine offers the current
/// [`ProcView`]; the adversary draws the oblivious base pick, accrues
/// budget per its schedule, and — if its target rule fires and a token
/// is available — redirects the step to the most-behind enabled
/// process. [`Self::spent`] never exceeds [`Self::granted`], a contract
/// the property suite pins for every point of every family.
#[derive(Clone, Debug)]
pub struct BudgetedAdversary {
    point: StrategyPoint,
    base: SmallRng,
    tokens: u64,
    granted: u64,
    spent: u64,
    primed: bool,
    last_round: usize,
}

impl BudgetedAdversary {
    /// Builds the adversary for one run. The base schedule derives from
    /// `stream_rng(run_seed, 0, salts::ADVERSARY)`, so the oblivious
    /// point reproduces [`nc_sched::adversary::RandomInterleave`] on
    /// the same stream pick-for-pick.
    pub fn new(point: StrategyPoint, run_seed: u64) -> Self {
        BudgetedAdversary {
            point,
            base: stream_rng(run_seed, 0, salts::ADVERSARY),
            tokens: 0,
            granted: 0,
            spent: 0,
            primed: false,
            last_round: 0,
        }
    }

    /// The strategy point this adversary executes.
    pub fn point(&self) -> &StrategyPoint {
        &self.point
    }

    /// Total tokens granted by the budget schedule so far.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Tokens spent on overrides so far (≤ [`Self::granted`]).
    pub fn spent(&self) -> u64 {
        self.spent
    }

    fn accrue(&mut self, view: &ProcView<'_>) {
        let Some(schedule) = self.point.budget else {
            return;
        };
        let frontier = view.max_round().unwrap_or(0);
        if !self.primed {
            self.primed = true;
            self.last_round = frontier;
            let initial = match schedule {
                BudgetSchedule::Constant(b) => b,
                BudgetSchedule::PerRound(m) => m,
            };
            self.tokens += initial;
            self.granted += initial;
            return;
        }
        if let BudgetSchedule::PerRound(m) = schedule {
            if frontier > self.last_round {
                let earned = m * (frontier - self.last_round) as u64;
                self.tokens += earned;
                self.granted += earned;
                self.last_round = frontier;
            }
        }
    }

    /// Whether the rule fires on this view/pick; returns the redirect
    /// target if so.
    fn intervene(&self, view: &ProcView<'_>, pick: usize) -> Option<usize> {
        let leader = view.leader()?;
        let lead = view.lead();
        let trigger = self.point.trigger;
        let fires = match self.point.rule {
            TargetRule::StallLeader => pick == leader && lead >= trigger as usize,
            TargetRule::NearDecision => {
                // `steps % 4 == 3` means the next operation is the
                // round's decisive ReadPrevRival; the window counts
                // operations until that point.
                let to_decisive = OPS_PER_ROUND - view.steps[leader] % OPS_PER_ROUND;
                pick == leader && lead >= 1 && to_decisive <= u64::from(trigger.max(1))
            }
            TargetRule::RoundBoundary => {
                pick == leader && view.steps[leader] % OPS_PER_ROUND < u64::from(trigger.max(1))
            }
            TargetRule::CatchUp => lead >= trigger.max(1) as usize,
        };
        if fires {
            view.most_behind()
        } else {
            None
        }
    }
}

impl Adversary for BudgetedAdversary {
    fn next(&mut self, view: ProcView<'_>) -> Option<usize> {
        let enabled: Vec<usize> = view.enabled_ids().collect();
        if enabled.is_empty() {
            return None;
        }
        self.accrue(&view);
        // The base draw happens unconditionally, so the oblivious
        // stream is identical whether or not any override fires.
        let pick = enabled[self.base.random_range(0..enabled.len())];
        if self.tokens > 0 {
            if let Some(target) = self.intervene(&view, pick) {
                if target != pick {
                    self.tokens -= 1;
                    self.spent += 1;
                    return Some(target);
                }
            }
        }
        Some(pick)
    }
}

/// Leader-lane targeting: earns `per_round` tokens per frontier round
/// and spends them stalling the leader whenever its lead reaches
/// `trigger_lead` rounds.
#[derive(Clone, Debug)]
pub struct LeaderLaneStaller {
    inner: BudgetedAdversary,
}

impl LeaderLaneStaller {
    /// Creates the staller for one run.
    pub fn new(run_seed: u64, per_round: u64, trigger_lead: u32) -> Self {
        LeaderLaneStaller {
            inner: BudgetedAdversary::new(
                StrategyPoint {
                    budget: Some(BudgetSchedule::PerRound(per_round)),
                    rule: TargetRule::StallLeader,
                    trigger: trigger_lead,
                },
                run_seed,
            ),
        }
    }

    /// Tokens spent so far.
    pub fn spent(&self) -> u64 {
        self.inner.spent()
    }
}

impl Adversary for LeaderLaneStaller {
    fn next(&mut self, view: ProcView<'_>) -> Option<usize> {
        self.inner.next(view)
    }
}

/// Near-decision spending: hoards a one-time budget of `budget` tokens
/// and dumps them only when the race leader is within `window`
/// operations of its round's decisive read.
#[derive(Clone, Debug)]
pub struct NearDecisionSpender {
    inner: BudgetedAdversary,
}

impl NearDecisionSpender {
    /// Creates the spender for one run.
    pub fn new(run_seed: u64, budget: u64, window: u32) -> Self {
        NearDecisionSpender {
            inner: BudgetedAdversary::new(
                StrategyPoint {
                    budget: Some(BudgetSchedule::Constant(budget)),
                    rule: TargetRule::NearDecision,
                    trigger: window,
                },
                run_seed,
            ),
        }
    }

    /// Tokens spent so far.
    pub fn spent(&self) -> u64 {
        self.inner.spent()
    }
}

impl Adversary for NearDecisionSpender {
    fn next(&mut self, view: ProcView<'_>) -> Option<usize> {
        self.inner.next(view)
    }
}

/// Round-boundary ambush: earns `per_round` tokens per frontier round
/// and spends them stalling the leader during the first `window`
/// operations of each of its rounds — interference concentrated on
/// phase transitions.
#[derive(Clone, Debug)]
pub struct RoundBoundaryAmbush {
    inner: BudgetedAdversary,
}

impl RoundBoundaryAmbush {
    /// Creates the ambusher for one run.
    pub fn new(run_seed: u64, per_round: u64, window: u32) -> Self {
        RoundBoundaryAmbush {
            inner: BudgetedAdversary::new(
                StrategyPoint {
                    budget: Some(BudgetSchedule::PerRound(per_round)),
                    rule: TargetRule::RoundBoundary,
                    trigger: window,
                },
                run_seed,
            ),
        }
    }

    /// Tokens spent so far.
    pub fn spent(&self) -> u64 {
        self.inner.spent()
    }
}

impl Adversary for RoundBoundaryAmbush {
    fn next(&mut self, view: ProcView<'_>) -> Option<usize> {
        self.inner.next(view)
    }
}

/// The adaptive crash adversary: kills the current front-runner at
/// phase transitions — each time the race frontier advances to a round
/// nobody had reached before, the process that got there first is
/// crashed, up to a budget of `f` crashes.
///
/// This is [`nc_sched::adversary::LeaderKiller`]'s §10 strategy keyed
/// to round *transitions* rather than a standing lead: the crash lands
/// exactly when a new phase begins, before the leader can bank progress
/// in it.
#[derive(Clone, Debug)]
pub struct FrontRunnerCrasher {
    budget: usize,
    seen_frontier: usize,
    crashed: Vec<usize>,
}

impl FrontRunnerCrasher {
    /// Creates a crasher allowed `budget` kills.
    pub fn new(budget: usize) -> Self {
        FrontRunnerCrasher {
            budget,
            seen_frontier: 0,
            crashed: Vec::new(),
        }
    }

    /// Ids crashed so far, in crash order.
    pub fn crashed(&self) -> &[usize] {
        &self.crashed
    }
}

impl CrashAdversary for FrontRunnerCrasher {
    fn crash_now(&mut self, view: ProcView<'_>) -> Vec<usize> {
        let Some(leader) = view.leader() else {
            return Vec::new();
        };
        let round = view.round[leader];
        if round <= self.seen_frontier {
            return Vec::new();
        }
        // A new frontier round: record it even when out of budget, so a
        // later refill semantics change couldn't double-kill one round.
        self.seen_frontier = round;
        if self.budget == 0 || view.lead() == 0 {
            return Vec::new();
        }
        self.budget -= 1;
        self.crashed.push(leader);
        vec![leader]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_sched::adversary::RandomInterleave;

    fn view<'a>(enabled: &'a [bool], round: &'a [usize], steps: &'a [u64]) -> ProcView<'a> {
        ProcView {
            enabled,
            round,
            steps,
        }
    }

    #[test]
    fn oblivious_point_matches_random_interleave() {
        let seed = 42;
        let mut adaptive = BudgetedAdversary::new(StrategyPoint::oblivious(), seed);
        let mut oblivious = RandomInterleave::new(stream_rng(seed, 0, salts::ADVERSARY));
        let enabled = [true, true, false, true, true];
        let round = [1, 2, 9, 1, 3];
        let steps = [4, 8, 36, 5, 12];
        for _ in 0..200 {
            let v = view(&enabled, &round, &steps);
            assert_eq!(adaptive.next(v), oblivious.next(v));
        }
        assert_eq!(adaptive.spent(), 0);
        assert_eq!(adaptive.granted(), 0);
    }

    #[test]
    fn stall_leader_redirects_to_most_behind() {
        // Constant budget, trigger lead 1: the first time the base pick
        // lands on the leader, the step goes to the most-behind process.
        let point = StrategyPoint {
            budget: Some(BudgetSchedule::Constant(100)),
            rule: TargetRule::StallLeader,
            trigger: 1,
        };
        let mut adv = BudgetedAdversary::new(point, 7);
        let enabled = [true, true, true];
        let round = [3, 1, 2];
        let steps = [12, 4, 8];
        let mut redirected = false;
        for _ in 0..50 {
            let pick = adv.next(view(&enabled, &round, &steps)).unwrap();
            assert_ne!(
                pick, 0,
                "leader picks must be redirected while budget lasts"
            );
            if adv.spent() > 0 {
                redirected = true;
            }
        }
        assert!(
            redirected,
            "base schedule never picked the leader in 50 draws?"
        );
        // Every redirect went to the most-behind process (id 1), and
        // each one cost exactly one token.
        assert!(adv.spent() <= adv.granted());
    }

    #[test]
    fn constant_budget_exhausts() {
        let point = StrategyPoint {
            budget: Some(BudgetSchedule::Constant(2)),
            rule: TargetRule::CatchUp,
            trigger: 1,
        };
        let mut adv = BudgetedAdversary::new(point, 9);
        let enabled = [true, true];
        let round = [5, 1];
        let steps = [20, 4];
        // CatchUp with lead 4 fires on every pick until tokens run out;
        // redirect target is id 1, so picks of 1 cost nothing only when
        // the base already chose 1... the redirect-to-self case spends
        // nothing, hence spent counts only actual overrides.
        for _ in 0..100 {
            adv.next(view(&enabled, &round, &steps)).unwrap();
        }
        assert_eq!(adv.granted(), 2);
        assert!(adv.spent() <= 2);
    }

    #[test]
    fn per_round_budget_accrues_with_frontier() {
        let point = StrategyPoint {
            budget: Some(BudgetSchedule::PerRound(3)),
            rule: TargetRule::StallLeader,
            trigger: 0,
        };
        let mut adv = BudgetedAdversary::new(point, 11);
        let enabled = [true, true];
        let steps = [4, 4];
        let r1 = [1, 1];
        adv.next(view(&enabled, &r1, &steps)).unwrap();
        assert_eq!(adv.granted(), 3);
        let r2 = [3, 1]; // frontier jumped 2 rounds
        adv.next(view(&enabled, &r2, &steps)).unwrap();
        assert_eq!(adv.granted(), 9);
        // Frontier regressing (leader crashed) earns nothing.
        let r3 = [3, 2];
        adv.next(view(&enabled, &r3, &steps)).unwrap();
        assert_eq!(adv.granted(), 9);
    }

    #[test]
    fn near_decision_fires_only_in_window() {
        let point = StrategyPoint {
            budget: Some(BudgetSchedule::Constant(100)),
            rule: TargetRule::NearDecision,
            trigger: 1,
        };
        let adv = BudgetedAdversary::new(point, 13);
        let enabled = [true, true];
        let round = [3, 1];
        // Leader at steps 11: 11 % 4 == 3, next op is the decisive
        // fourth — inside a window of 1.
        let steps_hot = [11, 4];
        let v = view(&enabled, &round, &steps_hot);
        assert_eq!(adv.intervene(&v, 0), Some(1));
        // Leader at steps 9: two ops from the decisive read — outside.
        let steps_cold = [9, 4];
        let v = view(&enabled, &round, &steps_cold);
        assert_eq!(adv.intervene(&v, 0), None);
        // No lead → a decision is not plausible → hoard.
        let round_tied = [3, 3];
        let v = view(&enabled, &round_tied, &steps_hot);
        assert_eq!(adv.intervene(&v, 0), None);
    }

    #[test]
    fn round_boundary_fires_at_phase_start() {
        let point = StrategyPoint {
            budget: Some(BudgetSchedule::PerRound(4)),
            rule: TargetRule::RoundBoundary,
            trigger: 1,
        };
        let adv = BudgetedAdversary::new(point, 17);
        let enabled = [true, true];
        let round = [3, 1];
        // steps % 4 == 0: the leader just crossed a round boundary.
        let at_boundary = [12, 4];
        let v = view(&enabled, &round, &at_boundary);
        assert_eq!(adv.intervene(&v, 0), Some(1));
        let mid_round = [14, 4];
        let v = view(&enabled, &round, &mid_round);
        assert_eq!(adv.intervene(&v, 0), None);
    }

    #[test]
    fn front_runner_crasher_kills_at_phase_transition() {
        let mut adv = FrontRunnerCrasher::new(1);
        let enabled = [true, true, true];
        let steps = [4, 4, 4];
        // Everyone in round 1: the initial frontier is recorded, nobody
        // leads, nobody dies.
        let r1 = [1, 1, 1];
        assert!(adv.crash_now(view(&enabled, &r1, &steps)).is_empty());
        // Process 2 enters round 2 first: crash it.
        let r2 = [1, 1, 2];
        assert_eq!(adv.crash_now(view(&enabled, &r2, &steps)), vec![2]);
        assert_eq!(adv.crashed(), &[2]);
        // Budget exhausted: the next transition is free.
        let r3 = [3, 1, 2];
        assert!(adv.crash_now(view(&enabled, &r3, &steps)).is_empty());
    }

    #[test]
    fn front_runner_crasher_one_kill_per_frontier_round() {
        let mut adv = FrontRunnerCrasher::new(10);
        let enabled = [true, true];
        let steps = [8, 4];
        let r2 = [2, 1];
        assert_eq!(adv.crash_now(view(&enabled, &r2, &steps)), vec![0]);
        // Same frontier re-observed: no second kill.
        assert!(adv.crash_now(view(&enabled, &r2, &steps)).is_empty());
    }
}
