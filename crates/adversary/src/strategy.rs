//! The parameterized adversary-strategy family.
//!
//! A [`StrategyPoint`] is one adversary configuration: how scheduling
//! budget accrues ([`BudgetSchedule`]), what state triggers an
//! intervention ([`TargetRule`] + trigger threshold), and — implicitly —
//! where interventions redirect (always the most-behind enabled
//! process, the redirect that keeps the race closest). A
//! [`StrategyFamily`] is the cartesian grid the tournament sweeps.
//!
//! Every point is deterministic from a run seed:
//! [`StrategyPoint::build`] derives the base-schedule RNG with
//! [`nc_sched::stream_rng`]`(run_seed, 0, salts::ADVERSARY)`, the same
//! stream an oblivious [`nc_sched::adversary::RandomInterleave`] would
//! draw — so the zero-budget point reproduces the oblivious baseline
//! pick-for-pick.

use crate::adaptive::BudgetedAdversary;

/// How scheduling-override budget accrues over a run.
///
/// Budget is counted in *tokens*: one token buys one overridden pick.
/// The paper's noisy-scheduling model says sustained interference is
/// expensive (HajiAghayi–Kowalski–Olkowski parameterize exactly this
/// adversary-budget tradeoff), so the family exposes both a flat
/// endowment and an income proportional to race progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetSchedule {
    /// A one-time endowment of `b` tokens, granted up front. Hoardable:
    /// combined with [`TargetRule::NearDecision`] this is the
    /// save-and-spend shape of E14, made adaptive.
    Constant(u64),
    /// An income of `m` tokens every time the race frontier (the
    /// maximum round among enabled processes) advances — the adversary
    /// earns interference budget at the rate the protocol makes
    /// progress, the steady-pressure regime of Theorem 13.
    PerRound(u64),
}

/// When an intervention fires, given the observed
/// [`nc_sched::adversary::ProcView`].
///
/// Every rule redirects the overridden pick to the most-behind enabled
/// process; they differ in *when* a token is worth spending. `trigger`
/// below refers to [`StrategyPoint::trigger`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetRule {
    /// Leader-lane targeting: whenever the base schedule would step the
    /// current leader and its lead is at least `trigger` rounds, step
    /// the most-behind process instead.
    StallLeader,
    /// Near-decision spending: intervene only when the leader is within
    /// `trigger` operations of its round's decisive fourth operation
    /// (the `ReadPrevRival` that can produce a decision) *and* actually
    /// leads the race — the moments a token has maximal effect.
    NearDecision,
    /// Round-boundary ambush: intervene during the first `trigger`
    /// operations of the leader's current round, stalling each phase
    /// transition right as it begins.
    RoundBoundary,
    /// Catch-up: whenever the lead is at least `trigger` rounds, spend
    /// a token stepping the most-behind process regardless of what the
    /// base schedule picked — the budgeted approximation of the
    /// never-terminating `AntiLeader` schedule.
    CatchUp,
}

impl TargetRule {
    fn name(self) -> &'static str {
        match self {
            TargetRule::StallLeader => "stall-leader",
            TargetRule::NearDecision => "near-decision",
            TargetRule::RoundBoundary => "round-boundary",
            TargetRule::CatchUp => "catch-up",
        }
    }
}

/// One adversary configuration in the strategy grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StrategyPoint {
    /// Budget schedule, or `None` for the oblivious baseline (no
    /// overrides ever; the pure uniform-random schedule).
    pub budget: Option<BudgetSchedule>,
    /// When to spend a token. Irrelevant (but recorded) when `budget`
    /// is `None`.
    pub rule: TargetRule,
    /// The rule's trigger threshold; units depend on the rule (rounds
    /// of lead for `StallLeader`/`CatchUp`, an operation window for
    /// `NearDecision`/`RoundBoundary`).
    pub trigger: u32,
}

impl StrategyPoint {
    /// The oblivious baseline: no budget, never intervenes.
    pub fn oblivious() -> Self {
        StrategyPoint {
            budget: None,
            rule: TargetRule::StallLeader,
            trigger: 0,
        }
    }

    /// Whether this is the oblivious (never-intervening) point.
    pub fn is_oblivious(&self) -> bool {
        self.budget.is_none()
    }

    /// A short stable label for tables and reports, e.g.
    /// `stall-leader/round4/k1` or `oblivious`.
    pub fn label(&self) -> String {
        match self.budget {
            None => "oblivious".into(),
            Some(BudgetSchedule::Constant(b)) => {
                format!("{}/const{}/k{}", self.rule.name(), b, self.trigger)
            }
            Some(BudgetSchedule::PerRound(m)) => {
                format!("{}/round{}/k{}", self.rule.name(), m, self.trigger)
            }
        }
    }

    /// Instantiates this point's adversary for one run.
    pub fn build(&self, run_seed: u64) -> BudgetedAdversary {
        BudgetedAdversary::new(*self, run_seed)
    }
}

/// A grid of strategy points: the cartesian product of budget
/// schedules, target rules, and trigger thresholds, with the oblivious
/// baseline always prepended as point 0.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrategyFamily {
    /// Budget schedules to cross (the oblivious point is implicit).
    pub budgets: Vec<BudgetSchedule>,
    /// Target rules to cross.
    pub rules: Vec<TargetRule>,
    /// Trigger thresholds to cross.
    pub triggers: Vec<u32>,
}

impl StrategyFamily {
    /// Builds a family from explicit axes.
    pub fn new(budgets: Vec<BudgetSchedule>, rules: Vec<TargetRule>, triggers: Vec<u32>) -> Self {
        StrategyFamily {
            budgets,
            rules,
            triggers,
        }
    }

    /// The standard tournament grid used by scenario E16 and
    /// `bench_adversary`: 2 budget schedules × 4 rules × 2 triggers =
    /// 16 adaptive points plus the oblivious baseline.
    ///
    /// Budgets stay modest by design — `PerRound` income large enough
    /// to override *every* pick would emulate `AntiLeader` and never
    /// terminate; the tournament's op cap would score it, but the
    /// interesting regime is bounded interference (Theorem 13's), not
    /// unbounded.
    pub fn standard() -> Self {
        StrategyFamily::new(
            vec![BudgetSchedule::Constant(16), BudgetSchedule::PerRound(4)],
            vec![
                TargetRule::StallLeader,
                TargetRule::NearDecision,
                TargetRule::RoundBoundary,
                TargetRule::CatchUp,
            ],
            vec![1, 2],
        )
    }

    /// Enumerates the grid in a fixed order: the oblivious baseline
    /// first, then budgets × rules × triggers (outer to inner). The
    /// order is part of the determinism contract — point index `j`
    /// seeds via `trial_seed(tournament_seed, j, salts::STRATEGY)`.
    pub fn points(&self) -> Vec<StrategyPoint> {
        let mut out = vec![StrategyPoint::oblivious()];
        for &budget in &self.budgets {
            for &rule in &self.rules {
                for &trigger in &self.triggers {
                    out.push(StrategyPoint {
                        budget: Some(budget),
                        rule,
                        trigger,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_family_shape() {
        let fam = StrategyFamily::standard();
        let points = fam.points();
        assert_eq!(points.len(), 1 + 2 * 4 * 2);
        assert!(points[0].is_oblivious());
        assert!(points[1..].iter().all(|p| !p.is_oblivious()));
    }

    #[test]
    fn labels_are_unique_and_stable() {
        let points = StrategyFamily::standard().points();
        let labels: Vec<String> = points.iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "duplicate labels: {labels:?}");
        assert_eq!(labels[0], "oblivious");
        assert_eq!(labels[1], "stall-leader/const16/k1");
    }

    #[test]
    fn point_order_is_fixed() {
        // The point order is a determinism contract (it drives seed
        // derivation); pin it.
        let a = StrategyFamily::standard().points();
        let b = StrategyFamily::standard().points();
        assert_eq!(a, b);
        assert_eq!(
            a[1],
            StrategyPoint {
                budget: Some(BudgetSchedule::Constant(16)),
                rule: TargetRule::StallLeader,
                trigger: 1,
            }
        );
    }
}
