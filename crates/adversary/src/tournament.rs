//! The strategy-search tournament: grid/beam search over a
//! [`StrategyFamily`], scoring each point by the rounds it forces.
//!
//! Scoring runs lean-consensus on split inputs (the hard case) under
//! each point's adversary, over a [`TrialSet`] fan-out. A decided
//! trial scores its first-decision round; a trial that hits the op cap
//! scores the highest round any process had reached — a lower bound on
//! what the strategy forces, so capped runs can only *understate* a
//! strategy's strength, never inflate it.
//!
//! Determinism: point `j` of the family seeds via
//! `trial_seed(tournament_seed, j, salts::STRATEGY)` and trial `t`
//! under it via `trial_seed(point_seed, t, salts::STRATEGY)`; points
//! are scored in family order and trials fan out through the engine's
//! deterministic sweep, so results are byte-identical at every
//! worker/lane count.
//!
//! [`TrialSet`]: nc_engine::sim::TrialSet

use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm, Limits, RunOutcome};
use nc_sched::rng::{salts, trial_seed};

use crate::strategy::{StrategyFamily, StrategyPoint};

/// One strategy point's tournament score.
#[derive(Clone, Debug, PartialEq)]
pub struct StrategyScore {
    /// The scored point.
    pub point: StrategyPoint,
    /// `point.label()`, precomputed for tables.
    pub label: String,
    /// Trials this score aggregates (beam refinement re-scores the
    /// leaders at a higher count).
    pub trials: u64,
    /// Mean forced round across trials — the ranking metric.
    pub mean_round: f64,
    /// Worst single-trial forced round.
    pub worst_round: usize,
    /// Trials that hit the op cap undecided (scored by progress round).
    pub capped: u64,
}

/// A scored family, in family order.
#[derive(Clone, Debug, PartialEq)]
pub struct TournamentResult {
    /// One score per family point, index-aligned with
    /// [`StrategyFamily::points`].
    pub scores: Vec<StrategyScore>,
}

impl TournamentResult {
    /// Indices ranked strongest-first: by mean forced round descending,
    /// then worst round descending, then family order.
    pub fn ranked(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.scores.len()).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&self.scores[a], &self.scores[b]);
            sb.mean_round
                .total_cmp(&sa.mean_round)
                .then(sb.worst_round.cmp(&sa.worst_round))
                .then(a.cmp(&b))
        });
        order
    }

    /// The oblivious baseline's score, if the family included it (it
    /// always does for [`StrategyFamily::points`]).
    pub fn oblivious(&self) -> Option<&StrategyScore> {
        self.scores.iter().find(|s| s.point.is_oblivious())
    }

    /// The strongest *adaptive* point — the tournament's headline.
    pub fn worst_adaptive(&self) -> Option<&StrategyScore> {
        self.ranked()
            .into_iter()
            .map(|j| &self.scores[j])
            .find(|s| !s.point.is_oblivious())
    }
}

/// The tournament harness: fixed protocol size and trial budget, sweeps
/// a [`StrategyFamily`] and scores every point.
#[derive(Clone, Debug)]
pub struct Tournament {
    n: usize,
    trials: u64,
    seed0: u64,
    max_ops: u64,
    threads: usize,
    lanes: usize,
}

impl Tournament {
    /// A tournament at protocol size `n` with default knobs: 16 trials
    /// per point, seed 0, a 100k op cap, serial execution.
    pub fn new(n: usize) -> Self {
        Tournament {
            n,
            trials: 16,
            seed0: 0,
            max_ops: 100_000,
            threads: 1,
            lanes: 1,
        }
    }

    /// Sets trials per strategy point.
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Sets the base seed all point/trial seeds derive from.
    pub fn seed0(mut self, seed0: u64) -> Self {
        self.seed0 = seed0;
        self
    }

    /// Sets the per-run op cap (adversarial schedules can stall; capped
    /// runs are scored by the round they reached).
    pub fn max_ops(mut self, max_ops: u64) -> Self {
        self.max_ops = max_ops.max(1);
        self
    }

    /// Sets the worker-thread count for each point's trial fan-out
    /// (0 = one per core). Purely a performance knob: results are
    /// byte-identical at every setting.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the sweep's pipelining lane width. Adversarial schedules
    /// run lanes sequentially, so this too never affects results.
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// Scores a single point under an explicit point seed and trial
    /// count — the primitive both searches are built from.
    pub fn score_at(&self, point: StrategyPoint, point_seed: u64, trials: u64) -> StrategyScore {
        let reports = Sim::new(Algorithm::Lean)
            .inputs(setup::half_and_half(self.n))
            .adversary(move |run_seed| point.build(run_seed))
            .limits(Limits::first_decision().with_max_ops(self.max_ops))
            .trials(trials)
            .seed_fn(move |t| trial_seed(point_seed, t, salts::STRATEGY))
            .threads(self.threads)
            .lanes(self.lanes)
            .reports();
        let mut sum = 0u64;
        let mut worst = 0usize;
        let mut capped = 0u64;
        for r in &reports {
            let round = r.first_decision_round.unwrap_or(r.max_round);
            sum += round as u64;
            worst = worst.max(round);
            if r.outcome == RunOutcome::OpCapReached {
                capped += 1;
            }
        }
        StrategyScore {
            point,
            label: point.label(),
            trials,
            mean_round: sum as f64 / reports.len().max(1) as f64,
            worst_round: worst,
            capped,
        }
    }

    /// Grid search: scores every point of `family` at the tournament's
    /// trial budget, in family order.
    pub fn sweep(&self, family: &StrategyFamily) -> TournamentResult {
        let scores = family
            .points()
            .into_iter()
            .enumerate()
            .map(|(j, point)| {
                self.score_at(
                    point,
                    trial_seed(self.seed0, j as u64, salts::STRATEGY),
                    self.trials,
                )
            })
            .collect();
        TournamentResult { scores }
    }

    /// Beam search: a full grid pass at the base trial budget, then the
    /// top `width` points re-scored at `refine_factor ×` the trials to
    /// sharpen the leaders' means. The refined scores replace the
    /// coarse ones in the returned result (their `trials` field records
    /// the deeper count).
    pub fn beam(
        &self,
        family: &StrategyFamily,
        width: usize,
        refine_factor: u64,
    ) -> TournamentResult {
        let points = family.points();
        let mut result = self.sweep(family);
        let order = result.ranked();
        for &j in order.iter().take(width) {
            result.scores[j] = self.score_at(
                points[j],
                trial_seed(self.seed0, j as u64, salts::STRATEGY),
                self.trials * refine_factor.max(1),
            );
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{BudgetSchedule, TargetRule};

    fn small() -> Tournament {
        Tournament::new(4).trials(3).max_ops(20_000)
    }

    fn tiny_family() -> StrategyFamily {
        StrategyFamily::new(
            vec![BudgetSchedule::Constant(8)],
            vec![TargetRule::StallLeader, TargetRule::CatchUp],
            vec![1],
        )
    }

    #[test]
    fn sweep_scores_every_point_in_order() {
        let result = small().sweep(&tiny_family());
        assert_eq!(result.scores.len(), 3); // oblivious + 2
        assert!(result.scores[0].point.is_oblivious());
        assert!(result.scores.iter().all(|s| s.mean_round >= 1.0));
        assert!(result.oblivious().is_some());
        assert!(!result.worst_adaptive().unwrap().point.is_oblivious());
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = small().sweep(&tiny_family());
        let b = small().sweep(&tiny_family());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small().sweep(&tiny_family());
        let b = small().seed0(99).sweep(&tiny_family());
        assert_ne!(a, b);
    }

    #[test]
    fn ranking_is_total_and_stable() {
        let result = small().sweep(&tiny_family());
        let order = result.ranked();
        assert_eq!(order.len(), result.scores.len());
        for w in order.windows(2) {
            let (a, b) = (&result.scores[w[0]], &result.scores[w[1]]);
            assert!(a.mean_round >= b.mean_round);
        }
    }

    #[test]
    fn beam_refines_leaders_at_higher_trials() {
        let t = small();
        let refined = t.beam(&tiny_family(), 1, 4);
        let deeper: Vec<&StrategyScore> =
            refined.scores.iter().filter(|s| s.trials == 12).collect();
        assert_eq!(deeper.len(), 1);
        // Unrefined points keep their coarse scores.
        assert_eq!(
            refined.scores.iter().filter(|s| s.trials == 3).count(),
            refined.scores.len() - 1
        );
        // And the beam itself is deterministic.
        assert_eq!(refined, t.beam(&tiny_family(), 1, 4));
    }
}
