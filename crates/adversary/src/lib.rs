//! Adaptive adversaries and the strategy-search tournament.
//!
//! The paper's headline result (Theorems 12/13) is a Θ(log n) round
//! bound against a *worst-case* noisy scheduler, but a bound proved
//! against the worst case is only as tight as the strongest adversary
//! anyone has actually fielded. This crate fields them:
//!
//! * [`adaptive`] — budget-limited schedule adversaries that *react* to
//!   the observed race ([`nc_sched::adversary::ProcView`]): stall the
//!   current leader's lane, hoard noise budget and dump it when a
//!   process is about to decide, ambush round boundaries — plus a crash
//!   adversary that kills the front-runner at phase transitions.
//! * [`strategy`] — the parameterized [`StrategyFamily`]: budget
//!   schedule × target-selection rule × trigger threshold, each point
//!   deterministic from a seed via [`nc_sched::rng::trial_seed`] with
//!   [`nc_sched::rng::salts::STRATEGY`].
//! * [`tournament`] — [`Tournament`], the grid/beam-search harness that
//!   sweeps a family over `TrialSet` fan-out and reports the
//!   empirically worst-case round count, byte-identical at every
//!   worker/lane count.
//!
//! Scheduling power is budgeted, not absolute: an unrestricted
//! adversary stalls lean-consensus forever (FLP; see
//! `round_robin_split_never_terminates` in `nc_engine`), so each
//! adversary here follows the engine's oblivious uniform-random
//! schedule and may *override* only a bounded number of picks. The
//! zero-budget point of every family is exactly the oblivious
//! baseline, which is what makes "adaptive ≥ oblivious" a measurable
//! statement rather than a tautology.

#![warn(missing_docs)]

pub mod adaptive;
pub mod strategy;
pub mod tournament;

pub use adaptive::{
    BudgetedAdversary, FrontRunnerCrasher, LeaderLaneStaller, NearDecisionSpender,
    RoundBoundaryAmbush,
};
pub use strategy::{BudgetSchedule, StrategyFamily, StrategyPoint, TargetRule};
pub use tournament::{StrategyScore, Tournament, TournamentResult};
