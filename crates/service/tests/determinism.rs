//! The service-layer determinism contract:
//!
//! * per-shard commit journals do not depend on how many worker threads
//!   drained the shards (1-vs-4 threads, byte-identical),
//! * the canonical reduced commit log does not depend on the shard
//!   count either (1-vs-2-vs-4 shards, byte-identical),
//! * and the REQUIRED `trial_seed` per-instance seed derivation never
//!   collides across the instances of a run, whatever shard they land
//!   on (proptest).

use nc_memory::Bit;
use nc_sched::rng::{salts, trial_seed};
use nc_service::{loadgen, InstanceStatus, NcService, ServiceConfig};
use proptest::prelude::*;

const SEED: u64 = 40;
const INSTANCES: u64 = 24;
const PROCS: usize = 5;

/// Builds a service, feeds it the deterministic loadgen proposal
/// stream, and decides everything with `threads` workers, batching
/// `batch` instances between `run_ready` calls.
fn run_service(shards: usize, threads: usize, batch: u64) -> NcService {
    let cfg = ServiceConfig::builder()
        .procs(PROCS)
        .shards(shards)
        .seed(SEED)
        .build()
        .unwrap();
    let mut svc = NcService::new(cfg);
    let mut submitted = 0u64;
    while submitted < INSTANCES {
        let until = (submitted + batch).min(INSTANCES);
        while submitted < until {
            for value in loadgen::proposals_for(submitted, PROCS) {
                svc.propose(submitted, value).unwrap();
            }
            submitted += 1;
        }
        svc.run_ready(threads);
    }
    assert_eq!(svc.decided() as u64, INSTANCES);
    svc
}

#[test]
fn commit_logs_identical_1_vs_4_threads() {
    let serial = run_service(4, 1, 6);
    let fanned = run_service(4, 4, 6);
    for s in 0..4 {
        assert_eq!(
            serial.commit_log_bytes(s),
            fanned.commit_log_bytes(s),
            "shard {s}: journal depends on worker-thread count"
        );
    }
    assert_eq!(serial.reduced_log(), fanned.reduced_log());
}

#[test]
fn reduced_log_identical_1_vs_4_shards() {
    let one = run_service(1, 1, 6);
    let two = run_service(2, 2, 6);
    let four = run_service(4, 4, 6);
    let log = one.reduced_log();
    assert!(!log.is_empty());
    assert_eq!(log, two.reduced_log(), "2 shards diverged from 1");
    assert_eq!(log, four.reduced_log(), "4 shards diverged from 1");
}

#[test]
fn batch_size_does_not_change_the_logs() {
    // Draining one instance at a time vs everything at once exercises
    // the pooled handle's reuse path; facts must not notice.
    let fine = run_service(2, 1, 1);
    let coarse = run_service(2, 1, INSTANCES);
    assert_eq!(fine.reduced_log(), coarse.reduced_log());
    for s in 0..2 {
        assert_eq!(fine.commit_log_bytes(s), coarse.commit_log_bytes(s));
    }
}

#[test]
fn every_instance_is_reported_decided() {
    let svc = run_service(4, 4, 8);
    for id in 0..INSTANCES {
        assert!(
            matches!(svc.status(id), InstanceStatus::Decided(_)),
            "instance {id} not decided"
        );
    }
    assert_eq!(svc.reduced_log().lines().count() as u64, INSTANCES);
}

proptest! {
    /// Per-instance seeds are injective over any run's id set: distinct
    /// instance ids (wherever they shard) never share a run seed, and
    /// the derivation is independent of the shard count by construction
    /// (it never sees one).
    #[test]
    fn instance_seeds_never_collide_within_a_run(
        service_seed in any::<u64>(),
        raw_ids in proptest::collection::vec(any::<u64>(), 2..64),
    ) {
        let ids: std::collections::BTreeSet<u64> = raw_ids.into_iter().collect();
        let mut seen = std::collections::HashMap::new();
        for &id in &ids {
            let seed = trial_seed(service_seed, id, salts::SERVICE);
            if let Some(prev) = seen.insert(seed, id) {
                prop_assert!(
                    false,
                    "instances {prev} and {id} share seed {seed} under service seed {service_seed}"
                );
            }
        }
        // And the service answers the same derivation per shard count.
        for shards in [1usize, 2, 4] {
            let svc = NcService::new(
                ServiceConfig::builder()
                    .procs(2)
                    .shards(shards)
                    .seed(service_seed)
                    .build()
                    .unwrap(),
            );
            for &id in ids.iter().take(4) {
                prop_assert_eq!(
                    svc.instance_seed(id),
                    trial_seed(service_seed, id, salts::SERVICE)
                );
            }
        }
    }

    /// The service-salted stream is disjoint from the engine's other
    /// salted streams for the same (seed, index) pair.
    #[test]
    fn service_salt_is_disjoint_from_other_salts(seed in any::<u64>(), t in any::<u64>()) {
        for other in [
            salts::NOISE,
            salts::FAILURE,
            salts::START,
            salts::ADVERSARY,
            salts::COIN,
            salts::VALUE_FAULTS,
            salts::NET_FAULTS,
            salts::GOSSIP,
        ] {
            prop_assert_ne!(
                trial_seed(seed, t, salts::SERVICE),
                trial_seed(seed, t, other),
                "SERVICE stream collides with salt {}", other
            );
        }
    }
}

#[test]
fn proposals_round_trip_through_bit() {
    // The loadgen derivation feeds Bit::from(bool); spot-check both
    // values appear across instances so the determinism suite isn't
    // vacuously testing unanimous runs only.
    let mut zeros = 0;
    let mut ones = 0;
    for id in 0..INSTANCES {
        for b in loadgen::proposals_for(id, PROCS) {
            match b {
                Bit::Zero => zeros += 1,
                Bit::One => ones += 1,
            }
        }
    }
    assert!(zeros > 0 && ones > 0, "degenerate proposal stream");
}
