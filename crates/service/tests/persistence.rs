//! The crash-recovery determinism contract of the durable service
//! plane:
//!
//! * a service killed mid-run and reopened from its `journal_dir`
//!   continues to a reduced commit log — and to on-disk segment files —
//!   **byte-identical** to an uninterrupted run, across shard counts
//!   (1/2/4) and worker-thread counts (1 vs 4),
//! * a torn final record (a crash mid-append) is truncated away on
//!   reopen, its instance becomes re-runnable, and re-running it
//!   restores the identical bytes,
//! * replay repopulates `status()` for every durable fact, and the
//!   retention policy applies across the reopen.
//!
//! Proptests sweep the segment capacity (so kill points land on and
//! around segment boundaries) and the torn-tail cut length.

use std::path::{Path, PathBuf};

use nc_service::{loadgen, InstanceStatus, NcService, Retention, ServiceConfig};
use proptest::prelude::*;

const SEED: u64 = 41;
const PROCS: usize = 5;
const INSTANCES: u64 = 24;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "nc-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cfg(shards: usize, dir: &Path, segment_records: usize) -> ServiceConfig {
    ServiceConfig::builder()
        .procs(PROCS)
        .shards(shards)
        .seed(SEED)
        .journal_dir(dir)
        .segment_records(segment_records)
        .build()
        .unwrap()
}

/// Submits the deterministic loadgen stream for `ids` and decides it.
fn feed(svc: &mut NcService, ids: std::ops::Range<u64>, threads: usize) {
    for id in ids {
        for value in loadgen::proposals_for(id, PROCS) {
            svc.submit(id, value).unwrap();
        }
    }
    svc.run_ready(threads);
}

/// Every journal file under `dir`, relative path -> bytes, so two
/// journal trees can be compared for byte-identity.
fn journal_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path.strip_prefix(dir).unwrap().display().to_string();
                out.push((rel, std::fs::read(&path).unwrap()));
            }
        }
    }
    out.sort();
    out
}

/// The uninterrupted reference: all instances decided in batches of 6.
fn uninterrupted(shards: usize, threads: usize, dir: &Path, segment_records: usize) -> String {
    let mut svc = NcService::new(cfg(shards, dir, segment_records));
    for batch in 0..INSTANCES / 6 {
        feed(&mut svc, batch * 6..(batch + 1) * 6, threads);
    }
    assert_eq!(svc.decided() as u64, INSTANCES);
    svc.reduced_log()
}

/// Kill-and-reopen: decide `kill_after` instances, drop the service
/// (in-flight ring submissions die with it, as in a real crash),
/// reopen from the same dir, re-submit everything not yet durable, and
/// finish. Returns the final reduced log.
fn killed_and_reopened(
    shards: usize,
    threads: usize,
    dir: &Path,
    segment_records: usize,
    kill_after: u64,
) -> String {
    {
        let mut svc = NcService::new(cfg(shards, dir, segment_records));
        feed(&mut svc, 0..kill_after, threads);
        // Submissions that never reached run_ready are not durable;
        // they vanish with the process.
        for value in loadgen::proposals_for(kill_after, PROCS) {
            let _ = svc.submit(kill_after, value);
        }
        // svc dropped here: the "kill". No flush, no shutdown hook.
    }
    let mut svc = NcService::new(cfg(shards, dir, segment_records));
    assert_eq!(
        svc.decided() as u64,
        kill_after,
        "replay lost or invented facts"
    );
    for id in 0..INSTANCES {
        match svc.status(id) {
            InstanceStatus::Decided(_) | InstanceStatus::Evicted { .. } => {}
            InstanceStatus::Unknown => feed(&mut svc, id..id + 1, threads),
            other => panic!("instance {id} replayed to {other:?}"),
        }
    }
    assert_eq!(svc.decided() as u64, INSTANCES);
    svc.reduced_log()
}

#[test]
fn kill_and_reopen_is_byte_identical_across_shards_and_threads() {
    for shards in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            let straight = TempDir::new(&format!("straight-{shards}-{threads}"));
            let killed = TempDir::new(&format!("killed-{shards}-{threads}"));
            let want = uninterrupted(shards, threads, &straight.0, 4);
            let got = killed_and_reopened(shards, threads, &killed.0, 4, 13);
            assert_eq!(
                want, got,
                "reduced log diverged (shards={shards}, threads={threads})"
            );
            assert_eq!(
                journal_bytes(&straight.0),
                journal_bytes(&killed.0),
                "on-disk segments diverged (shards={shards}, threads={threads})"
            );
        }
    }
}

#[test]
fn reduced_log_is_invariant_to_segment_capacity() {
    // The reduced log is a pure function of the request stream; the
    // segment capacity only changes how the same records are filed.
    let a = TempDir::new("cap-1");
    let b = TempDir::new("cap-7");
    let c = TempDir::new("cap-big");
    let log = uninterrupted(2, 1, &a.0, 1);
    assert_eq!(log, uninterrupted(2, 1, &b.0, 7));
    assert_eq!(log, uninterrupted(2, 1, &c.0, 1024));
}

#[test]
fn replay_restores_statuses_and_journal_matches_memory() {
    let dir = TempDir::new("statuses");
    let want_log = {
        let mut svc = NcService::new(cfg(3, &dir.0, 5));
        feed(&mut svc, 0..INSTANCES, 1);
        svc.reduced_log()
    };
    let mut svc = NcService::new(cfg(3, &dir.0, 5));
    assert_eq!(svc.reduced_log(), want_log);
    for id in 0..INSTANCES {
        let InstanceStatus::Decided(fact) = svc.status(id) else {
            panic!("instance {id} not restored");
        };
        assert_eq!(fact.id, id);
        // Closed across the reopen, too.
        assert!(svc.submit(id, nc_memory::Bit::One).is_err());
    }
    // Replayed facts are re-announced through the completion drain
    // (at-least-once delivery across restarts).
    assert_eq!(svc.drain_completions().len() as u64, INSTANCES);
}

#[test]
fn retention_applies_across_reopen() {
    let dir = TempDir::new("retention");
    let base = cfg(2, &dir.0, 4);
    {
        let mut svc = NcService::new(base.clone());
        feed(&mut svc, 0..10, 1);
    }
    let capped = ServiceConfig::builder()
        .procs(PROCS)
        .shards(2)
        .seed(SEED)
        .journal_dir(&dir.0)
        .segment_records(4)
        .retention(Retention::DecidedCap(3))
        .build()
        .unwrap();
    let svc = NcService::new(capped);
    assert_eq!(svc.decided(), 10, "eviction must not lose journal facts");
    assert_eq!(svc.resident_decided(), 3);
    assert_eq!(svc.evicted_count(), 7);
    // Replay publishes in canonical id order: the cap keeps the
    // highest ids resident.
    for id in 0..7u64 {
        assert!(matches!(svc.status(id), InstanceStatus::Evicted { .. }));
    }
    for id in 7..10u64 {
        assert!(matches!(svc.status(id), InstanceStatus::Decided(_)));
    }
}

/// The final (highest-index) segment file under `shard_dir`.
fn last_segment(shard_dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(shard_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    segs.pop().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill points landing anywhere — including exactly on segment
    /// boundaries — replay to the identical bytes, for any small
    /// segment capacity.
    #[test]
    fn kill_point_and_segment_capacity_never_change_the_bytes(
        segment_records in 1usize..8,
        kill_after in 0u64..INSTANCES,
        shards in 1usize..4,
    ) {
        let straight = TempDir::new("prop-straight");
        let killed = TempDir::new("prop-killed");
        let want = uninterrupted(shards, 1, &straight.0, segment_records);
        let got = killed_and_reopened(shards, 1, &killed.0, segment_records, kill_after);
        prop_assert_eq!(want, got);
        prop_assert_eq!(journal_bytes(&straight.0), journal_bytes(&killed.0));
    }

    /// A torn final record — any cut strictly inside the last record's
    /// 32 bytes — is dropped on reopen; the torn instance re-runs and
    /// the final journal tree is byte-identical to the untorn one.
    #[test]
    fn torn_tails_heal_to_identical_bytes(cut in 1u64..32) {
        let dir = TempDir::new("prop-torn");
        let decided = 9u64;
        {
            let mut svc = NcService::new(cfg(2, &dir.0, 3));
            feed(&mut svc, 0..decided, 1);
        }
        let untorn = journal_bytes(&dir.0);
        // Tear the tail of shard 0's last segment.
        let seg = last_segment(&dir.0.join("shard-0"));
        let len = std::fs::metadata(&seg).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - cut).unwrap();
        drop(file);

        let mut svc = NcService::new(cfg(2, &dir.0, 3));
        prop_assert_eq!(svc.decided() as u64, decided - 1, "exactly one fact torn");
        let torn_id = (0..decided)
            .find(|&id| matches!(svc.status(id), InstanceStatus::Unknown))
            .expect("the torn instance must look fresh");
        feed(&mut svc, torn_id..torn_id + 1, 1);
        prop_assert_eq!(svc.decided() as u64, decided);
        drop(svc);
        prop_assert_eq!(journal_bytes(&dir.0), untorn);
    }
}
