//! Consensus as a service: a sharded multi-shot instance manager.
//!
//! The paper's protocol decides a *single* binary consensus instance;
//! production means millions of concurrent single-shot instances
//! decided behind one front door. This crate is that front door:
//!
//! * **Front door.** [`NcService::propose`] feeds one proposal into an
//!   instance identified by a caller-chosen `u64` id;
//!   [`NcService::status`] answers where any instance stands
//!   (unknown / accepting / queued / decided). Once an instance has
//!   collected one proposal per process it becomes *ready* and is
//!   queued on its shard.
//! * **Sharded instance table.** Instances are sharded by id
//!   (`id % shards`). Every instance derives its run seed as
//!   `trial_seed(service_seed, id, salts::SERVICE)` — the REQUIRED
//!   derivation, making each instance's schedule noise an independent
//!   stream that depends only on the service seed and the instance id,
//!   never on sharding or arrival order.
//! * **Batched stepping.** Each shard owns one reusable
//!   [`nc_engine::sim::SimRun`] handle and drives its ready queue
//!   through it ([`SimRun::run_with_inputs`]), so queue allocations and
//!   RNG scratch amortize across instances exactly the way
//!   [`nc_engine::sim::TrialSet`] pools them across trials.
//!   [`NcService::run_ready`] optionally fans independent shards across
//!   worker threads.
//! * **Commit-fact journals.** Deciding an instance appends an
//!   immutable [`CommitFact`] (decide value, round count, op count) to
//!   the shard's append-only journal. Because every fact is a pure
//!   function of `(service config, id, proposals)`, the canonical
//!   **reduced log** ([`NcService::reduced_log`], the id-sorted merge
//!   of all shard journals) is byte-identical regardless of shard
//!   count or worker threads — the same monotone-journal /
//!   deterministic-reduction contract the aura exemplar ships, with
//!   per-shard journal order itself already independent of threads
//!   (it is the ready-queue order, fixed by the request stream).
//!
//! ```
//! use nc_memory::Bit;
//! use nc_service::{InstanceStatus, NcService, ServiceConfig};
//!
//! let mut svc = NcService::new(ServiceConfig::new(3, 2).with_seed(42));
//! for id in 0..4u64 {
//!     for p in 0..3 {
//!         svc.propose(id, Bit::from((id + p) % 2 == 0)).unwrap();
//!     }
//! }
//! svc.run_ready(1);
//! for id in 0..4u64 {
//!     assert!(matches!(svc.status(id), InstanceStatus::Decided(_)));
//! }
//! ```

use std::collections::{HashMap, VecDeque};

use nc_engine::sim::{Sim, SimRun};
use nc_engine::{Algorithm, Limits};
use nc_memory::Bit;
use nc_sched::rng::{salts, trial_seed};
use nc_sched::{Noise, TimingModel};

pub mod loadgen;

pub use loadgen::{drive_open_loop, LoadReport, LoadSpec};

/// Configuration of one service: every instance runs `procs` processes
/// of lean-consensus under the same timing model, and the table is
/// split over `shards` shards.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Processes per instance (= proposals needed to make it ready).
    pub procs: usize,
    /// Number of shards (≥ 1); instance `id` lives on `id % shards`.
    pub shards: usize,
    /// Service seed; instance `id` runs with
    /// `trial_seed(seed, id, salts::SERVICE)`.
    pub seed: u64,
    /// Timing model every instance is scheduled under.
    pub timing: TimingModel,
    /// Per-instance run limits (op budget etc.).
    pub limits: Limits,
}

impl ServiceConfig {
    /// A `procs`-process, `shards`-shard service with exponential(1)
    /// noise, seed 0, and the default op budget.
    pub fn new(procs: usize, shards: usize) -> Self {
        ServiceConfig {
            procs,
            shards,
            seed: 0,
            timing: TimingModel::figure1(Noise::Exponential { mean: 1.0 }),
            limits: Limits::run_to_completion(),
        }
    }

    /// Replaces the service seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the timing model (builder-style).
    pub fn with_timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// Replaces the per-instance limits (builder-style).
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }
}

/// The immutable record of one decided instance — the unit of the
/// append-only shard journals. A fact is a pure function of
/// `(service config, instance id, proposals)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CommitFact {
    /// The instance this fact decides.
    pub id: u64,
    /// The agreed value (`None` when the run exhausted its op budget
    /// undecided — still a fact: the instance is closed).
    pub value: Option<Bit>,
    /// Round of the earliest decision (0 when undecided).
    pub round: usize,
    /// Total operations the instance executed across all processes.
    pub ops: u64,
}

impl CommitFact {
    /// The canonical one-line serialization (`id,value,round,ops`);
    /// `value` is `0`, `1`, or `-` for undecided.
    pub fn encode(&self) -> String {
        let v = match self.value {
            Some(Bit::Zero) => "0",
            Some(Bit::One) => "1",
            None => "-",
        };
        format!("{},{},{},{}\n", self.id, v, self.round, self.ops)
    }
}

/// Canonical serialization of a journal slice: one [`CommitFact::encode`]
/// line per fact, in slice order.
pub fn encode_log(facts: &[CommitFact]) -> String {
    let mut out = String::with_capacity(facts.len() * 16);
    for fact in facts {
        out.push_str(&fact.encode());
    }
    out
}

/// Where an instance stands, as answered by [`NcService::status`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstanceStatus {
    /// Never heard of it.
    Unknown,
    /// Collecting proposals: `got` of `need` arrived.
    Accepting {
        /// Proposals received so far.
        got: usize,
        /// Proposals required (= configured `procs`).
        need: usize,
    },
    /// Fully proposed, waiting on its shard's next batch.
    Queued,
    /// Decided; the commit fact is in its shard's journal.
    Decided(CommitFact),
}

/// What [`NcService::propose`] did with the proposal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProposeOutcome {
    /// Recorded; the instance still needs more proposals.
    Accepted {
        /// Proposals received so far.
        got: usize,
        /// Proposals required.
        need: usize,
    },
    /// This proposal completed the instance: it is now queued on
    /// `shard`, to be decided by the next [`NcService::run_ready`].
    Ready {
        /// The shard the instance was queued on.
        shard: usize,
    },
}

/// Why [`NcService::propose`] refused a proposal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServiceError {
    /// The instance already collected all its proposals (it is queued
    /// or decided); a single-shot instance never reopens.
    InstanceClosed {
        /// The refused instance.
        id: u64,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::InstanceClosed { id } => {
                write!(f, "instance {id} is closed (queued or decided)")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// One shard: a pooled engine handle, the ready queue it drains, and
/// the append-only journal it feeds.
struct Shard {
    runner: SimRun,
    ready: VecDeque<(u64, Vec<Bit>)>,
    journal: Vec<CommitFact>,
    /// Journal prefix already reflected in the instance table.
    synced: usize,
    seed: u64,
}

impl Shard {
    fn new(cfg: &ServiceConfig) -> Self {
        Shard {
            runner: Sim::new(Algorithm::Lean)
                .inputs(vec![Bit::Zero; cfg.procs])
                .timing(cfg.timing.clone())
                .limits(cfg.limits)
                .build(),
            ready: VecDeque::new(),
            journal: Vec::new(),
            synced: 0,
            seed: cfg.seed,
        }
    }

    /// Decides every queued instance through the pooled handle,
    /// appending one commit fact each. Returns facts appended.
    fn drain(&mut self) -> usize {
        let drained = self.ready.len();
        while let Some((id, inputs)) = self.ready.pop_front() {
            let seed = trial_seed(self.seed, id, salts::SERVICE);
            let report = self.runner.run_with_inputs(seed, &inputs);
            self.journal.push(CommitFact {
                id,
                value: report.agreement_value(),
                round: report.first_decision_round.unwrap_or(0),
                ops: report.total_ops,
            });
        }
        drained
    }
}

/// The sharded multi-shot instance manager. See the crate docs for the
/// architecture; [`ServiceConfig`] for the knobs.
pub struct NcService {
    cfg: ServiceConfig,
    table: HashMap<u64, InstanceStatus>,
    /// Proposals buffered for still-accepting instances (drained into
    /// the shard ready queue on the final proposal).
    pending_inputs: HashMap<u64, Vec<Bit>>,
    shards: Vec<Shard>,
}

impl NcService {
    /// Builds an empty service.
    ///
    /// # Panics
    ///
    /// Panics if `procs == 0` or `shards == 0`.
    pub fn new(cfg: ServiceConfig) -> Self {
        assert!(cfg.procs >= 1, "need at least one process per instance");
        assert!(cfg.shards >= 1, "need at least one shard");
        let shards = (0..cfg.shards).map(|_| Shard::new(&cfg)).collect();
        NcService {
            cfg,
            table: HashMap::new(),
            pending_inputs: HashMap::new(),
            shards,
        }
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The shard instance `id` lives on.
    pub fn shard_of(&self, id: u64) -> usize {
        (id % self.cfg.shards as u64) as usize
    }

    /// The run seed instance `id` executes under — the REQUIRED
    /// `trial_seed` derivation, shared with no other instance or sweep.
    pub fn instance_seed(&self, id: u64) -> u64 {
        trial_seed(self.cfg.seed, id, salts::SERVICE)
    }

    /// Feeds one proposal into instance `id`. The `procs`-th proposal
    /// makes the instance ready and queues it on its shard; proposing
    /// into a queued or decided instance is refused (single-shot).
    pub fn propose(&mut self, id: u64, value: Bit) -> Result<ProposeOutcome, ServiceError> {
        let need = self.cfg.procs;
        let shard = (id % self.cfg.shards as u64) as usize;
        let entry = self
            .table
            .entry(id)
            .or_insert(InstanceStatus::Accepting { got: 0, need });
        let InstanceStatus::Accepting { got, .. } = entry else {
            return Err(ServiceError::InstanceClosed { id });
        };
        *got += 1;
        let got = *got;
        self.pending_inputs
            .entry(id)
            .or_insert_with(|| Vec::with_capacity(need))
            .push(value);
        if got == need {
            let inputs = self.pending_inputs.remove(&id).expect("buffered above");
            self.table.insert(id, InstanceStatus::Queued);
            self.shards[shard].ready.push_back((id, inputs));
            Ok(ProposeOutcome::Ready { shard })
        } else {
            Ok(ProposeOutcome::Accepted { got, need })
        }
    }

    /// Where instance `id` stands.
    pub fn status(&self, id: u64) -> InstanceStatus {
        self.table
            .get(&id)
            .copied()
            .unwrap_or(InstanceStatus::Unknown)
    }

    /// Decides every ready instance, fanning independent shards over up
    /// to `threads` workers (`0` and `1` both mean serial). Returns the
    /// newly appended commit facts in canonical order (by shard, then
    /// ready-queue order) — the same facts regardless of `threads`.
    pub fn run_ready(&mut self, threads: usize) -> Vec<CommitFact> {
        let workers = threads.max(1).min(self.shards.len());
        if workers <= 1 {
            for shard in self.shards.iter_mut() {
                shard.drain();
            }
        } else {
            let per = self.shards.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk in self.shards.chunks_mut(per) {
                    handles.push(scope.spawn(move || {
                        for shard in chunk {
                            shard.drain();
                        }
                    }));
                }
                for handle in handles {
                    handle.join().expect("shard worker panicked");
                }
            });
        }
        // Serial post-pass: publish the new facts into the table.
        let mut fresh = Vec::new();
        for shard in self.shards.iter_mut() {
            for fact in &shard.journal[shard.synced..] {
                self.table.insert(fact.id, InstanceStatus::Decided(*fact));
                fresh.push(*fact);
            }
            shard.synced = shard.journal.len();
        }
        fresh
    }

    /// Instances queued and not yet decided, across all shards.
    pub fn queued(&self) -> usize {
        self.shards.iter().map(|s| s.ready.len()).sum()
    }

    /// Shard `s`'s append-only commit-fact journal.
    pub fn commit_log(&self, s: usize) -> &[CommitFact] {
        &self.shards[s].journal
    }

    /// Canonical bytes of shard `s`'s journal.
    pub fn commit_log_bytes(&self, s: usize) -> String {
        encode_log(&self.shards[s].journal)
    }

    /// The canonical reduced commit log: all shard journals merged and
    /// sorted by instance id, serialized. Byte-identical for the same
    /// request stream regardless of shard count or worker threads —
    /// facts are immutable and the id-sorted union is their join.
    pub fn reduced_log(&self) -> String {
        let mut facts: Vec<CommitFact> = self
            .shards
            .iter()
            .flat_map(|s| s.journal.iter().copied())
            .collect();
        facts.sort_unstable_by_key(|f| f.id);
        encode_log(&facts)
    }

    /// Total commit facts across all shards.
    pub fn decided(&self) -> usize {
        self.shards.iter().map(|s| s.journal.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(svc: &mut NcService, id: u64) {
        let procs = svc.config().procs;
        for p in 0..procs {
            svc.propose(id, Bit::from((id + p as u64).is_multiple_of(2)))
                .unwrap();
        }
    }

    #[test]
    fn front_door_lifecycle() {
        let mut svc = NcService::new(ServiceConfig::new(3, 2).with_seed(5));
        assert_eq!(svc.status(9), InstanceStatus::Unknown);
        assert_eq!(
            svc.propose(9, Bit::One),
            Ok(ProposeOutcome::Accepted { got: 1, need: 3 })
        );
        assert_eq!(svc.status(9), InstanceStatus::Accepting { got: 1, need: 3 });
        svc.propose(9, Bit::Zero).unwrap();
        assert_eq!(
            svc.propose(9, Bit::One),
            Ok(ProposeOutcome::Ready { shard: 1 })
        );
        assert_eq!(svc.status(9), InstanceStatus::Queued);
        assert_eq!(
            svc.propose(9, Bit::One),
            Err(ServiceError::InstanceClosed { id: 9 })
        );
        let fresh = svc.run_ready(1);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].id, 9);
        let InstanceStatus::Decided(fact) = svc.status(9) else {
            panic!("instance 9 must be decided");
        };
        assert_eq!(fact, fresh[0]);
        assert!(fact.value.is_some());
        assert!(fact.round >= 1);
        assert!(fact.ops >= 1);
        assert_eq!(
            svc.propose(9, Bit::Zero),
            Err(ServiceError::InstanceClosed { id: 9 })
        );
    }

    #[test]
    fn unanimous_instances_decide_their_input() {
        // Validity survives the service plumbing: an all-ones instance
        // must commit 1, an all-zeros instance 0.
        let mut svc = NcService::new(ServiceConfig::new(4, 2).with_seed(3));
        for _ in 0..4 {
            svc.propose(0, Bit::Zero).unwrap();
            svc.propose(1, Bit::One).unwrap();
        }
        svc.run_ready(1);
        let facts: Vec<CommitFact> = svc
            .run_ready(1)
            .is_empty()
            .then(|| {
                let mut all: Vec<CommitFact> = (0..2)
                    .flat_map(|s| svc.commit_log(s).iter().copied())
                    .collect();
                all.sort_unstable_by_key(|f| f.id);
                all
            })
            .unwrap();
        assert_eq!(facts[0].value, Some(Bit::Zero));
        assert_eq!(facts[1].value, Some(Bit::One));
        // The reduced log is exactly these facts in id order.
        assert_eq!(svc.reduced_log(), encode_log(&facts));
    }

    #[test]
    fn instance_seeds_use_the_required_derivation() {
        let svc = NcService::new(ServiceConfig::new(3, 4).with_seed(77));
        assert_eq!(
            svc.instance_seed(12),
            nc_sched::rng::trial_seed(77, 12, nc_sched::rng::salts::SERVICE)
        );
        assert_eq!(svc.shard_of(12), 0);
        assert_eq!(svc.shard_of(13), 1);
    }

    #[test]
    fn commit_fact_encoding_is_canonical() {
        let fact = CommitFact {
            id: 42,
            value: Some(Bit::One),
            round: 3,
            ops: 120,
        };
        assert_eq!(fact.encode(), "42,1,3,120\n");
        let undecided = CommitFact {
            id: 7,
            value: None,
            round: 0,
            ops: 999,
        };
        assert_eq!(undecided.encode(), "7,-,0,999\n");
        assert_eq!(encode_log(&[fact, undecided]), "42,1,3,120\n7,-,0,999\n");
    }

    #[test]
    fn journals_are_append_only_across_batches() {
        let mut svc = NcService::new(ServiceConfig::new(3, 1).with_seed(1));
        fill(&mut svc, 0);
        svc.run_ready(1);
        let after_first = svc.commit_log_bytes(0);
        fill(&mut svc, 1);
        svc.run_ready(1);
        let after_second = svc.commit_log_bytes(0);
        assert!(
            after_second.starts_with(&after_first),
            "a later batch rewrote committed facts"
        );
        assert_eq!(svc.decided(), 2);
    }

    #[test]
    fn op_budget_exhaustion_closes_the_instance_undecided() {
        // A starvation-tight budget cannot decide; the instance must
        // still close with a `value: None` fact instead of wedging.
        let cfg = ServiceConfig::new(4, 1)
            .with_seed(2)
            .with_limits(Limits::run_to_completion().with_max_ops(4));
        let mut svc = NcService::new(cfg);
        fill(&mut svc, 0);
        let fresh = svc.run_ready(1);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].value, None);
        assert_eq!(fresh[0].round, 0);
        assert!(matches!(svc.status(0), InstanceStatus::Decided(_)));
    }
}
