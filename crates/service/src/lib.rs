//! Consensus as a service: a sharded multi-shot instance manager with
//! a durable commit-journal plane.
//!
//! The paper's protocol decides a *single* binary consensus instance;
//! production means millions of concurrent single-shot instances
//! decided behind one front door. This crate is that front door:
//!
//! * **Front door.** [`NcService::submit`] enqueues one proposal into
//!   a per-shard submission ring and returns a [`Ticket`];
//!   [`NcService::poll`] answers where the ticket's instance stands
//!   and [`NcService::drain_completions`] hands back every commit
//!   fact decided since the last drain — no busy-stepping. The
//!   synchronous [`NcService::propose`] / [`NcService::status`] pair
//!   remains for callers that apply proposals immediately.
//! * **Sharded instance table.** Instances are sharded by id
//!   (`id % shards`). Every instance derives its run seed as
//!   `trial_seed(service_seed, id, salts::SERVICE)` — the REQUIRED
//!   derivation, making each instance's schedule noise an independent
//!   stream that depends only on the service seed and the instance id,
//!   never on sharding or arrival order.
//! * **Batched stepping.** Each shard owns one reusable
//!   [`nc_engine::sim::SimRun`] handle and drives its ready queue
//!   through it ([`SimRun::run_with_inputs`]).
//!   [`NcService::run_ready`] first drains the submission rings in
//!   deterministic id order, then optionally fans independent shards
//!   across worker threads.
//! * **Durable commit journals.** Deciding an instance appends an
//!   immutable [`CommitFact`] to the shard's append-only journal —
//!   and, when a `journal_dir` is configured, to the shard's on-disk
//!   [`journal`] segments *before* the fact is published. The byte
//!   format is deterministic: a service killed mid-batch and reopened
//!   from its journal directory produces journals and a reduced log
//!   **byte-identical** to an uninterrupted run (pinned by
//!   `tests/persistence.rs`).
//! * **Instance retention.** [`Retention`] bounds how many decided
//!   instances stay resident in the table; evicted ids keep answering
//!   [`NcService::status`] as [`InstanceStatus::Evicted`] out of the
//!   compact journal index, so eviction never shrinks the API surface.
//!
//! The canonical **reduced log** ([`NcService::reduced_log`], the
//! id-sorted merge of all shard journals) is byte-identical regardless
//! of shard count, worker threads, batching, or crash-and-reopen —
//! the same monotone-journal / deterministic-reduction contract the
//! aura exemplar ships.
//!
//! ```
//! use nc_memory::Bit;
//! use nc_service::{InstanceStatus, NcService, ServiceConfig};
//!
//! let cfg = ServiceConfig::builder()
//!     .procs(3)
//!     .shards(2)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//! let mut svc = NcService::new(cfg);
//! let mut tickets = Vec::new();
//! for id in 0..4u64 {
//!     for p in 0..3 {
//!         tickets.push(svc.submit(id, Bit::from((id + p) % 2 == 0)).unwrap());
//!     }
//! }
//! svc.run_ready(1);
//! for t in &tickets {
//!     assert!(matches!(svc.poll(*t), InstanceStatus::Decided(_)));
//! }
//! assert_eq!(svc.drain_completions().len(), 4);
//! ```

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;

use nc_engine::sim::{Sim, SimRun};
use nc_engine::{Algorithm, Limits};
use nc_memory::Bit;
use nc_sched::rng::{salts, trial_seed};
use nc_sched::{Noise, TimingModel};

pub mod journal;
pub mod loadgen;
pub mod retention;

pub use journal::{JournalError, JournalReader, JournalWriter};
pub use loadgen::{drive_open_loop, LoadReport, LoadSpec};
pub use retention::Retention;

use retention::ResidencyTracker;

/// Where a service's on-disk journal lives and how it is segmented.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JournalSpec {
    /// Root directory; shard `s` journals under `shard-<s>/`.
    pub dir: PathBuf,
    /// Records per segment file — part of the byte format: reopening
    /// with a different value than the journal was written with is
    /// rejected as corruption.
    pub segment_records: usize,
}

/// Configuration of one service: every instance runs `procs` processes
/// of lean-consensus under the same timing model, and the table is
/// split over `shards` shards. Build one with
/// [`ServiceConfig::builder`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Processes per instance (= proposals needed to make it ready).
    pub procs: usize,
    /// Number of shards (≥ 1); instance `id` lives on `id % shards`.
    pub shards: usize,
    /// Service seed; instance `id` runs with
    /// `trial_seed(seed, id, salts::SERVICE)`.
    pub seed: u64,
    /// Timing model every instance is scheduled under.
    pub timing: TimingModel,
    /// Per-instance run limits (op budget etc.).
    pub limits: Limits,
    /// Residency policy for decided instances.
    pub retention: Retention,
    /// On-disk journal location; `None` keeps journals in memory only.
    pub journal: Option<JournalSpec>,
}

/// Why [`ServiceConfigBuilder::build`] refused a configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServiceConfigError {
    /// `procs` was zero: an instance with no processes can never
    /// become ready.
    ZeroProcs,
    /// `shards` was zero: there would be nowhere to queue instances.
    ZeroShards,
    /// A [`Retention::DecidedCap`] / [`Retention::Lru`] cap of zero
    /// would evict every fact the moment it commits.
    ZeroRetentionCap,
    /// `segment_records` was zero: a journal segment must hold at
    /// least one record.
    ZeroSegmentRecords,
}

impl std::fmt::Display for ServiceConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceConfigError::ZeroProcs => write!(f, "procs must be >= 1"),
            ServiceConfigError::ZeroShards => write!(f, "shards must be >= 1"),
            ServiceConfigError::ZeroRetentionCap => {
                write!(f, "retention cap must be >= 1")
            }
            ServiceConfigError::ZeroSegmentRecords => {
                write!(f, "journal segment_records must be >= 1")
            }
        }
    }
}

impl std::error::Error for ServiceConfigError {}

/// Validating builder for [`ServiceConfig`], mirroring the
/// `nc_engine::sim::Sim` idiom: set the knobs, then [`build`] checks
/// them as a whole and returns a typed [`ServiceConfigError`] instead
/// of panicking later.
///
/// [`build`]: ServiceConfigBuilder::build
#[derive(Clone, Debug)]
pub struct ServiceConfigBuilder {
    procs: usize,
    shards: usize,
    seed: u64,
    timing: TimingModel,
    limits: Limits,
    retention: Retention,
    journal_dir: Option<PathBuf>,
    segment_records: usize,
}

impl ServiceConfigBuilder {
    /// Sets the processes per instance (required, ≥ 1).
    pub fn procs(mut self, procs: usize) -> Self {
        self.procs = procs;
        self
    }

    /// Sets the shard count (default 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the service seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the timing model (default exponential(1) Figure 1 noise).
    pub fn timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// Sets the per-instance run limits (default run-to-completion).
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the retention policy (default [`Retention::KeepAll`]).
    pub fn retention(mut self, retention: Retention) -> Self {
        self.retention = retention;
        self
    }

    /// Enables the on-disk journal under `dir` (default: in-memory
    /// journals only).
    pub fn journal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Sets the journal segment capacity in records (default
    /// [`journal::DEFAULT_SEGMENT_RECORDS`]); ignored without a
    /// [`journal_dir`](Self::journal_dir).
    pub fn segment_records(mut self, records: usize) -> Self {
        self.segment_records = records;
        self
    }

    /// Validates the configuration.
    pub fn build(self) -> Result<ServiceConfig, ServiceConfigError> {
        if self.procs == 0 {
            return Err(ServiceConfigError::ZeroProcs);
        }
        if self.shards == 0 {
            return Err(ServiceConfigError::ZeroShards);
        }
        if self.retention.cap() == Some(0) {
            return Err(ServiceConfigError::ZeroRetentionCap);
        }
        if self.segment_records == 0 {
            return Err(ServiceConfigError::ZeroSegmentRecords);
        }
        Ok(ServiceConfig {
            procs: self.procs,
            shards: self.shards,
            seed: self.seed,
            timing: self.timing,
            limits: self.limits,
            retention: self.retention,
            journal: self.journal_dir.map(|dir| JournalSpec {
                dir,
                segment_records: self.segment_records,
            }),
        })
    }
}

impl ServiceConfig {
    /// A validating builder with the historical defaults: 1 shard,
    /// seed 0, exponential(1) Figure 1 noise, run-to-completion
    /// limits, [`Retention::KeepAll`], no on-disk journal. `procs`
    /// starts at 0 and **must** be set.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            procs: 0,
            shards: 1,
            seed: 0,
            timing: TimingModel::figure1(Noise::Exponential { mean: 1.0 }),
            limits: Limits::run_to_completion(),
            retention: Retention::KeepAll,
            journal_dir: None,
            segment_records: journal::DEFAULT_SEGMENT_RECORDS,
        }
    }

    /// Replaces the service seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the timing model (builder-style).
    pub fn with_timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// Replaces the per-instance limits (builder-style).
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }
}

/// The immutable record of one decided instance — the unit of the
/// append-only shard journals. A fact is a pure function of
/// `(service config, instance id, proposals)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CommitFact {
    /// The instance this fact decides.
    pub id: u64,
    /// The agreed value (`None` when the run exhausted its op budget
    /// undecided — still a fact: the instance is closed).
    pub value: Option<Bit>,
    /// Round of the earliest decision (0 when undecided).
    pub round: usize,
    /// Total operations the instance executed across all processes.
    pub ops: u64,
}

impl CommitFact {
    /// The canonical one-line serialization (`id,value,round,ops`);
    /// `value` is `0`, `1`, or `-` for undecided.
    pub fn encode(&self) -> String {
        let v = match self.value {
            Some(Bit::Zero) => "0",
            Some(Bit::One) => "1",
            None => "-",
        };
        format!("{},{},{},{}\n", self.id, v, self.round, self.ops)
    }
}

/// Canonical serialization of a journal slice: one [`CommitFact::encode`]
/// line per fact, in slice order.
pub fn encode_log(facts: &[CommitFact]) -> String {
    let mut out = String::with_capacity(facts.len() * 16);
    for fact in facts {
        out.push_str(&fact.encode());
    }
    out
}

/// A submission receipt from [`NcService::submit`]: pass it to
/// [`NcService::poll`] to track the instance without re-deriving its
/// shard.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ticket {
    id: u64,
    shard: usize,
}

impl Ticket {
    /// The instance this ticket tracks.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The shard the instance lives on.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// Where an instance stands, as answered by [`NcService::status`] and
/// [`NcService::poll`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstanceStatus {
    /// Never heard of it (distinct from [`InstanceStatus::Evicted`]:
    /// an unknown id has no durable fact).
    Unknown,
    /// Collecting proposals: `got` of `need` arrived (submitted but
    /// not-yet-drained ring entries are counted).
    Accepting {
        /// Proposals received so far.
        got: usize,
        /// Proposals required (= configured `procs`).
        need: usize,
    },
    /// Fully proposed, waiting on its shard's next batch.
    Queued,
    /// Decided; the commit fact is in its shard's journal.
    Decided(CommitFact),
    /// Decided and evicted from the resident table under the
    /// [`Retention`] policy; the full fact remains durable in the
    /// shard journal, and the compact journal index answers here.
    Evicted {
        /// The decided value (`None` for an op-budget-exhausted
        /// instance, mirroring [`CommitFact::value`]).
        decided: Option<Bit>,
        /// Round of the earliest decision (0 when undecided).
        round: u32,
    },
}

/// What [`NcService::propose`] did with the proposal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProposeOutcome {
    /// Recorded; the instance still needs more proposals.
    Accepted {
        /// Proposals received so far.
        got: usize,
        /// Proposals required.
        need: usize,
    },
    /// This proposal completed the instance: it is now queued on
    /// `shard`, to be decided by the next [`NcService::run_ready`].
    Ready {
        /// The shard the instance was queued on.
        shard: usize,
    },
}

/// Why [`NcService::propose`] or [`NcService::submit`] refused a
/// proposal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServiceError {
    /// The instance already collected all its proposals (counting
    /// not-yet-drained submissions) — it is queued, decided, or
    /// evicted; a single-shot instance never reopens.
    InstanceClosed {
        /// The refused instance.
        id: u64,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::InstanceClosed { id } => {
                write!(f, "instance {id} is closed (queued, decided, or evicted)")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// One shard: a pooled engine handle, the submission ring and ready
/// queue it drains, and the append-only journal (in-memory always, on
/// disk when configured) it feeds.
struct Shard {
    runner: SimRun,
    /// Non-blocking front door: `(id, value)` submissions awaiting the
    /// next [`NcService::run_ready`] drain.
    submissions: VecDeque<(u64, Bit)>,
    ready: VecDeque<(u64, Vec<Bit>)>,
    journal: Vec<CommitFact>,
    /// Journal prefix already reflected in the instance table.
    synced: usize,
    writer: Option<JournalWriter>,
    /// First journal-append failure during a drain (drains run on
    /// worker threads; the error surfaces as a panic in `run_ready`'s
    /// serial post-pass).
    io_error: Option<JournalError>,
    seed: u64,
}

impl Shard {
    fn new(cfg: &ServiceConfig, writer: Option<JournalWriter>, replayed: Vec<CommitFact>) -> Self {
        let synced = replayed.len();
        Shard {
            runner: Sim::new(Algorithm::Lean)
                .inputs(vec![Bit::Zero; cfg.procs])
                .timing(cfg.timing.clone())
                .limits(cfg.limits)
                .build(),
            submissions: VecDeque::new(),
            ready: VecDeque::new(),
            journal: replayed,
            synced,
            writer,
            io_error: None,
            seed: cfg.seed,
        }
    }

    /// Decides every queued instance through the pooled handle,
    /// appending one commit fact each — to disk first when a journal
    /// writer is attached. Returns facts appended.
    fn drain(&mut self) -> usize {
        let drained = self.ready.len();
        while let Some((id, inputs)) = self.ready.pop_front() {
            let seed = trial_seed(self.seed, id, salts::SERVICE);
            let report = self.runner.run_with_inputs(seed, &inputs);
            let fact = CommitFact {
                id,
                value: report.agreement_value(),
                round: report.first_decision_round.unwrap_or(0),
                ops: report.total_ops,
            };
            if let Some(writer) = &mut self.writer {
                if let Err(e) = writer.append(&fact) {
                    if self.io_error.is_none() {
                        self.io_error = Some(e);
                    }
                    // Do not publish a fact that is not durable.
                    break;
                }
            }
            self.journal.push(fact);
        }
        drained
    }
}

/// The sharded multi-shot instance manager. See the crate docs for the
/// architecture; [`ServiceConfig`] for the knobs.
pub struct NcService {
    cfg: ServiceConfig,
    table: HashMap<u64, InstanceStatus>,
    /// Proposals buffered for still-accepting instances (drained into
    /// the shard ready queue on the final proposal).
    pending_inputs: HashMap<u64, Vec<Bit>>,
    /// Compact journal index for evicted instances:
    /// `id -> (value, round)`.
    evicted: HashMap<u64, (Option<Bit>, u32)>,
    /// Proposals sitting in submission rings, per instance.
    ring_got: HashMap<u64, usize>,
    /// Facts decided since the last [`NcService::drain_completions`].
    completions: Vec<CommitFact>,
    tracker: ResidencyTracker,
    shards: Vec<Shard>,
}

impl NcService {
    /// Builds a service, replaying the on-disk journal when one is
    /// configured.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.procs == 0` or `cfg.shards == 0` (impossible for
    /// a builder-produced config), or if journal replay fails — use
    /// [`NcService::open`] to handle [`JournalError`] as a value.
    pub fn new(cfg: ServiceConfig) -> Self {
        NcService::open(cfg).expect("journal replay failed")
    }

    /// Builds a service, replaying the on-disk journal when one is
    /// configured; journal problems come back as [`JournalError`].
    ///
    /// Replayed facts repopulate the shard journals and the instance
    /// table (then the [`Retention`] policy is applied to them in
    /// canonical id order), so a reopened service continues exactly
    /// where the durable log ends: a torn final record is truncated
    /// and its instance simply runs again, reproducing the identical
    /// fact.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.procs == 0` or `cfg.shards == 0`.
    pub fn open(cfg: ServiceConfig) -> Result<Self, JournalError> {
        assert!(cfg.procs >= 1, "need at least one process per instance");
        assert!(cfg.shards >= 1, "need at least one shard");
        let mut shards = Vec::with_capacity(cfg.shards);
        for s in 0..cfg.shards {
            let (writer, replayed) = match &cfg.journal {
                Some(spec) => {
                    let dir = spec.dir.join(format!("shard-{s}"));
                    let (writer, replayed) = JournalWriter::open(&dir, spec.segment_records)?;
                    (Some(writer), replayed)
                }
                None => (None, Vec::new()),
            };
            shards.push(Shard::new(&cfg, writer, replayed));
        }
        let mut svc = NcService {
            cfg,
            table: HashMap::new(),
            pending_inputs: HashMap::new(),
            evicted: HashMap::new(),
            ring_got: HashMap::new(),
            completions: Vec::new(),
            tracker: ResidencyTracker::new(Retention::KeepAll),
            shards,
        };
        svc.tracker = ResidencyTracker::new(svc.cfg.retention);
        // Publish replayed facts in canonical id order — the replayed
        // resident set is then a pure function of the durable facts,
        // independent of how the original run batched them.
        let mut replayed: Vec<CommitFact> = svc
            .shards
            .iter()
            .flat_map(|s| s.journal.iter().copied())
            .collect();
        replayed.sort_unstable_by_key(|f| f.id);
        for fact in replayed {
            svc.publish(fact);
        }
        Ok(svc)
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The shard instance `id` lives on.
    pub fn shard_of(&self, id: u64) -> usize {
        (id % self.cfg.shards as u64) as usize
    }

    /// The run seed instance `id` executes under — the REQUIRED
    /// `trial_seed` derivation, shared with no other instance or sweep.
    pub fn instance_seed(&self, id: u64) -> u64 {
        trial_seed(self.cfg.seed, id, salts::SERVICE)
    }

    /// How many proposals instance `id` has effectively collected
    /// (table plus not-yet-drained ring entries), or `None` if it is
    /// closed (queued, decided, or evicted).
    fn effective_got(&self, id: u64) -> Option<usize> {
        let ring = self.ring_got.get(&id).copied().unwrap_or(0);
        match self.table.get(&id) {
            None if self.evicted.contains_key(&id) => None,
            None => Some(ring),
            Some(InstanceStatus::Accepting { got, .. }) => Some(got + ring),
            Some(_) => None,
        }
    }

    /// Feeds one proposal into instance `id`, applied immediately. The
    /// `procs`-th proposal makes the instance ready and queues it on
    /// its shard; proposing into a queued, decided, or evicted
    /// instance — or one whose ring submissions already complete it —
    /// is refused (single-shot).
    pub fn propose(&mut self, id: u64, value: Bit) -> Result<ProposeOutcome, ServiceError> {
        let need = self.cfg.procs;
        match self.effective_got(id) {
            Some(got) if got < need => {}
            _ => return Err(ServiceError::InstanceClosed { id }),
        }
        let shard = (id % self.cfg.shards as u64) as usize;
        let entry = self
            .table
            .entry(id)
            .or_insert(InstanceStatus::Accepting { got: 0, need });
        let InstanceStatus::Accepting { got, .. } = entry else {
            return Err(ServiceError::InstanceClosed { id });
        };
        *got += 1;
        let got = *got;
        self.pending_inputs
            .entry(id)
            .or_insert_with(|| Vec::with_capacity(need))
            .push(value);
        if got == need {
            let inputs = self.pending_inputs.remove(&id).expect("buffered above");
            self.table.insert(id, InstanceStatus::Queued);
            self.shards[shard].ready.push_back((id, inputs));
            Ok(ProposeOutcome::Ready { shard })
        } else {
            Ok(ProposeOutcome::Accepted { got, need })
        }
    }

    /// Enqueues one proposal for instance `id` on its shard's
    /// submission ring — the non-blocking front door. The proposal is
    /// applied by the next [`NcService::run_ready`]; track it with
    /// [`NcService::poll`]. Refused exactly when [`NcService::propose`]
    /// would be, counting ring entries, so a drain can never reject.
    pub fn submit(&mut self, id: u64, value: Bit) -> Result<Ticket, ServiceError> {
        let need = self.cfg.procs;
        match self.effective_got(id) {
            Some(got) if got < need => {}
            _ => return Err(ServiceError::InstanceClosed { id }),
        }
        let shard = (id % self.cfg.shards as u64) as usize;
        self.shards[shard].submissions.push_back((id, value));
        *self.ring_got.entry(id).or_insert(0) += 1;
        Ok(Ticket { id, shard })
    }

    /// Where instance `id` stands. Counts not-yet-drained ring
    /// submissions, answers evicted ids from the journal index, and —
    /// being `&self` — never refreshes LRU recency (that is
    /// [`NcService::poll`]'s job).
    pub fn status(&self, id: u64) -> InstanceStatus {
        let need = self.cfg.procs;
        let ring = self.ring_got.get(&id).copied().unwrap_or(0);
        match self.table.get(&id) {
            Some(InstanceStatus::Accepting { got, .. }) => {
                let got = got + ring;
                if got >= need {
                    InstanceStatus::Queued
                } else {
                    InstanceStatus::Accepting { got, need }
                }
            }
            Some(status) => *status,
            None => {
                if let Some(&(decided, round)) = self.evicted.get(&id) {
                    InstanceStatus::Evicted { decided, round }
                } else if ring > 0 {
                    if ring >= need {
                        InstanceStatus::Queued
                    } else {
                        InstanceStatus::Accepting { got: ring, need }
                    }
                } else {
                    InstanceStatus::Unknown
                }
            }
        }
    }

    /// Where the ticket's instance stands; additionally refreshes the
    /// instance's LRU recency under [`Retention::Lru`] (the reason
    /// `poll` takes `&mut self` while [`NcService::status`] stays
    /// `&self`).
    pub fn poll(&mut self, ticket: Ticket) -> InstanceStatus {
        let status = self.status(ticket.id);
        if matches!(status, InstanceStatus::Decided(_)) {
            self.tracker.touch(ticket.id);
        }
        status
    }

    /// Every commit fact decided since the last drain (or since the
    /// service opened), in decide order. The non-blocking counterpart
    /// to capturing [`NcService::run_ready`]'s return value.
    pub fn drain_completions(&mut self) -> Vec<CommitFact> {
        std::mem::take(&mut self.completions)
    }

    /// Publishes one fact: table entry, completion buffer, retention
    /// bookkeeping, and any eviction it forces.
    fn publish(&mut self, fact: CommitFact) {
        self.table.insert(fact.id, InstanceStatus::Decided(fact));
        self.completions.push(fact);
        let mut evict = VecDeque::new();
        self.tracker.admit(fact.id, &mut evict);
        while let Some(victim) = evict.pop_front() {
            let Some(InstanceStatus::Decided(f)) = self.table.remove(&victim) else {
                unreachable!("tracker admits only decided instances");
            };
            self.evicted.insert(victim, (f.value, f.round as u32));
        }
    }

    /// Decides every ready instance, fanning independent shards over up
    /// to `threads` workers (`0` and `1` both mean serial). Submission
    /// rings are drained first, in deterministic id order. Returns the
    /// newly appended commit facts in canonical order (by shard, then
    /// ready-queue order) — the same facts regardless of `threads`.
    ///
    /// # Panics
    ///
    /// Panics if a configured on-disk journal fails to append (the
    /// fact was not published; the service is not usable past a
    /// half-written batch).
    pub fn run_ready(&mut self, threads: usize) -> Vec<CommitFact> {
        // Drain the submission rings in id order (stable, so multiple
        // proposals for one instance keep their submission order) —
        // the batch an instance runs in is then a pure function of the
        // submitted set, not of ring interleaving.
        let mut pending: Vec<(u64, Bit)> = Vec::new();
        for shard in self.shards.iter_mut() {
            pending.extend(shard.submissions.drain(..));
        }
        pending.sort_by_key(|&(id, _)| id);
        for (id, value) in pending {
            match self.ring_got.get_mut(&id) {
                Some(n) if *n > 1 => *n -= 1,
                _ => {
                    self.ring_got.remove(&id);
                }
            }
            self.propose(id, value)
                .expect("ring entries are validated at submit time");
        }

        let workers = threads.max(1).min(self.shards.len());
        if workers <= 1 {
            for shard in self.shards.iter_mut() {
                shard.drain();
            }
        } else {
            let per = self.shards.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk in self.shards.chunks_mut(per) {
                    handles.push(scope.spawn(move || {
                        for shard in chunk {
                            shard.drain();
                        }
                    }));
                }
                for handle in handles {
                    handle.join().expect("shard worker panicked");
                }
            });
        }
        // Serial post-pass: surface journal failures, then publish the
        // new facts into the table (evicting under the retention
        // policy — facts are durable by now).
        for (s, shard) in self.shards.iter_mut().enumerate() {
            if let Some(e) = shard.io_error.take() {
                panic!("shard {s} journal append failed: {e}");
            }
        }
        let mut fresh = Vec::new();
        for s in 0..self.shards.len() {
            let start = self.shards[s].synced;
            let end = self.shards[s].journal.len();
            for i in start..end {
                fresh.push(self.shards[s].journal[i]);
            }
            self.shards[s].synced = end;
        }
        for fact in &fresh {
            self.publish(*fact);
        }
        fresh
    }

    /// Instances queued and not yet decided, across all shards
    /// (not-yet-drained ring submissions are not counted).
    pub fn queued(&self) -> usize {
        self.shards.iter().map(|s| s.ready.len()).sum()
    }

    /// Proposals sitting in submission rings, across all shards.
    pub fn submitted_pending(&self) -> usize {
        self.shards.iter().map(|s| s.submissions.len()).sum()
    }

    /// Decided instances currently resident in the table (equals
    /// [`NcService::decided`] under [`Retention::KeepAll`]).
    pub fn resident_decided(&self) -> usize {
        match self.cfg.retention {
            Retention::KeepAll => self
                .table
                .values()
                .filter(|s| matches!(s, InstanceStatus::Decided(_)))
                .count(),
            _ => self.tracker.resident(),
        }
    }

    /// Instances evicted from the resident table so far.
    pub fn evicted_count(&self) -> usize {
        self.evicted.len()
    }

    /// `(segments, bytes)` across all shard journals on disk, or
    /// `None` when the service journals in memory only. Byte counts
    /// are derived from the fixed-width format, so they are
    /// deterministic for a given request stream.
    pub fn journal_footprint(&self) -> Option<(u64, u64)> {
        self.cfg.journal.as_ref()?;
        let mut segments = 0u64;
        let mut bytes = 0u64;
        for shard in &self.shards {
            let writer = shard.writer.as_ref()?;
            segments += writer.segments();
            bytes += writer.segments() * journal::HEADER_LEN as u64
                + writer.len() * journal::RECORD_LEN as u64;
        }
        Some((segments, bytes))
    }

    /// Shard `s`'s append-only commit-fact journal.
    pub fn commit_log(&self, s: usize) -> &[CommitFact] {
        &self.shards[s].journal
    }

    /// Canonical bytes of shard `s`'s journal.
    pub fn commit_log_bytes(&self, s: usize) -> String {
        encode_log(&self.shards[s].journal)
    }

    /// The canonical reduced commit log: all shard journals merged and
    /// sorted by instance id, serialized. Byte-identical for the same
    /// request stream regardless of shard count, worker threads, or a
    /// kill-and-reopen through the on-disk journal — facts are
    /// immutable and the id-sorted union is their join.
    pub fn reduced_log(&self) -> String {
        let mut facts: Vec<CommitFact> = self
            .shards
            .iter()
            .flat_map(|s| s.journal.iter().copied())
            .collect();
        facts.sort_unstable_by_key(|f| f.id);
        encode_log(&facts)
    }

    /// Total commit facts across all shards.
    pub fn decided(&self) -> usize {
        self.shards.iter().map(|s| s.journal.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(procs: usize, shards: usize, seed: u64) -> ServiceConfig {
        ServiceConfig::builder()
            .procs(procs)
            .shards(shards)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn fill(svc: &mut NcService, id: u64) {
        let procs = svc.config().procs;
        for p in 0..procs {
            svc.propose(id, Bit::from((id + p as u64).is_multiple_of(2)))
                .unwrap();
        }
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            ServiceConfig::builder().shards(2).build(),
            Err(ServiceConfigError::ZeroProcs)
        ));
        assert!(matches!(
            ServiceConfig::builder().procs(3).shards(0).build(),
            Err(ServiceConfigError::ZeroShards)
        ));
        assert!(matches!(
            ServiceConfig::builder()
                .procs(3)
                .retention(Retention::Lru(0))
                .build(),
            Err(ServiceConfigError::ZeroRetentionCap)
        ));
        assert!(matches!(
            ServiceConfig::builder()
                .procs(3)
                .journal_dir("/tmp/unused")
                .segment_records(0)
                .build(),
            Err(ServiceConfigError::ZeroSegmentRecords)
        ));
        let built = ServiceConfig::builder()
            .procs(3)
            .shards(4)
            .seed(9)
            .retention(Retention::DecidedCap(2))
            .build()
            .unwrap();
        assert_eq!((built.procs, built.shards, built.seed), (3, 4, 9));
        assert_eq!(built.retention, Retention::DecidedCap(2));
        assert!(built.journal.is_none());
    }

    #[test]
    fn front_door_lifecycle() {
        let mut svc = NcService::new(cfg(3, 2, 5));
        assert_eq!(svc.status(9), InstanceStatus::Unknown);
        assert_eq!(
            svc.propose(9, Bit::One),
            Ok(ProposeOutcome::Accepted { got: 1, need: 3 })
        );
        assert_eq!(svc.status(9), InstanceStatus::Accepting { got: 1, need: 3 });
        svc.propose(9, Bit::Zero).unwrap();
        assert_eq!(
            svc.propose(9, Bit::One),
            Ok(ProposeOutcome::Ready { shard: 1 })
        );
        assert_eq!(svc.status(9), InstanceStatus::Queued);
        assert_eq!(
            svc.propose(9, Bit::One),
            Err(ServiceError::InstanceClosed { id: 9 })
        );
        let fresh = svc.run_ready(1);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].id, 9);
        let InstanceStatus::Decided(fact) = svc.status(9) else {
            panic!("instance 9 must be decided");
        };
        assert_eq!(fact, fresh[0]);
        assert!(fact.value.is_some());
        assert!(fact.round >= 1);
        assert!(fact.ops >= 1);
        assert_eq!(
            svc.propose(9, Bit::Zero),
            Err(ServiceError::InstanceClosed { id: 9 })
        );
    }

    #[test]
    fn submit_poll_drain_lifecycle() {
        let mut svc = NcService::new(cfg(3, 2, 5));
        let t = svc.submit(4, Bit::One).unwrap();
        assert_eq!((t.id(), t.shard()), (4, 0));
        assert_eq!(svc.poll(t), InstanceStatus::Accepting { got: 1, need: 3 });
        svc.submit(4, Bit::Zero).unwrap();
        let t3 = svc.submit(4, Bit::One).unwrap();
        // Ring entries count: the instance is effectively closed now.
        assert_eq!(svc.poll(t3), InstanceStatus::Queued);
        assert_eq!(
            svc.submit(4, Bit::One),
            Err(ServiceError::InstanceClosed { id: 4 })
        );
        assert_eq!(
            svc.propose(4, Bit::One),
            Err(ServiceError::InstanceClosed { id: 4 })
        );
        assert_eq!(svc.submitted_pending(), 3);
        let fresh = svc.run_ready(1);
        assert_eq!(fresh.len(), 1);
        assert_eq!(svc.submitted_pending(), 0);
        assert!(matches!(svc.poll(t), InstanceStatus::Decided(_)));
        let completions = svc.drain_completions();
        assert_eq!(completions, fresh);
        assert!(svc.drain_completions().is_empty(), "drain is destructive");
    }

    #[test]
    fn submit_and_propose_agree_on_the_facts() {
        // The same request stream through the synchronous and the
        // ring front door must produce the identical reduced log.
        let mut a = NcService::new(cfg(3, 2, 8));
        let mut b = NcService::new(cfg(3, 2, 8));
        for id in 0..6u64 {
            for p in 0..3 {
                let v = Bit::from((id + p) % 2 == 0);
                a.propose(id, v).unwrap();
                b.submit(id, v).unwrap();
            }
        }
        a.run_ready(1);
        b.run_ready(1);
        assert_eq!(a.reduced_log(), b.reduced_log());
    }

    #[test]
    fn ring_drain_order_is_id_sorted_within_a_batch() {
        // Submit in reverse id order: the per-shard journals must
        // still come out id-sorted, because the ring drain sorts.
        let mut svc = NcService::new(cfg(2, 1, 3));
        for id in (0..5u64).rev() {
            svc.submit(id, Bit::One).unwrap();
            svc.submit(id, Bit::Zero).unwrap();
        }
        svc.run_ready(1);
        let ids: Vec<u64> = svc.commit_log(0).iter().map(|f| f.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unanimous_instances_decide_their_input() {
        // Validity survives the service plumbing: an all-ones instance
        // must commit 1, an all-zeros instance 0.
        let mut svc = NcService::new(cfg(4, 2, 3));
        for _ in 0..4 {
            svc.propose(0, Bit::Zero).unwrap();
            svc.propose(1, Bit::One).unwrap();
        }
        svc.run_ready(1);
        let mut facts: Vec<CommitFact> = (0..2)
            .flat_map(|s| svc.commit_log(s).iter().copied())
            .collect();
        facts.sort_unstable_by_key(|f| f.id);
        assert_eq!(facts[0].value, Some(Bit::Zero));
        assert_eq!(facts[1].value, Some(Bit::One));
        // The reduced log is exactly these facts in id order.
        assert_eq!(svc.reduced_log(), encode_log(&facts));
    }

    #[test]
    fn instance_seeds_use_the_required_derivation() {
        let svc = NcService::new(cfg(3, 4, 77));
        assert_eq!(
            svc.instance_seed(12),
            nc_sched::rng::trial_seed(77, 12, nc_sched::rng::salts::SERVICE)
        );
        assert_eq!(svc.shard_of(12), 0);
        assert_eq!(svc.shard_of(13), 1);
    }

    #[test]
    fn commit_fact_encoding_is_canonical() {
        let fact = CommitFact {
            id: 42,
            value: Some(Bit::One),
            round: 3,
            ops: 120,
        };
        assert_eq!(fact.encode(), "42,1,3,120\n");
        let undecided = CommitFact {
            id: 7,
            value: None,
            round: 0,
            ops: 999,
        };
        assert_eq!(undecided.encode(), "7,-,0,999\n");
        assert_eq!(encode_log(&[fact, undecided]), "42,1,3,120\n7,-,0,999\n");
    }

    #[test]
    fn journals_are_append_only_across_batches() {
        let mut svc = NcService::new(cfg(3, 1, 1));
        fill(&mut svc, 0);
        svc.run_ready(1);
        let after_first = svc.commit_log_bytes(0);
        fill(&mut svc, 1);
        svc.run_ready(1);
        let after_second = svc.commit_log_bytes(0);
        assert!(
            after_second.starts_with(&after_first),
            "a later batch rewrote committed facts"
        );
        assert_eq!(svc.decided(), 2);
    }

    #[test]
    fn op_budget_exhaustion_closes_the_instance_undecided() {
        // A starvation-tight budget cannot decide; the instance must
        // still close with a `value: None` fact instead of wedging.
        let cfg = ServiceConfig::builder()
            .procs(4)
            .shards(1)
            .seed(2)
            .limits(Limits::run_to_completion().with_max_ops(4))
            .build()
            .unwrap();
        let mut svc = NcService::new(cfg);
        fill(&mut svc, 0);
        let fresh = svc.run_ready(1);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].value, None);
        assert_eq!(fresh[0].round, 0);
        assert!(matches!(svc.status(0), InstanceStatus::Decided(_)));
    }

    #[test]
    fn decided_cap_evicts_and_status_answers_from_the_index() {
        let cfg = ServiceConfig::builder()
            .procs(3)
            .shards(2)
            .seed(6)
            .retention(Retention::DecidedCap(2))
            .build()
            .unwrap();
        let mut svc = NcService::new(cfg);
        for id in 0..5u64 {
            fill(&mut svc, id);
        }
        svc.run_ready(1);
        assert_eq!(svc.decided(), 5);
        assert_eq!(svc.resident_decided(), 2);
        assert_eq!(svc.evicted_count(), 3);
        let mut evicted_seen = 0;
        for id in 0..5u64 {
            match svc.status(id) {
                InstanceStatus::Decided(_) => {}
                InstanceStatus::Evicted { decided, round } => {
                    evicted_seen += 1;
                    // The index must agree with the journal fact.
                    let fact = svc
                        .commit_log(svc.shard_of(id))
                        .iter()
                        .find(|f| f.id == id)
                        .copied()
                        .unwrap();
                    assert_eq!(decided, fact.value);
                    assert_eq!(round as usize, fact.round);
                    // Evicted is closed for proposals, like Decided.
                    assert_eq!(
                        svc.propose(id, Bit::One),
                        Err(ServiceError::InstanceClosed { id })
                    );
                    assert_eq!(
                        svc.submit(id, Bit::One),
                        Err(ServiceError::InstanceClosed { id })
                    );
                }
                other => panic!("instance {id}: unexpected status {other:?}"),
            }
        }
        assert_eq!(evicted_seen, 3);
        // The journals and reduced log keep every fact.
        assert_eq!(svc.reduced_log().lines().count(), 5);
    }

    #[test]
    fn lru_poll_refreshes_recency() {
        let cfg = ServiceConfig::builder()
            .procs(2)
            .shards(1)
            .seed(4)
            .retention(Retention::Lru(2))
            .build()
            .unwrap();
        let mut svc = NcService::new(cfg);
        let mut tickets = HashMap::new();
        for id in 0..2u64 {
            tickets.insert(id, svc.submit(id, Bit::One).unwrap());
            svc.submit(id, Bit::Zero).unwrap();
        }
        svc.run_ready(1);
        // Poll id 0: id 1 becomes the LRU victim when 2 arrives.
        assert!(matches!(svc.poll(tickets[&0]), InstanceStatus::Decided(_)));
        fill(&mut svc, 2);
        svc.run_ready(1);
        assert!(matches!(svc.status(0), InstanceStatus::Decided(_)));
        assert!(matches!(svc.status(1), InstanceStatus::Evicted { .. }));
        assert!(matches!(svc.status(2), InstanceStatus::Decided(_)));
    }

    #[test]
    fn unknown_and_evicted_are_distinct() {
        let cfg = ServiceConfig::builder()
            .procs(2)
            .shards(1)
            .retention(Retention::DecidedCap(1))
            .build()
            .unwrap();
        let mut svc = NcService::new(cfg);
        fill(&mut svc, 0);
        fill(&mut svc, 1);
        svc.run_ready(1);
        assert!(matches!(svc.status(0), InstanceStatus::Evicted { .. }));
        assert_eq!(svc.status(99), InstanceStatus::Unknown);
        assert!(svc.propose(99, Bit::One).is_ok(), "unknown ids stay open");
    }
}
