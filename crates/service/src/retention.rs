//! Instance retention: how long decided instances stay resident in
//! the shard tables.
//!
//! A multi-shot service decides millions of instances; keeping every
//! one in the in-memory table forever is the unbounded-growth bug the
//! ROADMAP called out. [`Retention`] bounds residency: once an
//! instance's commit fact is durable (appended to its shard journal),
//! the table entry is *evictable* — `status()` keeps answering for
//! evicted ids out of the compact journal index
//! ([`crate::InstanceStatus::Evicted`]), so eviction is invisible to
//! the API surface except for the cheaper answer shape.
//!
//! Eviction is deterministic: it happens in the serial publish pass of
//! [`crate::NcService::run_ready`], in commit order, so the resident
//! set after any batch is a pure function of the request stream —
//! never of threads or shard fan-out timing.

use std::collections::{BTreeMap, HashMap, VecDeque};

/// How long decided instances stay resident in the shard tables.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Retention {
    /// Never evict (the pre-durability behavior; table growth is
    /// unbounded).
    #[default]
    KeepAll,
    /// Keep at most `k` decided instances resident, evicting the
    /// earliest-decided first (FIFO in commit order).
    DecidedCap(usize),
    /// Keep at most `k` decided instances resident, evicting the least
    /// recently *polled* first ([`crate::NcService::poll`] refreshes
    /// recency; `status()` stays `&self` and does not).
    Lru(usize),
}

impl Retention {
    /// The residency cap, if the policy has one.
    pub fn cap(&self) -> Option<usize> {
        match self {
            Retention::KeepAll => None,
            Retention::DecidedCap(k) | Retention::Lru(k) => Some(*k),
        }
    }
}

/// Tracks which decided instances are resident and picks eviction
/// victims. Commit order doubles as both the FIFO axis
/// ([`Retention::DecidedCap`]) and the initial recency axis
/// ([`Retention::Lru`]); only `Lru` ever refreshes.
#[derive(Debug, Default)]
pub(crate) struct ResidencyTracker {
    policy: Retention,
    /// Monotone stamp source (commit order, refreshed by touches).
    next_stamp: u64,
    /// stamp -> id, ascending = eviction order.
    by_stamp: BTreeMap<u64, u64>,
    /// id -> its current stamp.
    stamp_of: HashMap<u64, u64>,
}

impl ResidencyTracker {
    pub(crate) fn new(policy: Retention) -> Self {
        ResidencyTracker {
            policy,
            ..Default::default()
        }
    }

    /// Number of decided instances currently resident.
    pub(crate) fn resident(&self) -> usize {
        self.by_stamp.len()
    }

    /// Records `id` as a freshly decided resident and drains any
    /// over-cap victims into `evict` (earliest stamp first).
    pub(crate) fn admit(&mut self, id: u64, evict: &mut VecDeque<u64>) {
        let Some(cap) = self.policy.cap() else {
            return;
        };
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.by_stamp.insert(stamp, id);
        self.stamp_of.insert(id, stamp);
        while self.by_stamp.len() > cap {
            let (_, victim) = self.by_stamp.pop_first().expect("len > cap >= 0");
            self.stamp_of.remove(&victim);
            evict.push_back(victim);
        }
    }

    /// Refreshes `id`'s recency (LRU policy only; a no-op otherwise or
    /// when `id` is not resident).
    pub(crate) fn touch(&mut self, id: u64) {
        if !matches!(self.policy, Retention::Lru(_)) {
            return;
        }
        let Some(old) = self.stamp_of.get(&id).copied() else {
            return;
        };
        self.by_stamp.remove(&old);
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.by_stamp.insert(stamp, id);
        self.stamp_of.insert(id, stamp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(evict: &mut VecDeque<u64>) -> Vec<u64> {
        evict.drain(..).collect()
    }

    #[test]
    fn keep_all_never_evicts() {
        let mut t = ResidencyTracker::new(Retention::KeepAll);
        let mut evict = VecDeque::new();
        for id in 0..100 {
            t.admit(id, &mut evict);
        }
        assert!(evict.is_empty());
        assert_eq!(t.resident(), 0, "KeepAll tracks nothing");
    }

    #[test]
    fn decided_cap_evicts_fifo_in_commit_order() {
        let mut t = ResidencyTracker::new(Retention::DecidedCap(3));
        let mut evict = VecDeque::new();
        for id in [10, 20, 30] {
            t.admit(id, &mut evict);
        }
        assert!(evict.is_empty());
        t.admit(40, &mut evict);
        t.admit(50, &mut evict);
        assert_eq!(drain(&mut evict), vec![10, 20]);
        assert_eq!(t.resident(), 3);
        // Touch is a no-op under DecidedCap: 30 is still next out.
        t.touch(30);
        t.admit(60, &mut evict);
        assert_eq!(drain(&mut evict), vec![30]);
    }

    #[test]
    fn lru_touch_rescues_the_polled_instance() {
        let mut t = ResidencyTracker::new(Retention::Lru(2));
        let mut evict = VecDeque::new();
        t.admit(1, &mut evict);
        t.admit(2, &mut evict);
        t.touch(1); // 2 is now least recent
        t.admit(3, &mut evict);
        assert_eq!(drain(&mut evict), vec![2]);
        t.touch(999); // unknown id: no-op
        t.admit(4, &mut evict);
        assert_eq!(drain(&mut evict), vec![1]);
    }
}
