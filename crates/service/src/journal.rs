//! Segmented on-disk commit journals: the durable half of the service
//! plane.
//!
//! Each shard owns one journal directory holding **append-only segment
//! files** (`seg-00000000.log`, `seg-00000001.log`, …). A segment is a
//! 16-byte header followed by up to `segment_records` fixed-width
//! records; when a segment fills, the writer rolls to the next index.
//! The format is deliberately fsync-free and byte-deterministic: the
//! bytes on disk after appending facts `f_0..f_k` are a pure function
//! of `(facts, segment_records)` — never of timing, threads, or how
//! many times the process died and reopened in between. That is what
//! makes the kill-and-reopen crash-recovery suite able to demand
//! *byte-identical* journals, not merely equivalent ones.
//!
//! ## Byte format
//!
//! Segment header (16 bytes):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"NCJRNL01"
//! 8       8     segment index, u64 LE
//! ```
//!
//! Record (32 bytes, all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     instance id, u64
//! 8       4     decision round, u32 (0 when undecided)
//! 12      1     value: 0 / 1 / 0xFF (undecided)
//! 13      3     zero padding
//! 16      8     total ops, u64
//! 24      8     CRC-64/XZ over bytes 0..24
//! ```
//!
//! ## Recovery
//!
//! [`JournalReader::replay`] walks segments in index order, validates
//! every header and record CRC, and stops at the first invalid or
//! short record. A **torn tail** — a final record cut short or failing
//! its CRC, the signature of a crash mid-append — is *dropped*, not an
//! error: the instance it described was never durably decided, so the
//! service re-runs it and (determinism) produces the identical fact.
//! [`JournalWriter::open`] truncates the torn bytes away before
//! resuming appends, restoring the pure-function-of-facts byte layout.
//! Corruption *before* the tail (a bad CRC with valid data after it)
//! is a real [`JournalError::Corrupt`], because silently dropping
//! interior facts would un-decide instances later records contradict.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use nc_memory::Bit;

use crate::CommitFact;

/// Magic leading every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"NCJRNL01";
/// Bytes in a segment header.
pub const HEADER_LEN: usize = 16;
/// Bytes in one journal record.
pub const RECORD_LEN: usize = 32;
/// Default records per segment ([`crate::ServiceConfigBuilder`] can
/// override; small capacities are useful to exercise segment rolls).
pub const DEFAULT_SEGMENT_RECORDS: usize = 256;

/// Why a journal could not be written or replayed.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io {
        /// The path the operation touched.
        path: PathBuf,
        /// The failing operation's error.
        source: std::io::Error,
    },
    /// A segment's bytes contradict the format somewhere *before* the
    /// torn-tail position (bad magic, wrong index, interior CRC
    /// mismatch). Torn tails are recovered, never reported here.
    Corrupt {
        /// The offending segment file.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "journal I/O error at {}: {source}", path.display())
            }
            JournalError::Corrupt { path, detail } => {
                write!(f, "corrupt journal segment {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            JournalError::Corrupt { .. } => None,
        }
    }
}

fn io_err(path: &Path, source: std::io::Error) -> JournalError {
    JournalError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// CRC-64/XZ (reflected, poly `0x42F0E1EBA9EA3693`), bitwise — no
/// table, no dependency; 24 bytes per record keeps it off any hot
/// path's critical distance.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc ^= u64::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xC96C_5795_D787_0F42 & mask);
        }
    }
    !crc
}

/// Serializes one fact into its fixed-width record.
pub fn encode_record(fact: &CommitFact) -> [u8; RECORD_LEN] {
    let mut rec = [0u8; RECORD_LEN];
    rec[0..8].copy_from_slice(&fact.id.to_le_bytes());
    rec[8..12].copy_from_slice(&(fact.round as u32).to_le_bytes());
    rec[12] = match fact.value {
        Some(Bit::Zero) => 0,
        Some(Bit::One) => 1,
        None => 0xFF,
    };
    rec[16..24].copy_from_slice(&fact.ops.to_le_bytes());
    let crc = crc64(&rec[..24]);
    rec[24..32].copy_from_slice(&crc.to_le_bytes());
    rec
}

/// Deserializes one record; `None` means the CRC or a field encoding
/// is invalid (a torn or corrupt record).
pub fn decode_record(rec: &[u8; RECORD_LEN]) -> Option<CommitFact> {
    let stored = u64::from_le_bytes(rec[24..32].try_into().unwrap());
    if crc64(&rec[..24]) != stored {
        return None;
    }
    let value = match rec[12] {
        0 => Some(Bit::Zero),
        1 => Some(Bit::One),
        0xFF => None,
        _ => return None,
    };
    if rec[13..16] != [0, 0, 0] {
        return None;
    }
    Some(CommitFact {
        id: u64::from_le_bytes(rec[0..8].try_into().unwrap()),
        value,
        round: u32::from_le_bytes(rec[8..12].try_into().unwrap()) as usize,
        ops: u64::from_le_bytes(rec[16..24].try_into().unwrap()),
    })
}

/// The file name of segment `index`.
pub fn segment_name(index: u64) -> String {
    format!("seg-{index:08}.log")
}

fn segment_header(index: u64) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[0..8].copy_from_slice(&SEGMENT_MAGIC);
    header[8..16].copy_from_slice(&index.to_le_bytes());
    header
}

/// What [`JournalReader::replay`] recovered from a journal directory.
#[derive(Debug)]
pub struct Replay {
    /// Every durably committed fact, in append order.
    pub facts: Vec<CommitFact>,
    /// Whether a torn final record (or torn final-segment header) was
    /// dropped.
    pub torn_tail: bool,
    /// Segment index the next append belongs to.
    pub next_segment: u64,
    /// Records already in that segment.
    pub in_segment: usize,
    /// Valid byte length of that segment's file (torn bytes excluded);
    /// [`JournalWriter::open`] truncates the file to this length.
    pub valid_len: u64,
    /// The final segment's header must be (re)written from scratch:
    /// either the journal is fresh, or the process died during a
    /// segment roll before the new header landed.
    pub rewrite_header: bool,
}

/// Read side: replays a journal directory into the facts it holds.
#[derive(Debug)]
pub struct JournalReader;

impl JournalReader {
    /// Replays every segment under `dir` in index order. A missing or
    /// empty directory replays to zero facts (a fresh journal). The
    /// torn-tail rule is described in the module docs.
    pub fn replay(dir: &Path) -> Result<Replay, JournalError> {
        let mut facts = Vec::new();
        let mut torn_tail = false;
        let mut next_segment = 0u64;
        let mut in_segment = 0usize;
        let mut valid_len = HEADER_LEN as u64;
        loop {
            let path = dir.join(segment_name(next_segment));
            let mut file = match File::open(&path) {
                Ok(f) => f,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => break,
                Err(e) => return Err(io_err(&path, e)),
            };
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes).map_err(|e| io_err(&path, e))?;
            if bytes.len() < HEADER_LEN || bytes[..HEADER_LEN] != segment_header(next_segment) {
                // A final segment whose bytes are a *prefix* of its
                // expected header is the signature of a crash mid-roll
                // (the file was created but the one-shot header write
                // was torn): recover by rewriting it. Anything else —
                // wrong magic, wrong index, garbled short bytes, or a
                // bad header on a non-final segment — is corruption.
                let expected = segment_header(next_segment);
                let is_final = !dir.join(segment_name(next_segment + 1)).exists();
                if is_final && bytes.len() < HEADER_LEN && expected.starts_with(&bytes) {
                    return Ok(Replay {
                        facts,
                        torn_tail: true,
                        next_segment,
                        in_segment: 0,
                        valid_len: HEADER_LEN as u64,
                        rewrite_header: true,
                    });
                }
                return Err(JournalError::Corrupt {
                    path,
                    detail: format!(
                        "bad header (want magic {SEGMENT_MAGIC:?} + index {next_segment})"
                    ),
                });
            }
            let body = &bytes[HEADER_LEN..];
            let whole = body.len() / RECORD_LEN;
            let partial_tail = body.len() % RECORD_LEN != 0;
            let mut seg_facts = Vec::with_capacity(whole);
            let mut first_bad: Option<usize> = None;
            for r in 0..whole {
                let rec: &[u8; RECORD_LEN] = body[r * RECORD_LEN..(r + 1) * RECORD_LEN]
                    .try_into()
                    .unwrap();
                match decode_record(rec) {
                    Some(fact) => {
                        if let Some(bad) = first_bad {
                            // Valid data after an invalid record is
                            // interior corruption, not a torn tail.
                            return Err(JournalError::Corrupt {
                                path,
                                detail: format!("record {bad} invalid but later records decode"),
                            });
                        }
                        seg_facts.push(fact);
                    }
                    None => {
                        if first_bad.is_none() {
                            first_bad = Some(r);
                        }
                    }
                }
            }
            // A crash tears at most the single final append: either
            // the last whole record fails its CRC, or trailing partial
            // bytes exist — never both, and never more than one bad
            // whole record.
            let torn_here = match first_bad {
                None => partial_tail,
                Some(bad) if bad + 1 == whole && !partial_tail => true,
                Some(bad) => {
                    return Err(JournalError::Corrupt {
                        path,
                        detail: format!(
                            "invalid record {bad} is not a lone torn tail \
                             ({whole} whole records, partial tail: {partial_tail})"
                        ),
                    });
                }
            };
            // A later segment existing means this one's tail was not
            // the journal's tail: any invalidity here is corruption.
            let next_path = dir.join(segment_name(next_segment + 1));
            if torn_here && next_path.exists() {
                return Err(JournalError::Corrupt {
                    path,
                    detail: "torn record in a non-final segment".into(),
                });
            }
            in_segment = seg_facts.len();
            valid_len = (HEADER_LEN + in_segment * RECORD_LEN) as u64;
            torn_tail = torn_here;
            facts.extend(seg_facts);
            next_segment += 1;
        }
        if next_segment == 0 {
            // Fresh journal: the writer will create segment 0.
            return Ok(Replay {
                facts,
                torn_tail: false,
                next_segment: 0,
                in_segment: 0,
                valid_len: HEADER_LEN as u64,
                rewrite_header: true,
            });
        }
        Ok(Replay {
            facts,
            torn_tail,
            next_segment: next_segment - 1,
            in_segment,
            valid_len,
            rewrite_header: false,
        })
    }
}

/// Write side: appends fixed-width records, rolling segments at
/// `segment_records`. Writes go straight to the file (no buffering),
/// so a dropped service leaves at worst one torn final record.
#[derive(Debug)]
pub struct JournalWriter {
    dir: PathBuf,
    segment_records: usize,
    segment: u64,
    in_segment: usize,
    file: File,
}

impl JournalWriter {
    /// Opens (creating if needed) the journal under `dir`, replays it,
    /// truncates any torn tail, and positions for appending. Returns
    /// the writer together with the replayed facts.
    ///
    /// `segment_records` must match the value the journal was written
    /// with — it is part of the byte format (a mismatch is reported as
    /// [`JournalError::Corrupt`] when an overfull segment proves it).
    pub fn open(
        dir: &Path,
        segment_records: usize,
    ) -> Result<(Self, Vec<CommitFact>), JournalError> {
        assert!(segment_records >= 1, "need at least one record per segment");
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let replay = JournalReader::replay(dir)?;
        if replay.in_segment > segment_records {
            return Err(JournalError::Corrupt {
                path: dir.join(segment_name(replay.next_segment)),
                detail: format!(
                    "{} records in one segment but segment_records = {segment_records}",
                    replay.in_segment
                ),
            });
        }
        let path = dir.join(segment_name(replay.next_segment));
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        // A fresh journal (or one killed mid-roll) needs its final
        // segment's header written; an existing one needs its torn
        // tail (if any) cut off.
        if replay.rewrite_header {
            file.set_len(0).map_err(|e| io_err(&path, e))?;
            let mut f = &file;
            f.write_all(&segment_header(replay.next_segment))
                .map_err(|e| io_err(&path, e))?;
        } else {
            file.set_len(replay.valid_len)
                .map_err(|e| io_err(&path, e))?;
        }
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| io_err(&path, e))?;
        Ok((
            JournalWriter {
                dir: dir.to_path_buf(),
                segment_records,
                segment: replay.next_segment,
                in_segment: replay.in_segment,
                file,
            },
            replay.facts,
        ))
    }

    /// Appends one fact, rolling to a new segment first if the current
    /// one is full.
    pub fn append(&mut self, fact: &CommitFact) -> Result<(), JournalError> {
        if self.in_segment == self.segment_records {
            self.segment += 1;
            self.in_segment = 0;
            let path = self.dir.join(segment_name(self.segment));
            let mut file = File::create(&path).map_err(|e| io_err(&path, e))?;
            file.write_all(&segment_header(self.segment))
                .map_err(|e| io_err(&path, e))?;
            self.file = file;
        }
        let path = self.dir.join(segment_name(self.segment));
        self.file
            .write_all(&encode_record(fact))
            .map_err(|e| io_err(&path, e))?;
        self.in_segment += 1;
        Ok(())
    }

    /// Total facts durable across all segments.
    pub fn len(&self) -> u64 {
        self.segment * self.segment_records as u64 + self.in_segment as u64
    }

    /// Whether the journal holds no facts yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Segments on disk (the current, possibly partial, one included).
    pub fn segments(&self) -> u64 {
        self.segment + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "nc-journal-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn fact(id: u64) -> CommitFact {
        CommitFact {
            id,
            value: if id.is_multiple_of(3) {
                None
            } else {
                Some(Bit::from(id % 2 == 1))
            },
            round: (id % 7) as usize,
            ops: id * 13 + 1,
        }
    }

    #[test]
    fn record_round_trips_and_crc_rejects_flips() {
        for id in 0..20 {
            let f = fact(id);
            let rec = encode_record(&f);
            assert_eq!(decode_record(&rec), Some(f));
            for byte in 0..RECORD_LEN {
                let mut bad = rec;
                bad[byte] ^= 0x40;
                assert_eq!(decode_record(&bad), None, "flip at byte {byte} undetected");
            }
        }
    }

    #[test]
    fn crc64_reference_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn write_replay_round_trip_across_segment_rolls() {
        let dir = TempDir::new("roundtrip");
        let facts: Vec<CommitFact> = (0..10).map(fact).collect();
        {
            let (mut writer, replayed) = JournalWriter::open(&dir.0, 3).unwrap();
            assert!(replayed.is_empty());
            for f in &facts {
                writer.append(f).unwrap();
            }
            assert_eq!(writer.len(), 10);
            assert_eq!(writer.segments(), 4); // 3+3+3+1
        }
        let replay = JournalReader::replay(&dir.0).unwrap();
        assert_eq!(replay.facts, facts);
        assert!(!replay.torn_tail);
    }

    #[test]
    fn reopen_resumes_byte_identically() {
        let straight = TempDir::new("straight");
        let resumed = TempDir::new("resumed");
        let facts: Vec<CommitFact> = (0..8).map(fact).collect();
        {
            let (mut w, _) = JournalWriter::open(&straight.0, 3).unwrap();
            for f in &facts {
                w.append(f).unwrap();
            }
        }
        {
            let (mut w, _) = JournalWriter::open(&resumed.0, 3).unwrap();
            for f in &facts[..5] {
                w.append(f).unwrap();
            }
        }
        {
            let (mut w, replayed) = JournalWriter::open(&resumed.0, 3).unwrap();
            assert_eq!(replayed, facts[..5]);
            for f in &facts[5..] {
                w.append(f).unwrap();
            }
        }
        for seg in 0..3u64 {
            let name = segment_name(seg);
            assert_eq!(
                std::fs::read(straight.0.join(&name)).unwrap(),
                std::fs::read(resumed.0.join(&name)).unwrap(),
                "{name} differs between straight and killed-and-resumed runs"
            );
        }
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = TempDir::new("torn");
        let facts: Vec<CommitFact> = (0..5).map(fact).collect();
        {
            let (mut w, _) = JournalWriter::open(&dir.0, 100).unwrap();
            for f in &facts {
                w.append(f).unwrap();
            }
        }
        // Tear the final record: cut 7 bytes off.
        let path = dir.0.join(segment_name(0));
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 7).unwrap();
        drop(file);

        let replay = JournalReader::replay(&dir.0).unwrap();
        assert_eq!(replay.facts, facts[..4]);
        assert!(replay.torn_tail);

        // Reopening truncates the torn bytes and re-appending the lost
        // fact restores the byte-identical file.
        let (mut w, replayed) = JournalWriter::open(&dir.0, 100).unwrap();
        assert_eq!(replayed, facts[..4]);
        w.append(&facts[4]).unwrap();
        drop(w);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len);
        let replay = JournalReader::replay(&dir.0).unwrap();
        assert_eq!(replay.facts, facts);
        assert!(!replay.torn_tail);
    }

    #[test]
    fn interior_corruption_is_an_error_not_a_tail() {
        let dir = TempDir::new("interior");
        {
            let (mut w, _) = JournalWriter::open(&dir.0, 100).unwrap();
            for id in 0..4 {
                w.append(&fact(id)).unwrap();
            }
        }
        let path = dir.0.join(segment_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN + RECORD_LEN + 2] ^= 0xFF; // corrupt record 1 of 4
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            JournalReader::replay(&dir.0),
            Err(JournalError::Corrupt { .. })
        ));
    }

    #[test]
    fn torn_segment_roll_is_recovered() {
        let dir = TempDir::new("roll");
        {
            let (mut w, _) = JournalWriter::open(&dir.0, 2).unwrap();
            for id in 0..2 {
                w.append(&fact(id)).unwrap();
            }
        }
        // Simulate a crash between creating seg 1 and writing its
        // header: an empty file.
        std::fs::write(dir.0.join(segment_name(1)), b"").unwrap();
        let replay = JournalReader::replay(&dir.0).unwrap();
        assert_eq!(replay.facts, vec![fact(0), fact(1)]);
        assert!(replay.torn_tail && replay.rewrite_header);
        let (mut w, replayed) = JournalWriter::open(&dir.0, 2).unwrap();
        assert_eq!(replayed.len(), 2);
        w.append(&fact(2)).unwrap();
        drop(w);
        let replay = JournalReader::replay(&dir.0).unwrap();
        assert_eq!(replay.facts, vec![fact(0), fact(1), fact(2)]);
    }

    #[test]
    fn bad_header_is_an_error() {
        let dir = TempDir::new("header");
        std::fs::write(dir.0.join(segment_name(0)), b"NOTJRNL0\0\0\0\0\0\0\0\0").unwrap();
        assert!(matches!(
            JournalReader::replay(&dir.0),
            Err(JournalError::Corrupt { .. })
        ));
    }

    #[test]
    fn missing_directory_replays_empty() {
        let dir = std::env::temp_dir().join("nc-journal-definitely-missing-xyz");
        let replay = JournalReader::replay(&dir).unwrap();
        assert!(replay.facts.is_empty());
        assert!(!replay.torn_tail);
    }
}
