//! Open-loop load generation for [`NcService`].
//!
//! The generator schedules instance arrivals on a *virtual* clock
//! (instance `i` arrives at `i / rate` seconds) and admits every
//! instance whose arrival time has passed, regardless of how far the
//! service has fallen behind — the open-loop discipline, under which
//! queueing delay shows up as decide latency instead of silently
//! throttling the offered load. Decide latency of an instance is
//! measured from its *scheduled* arrival to the end of the batch that
//! decided it, so backlog is charged to the service, not hidden.
//!
//! Wall-clock numbers ([`LoadReport`]) are measurement, not simulation:
//! they vary run to run and never feed the deterministic commit logs or
//! golden scenarios. Proposal *values* are deterministic in the
//! instance id, so the reduced commit log produced under load is still
//! byte-reproducible for a given `(config, instances)`.

use std::time::Instant;

use nc_memory::Bit;
use nc_sched::rng::trial_seed;

use crate::NcService;

/// Salt for the generator's proposal-value derivation — distinct from
/// `nc_sched::rng::salts` so generated inputs never correlate with any
/// engine stream.
const LOADGEN_SALT: u64 = 0x10AD;

/// One open-loop workload.
#[derive(Clone, Copy, Debug)]
pub struct LoadSpec {
    /// Instances to submit (ids `0..instances`).
    pub instances: u64,
    /// Offered arrival rate in instances per second;
    /// `f64::INFINITY` = submit everything at t = 0 (saturation mode,
    /// measuring sustained throughput).
    pub rate: f64,
}

impl LoadSpec {
    /// A saturation workload: all `instances` arrive at t = 0.
    pub fn saturating(instances: u64) -> Self {
        LoadSpec {
            instances,
            rate: f64::INFINITY,
        }
    }

    /// An open-loop workload at `rate` instances/second.
    pub fn open_loop(instances: u64, rate: f64) -> Self {
        assert!(rate > 0.0, "need a positive arrival rate");
        LoadSpec { instances, rate }
    }
}

/// What one [`drive_open_loop`] run measured.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Instances decided (= instances submitted; the drive runs to
    /// completion).
    pub decided: u64,
    /// Wall-clock seconds from first arrival to last decision.
    pub wall_secs: f64,
    /// Sustained throughput: `decided / wall_secs`.
    pub decided_per_sec: f64,
    /// Median decide latency (scheduled arrival → decided), seconds.
    pub p50_latency: f64,
    /// 99th-percentile decide latency, seconds.
    pub p99_latency: f64,
    /// Worst decide latency, seconds.
    pub max_latency: f64,
}

/// The deterministic proposal vector the generator submits for
/// instance `id`: bits of a SplitMix64-mixed word, so unanimous and
/// split instances both occur without any wall-clock dependence.
pub fn proposals_for(id: u64, procs: usize) -> Vec<Bit> {
    let word = trial_seed(id, 0, LOADGEN_SALT);
    (0..procs)
        .map(|p| Bit::from((word >> (p % 64)) & 1 == 1))
        .collect()
}

/// Drives `spec` through the non-blocking front door to completion:
/// arrivals go through [`NcService::submit`] into the submission rings,
/// [`NcService::run_ready`] batches over `threads` workers, and decided
/// facts come back through [`NcService::drain_completions`]. Panics if
/// the service already holds instances whose ids collide with
/// `0..instances`.
pub fn drive_open_loop(service: &mut NcService, spec: &LoadSpec, threads: usize) -> LoadReport {
    let procs = service.config().procs;
    let start = Instant::now();
    let mut submitted = 0u64;
    let mut decided = 0u64;
    let mut latencies: Vec<f64> = Vec::with_capacity(spec.instances as usize);

    while decided < spec.instances {
        // Admit every instance whose virtual arrival has passed.
        let now = start.elapsed().as_secs_f64();
        let due = if spec.rate.is_infinite() {
            spec.instances
        } else {
            ((now * spec.rate) as u64 + 1).min(spec.instances)
        };
        while submitted < due {
            for value in proposals_for(submitted, procs) {
                service
                    .submit(submitted, value)
                    .expect("load generator ids are fresh");
            }
            submitted += 1;
        }

        service.run_ready(threads);
        let fresh = service.drain_completions();
        if fresh.is_empty() {
            // Nothing ready: the next arrival is in the future. Yield
            // briefly instead of spinning the admission check.
            std::thread::sleep(std::time::Duration::from_micros(50));
            continue;
        }
        let done_at = start.elapsed().as_secs_f64();
        for fact in fresh {
            let arrival = if spec.rate.is_infinite() {
                0.0
            } else {
                fact.id as f64 / spec.rate
            };
            latencies.push((done_at - arrival).max(0.0));
            decided += 1;
        }
    }

    let wall = start.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable_by(f64::total_cmp);
    LoadReport {
        decided,
        wall_secs: wall,
        decided_per_sec: decided as f64 / wall,
        p50_latency: percentile(&latencies, 0.50),
        p99_latency: percentile(&latencies, 0.99),
        max_latency: latencies.last().copied().unwrap_or(0.0),
    }
}

/// The `q`-quantile of an ascending-sorted sample (nearest-rank).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;

    #[test]
    fn proposals_are_deterministic_and_mixed() {
        assert_eq!(proposals_for(7, 5), proposals_for(7, 5));
        assert_ne!(proposals_for(7, 8), proposals_for(8, 8));
        // Across a small id range both values must occur somewhere.
        let all: Vec<Bit> = (0..32).flat_map(|id| proposals_for(id, 4)).collect();
        assert!(all.contains(&Bit::Zero) && all.contains(&Bit::One));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.50), 2.0);
        assert_eq!(percentile(&xs, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    fn cfg(procs: usize, shards: usize, seed: u64) -> ServiceConfig {
        ServiceConfig::builder()
            .procs(procs)
            .shards(shards)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn saturating_drive_decides_everything() {
        let mut svc = NcService::new(cfg(3, 2, 11));
        let report = drive_open_loop(&mut svc, &LoadSpec::saturating(20), 1);
        assert_eq!(report.decided, 20);
        assert_eq!(svc.decided(), 20);
        assert!(report.decided_per_sec > 0.0);
        assert!(report.p99_latency >= report.p50_latency);
        assert!(report.max_latency >= report.p99_latency);
    }

    #[test]
    fn open_loop_drive_decides_everything() {
        let mut svc = NcService::new(cfg(3, 1, 12));
        // High rate so the test finishes quickly; correctness does not
        // depend on the rate.
        let report = drive_open_loop(&mut svc, &LoadSpec::open_loop(10, 1e6), 1);
        assert_eq!(report.decided, 10);
        assert_eq!(svc.queued(), 0);
    }
}
