//! Numeric form of Lemma 5.
//!
//! Lemma 5: for independent events `A_1 … A_n`, if the probability that
//! **no** event occurs is `x > 0`, then the probability that **exactly
//! one** occurs is at least `−x ln x`.
//!
//! This is the engine of the "unique winner" argument (Lemma 6 /
//! Theorem 10): at the critical time `t₀`, enough probability mass sits
//! on "exactly one process has finished round r" to hand someone the
//! lead. The module provides an exact evaluator for the probability and
//! the lemma's bound, so property tests can confirm the inequality over
//! arbitrary event sets — a machine-checked Lemma 5.

/// Exact probability that exactly one of the independent events occurs,
/// given each event's *non*-occurrence probability `q_i`.
///
/// # Panics
///
/// Panics if any `q_i` is outside `[0, 1]`.
pub fn prob_exactly_one(qs: &[f64]) -> f64 {
    for &q in qs {
        assert!((0.0..=1.0).contains(&q), "q_i must be in [0,1], got {q}");
    }
    // Σ_i (1 - q_i) Π_{j≠i} q_j, computed stably as a single pass.
    let mut total = 0.0;
    for i in 0..qs.len() {
        let mut term = 1.0 - qs[i];
        for (j, &q) in qs.iter().enumerate() {
            if j != i {
                term *= q;
            }
        }
        total += term;
    }
    total
}

/// Exact probability that none of the independent events occurs.
pub fn prob_none(qs: &[f64]) -> f64 {
    qs.iter().product()
}

/// Lemma 5's lower bound `−x ln x` on the probability of exactly one
/// event, where `x` is the probability that none occurs.
///
/// Returns 0 at `x = 0` (the lemma requires `x > 0`; the bound's limit
/// is 0 there anyway) and 0 at `x = 1`.
pub fn lemma5_bound(x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    if x == 0.0 {
        0.0
    } else {
        -x * x.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_fair_coins() {
        // Exactly one head among two fair coins: 1/2. None: 1/4.
        let qs = [0.5, 0.5];
        assert!((prob_exactly_one(&qs) - 0.5).abs() < 1e-12);
        assert!((prob_none(&qs) - 0.25).abs() < 1e-12);
        // Bound: -0.25 ln 0.25 ≈ 0.3466 <= 0.5.
        assert!(lemma5_bound(prob_none(&qs)) <= prob_exactly_one(&qs));
    }

    #[test]
    fn degenerate_events() {
        // All events certain: "exactly one" impossible for n >= 2, x = 0.
        assert_eq!(prob_exactly_one(&[0.0, 0.0]), 0.0);
        assert_eq!(lemma5_bound(0.0), 0.0);
        // No events ever: x = 1, bound 0, exact 0.
        assert_eq!(prob_exactly_one(&[1.0, 1.0]), 0.0);
        assert_eq!(lemma5_bound(1.0), 0.0);
        // Single event with probability p: exactly-one = p.
        assert!((prob_exactly_one(&[0.3]) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_event_set() {
        assert_eq!(prob_exactly_one(&[]), 0.0);
        assert_eq!(prob_none(&[]), 1.0);
    }

    #[test]
    fn bound_peak_is_at_one_over_e() {
        // -x ln x peaks at x = 1/e with value 1/e.
        let peak = lemma5_bound(1.0 / std::f64::consts::E);
        assert!((peak - 1.0 / std::f64::consts::E).abs() < 1e-12);
        assert!(lemma5_bound(0.5) < peak);
        assert!(lemma5_bound(0.2) < peak);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn invalid_q_panics() {
        prob_exactly_one(&[1.5]);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn invalid_x_panics() {
        lemma5_bound(-0.1);
    }

    proptest! {
        /// The machine-checked Lemma 5: the bound never exceeds the exact
        /// probability, for arbitrary independent event sets.
        #[test]
        fn lemma5_holds(qs in proptest::collection::vec(0.0f64..=1.0, 1..12)) {
            let x = prob_none(&qs);
            if x > 0.0 {
                let exact = prob_exactly_one(&qs);
                let bound = lemma5_bound(x);
                prop_assert!(
                    bound <= exact + 1e-9,
                    "bound {bound} exceeds exact {exact} for qs {qs:?}"
                );
            }
        }

        /// Probabilities stay probabilities.
        #[test]
        fn outputs_are_probabilities(qs in proptest::collection::vec(0.0f64..=1.0, 0..12)) {
            let p1 = prob_exactly_one(&qs);
            let p0 = prob_none(&qs);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p1));
            prop_assert!((0.0..=1.0).contains(&p0));
            // exactly-one and none are disjoint events.
            prop_assert!(p0 + p1 <= 1.0 + 1e-9);
        }
    }
}
