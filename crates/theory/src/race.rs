//! The abstract delayed renewal race of Theorem 10.
//!
//! Strip lean-consensus down to its termination skeleton and what
//! remains is a race: `n` processes each advance through rounds, round
//! `j` of process `i` completing at
//!
//! ```text
//! S'_ij = Δ_i0 + Σ_{k≤j} (Δ_ik + X_ik + H_ik)
//! ```
//!
//! with adversarial bounded delays `Δ`, i.i.d. noise `X` (one sample per
//! *round*, i.e. the sum of the per-operation noises of the round's four
//! operations), and halting failures `H ∈ {0, ∞}`. Process `i` **wins
//! with lead `c` at round `r + c`** if it finishes round `r + c` before
//! any rival finishes round `r` — for lean-consensus, `c = 2` means the
//! winner can decide (Theorem 12 invokes Corollary 11 with exactly
//! `c = 2`).
//!
//! [`run_race`] simulates the race directly (no shared memory, no
//! protocol), which lets experiment E8 measure Corollary 11 — expected
//! `O(log n)` winning round and an exponential tail — on its own terms.

use rand::RngExt;

use nc_sched::rng::salts;
use nc_sched::{stream_rng, DelayPolicy, Noise, StartTimes};

/// Configuration of one renewal race.
#[derive(Clone, PartialEq, Debug)]
pub struct RaceConfig {
    /// Number of racers.
    pub n: usize,
    /// Required lead `c` in rounds (lean-consensus needs 2).
    pub lead: usize,
    /// Per-round noise distribution `X_ij` (the model folds the four
    /// per-operation noises of one round into one sample; §6 notes this
    /// abstraction loses no adversary power).
    pub noise: Noise,
    /// Adversarial per-round delays `Δ_ij ≤ M`.
    pub delay: DelayPolicy,
    /// Start times `Δ_i0`.
    pub starts: StartTimes,
    /// Per-round halting probability `h(n)`.
    pub halt_prob: f64,
    /// Give up after this many rounds (guards degenerate configurations;
    /// the theory predicts `O(log n)` so the default of 10 000 is
    /// astronomically generous).
    pub max_rounds: usize,
}

impl RaceConfig {
    /// A race with the given size, lead, and noise; no adversarial
    /// delays, dithered simultaneous starts, no failures.
    pub fn new(n: usize, lead: usize, noise: Noise) -> Self {
        RaceConfig {
            n,
            lead,
            noise,
            delay: DelayPolicy::None,
            starts: StartTimes::dithered(),
            halt_prob: 0.0,
            max_rounds: 10_000,
        }
    }

    /// Replaces the halting probability (builder-style).
    pub fn with_halt_prob(mut self, halt_prob: f64) -> Self {
        self.halt_prob = halt_prob;
        self
    }

    /// Replaces the delay policy (builder-style).
    pub fn with_delay(mut self, delay: DelayPolicy) -> Self {
        self.delay = delay;
        self
    }
}

/// How a race ended.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum RaceOutcome {
    /// `pid` finished round `round + lead` before any live rival
    /// finished `round` (Corollary 11's first disjunct). `round` is the
    /// `R` of Corollary 11.
    Winner {
        /// The winning racer.
        pid: usize,
        /// The lead-establishing round `R`.
        round: usize,
    },
    /// Every racer halted (Corollary 11's second disjunct).
    AllDied {
        /// Rounds completed by the longest-lived racer.
        last_round: usize,
    },
    /// The round cap was exceeded (never observed for non-degenerate
    /// noise; reachable with constant noise).
    RoundCapReached,
}

impl RaceOutcome {
    /// The winning round `R`, if there was a winner.
    pub fn winning_round(self) -> Option<usize> {
        match self {
            RaceOutcome::Winner { round, .. } => Some(round),
            _ => None,
        }
    }
}

/// Runs one race to its Corollary 11 stopping condition.
///
/// Deterministic in `(cfg, seed)`.
///
/// # Panics
///
/// Panics if `cfg.n == 0` or `cfg.lead == 0`.
pub fn run_race(cfg: &RaceConfig, seed: u64) -> RaceOutcome {
    assert!(cfg.n > 0, "race needs at least one racer");
    assert!(cfg.lead > 0, "lead must be positive");
    let n = cfg.n;

    let mut rngs: Vec<_> = (0..n)
        .map(|i| stream_rng(seed, i as u64, salts::NOISE))
        .collect();
    let mut clocks: Vec<f64> = (0..n)
        .map(|i| {
            let mut r = stream_rng(seed, i as u64, salts::START);
            cfg.starts.start_for(i, &mut r)
        })
        .collect();
    let mut fail_rngs: Vec<_> = (0..n)
        .map(|i| stream_rng(seed, i as u64, salts::FAILURE))
        .collect();
    let mut alive = vec![true; n];

    // finish[r % window][i] = S'_i,r ; we need rounds back to r - lead.
    let window = cfg.lead + 1;
    let mut finish: Vec<Vec<f64>> = vec![vec![f64::INFINITY; n]; window];
    let mut last_live_round = 0usize;

    for round in 1..=cfg.max_rounds {
        let slot = round % window;
        for i in 0..n {
            if !alive[i] {
                finish[slot][i] = f64::INFINITY;
                continue;
            }
            if cfg.halt_prob > 0.0 && fail_rngs[i].random::<f64>() < cfg.halt_prob {
                alive[i] = false;
                finish[slot][i] = f64::INFINITY;
                continue;
            }
            clocks[i] += cfg.delay.delta(i, round as u64) + cfg.noise.sample(&mut rngs[i]);
            finish[slot][i] = clocks[i];
            last_live_round = round;
        }

        if !alive.iter().any(|&a| a) {
            return RaceOutcome::AllDied {
                last_round: last_live_round,
            };
        }

        // Winner check: does some i have S'_{i,round} below every
        // rival's S'_{i',round-lead}? (Rivals that halted before
        // finishing round-lead count as +∞ — a dead rival can't block.)
        if round > cfg.lead {
            let base_slot = (round - cfg.lead) % window;
            let base = &finish[base_slot];
            // Two smallest rival baselines.
            let mut min1 = f64::INFINITY;
            let mut min1_idx = usize::MAX;
            let mut min2 = f64::INFINITY;
            for (i, &b) in base.iter().enumerate() {
                if b < min1 {
                    min2 = min1;
                    min1 = b;
                    min1_idx = i;
                } else if b < min2 {
                    min2 = b;
                }
            }
            for i in 0..n {
                if !alive[i] {
                    continue;
                }
                let rival_best = if i == min1_idx { min2 } else { min1 };
                if finish[slot][i] < rival_best {
                    return RaceOutcome::Winner {
                        pid: i,
                        round: round - cfg.lead,
                    };
                }
            }
        }
    }
    RaceOutcome::RoundCapReached
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{fit_log2, OnlineStats};

    #[test]
    fn solo_racer_wins_immediately() {
        let cfg = RaceConfig::new(1, 2, Noise::Exponential { mean: 1.0 });
        match run_race(&cfg, 0) {
            RaceOutcome::Winner { pid, round } => {
                assert_eq!(pid, 0);
                assert_eq!(round, 1, "solo racer wins at the first checkable round");
            }
            other => panic!("expected a winner, got {other:?}"),
        }
    }

    #[test]
    fn races_end_for_all_figure1_distributions() {
        for (name, noise) in Noise::figure1_suite() {
            let cfg = RaceConfig::new(16, 2, noise);
            for seed in 0..10 {
                let out = run_race(&cfg, seed);
                assert!(
                    matches!(out, RaceOutcome::Winner { .. }),
                    "{name} seed {seed}: {out:?}"
                );
            }
        }
    }

    #[test]
    fn constant_noise_with_identical_starts_never_ends() {
        let mut cfg = RaceConfig::new(4, 2, Noise::Constant { value: 1.0 });
        cfg.starts = StartTimes::Simultaneous { dither: 0.0 };
        cfg.max_rounds = 500;
        assert_eq!(run_race(&cfg, 3), RaceOutcome::RoundCapReached);
    }

    #[test]
    fn all_halting_racers_all_die() {
        let cfg = RaceConfig::new(4, 2, Noise::Exponential { mean: 1.0 }).with_halt_prob(1.0);
        match run_race(&cfg, 1) {
            RaceOutcome::AllDied { last_round } => assert_eq!(last_round, 0),
            other => panic!("expected AllDied, got {other:?}"),
        }
    }

    #[test]
    fn moderate_failures_still_produce_winners_or_extinction() {
        let cfg = RaceConfig::new(8, 2, Noise::Exponential { mean: 1.0 }).with_halt_prob(0.05);
        for seed in 0..20 {
            let out = run_race(&cfg, seed);
            assert!(
                !matches!(out, RaceOutcome::RoundCapReached),
                "seed {seed}: {out:?}"
            );
        }
    }

    #[test]
    fn winning_round_grows_roughly_logarithmically() {
        // Corollary 11's shape: mean winning round ~ a + b log2 n with
        // b > 0 and shallow growth. Fit over three decades.
        let mut points = Vec::new();
        for &n in &[4usize, 16, 64, 256] {
            let cfg = RaceConfig::new(n, 2, Noise::Exponential { mean: 1.0 });
            let mut stats = OnlineStats::new();
            for seed in 0..60 {
                if let Some(r) = run_race(&cfg, seed).winning_round() {
                    stats.push(r as f64);
                }
            }
            points.push((n as f64, stats.mean()));
        }
        let fit = fit_log2(&points);
        assert!(fit.slope > 0.0, "winning round should grow with n: {fit}");
        assert!(
            fit.predict(256.0) < 40.0,
            "O(log n) race ended too slowly: {fit}"
        );
        // And it must grow strictly slower than linearly: going from
        // n=4 to n=256 (64x) should far less than 64x the round count.
        assert!(points[3].1 < points[0].1 * 16.0, "{points:?}");
    }

    #[test]
    fn exponential_tail() {
        // Corollary 11: Pr[R > k] <= exp(-⌊k / O(log n)⌋). Empirically
        // the 99th percentile should be within a small multiple of the
        // mean.
        let cfg = RaceConfig::new(32, 2, Noise::Uniform { lo: 0.0, hi: 2.0 });
        let mut rounds: Vec<f64> = Vec::new();
        for seed in 0..300 {
            if let Some(r) = run_race(&cfg, seed).winning_round() {
                rounds.push(r as f64);
            }
        }
        let mean = rounds.iter().sum::<f64>() / rounds.len() as f64;
        let p99 = crate::stats::quantile(&rounds, 0.99);
        assert!(
            p99 <= mean * 8.0 + 8.0,
            "tail too heavy: mean {mean}, p99 {p99}"
        );
    }

    #[test]
    fn determinism() {
        let cfg = RaceConfig::new(8, 2, Noise::Geometric { p: 0.5 });
        assert_eq!(run_race(&cfg, 42), run_race(&cfg, 42));
    }

    #[test]
    fn adversarial_delays_do_not_stop_the_race() {
        let cfg = RaceConfig::new(8, 2, Noise::Exponential { mean: 1.0 }).with_delay(
            DelayPolicy::Periodic {
                period: 3,
                extra: 5.0,
            },
        );
        for seed in 0..10 {
            assert!(matches!(run_race(&cfg, seed), RaceOutcome::Winner { .. }));
        }
    }

    #[test]
    #[should_panic(expected = "at least one racer")]
    fn zero_racers_panics() {
        run_race(&RaceConfig::new(0, 2, Noise::Exponential { mean: 1.0 }), 0);
    }

    #[test]
    #[should_panic(expected = "lead must be positive")]
    fn zero_lead_panics() {
        run_race(&RaceConfig::new(2, 0, Noise::Exponential { mean: 1.0 }), 0);
    }
}
