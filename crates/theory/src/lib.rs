//! Renewal-race theory toolkit for `noisy-consensus`.
//!
//! The termination proof of the paper (§6) reduces lean-consensus to a
//! clean probabilistic statement: a race between `n` independent delayed
//! renewal processes produces a winner with a lead of `c` rounds within
//! `O(log n)` rounds, in expectation and with an exponential tail
//! (Theorem 10 / Corollary 11). This crate implements that abstract race
//! directly — independent of the consensus algorithm — along with the
//! numeric lemmas and the statistics the experiment harness reports:
//!
//! * [`race`] — the delayed renewal race
//!   `S'_ir = Δ_i0 + Σ (Δ_ij + X_ij + H_ij)`, with the winner-by-`c`
//!   detection of Theorem 10 and the halting failures of §3.1.2.
//! * [`bounds`] — Lemma 5's `−x ln x` lower bound on the probability
//!   that exactly one of a set of independent events occurs, with an
//!   exact evaluator to compare against.
//! * [`stats`] — Welford online statistics, quantiles, 95% confidence
//!   intervals, and least-squares fits of `y = a + b·log₂ n` (the shape
//!   every `Θ(log n)` claim is checked against).
//!
//! # Example: the race ends in logarithmic time
//!
//! ```
//! use nc_sched::Noise;
//! use nc_theory::race::{run_race, RaceConfig, RaceOutcome};
//! use nc_theory::stats::OnlineStats;
//!
//! let cfg = RaceConfig::new(64, 2, Noise::Exponential { mean: 1.0 });
//! let mut rounds = OnlineStats::new();
//! for seed in 0..100 {
//!     if let RaceOutcome::Winner { round, .. } = run_race(&cfg, seed) {
//!         rounds.push(round as f64);
//!     }
//! }
//! assert!(rounds.mean() < 64.0, "64-way race should end well before round 64");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod race;
pub mod stats;

pub use bounds::{lemma5_bound, prob_exactly_one};
pub use race::{run_race, RaceConfig, RaceOutcome};
pub use stats::{fit_log2, quantile, LogFit, OnlineStats};
