//! Statistics used by the experiment harness.
//!
//! Nothing here is exotic: Welford's online algorithm for stable means
//! and variances, order statistics, normal-approximation confidence
//! intervals, and ordinary least squares against `log₂ n` — the
//! functional form of every `Θ(log n)` claim in the paper.

use std::fmt;

/// Streaming mean/variance/extrema via Welford's algorithm.
///
/// ```
/// use nc_theory::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.sample_var() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn sample_var(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_sd(&self) -> f64 {
        self.sample_var().sqrt()
    }

    /// Standard error of the mean.
    pub fn stderr(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sample_sd() / (self.n as f64).sqrt()
        }
    }

    /// Normal-approximation 95% confidence half-width for the mean.
    pub fn ci95(&self) -> f64 {
        1.96 * self.stderr()
    }

    /// Smallest observation (`∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={}, min={:.4}, max={:.4})",
            self.mean(),
            self.ci95(),
            self.n,
            self.min,
            self.max
        )
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation on
/// the sorted order statistics.
///
/// # Panics
///
/// Panics if `samples` is empty or `q` is outside `[0, 1]`.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A least-squares fit of `y = intercept + slope · log₂(n)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogFit {
    /// The fitted intercept `a`.
    pub intercept: f64,
    /// The fitted slope `b` — the per-doubling growth; `Θ(log n)` claims
    /// predict a positive, stable `b`.
    pub slope: f64,
    /// The coefficient of determination on the transformed axis.
    pub r2: f64,
}

impl LogFit {
    /// The fitted value at `n`.
    pub fn predict(&self, n: f64) -> f64 {
        self.intercept + self.slope * n.log2()
    }
}

impl fmt::Display for LogFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "y = {:.3} + {:.3}·log2(n)  (R² = {:.3})",
            self.intercept, self.slope, self.r2
        )
    }
}

/// Fits `y = a + b·log₂(n)` to `(n, y)` points by ordinary least squares.
///
/// # Panics
///
/// Panics if fewer than two points are supplied or any `n ≤ 0`.
pub fn fit_log2(points: &[(f64, f64)]) -> LogFit {
    assert!(points.len() >= 2, "need at least two points to fit");
    let xs: Vec<f64> = points
        .iter()
        .map(|&(n, _)| {
            assert!(n > 0.0, "n must be positive, got {n}");
            n.log2()
        })
        .collect();
    let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
    let m = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / m;
    let mean_y = ys.iter().sum::<f64>() / m;
    let sxy: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let sxx: f64 = xs.iter().map(|x| (x - mean_x) * (x - mean_x)).sum();
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y) * (y - mean_y)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| {
            let fit = intercept + slope * x;
            (y - fit) * (y - fit)
        })
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LogFit {
        intercept,
        slope,
        r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_var(), 0.0);
        assert_eq!(s.stderr(), 0.0);
        assert_eq!(s.min(), f64::INFINITY);
        assert_eq!(s.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(7.0);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.sample_var(), 0.0);
        assert_eq!(s.min(), 7.0);
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_var() - var).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        assert!(s.ci95() > 0.0);
        assert!(s.to_string().contains("n=8"));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.sample_var() - all.sample_var()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        // Merging into/from empty.
        let mut e = OnlineStats::new();
        e.merge(&all);
        assert_eq!(e.count(), all.count());
        let before = all;
        all.merge(&OnlineStats::new());
        assert_eq!(all.count(), before.count());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert_eq!(quantile(&[5.0], 0.5), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn quantile_bad_q_panics() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn perfect_log_fit_recovers_coefficients() {
        let points: Vec<(f64, f64)> = [1.0f64, 2.0, 4.0, 8.0, 16.0, 1024.0]
            .iter()
            .map(|&n| (n, 3.0 + 0.5 * n.log2()))
            .collect();
        let fit = fit_log2(&points);
        assert!((fit.intercept - 3.0).abs() < 1e-9);
        assert!((fit.slope - 0.5).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
        assert!((fit.predict(64.0) - 6.0).abs() < 1e-9);
        assert!(fit.to_string().contains("log2"));
    }

    #[test]
    fn flat_data_fits_zero_slope() {
        let points = [(1.0, 5.0), (10.0, 5.0), (100.0, 5.0)];
        let fit = fit_log2(&points);
        assert!(fit.slope.abs() < 1e-12);
        assert!((fit.intercept - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn fit_needs_two_points() {
        fit_log2(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn fit_rejects_nonpositive_n() {
        fit_log2(&[(0.0, 1.0), (2.0, 2.0)]);
    }

    proptest! {
        #[test]
        fn welford_mean_is_bounded_by_extrema(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = OnlineStats::new();
            for &x in &xs {
                s.push(x);
            }
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
            prop_assert!(s.sample_var() >= 0.0);
        }

        #[test]
        fn quantile_is_monotone_in_q(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-12);
        }
    }
}
