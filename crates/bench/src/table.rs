//! Result tables: aligned console output plus CSV artifacts.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular result table with a title and column headers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// Human-readable experiment title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (each the same length as `columns`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Renders the table as a CSV document (header + rows, `\n` line
    /// endings on every host) — the exact bytes [`Table::write_csv`]
    /// writes, and the unit the golden-output tests byte-compare.
    pub fn to_csv_string(&self) -> String {
        fn quote(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let cols: Vec<String> = self.columns.iter().map(|c| quote(c)).collect();
        out.push_str(&cols.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| quote(c)).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV to `path`, creating parent directories
    /// (so a fresh checkout without `results/` works out of the box).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv_string())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        writeln!(f, "  {}", header.join(" | "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "  {}", rule.join("-+-"))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// Formats a float with `prec` fixed decimal places in a canonical,
/// host-stable form — the one float→text path every table cell goes
/// through, so golden CSV comparisons are byte-exact:
///
/// * fixed precision (never shortest-roundtrip `Display`, whose digit
///   count depends on the value);
/// * anything that rounds to zero prints as positive zero (`-0.0` and
///   tiny negatives would otherwise leak `-0.00` into the bytes);
/// * non-finite values render as `NaN` / `inf` / `-inf` regardless of
///   how the platform spells them elsewhere.
pub fn fstable(x: f64, prec: usize) -> String {
    if x.is_nan() {
        return "NaN".into();
    }
    if x.is_infinite() {
        return if x > 0.0 { "inf" } else { "-inf" }.into();
    }
    let s = format!("{x:.prec$}");
    match s.strip_prefix('-') {
        Some(mag) if mag.chars().all(|c| c == '0' || c == '.') => mag.to_string(),
        _ => s,
    }
}

/// Formats a float with 3 decimal places (table cell helper).
pub fn f3(x: f64) -> String {
    fstable(x, 3)
}

/// Formats a float with 2 decimal places (table cell helper).
pub fn f2(x: f64) -> String {
    fstable(x, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut t = Table::new("demo", &["n", "mean"]);
        t.push(vec!["1".into(), f2(2.0)]);
        t.push(vec!["10".into(), f3(1.25)]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("1.250"));
        assert!(s.contains("mean"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn fstable_is_canonical() {
        assert_eq!(fstable(-0.0, 2), "0.00");
        assert_eq!(fstable(0.0, 3), "0.000");
        assert_eq!(fstable(1.0 / 3.0, 3), "0.333");
        assert_eq!(fstable(f64::NAN, 2), "NaN");
        assert_eq!(fstable(f64::INFINITY, 2), "inf");
        assert_eq!(fstable(f64::NEG_INFINITY, 2), "-inf");
        // Tiny negatives that round to zero must not print "-0.00".
        assert_eq!(fstable(-1e-9, 2), "0.00");
        assert_eq!(fstable(-0.004, 2), "0.00");
        assert_eq!(fstable(-0.006, 2), "-0.01");
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("nc_bench_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_quotes_commas_and_quotes() {
        let mut t = Table::new("demo", &["name", "v"]);
        t.push(vec!["2/3,4/3".into(), "say \"hi\"".into()]);
        let dir = std::env::temp_dir().join("nc_bench_test_q");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "name,v\n\"2/3,4/3\",\"say \"\"hi\"\"\"\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
