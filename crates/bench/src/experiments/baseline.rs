//! E10 — baselines: deterministic lean vs algorithmic randomness.
//!
//! Three contenders:
//!
//! * `lean` — deterministic, relies entirely on environment noise;
//! * `randomized` — lean + the safe local tie coin;
//! * `backup` — the shared-coin protocol (the Chandra-style baseline:
//!   randomness *in the algorithm*).
//!
//! Under noisy scheduling lean is the cheapest (no coin machinery); the
//! shared-coin protocol pays heavy coin costs. Under exact lockstep the
//! table flips: only the shared coin terminates — "randomness in the
//! environment can substitute for randomness in the algorithm", and
//! vice versa.

use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm, Limits};
use nc_sched::adversary::RoundRobin;
use nc_sched::{Noise, TimingModel};
use nc_theory::OnlineStats;

use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, Table};

/// Registry entry: E10.
#[derive(Clone, Copy, Debug)]
pub struct Baselines;

impl Scenario for Baselines {
    fn spec(&self) -> Spec {
        Spec {
            id: "E10",
            title: "Lean vs local-coin vs shared-coin baselines, noisy and lockstep",
            artifact: "§1 framing (randomized baselines)",
            outputs: &["baseline_noisy.csv", "baseline_lockstep.csv"],
            trials_label: "trials",
            size_label: "-",
            // Lean and the local-coin variant never decide under exact
            // lockstep (that is the point of the table), so every such
            // run burns the whole lockstep op cap — the smoke tier
            // shrinks the cap, not just the trial count.
            full: Preset {
                trials: 60,
                size: 0,
                cap: 5_000_000,
            },
            smoke: Preset {
                trials: 2,
                size: 0,
                cap: 40_000,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        let (noisy, lockstep) = run(p.trials, p.cap, seed, threads);
        vec![noisy, lockstep]
    }
}

/// Runs the baseline comparison with the given lockstep operation cap
/// (non-deciders stop there). Returns the noisy table and the lockstep
/// table.
pub fn run(trials: u64, lockstep_cap: u64, seed0: u64, threads: usize) -> (Table, Table) {
    let algs = [Algorithm::Lean, Algorithm::Randomized, Algorithm::Backup];

    let mut noisy = Table::new(
        "E10a: under noisy scheduling (exp(1)): mean first round / total ops",
        &["algorithm", "n", "mean first round", "mean total ops"],
    );
    for alg in algs {
        for &n in &[4usize, 16, 64] {
            let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 });
            let inputs = setup::half_and_half(n);
            let mut rounds = OnlineStats::new();
            let mut ops = OnlineStats::new();
            let results = Sim::new(alg)
                .inputs(inputs.clone())
                .timing(timing)
                .trials(trials)
                .seed0(seed0)
                .seed_stride(41)
                .threads(threads)
                .map(|report| {
                    report.check_safety(&inputs).expect("safety");
                    (report.first_decision_round, report.total_ops as f64)
                });
            for (round, total) in results {
                if let Some(r) = round {
                    rounds.push(r as f64);
                }
                ops.push(total);
            }
            noisy.push(vec![
                alg.label().into(),
                n.to_string(),
                f2(rounds.mean()),
                f2(ops.mean()),
            ]);
        }
    }

    let mut lockstep = Table::new(
        "E10b: under exact lockstep round-robin (split inputs): who terminates?",
        &[
            "algorithm",
            "n",
            "terminates",
            "mean total ops when deciding",
        ],
    );
    for alg in algs {
        for &n in &[2usize, 4] {
            let inputs = setup::alternating(n);
            let mut decided_runs = 0u64;
            let mut ops = OnlineStats::new();
            let runs = 5u64;
            let mut lockstep_sim = Sim::new(alg)
                .inputs(inputs.clone())
                .adversary(|_| RoundRobin::new())
                .limits(Limits::run_to_completion().with_max_ops(lockstep_cap))
                .build();
            for t in 0..runs {
                let seed = seed0 + 1000 + t;
                let report = lockstep_sim.run(seed);
                report.check_safety(&inputs).expect("safety");
                if report.outcome.decided() {
                    decided_runs += 1;
                    ops.push(report.total_ops as f64);
                }
            }
            lockstep.push(vec![
                alg.label().into(),
                n.to_string(),
                format!("{decided_runs}/{runs}"),
                if decided_runs > 0 {
                    f2(ops.mean())
                } else {
                    "-".into()
                },
            ]);
        }
    }

    (noisy, lockstep)
}
