//! E1 — Figure 1 (§9): mean round of first termination vs. number of
//! processes, for the six interarrival distributions.
//!
//! Paper setup, reproduced exactly: half the processes start with input
//! 0 and half with 1; starting times are equal up to a `U(0, 1e-8)`
//! dither; no failures; the measured quantity is the round at which the
//! **first** process terminates, averaged over trials. The paper uses
//! 10 000 trials per point up to `n = 100 000`; trials here scale down
//! with `n` to keep the event budget laptop-sized (tunable).
//!
//! Each point is one [`nc_engine::sim::TrialSet`] sweep: monomorphized
//! lean trials fan out across the sweep's own worker count, each worker
//! advancing [`crate::PIPELINE_LANES`] trials in lockstep (software
//! pipelining; 1 lane — plain sequential trials — on the reference VM,
//! where the interleave measures as a loss). Per-trial seeds derive
//! from the trial index alone and lanes share no state, so the sweep is
//! **bit-for-bit identical** at every `threads` setting and every lane
//! width (pinned by the determinism regression tests).

use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm, Limits};
use nc_sched::{Noise, TimingModel};
use nc_theory::OnlineStats;

use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, Table};
use crate::{figure1_ns, trials_for};

/// One measured Figure 1 point: first-decision round statistics plus
/// the number of trials that were skipped because they never produced a
/// decision within the operation budget (possible only for degenerate
/// noise configurations, which violate the model's assumptions).
#[derive(Clone, Debug)]
pub struct PointStats {
    /// First-decision round over the decided trials.
    pub rounds: OnlineStats,
    /// Trials that hit the operation cap undecided.
    pub skipped: u64,
}

/// Derives trial `t`'s seed from the sweep seed (the scheme the seed
/// harness used; kept verbatim so recorded results and the golden CSVs
/// stay comparable — new scenarios use [`nc_sched::rng::trial_seed`]
/// instead, see `docs/experiments.md`).
#[inline]
fn trial_seed(seed0: u64, t: u64) -> u64 {
    seed0 ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Measures one Figure 1 point across `threads` workers.
///
/// Degenerate noise (which the model forbids, e.g. constant delays) can
/// make runs lockstep forever; instead of aborting the sweep, such
/// trials run against a reduced operation cap, are skipped, and are
/// counted in [`PointStats::skipped`].
pub fn point(noise: Noise, n: usize, trials: u64, seed0: u64, threads: usize) -> PointStats {
    let timing = TimingModel::figure1(noise);
    let inputs = setup::half_and_half(n);
    let limits = if timing.noise.is_degenerate() {
        // A degenerate config will burn its entire budget on every
        // trial; keep the budget proportionate (and never above the
        // default cap) so the sweep still finishes in reasonable time.
        let default_cap = Limits::first_decision().max_ops;
        Limits::first_decision().with_max_ops((100_000 * n as u64).min(default_cap))
    } else {
        Limits::first_decision()
    };

    let rounds: Vec<Option<usize>> = Sim::new(Algorithm::Lean)
        .inputs(inputs)
        .timing(timing)
        .limits(limits)
        .trials(trials)
        .seed_fn(move |t| trial_seed(seed0, t))
        .threads(threads)
        .map(|report| report.first_decision_round);

    // Fold in trial order: Welford accumulation order affects the
    // floating-point result, so this order is part of the determinism
    // contract.
    let mut stats = OnlineStats::new();
    let mut skipped = 0;
    for r in rounds {
        match r {
            Some(round) => stats.push(round as f64),
            None => skipped += 1,
        }
    }
    PointStats {
        rounds: stats,
        skipped,
    }
}

/// Runs the full Figure 1 sweep.
///
/// Columns: one row per `n`, one mean-round column per distribution
/// (plus a 95% CI half-width column each), and a trailing column
/// counting skipped (never-decided) runs — always `0` for the paper's
/// six distributions.
pub fn run(max_n: usize, base_trials: u64, seed: u64, threads: usize) -> Table {
    let suite = Noise::figure1_suite();
    let mut columns: Vec<String> = vec!["n".into(), "trials".into()];
    for (name, _) in &suite {
        columns.push(name.to_string());
        columns.push(format!("{name} ci95"));
    }
    columns.push("skipped runs".into());
    let mut table = Table {
        title: format!("E1 / Figure 1: mean round of first termination (seed {seed})"),
        columns,
        rows: Vec::new(),
    };

    for n in figure1_ns(max_n) {
        let trials = trials_for(n, base_trials);
        let mut row = vec![n.to_string(), trials.to_string()];
        let mut skipped = 0;
        for &(_, noise) in &suite {
            let p = point(noise, n, trials, seed, threads);
            row.push(f2(p.rounds.mean()));
            row.push(f2(p.rounds.ci95()));
            skipped += p.skipped;
        }
        row.push(skipped.to_string());
        table.rows.push(row);
        eprintln!("fig1: n = {n} done ({trials} trials/distribution)");
    }
    table
}

/// Registry entry: E1, the paper's headline figure.
#[derive(Clone, Copy, Debug)]
pub struct Fig1;

impl Scenario for Fig1 {
    fn spec(&self) -> Spec {
        Spec {
            id: "E1",
            title: "Figure 1: mean first-termination round vs n, six distributions",
            artifact: "Figure 1 (§9)",
            outputs: &["fig1.csv"],
            trials_label: "trials",
            size_label: "max-n",
            full: Preset {
                trials: 1_000,
                size: 100_000,
                cap: 0,
            },
            smoke: Preset {
                trials: 5,
                size: 12,
                cap: 0,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        vec![run(p.size, p.trials, seed, threads)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_point_never_skips() {
        let p = point(Noise::Uniform { lo: 0.0, hi: 2.0 }, 8, 40, 7, 1);
        assert_eq!(p.skipped, 0);
        assert_eq!(p.rounds.count(), 40);
        assert!(p.rounds.mean() >= 2.0);
    }

    #[test]
    fn degenerate_point_skips_instead_of_panicking() {
        // Constant noise + common start = lockstep: no decision, ever.
        // The seed harness aborted the whole sweep here; now it counts.
        let p = point(Noise::Constant { value: 1.0 }, 4, 3, 3, 1);
        assert_eq!(p.skipped, 3);
        assert_eq!(p.rounds.count(), 0);
    }
}
