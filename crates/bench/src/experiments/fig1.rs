//! E1 — Figure 1 (§9): mean round of first termination vs. number of
//! processes, for the six interarrival distributions.
//!
//! Paper setup, reproduced exactly: half the processes start with input
//! 0 and half with 1; starting times are equal up to a `U(0, 1e-8)`
//! dither; no failures; the measured quantity is the round at which the
//! **first** process terminates, averaged over trials. The paper uses
//! 10 000 trials per point up to `n = 100 000`; trials here scale down
//! with `n` to keep the event budget laptop-sized (tunable).

use nc_engine::{run_noisy, setup, Algorithm, Limits};
use nc_sched::{Noise, TimingModel};
use nc_theory::OnlineStats;

use crate::table::{f2, Table};
use crate::{figure1_ns, trials_for};

/// One measured Figure 1 point.
pub fn point(noise: Noise, n: usize, trials: u64, seed0: u64) -> OnlineStats {
    let timing = TimingModel::figure1(noise);
    let mut stats = OnlineStats::new();
    let inputs = setup::half_and_half(n);
    for t in 0..trials {
        let seed = seed0 ^ (t.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
        let report = run_noisy(&mut inst, &timing, seed, Limits::first_decision());
        let round = report
            .first_decision_round
            .expect("figure 1 runs terminate (non-degenerate noise)");
        stats.push(round as f64);
    }
    stats
}

/// Runs the full Figure 1 sweep.
///
/// Columns: one row per `n`, one mean-round column per distribution
/// (plus a 95% CI half-width column each).
pub fn run(max_n: usize, base_trials: u64, seed: u64) -> Table {
    let suite = Noise::figure1_suite();
    let mut columns: Vec<String> = vec!["n".into(), "trials".into()];
    for (name, _) in &suite {
        columns.push(name.to_string());
        columns.push(format!("{name} ci95"));
    }
    let mut table = Table {
        title: format!("E1 / Figure 1: mean round of first termination (seed {seed})"),
        columns,
        rows: Vec::new(),
    };

    for n in figure1_ns(max_n) {
        let trials = trials_for(n, base_trials);
        let mut row = vec![n.to_string(), trials.to_string()];
        for &(_, noise) in &suite {
            let stats = point(noise, n, trials, seed);
            row.push(f2(stats.mean()));
            row.push(f2(stats.ci95()));
        }
        table.rows.push(row);
        eprintln!("fig1: n = {n} done ({trials} trials/distribution)");
    }
    table
}
