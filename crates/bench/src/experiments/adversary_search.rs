//! E16 — adversary strategy search: how many rounds can a *searched*
//! adaptive adversary force, compared to the oblivious baseline?
//!
//! Theorem 12's Θ(log n) bound holds against **every** adversary, so an
//! empirical reproduction must do better than sampling random schedules
//! — it has to *look for* bad ones. This scenario runs the
//! `nc_adversary` tournament at each protocol size: a grid sweep over
//! [`StrategyFamily::standard`] (budget schedule × target rule ×
//! trigger threshold, every adaptive point a budget-limited override of
//! the same oblivious pick stream), scoring each strategy by the mean
//! round at which the first decision lands (capped runs score the round
//! frontier they reached — a lower bound, never an inflation).
//!
//! The table reports, per `n`, the oblivious baseline's mean forced
//! round next to the strongest adaptive strategy's label and score, and
//! closes with a `fit_log2` row over the worst-adaptive means: the
//! empirically worst searched strategy still grows like O(log n), which
//! is the paper's claim under adaptive scheduling (§10). The
//! `bench_adversary` binary records the same comparison as a tracked
//! JSON artifact.

use nc_adversary::{StrategyFamily, Tournament};
use nc_sched::rng::{salts, trial_seed};
use nc_theory::fit_log2;

use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, f3, Table};

/// Registry entry: E16.
#[derive(Clone, Copy, Debug)]
pub struct AdversarySearch;

impl Scenario for AdversarySearch {
    fn spec(&self) -> Spec {
        Spec {
            id: "E16",
            title:
                "Adversary strategy search: worst searched adaptive schedule vs oblivious baseline",
            artifact: "Theorem 12 / §10 (adaptive adversaries)",
            outputs: &["adversary_search.csv"],
            trials_label: "trials",
            size_label: "max-n",
            full: Preset {
                trials: 40,
                size: 64,
                cap: 200_000,
            },
            smoke: Preset {
                trials: 2,
                size: 8,
                cap: 20_000,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        vec![run_search(p.size, p.trials, p.cap, seed, threads)]
    }
}

/// The tournament sweep: powers of two from 4 to `max_n`, one full grid
/// search per size, worst-adaptive means fitted against log2(n).
pub fn run_search(max_n: usize, trials: u64, cap: u64, seed0: u64, threads: usize) -> Table {
    let mut table = Table::new(
        format!(
            "E16 / adversary strategy search: forced first-decision round, grid sweep over \
             {} strategy points, {trials} trials/point (op cap {cap})",
            StrategyFamily::standard().points().len()
        ),
        &[
            "n",
            "oblivious mean round",
            "worst strategy",
            "worst mean round",
            "worst max round",
            "adaptive/oblivious",
            "capped trials",
        ],
    );
    let family = StrategyFamily::standard();
    let mut points = Vec::new();
    let mut n = 4usize;
    let mut idx = 0u64;
    while n <= max_n {
        let result = Tournament::new(n)
            .trials(trials)
            .seed0(trial_seed(seed0, idx, salts::STRATEGY))
            .max_ops(cap)
            .threads(threads)
            .sweep(&family);
        let oblivious = result
            .oblivious()
            .expect("standard family has the baseline");
        let worst = result
            .worst_adaptive()
            .expect("standard family has adaptive points");
        points.push((n as f64, worst.mean_round));
        table.push(vec![
            n.to_string(),
            f2(oblivious.mean_round),
            worst.label.clone(),
            f2(worst.mean_round),
            worst.worst_round.to_string(),
            f3(worst.mean_round / oblivious.mean_round),
            worst.capped.to_string(),
        ]);
        n *= 2;
        idx += 1;
    }
    let fit = fit_log2(&points);
    table.push(vec![
        "fit".into(),
        String::new(),
        "worst-adaptive mean".into(),
        format!("{} + {}*log2(n)", f3(fit.intercept), f3(fit.slope)),
        format!("R^2 = {}", f3(fit.r2)),
        String::new(),
        String::new(),
    ]);
    table
}
