//! E7 — Theorem 1: noisy scheduling can be pathologically unfair.
//!
//! With `X = 2^{k²}` w.p. `2^{-k}`, the expected number of operations
//! one process completes between two consecutive operations of another
//! is **infinite**. Infinite expectations can't be measured, but their
//! signature can: the empirical mean of the overtake count keeps growing
//! as the distribution's truncation point `k ≤ K` rises, without
//! stabilising. The table shows exactly that, next to a well-behaved
//! uniform distribution whose overtake mean is flat.

use nc_sched::{stream_rng, Noise};
use nc_theory::OnlineStats;

use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, Table};

/// Registry entry: E7.
#[derive(Clone, Copy, Debug)]
pub struct Unfairness;

impl Scenario for Unfairness {
    fn spec(&self) -> Spec {
        Spec {
            id: "E7",
            title: "Pathological unfairness: divergent expected overtaking",
            artifact: "Theorem 1",
            outputs: &["unfairness.csv"],
            trials_label: "ops",
            size_label: "-",
            full: Preset {
                trials: 10_000,
                size: 0,
                cap: 0,
            },
            smoke: Preset {
                trials: 300,
                size: 0,
                cap: 0,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, _threads: usize) -> Vec<Table> {
        // Overtake counting is a single serial walk per distribution;
        // nothing to fan out.
        vec![run(p.trials as usize, seed)]
    }
}

/// Measures overtaking: simulate two processes' operation times for
/// `ops` operations of process A and count how many operations B fits
/// into each of A's gaps; returns the per-gap statistics.
fn overtakes(noise: Noise, ops: usize, seed: u64) -> OnlineStats {
    let mut rng_a = stream_rng(seed, 0, 1);
    let mut rng_b = stream_rng(seed, 1, 1);
    let mut t_a = 0.0f64;
    let mut t_b = 0.0f64;
    let mut stats = OnlineStats::new();
    for _ in 0..ops {
        let gap_end = t_a + noise.sample(&mut rng_a);
        let mut count = 0u64;
        // Count B's ops that land inside (t_a, gap_end]. Cap the count so a
        // single astronomically long A-gap cannot spin forever.
        while t_b <= gap_end && count < 10_000_000 {
            t_b += noise.sample(&mut rng_b);
            if t_b <= gap_end {
                count += 1;
            }
        }
        t_a = gap_end;
        stats.push(count as f64);
    }
    stats
}

/// Runs the unfairness experiment.
///
/// Truncations above `k = 16` are omitted from the measured rows: draws
/// with `k ≥ 17` have probability `≤ 2^-16` and essentially never occur
/// in a feasible number of gaps, so measured means for higher caps are
/// identical realizations. The analytic column shows where the measured
/// growth is headed: the distribution's truncated mean
/// `Σ_{k≤K} 2^{-k} 2^{k²}` explodes, hence Theorem 1's infinite
/// expected overtaking.
pub fn run(ops: usize, seed0: u64) -> Table {
    let mut table = Table::new(
        "E7 / Theorem 1: ops by B between consecutive ops of A (growth with truncation => divergent expectation)",
        &[
            "distribution",
            "mean overtakes",
            "max overtakes",
            "gaps sampled",
            "analytic E[X] (truncated)",
        ],
    );
    for max_k in [2u32, 4, 6, 8, 10, 12, 14, 16] {
        let noise = Noise::Pathological { max_k };
        let stats = overtakes(noise, ops, seed0);
        let analytic: f64 = (1..=max_k)
            .map(|k| 2f64.powi(-(k as i32)) * 2f64.powi((k * k) as i32))
            .sum();
        table.push(vec![
            format!("pathological k<={max_k}"),
            f2(stats.mean()),
            f2(stats.max()),
            stats.count().to_string(),
            format!("{analytic:.3e}"),
        ]);
    }
    // Control: a tame distribution has a small, stable overtake mean.
    let stats = overtakes(Noise::Uniform { lo: 0.0, hi: 2.0 }, ops, seed0);
    table.push(vec![
        "uniform [0,2] (control)".into(),
        f2(stats.mean()),
        f2(stats.max()),
        stats.count().to_string(),
        "1 (finite)".into(),
    ]);
    table
}
