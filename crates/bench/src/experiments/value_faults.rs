//! E15 — value faults: lean-consensus under a noisy *memory* rather
//! than (only) a noisy schedule.
//!
//! The paper's environment perturbs **when** operations execute; the
//! noisy-communication literature perturbs **what** they observe:
//! Fraigniaud–Natale's model flips each transmitted bit with
//! probability ε ("Noisy Rumor Spreading and Plurality Consensus"), and
//! Clementi et al. ("Consensus Needs Broadcast in Noiseless Models but
//! Can Be Exponentially Easier in the Presence of Noise") show that
//! such noise can make consensus strictly *easier* in some models.
//! lean-consensus was never designed for value faults — its safety
//! proof (§5) assumes faithful registers — so this scenario measures
//! where it actually sits on that axis, with the engine's deterministic
//! [`nc_memory::FaultyMemory`] plane:
//!
//! * **ε sweep** — each read's low bit flips with probability ε
//!   (Fraigniaud–Natale's binary channel; our registers hold bits).
//!   Measures the rates of agreement, validity (on unanimous inputs),
//!   and termination within the op budget, plus the mean operation
//!   cost of the runs that did decide.
//! * **stuck-register sweep** — k registers of the racing arrays are
//!   stuck (alternating at one/zero across the round frontier),
//!   modelling permanently corrupted words rather than transient noise.
//!
//! Observed shape: tiny ε mostly costs extra rounds (a flipped frontier
//! read just delays the race) while safety violations appear only once
//! ε is large enough to fake a decided rival round — direct evidence
//! that the *schedule*-noise termination mechanism tolerates mild
//! *value* noise, the regime the related work predicts is benign.

use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm, FaultSpec, Limits, RunOutcome, RunReport};
use nc_memory::{Bit, RaceLayout};
use nc_sched::rng::trial_seed;
use nc_sched::{Noise, TimingModel};
use nc_theory::OnlineStats;

use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, f3, Table};

/// Registry entry: E15.
#[derive(Clone, Copy, Debug)]
pub struct ValueFaults;

impl Scenario for ValueFaults {
    fn spec(&self) -> Spec {
        Spec {
            id: "E15",
            title:
                "Value faults: agreement/validity/termination vs read-flip rate and stuck registers",
            artifact: "related work (Fraigniaud–Natale ε-noise; Clementi et al.)",
            outputs: &["value_faults.csv", "value_faults_stuck.csv"],
            trials_label: "trials",
            size_label: "n",
            full: Preset {
                trials: 200,
                size: 16,
                cap: 200_000,
            },
            smoke: Preset {
                trials: 4,
                size: 6,
                cap: 20_000,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        vec![
            run_epsilon(p.size, p.trials, p.cap, seed, threads),
            run_stuck(p.size, p.trials, p.cap, seed, threads),
        ]
    }
}

/// Aggregated safety/liveness counts over one faulted sweep.
#[derive(Default)]
struct FaultStats {
    trials: u64,
    agreed: u64,
    valid: u64,
    decided_all: u64,
    ops_when_decided: OnlineStats,
}

impl FaultStats {
    fn absorb(&mut self, report: &RunReport, inputs: &[Bit]) {
        self.trials += 1;
        // Agreement: no two decided processes disagree (vacuously true
        // if nobody decides — termination is scored separately).
        let mut decided = report.decisions.iter().flatten();
        let first = decided.next().copied();
        let agreed = decided.all(|&d| Some(d) == first);
        if agreed {
            self.agreed += 1;
        }
        // Validity: every decision equals some process's input (binary
        // consensus: a decision is invalid only on unanimous inputs
        // deciding the other way).
        let valid = report
            .decisions
            .iter()
            .flatten()
            .all(|d| inputs.contains(d));
        if valid {
            self.valid += 1;
        }
        if report.outcome == RunOutcome::AllDecided {
            self.decided_all += 1;
            self.ops_when_decided.push(report.total_ops as f64);
        }
    }

    fn row(&self, label: String) -> Vec<String> {
        let t = self.trials.max(1) as f64;
        vec![
            label,
            f3(self.agreed as f64 / t),
            f3(self.valid as f64 / t),
            f3(self.decided_all as f64 / t),
            f2(self.ops_when_decided.mean()),
            f2(self.ops_when_decided.ci95()),
        ]
    }
}

/// Runs one (spec, inputs) cell: `trials` faulted runs under the
/// figure-1 exponential timing model, seeds derived per trial with
/// [`trial_seed`] (`salt` distinguishes the scenario's sweeps).
fn sweep_cell(
    spec: FaultSpec,
    inputs: &[Bit],
    trials: u64,
    cap: u64,
    seed0: u64,
    salt: u64,
    threads: usize,
) -> FaultStats {
    let mut stats = FaultStats::default();
    let reports = Sim::new(Algorithm::Lean)
        .inputs(inputs.to_vec())
        .timing(TimingModel::figure1(Noise::Exponential { mean: 1.0 }))
        .limits(Limits::run_to_completion().with_max_ops(cap))
        .value_faults(spec)
        .trials(trials)
        .seed_fn(move |t| trial_seed(seed0, t, salt))
        .threads(threads)
        .reports();
    for report in &reports {
        stats.absorb(report, inputs);
    }
    stats
}

/// The ε sweep: read bit-flips at increasing rates, split inputs for
/// agreement/termination and unanimous inputs for validity.
pub fn run_epsilon(n: usize, trials: u64, cap: u64, seed0: u64, threads: usize) -> Table {
    let mut table = Table::new(
        format!(
            "E15 / value faults: lean-consensus vs read bit-flip rate ε, n = {n} \
             (Fraigniaud–Natale binary channel; op cap {cap})"
        ),
        &[
            "epsilon",
            "agreement rate",
            "validity rate",
            "termination rate",
            "mean ops (decided)",
            "ci95",
        ],
    );
    let split = setup::half_and_half(n);
    let unanimous = setup::unanimous(n, Bit::One);
    for (i, &eps) in [0.0, 0.001, 0.01, 0.05, 0.1, 0.25].iter().enumerate() {
        let salt = 2 * i as u64;
        let mut stats = sweep_cell(
            FaultSpec::new().read_flip(eps),
            &split,
            trials,
            cap,
            seed0,
            salt,
            threads,
        );
        // Validity is only at risk on unanimous inputs: fold in a
        // same-size unanimous sweep and keep its validity verdicts.
        let unan = sweep_cell(
            FaultSpec::new().read_flip(eps),
            &unanimous,
            trials,
            cap,
            seed0,
            salt + 1,
            threads,
        );
        stats.valid = unan.valid;
        table.push(stats.row(f3(eps)));
    }
    table
}

/// The stuck-register sweep: `k` frontier registers stuck (alternating
/// one/zero up the rounds), transient noise off.
pub fn run_stuck(n: usize, trials: u64, cap: u64, seed0: u64, threads: usize) -> Table {
    let mut table = Table::new(
        format!(
            "E15 / value faults: lean-consensus vs stuck racing-array registers, n = {n} \
             (register r stuck at r mod 2, rounds 1..=k; op cap {cap})"
        ),
        &[
            "stuck registers",
            "agreement rate",
            "validity rate",
            "termination rate",
            "mean ops (decided)",
            "ci95",
        ],
    );
    let split = setup::half_and_half(n);
    let unanimous = setup::unanimous(n, Bit::One);
    let layout = RaceLayout::at_base(0);
    for (i, &k) in [0usize, 1, 2, 4, 8].iter().enumerate() {
        // Stick one slot per round r = 1..=k, alternating the stuck
        // value and the array so neither team is systematically favored.
        let mut spec = FaultSpec::new();
        for r in 1..=k {
            let bit = Bit::from(r % 2 == 0);
            spec = spec.stuck_at(layout.slot(bit, r), Bit::from(r % 2 == 1));
        }
        let salt = 100 + 2 * i as u64;
        let mut stats = sweep_cell(spec.clone(), &split, trials, cap, seed0, salt, threads);
        let unan = sweep_cell(spec, &unanimous, trials, cap, seed0, salt + 1, threads);
        stats.valid = unan.valid;
        table.push(stats.row(k.to_string()));
    }
    table
}
