//! E20 — the durable service plane: segmented on-disk commit journals,
//! instance eviction, and crash-recovery byte-identity.
//!
//! E19 shows the sharded front door's reduced log is invariant to
//! sharding; this scenario pins the *durability* contract layered on
//! top of it. Every row drives the same deterministic load-generator
//! request stream twice with per-shard segmented journals (capacity 8
//! records, so even the smoke preset rolls segments):
//!
//! 1. **uninterrupted** — all instances submitted and decided in one
//!    service lifetime;
//! 2. **killed and reopened** — the service is dropped mid-stream
//!    after half the instances decide, reopened from its journal
//!    directory (replaying the durable facts), and driven to the end.
//!
//! The row asserts — and reports as the `kill+reopen` column — that
//! both runs produce **byte-identical** journal trees and reduced
//! logs, across shard counts {1, 2, 4} × retention policies
//! {keep-all, decided-cap, lru}. Resident/evicted counts and the
//! journal's segment count and byte footprint make the retention and
//! segmentation behaviour visible in the CSV; the two FNV-1a
//! fingerprints (reduced log, journal tree) are the regression pins.
//!
//! The journal *location* is out-of-band scratch state (the `repro`
//! driver's `--journal-dir`, or a self-cleaning temp dir): the CSV is
//! a pure function of `(preset, seed)` and never mentions the path.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use nc_service::{loadgen, NcService, Retention, ServiceConfig};

use crate::experiments::service::fnv64;
use crate::scenario::{Preset, RunCtx, Scenario, Spec};
use crate::table::Table;

/// Segment capacity every E20 journal uses: small enough that even the
/// 16-instance smoke preset rolls segment files.
const SEGMENT_RECORDS: usize = 8;

/// Registry entry: E20.
#[derive(Clone, Copy, Debug)]
pub struct Durability;

impl Scenario for Durability {
    fn spec(&self) -> Spec {
        Spec {
            id: "E20",
            title: "Durable service plane: journal persistence, eviction, crash recovery",
            artifact: "crash-recovery of the nc_service commit-journal plane",
            outputs: &["durability.csv"],
            trials_label: "instances",
            size_label: "procs",
            full: Preset {
                trials: 200,
                size: 8,
                cap: 0,
            },
            smoke: Preset {
                trials: 16,
                size: 5,
                cap: 0,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        let scratch = ScratchDir::new();
        vec![run_durability(p.trials, p.size, seed, threads, &scratch.0)]
    }

    fn run_ctx(&self, p: Preset, seed: u64, threads: usize, ctx: &RunCtx) -> Vec<Table> {
        match &ctx.journal_dir {
            Some(root) => vec![run_durability(p.trials, p.size, seed, threads, root)],
            None => self.run(p, seed, threads),
        }
    }
}

/// A self-cleaning scratch directory for runs without a `--journal-dir`
/// (unique per process × instantiation, so concurrent determinism
/// tests never collide).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("nc-e20-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create E20 scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The retention policies each shard count is swept over, with the cap
/// sized to force evictions at any preset (a quarter of the stream).
fn policies(instances: u64) -> [(String, Retention); 3] {
    let cap = (instances / 4).max(1) as usize;
    [
        ("keep-all".into(), Retention::KeepAll),
        (format!("decided-cap({cap})"), Retention::DecidedCap(cap)),
        (format!("lru({cap})"), Retention::Lru(cap)),
    ]
}

fn config(procs: usize, shards: usize, seed: u64, retention: Retention, dir: &Path) -> NcService {
    NcService::new(
        ServiceConfig::builder()
            .procs(procs)
            .shards(shards)
            .seed(seed)
            .retention(retention)
            .journal_dir(dir)
            .segment_records(SEGMENT_RECORDS)
            .build()
            .expect("static E20 config is valid"),
    )
}

/// Submits and decides instances `ids`, in batches of four.
fn feed(svc: &mut NcService, ids: std::ops::Range<u64>, procs: usize, threads: usize) {
    for (i, id) in ids.clone().enumerate() {
        for value in loadgen::proposals_for(id, procs) {
            svc.submit(id, value).expect("fresh instance ids");
        }
        if i % 4 == 3 {
            svc.run_ready(threads);
        }
    }
    svc.run_ready(threads);
}

/// Reads a journal tree as sorted `(relative path, bytes)` pairs.
fn journal_tree(root: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries {
            let path = entry.expect("read dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("entry under root")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&path).expect("read journal file")));
            }
        }
    }
    out.sort();
    out
}

/// FNV-1a over the tree's `(path, bytes)` pairs — a single fingerprint
/// for the entire on-disk byte format.
fn tree_fnv64(tree: &[(String, Vec<u8>)]) -> u64 {
    let mut buf = Vec::new();
    for (rel, bytes) in tree {
        buf.extend_from_slice(rel.as_bytes());
        buf.push(0);
        buf.extend_from_slice(bytes);
    }
    fnv64(&buf)
}

/// One table: shard counts {1, 2, 4} × the three retention policies,
/// each row double-run (uninterrupted vs killed-and-reopened) under
/// `root`, which is wiped per variant.
pub fn run_durability(
    instances: u64,
    procs: usize,
    seed: u64,
    threads: usize,
    root: &Path,
) -> Table {
    let mut table = Table::new(
        format!(
            "E20 / durable service plane: {instances} instances of {procs}-process \
             lean-consensus journalled to disk ({SEGMENT_RECORDS}-record segments); \
             every row kills the service after {} instances, reopens from the \
             journal, and must reproduce the uninterrupted run's journal tree \
             and reduced log byte-for-byte",
            instances / 2
        ),
        &[
            "shards",
            "retention",
            "instances",
            "decided",
            "resident",
            "evicted",
            "segments",
            "journal B",
            "reduced log fnv64",
            "journal fnv64",
            "kill+reopen",
        ],
    );
    for shards in [1usize, 2, 4] {
        for (label, retention) in policies(instances) {
            let variant = root.join(format!("s{shards}-{}", label.replace(['(', ')'], "-")));
            let full_dir = variant.join("full");
            let killed_dir = variant.join("killed");
            for d in [&full_dir, &killed_dir] {
                let _ = std::fs::remove_dir_all(d);
                std::fs::create_dir_all(d).expect("create E20 variant dir");
            }

            // Uninterrupted lifetime.
            let mut svc = config(procs, shards, seed, retention, &full_dir);
            feed(&mut svc, 0..instances, procs, threads);
            let facts = svc.drain_completions();
            assert_eq!(facts.len() as u64, instances, "every instance must close");
            let decided = facts.iter().filter(|f| f.value.is_some()).count();
            let reduced = svc.reduced_log();
            let resident = svc.resident_decided();
            let evicted = svc.evicted_count();
            let (segments, journal_bytes) = svc.journal_footprint().expect("journal is on");
            let full_tree = journal_tree(&full_dir);

            // Kill after half the stream, reopen from the journal,
            // finish the stream.
            let kill_after = instances / 2;
            {
                let mut doomed = config(procs, shards, seed, retention, &killed_dir);
                feed(&mut doomed, 0..kill_after, procs, threads);
            } // dropped mid-stream: only the journals survive
            let mut revived = config(procs, shards, seed, retention, &killed_dir);
            assert_eq!(
                revived.drain_completions().len() as u64,
                kill_after,
                "replay must re-announce every durable fact"
            );
            feed(&mut revived, kill_after..instances, procs, threads);
            let killed_tree = journal_tree(&killed_dir);
            let recovered = killed_tree == full_tree && revived.reduced_log() == reduced;
            assert!(
                recovered,
                "kill-and-reopen diverged from the uninterrupted run \
                 (shards {shards}, {label})"
            );

            table.push(vec![
                shards.to_string(),
                label,
                instances.to_string(),
                decided.to_string(),
                resident.to_string(),
                evicted.to_string(),
                segments.to_string(),
                journal_bytes.to_string(),
                format!("{:016x}", fnv64(reduced.as_bytes())),
                format!("{:016x}", tree_fnv64(&full_tree)),
                "match".into(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_log_fingerprint_is_shard_and_retention_invariant() {
        let scratch = ScratchDir::new();
        let table = run_durability(8, 3, 5, 1, &scratch.0);
        assert_eq!(table.rows.len(), 9);
        let prints: Vec<&String> = table.rows.iter().map(|r| &r[8]).collect();
        assert!(
            prints.iter().all(|p| *p == prints[0]),
            "reduced log moved across shards/retention: {prints:?}"
        );
        assert!(table.rows.iter().all(|r| r.last().unwrap() == "match"));
    }

    #[test]
    fn journal_fingerprint_depends_on_sharding_only() {
        let scratch = ScratchDir::new();
        let table = run_durability(8, 3, 5, 1, &scratch.0);
        for rows in table.rows.chunks(3) {
            // Same shard count ⇒ same journal tree whatever the policy.
            assert!(rows.iter().all(|r| r[9] == rows[0][9]), "{rows:?}");
        }
        // Different shard counts split the same facts differently.
        assert_ne!(table.rows[0][9], table.rows[3][9]);
    }

    #[test]
    fn eviction_rows_report_bounded_residency() {
        let scratch = ScratchDir::new();
        let table = run_durability(8, 3, 5, 1, &scratch.0);
        for row in &table.rows {
            let (resident, evicted): (usize, usize) =
                (row[4].parse().unwrap(), row[5].parse().unwrap());
            if row[1] == "keep-all" {
                assert_eq!((resident, evicted), (8, 0), "{row:?}");
            } else {
                assert_eq!(resident, 2, "{row:?}");
                assert_eq!(evicted, 6, "{row:?}");
            }
        }
    }
}
