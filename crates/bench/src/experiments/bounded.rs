//! E6 — Theorem 15: the bounded-space combined protocol.
//!
//! Sweeps the cutoff `r_max` and reports, under noisy scheduling, how
//! often the backup engages and what the run costs — plus the lockstep
//! column where lean *cannot* decide and the backup must carry every
//! run. Theorem 15's economics: at `r_max = O(log² n)` the backup's
//! engagement probability is negligible, so the expected cost matches
//! plain lean-consensus while space stays `O(log² n)` bits.

use nc_core::bounded::recommended_r_max;
use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm};
use nc_memory::RaceLayout;
use nc_sched::adversary::RoundRobin;
use nc_sched::{Noise, TimingModel};
use nc_theory::OnlineStats;

use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, Table};

/// Registry entry: E6.
#[derive(Clone, Copy, Debug)]
pub struct BoundedSpace;

impl Scenario for BoundedSpace {
    fn spec(&self) -> Spec {
        Spec {
            id: "E6",
            title: "Bounded-space combined protocol: backup engagement vs r_max",
            artifact: "Theorem 15",
            outputs: &["bounded_space.csv"],
            trials_label: "trials",
            size_label: "n",
            full: Preset {
                trials: 60,
                size: 16,
                cap: 0,
            },
            smoke: Preset {
                trials: 3,
                size: 8,
                cap: 0,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        vec![run(p.size, p.trials, seed, threads)]
    }
}

/// Runs the bounded-space experiment for `n` processes.
pub fn run(n: usize, trials: u64, seed0: u64, threads: usize) -> Table {
    let rec = recommended_r_max(n);
    let mut table = Table::new(
        format!("E6 / Theorem 15: bounded protocol, n = {n} (recommended r_max = {rec})"),
        &[
            "r_max",
            "lean bits",
            "backup rate (noisy)",
            "mean ops (noisy)",
            "lockstep decided",
            "mean ops (lockstep)",
        ],
    );
    let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 });

    let mut r_maxes = vec![2usize, 3, 4, 6, 8, 12, 16];
    if !r_maxes.contains(&rec) {
        r_maxes.push(rec);
    }

    for r_max in r_maxes {
        // Noisy scheduling: measure engagement rate + cost.
        let inputs = setup::half_and_half(n);
        let mut engaged = 0u64;
        let mut ops = OnlineStats::new();
        let results = Sim::new(Algorithm::Bounded { r_max })
            .inputs(inputs.clone())
            .timing(timing.clone())
            .trials(trials)
            .seed0(seed0)
            .seed_stride(17)
            .threads(threads)
            .map(|report| {
                report.check_safety(&inputs).expect("safety");
                (
                    report.total_ops as f64,
                    report.decision_rounds.iter().flatten().any(|&r| r > r_max),
                )
            });
        for (total, hit_backup) in results {
            ops.push(total);
            if hit_backup {
                engaged += 1;
            }
        }

        // Lockstep: lean can never decide; the backup must.
        let mut lockstep_ops = OnlineStats::new();
        let mut lockstep_ok = true;
        let inputs = setup::alternating(n.min(8)); // lockstep cost grows fast
        let mut lockstep = Sim::new(Algorithm::Bounded { r_max })
            .inputs(inputs.clone())
            .adversary(|_| RoundRobin::new())
            .build();
        for t in 0..trials.min(10) {
            let seed = seed0 + 90_000 + t;
            let report = lockstep.run(seed);
            report.check_safety(&inputs).expect("safety");
            lockstep_ok &= report.outcome.decided();
            lockstep_ops.push(report.total_ops as f64);
        }

        table.push(vec![
            r_max.to_string(),
            RaceLayout::words_for_rounds(r_max).to_string(),
            format!("{engaged}/{trials}"),
            f2(ops.mean()),
            lockstep_ok.to_string(),
            f2(lockstep_ops.mean()),
        ]);
    }
    table
}
