//! E5 — Theorem 14: hybrid quantum/priority scheduling.
//!
//! Sweeps the quantum from 1 to 16 under three policies (benign, random,
//! and the write-preempting adversary), across several process counts
//! and initial-quantum burns, reporting the worst per-process operation
//! count observed. Theorem 14's claim: **≤ 12 for quantum ≥ 8** — the
//! table's last column flags it.

use nc_engine::{run_hybrid, setup, Algorithm, Limits};
use nc_sched::hybrid::{BenignHybrid, HybridPolicy, HybridSpec, RandomHybrid, WritePreemptor};
use nc_sched::stream_rng;

use crate::table::Table;

/// Runs the hybrid-scheduling experiment.
pub fn run(seed0: u64) -> Table {
    let mut table = Table::new(
        "E5 / Theorem 14: worst per-process ops on a hybrid-scheduled uniprocessor",
        &[
            "quantum",
            "worst ops (benign)",
            "worst ops (random)",
            "worst ops (preemptor)",
            "all decided",
            "<=12 (required for q>=8)",
        ],
    );

    for quantum in 1..=16u32 {
        let mut worst = [0u64; 3];
        let mut all_decided = true;
        for n in [2usize, 3, 4, 6, 8] {
            for burn in [0u32, quantum / 2, quantum] {
                let inputs = setup::alternating(n);
                let policies: [&mut dyn FnMut() -> Box<dyn HybridPolicy>; 3] = [
                    &mut || Box::new(BenignHybrid),
                    &mut || Box::new(RandomHybrid::new(stream_rng(seed0, quantum as u64, 4))),
                    &mut || Box::new(WritePreemptor),
                ];
                for (k, make) in policies.into_iter().enumerate() {
                    let mut inst = setup::build(Algorithm::Lean, &inputs, seed0);
                    let spec = HybridSpec::uniform(n, quantum).with_initial_used(vec![burn; n]);
                    let mut policy = make();
                    let report = run_hybrid(
                        &mut inst,
                        &spec,
                        policy.as_mut(),
                        Limits::run_to_completion().with_max_ops(2_000_000),
                    );
                    report.check_safety(&inputs).expect("safety");
                    worst[k] = worst[k].max(report.max_ops_per_process());
                    all_decided &= report.outcome.decided();
                }
            }
        }
        let bound_holds = worst.iter().all(|&w| w <= 12) && all_decided;
        table.push(vec![
            quantum.to_string(),
            worst[0].to_string(),
            worst[1].to_string(),
            worst[2].to_string(),
            all_decided.to_string(),
            if quantum >= 8 {
                if bound_holds {
                    "yes (as proved)".into()
                } else {
                    "VIOLATED".into()
                }
            } else if bound_holds {
                "yes (not guaranteed)".into()
            } else {
                "no (not guaranteed)".into()
            },
        ]);
    }
    table
}
