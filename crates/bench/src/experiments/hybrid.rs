//! E5 — Theorem 14: hybrid quantum/priority scheduling.
//!
//! Sweeps the quantum from 1 to 16 under three policies (benign, random,
//! and the write-preempting adversary), across several process counts
//! and initial-quantum burns, reporting the worst per-process operation
//! count observed. Theorem 14's claim: **≤ 12 for quantum ≥ 8** — the
//! table's last column flags it.

use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm, Limits};
use nc_sched::hybrid::{BenignHybrid, HybridPolicy, HybridSpec, RandomHybrid, WritePreemptor};
use nc_sched::stream_rng;

use crate::scenario::{Preset, Scenario, Spec};
use crate::table::Table;

/// Registry entry: E5.
#[derive(Clone, Copy, Debug)]
pub struct HybridQuantum;

impl Scenario for HybridQuantum {
    fn spec(&self) -> Spec {
        Spec {
            id: "E5",
            title: "Hybrid quantum/priority uniprocessor: ≤ 12 ops for quantum ≥ 8",
            artifact: "Theorem 14",
            outputs: &["hybrid_quantum.csv"],
            trials_label: "trials",
            size_label: "max-quantum",
            // The policy sweep is exhaustive rather than sampled, so
            // there is no trials knob (0 = not applicable, and --scale
            // is honestly a no-op). The preemptor burns the whole op
            // cap below quantum 8, so the smoke tier trims both the
            // quantum sweep and the cap — otherwise this scenario alone
            // would dominate debug-build golden runs.
            full: Preset {
                trials: 0,
                size: 16,
                cap: 2_000_000,
            },
            smoke: Preset {
                trials: 0,
                size: 3,
                cap: 20_000,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, _threads: usize) -> Vec<Table> {
        // The policy sweep is exhaustive (no trial fan-out), so the
        // worker count has nothing to parallelize here.
        vec![run(p.size as u32, p.cap, seed)]
    }
}

/// Runs the hybrid-scheduling experiment, sweeping the quantum from 1
/// to `max_quantum` with each run's operation budget capped at `op_cap`
/// (runs the policy prevents from deciding — the preemptor below
/// quantum 8 — stop there and report `all decided = false`).
pub fn run(max_quantum: u32, op_cap: u64, seed0: u64) -> Table {
    let mut table = Table::new(
        "E5 / Theorem 14: worst per-process ops on a hybrid-scheduled uniprocessor",
        &[
            "quantum",
            "worst ops (benign)",
            "worst ops (random)",
            "worst ops (preemptor)",
            "all decided",
            "<=12 (required for q>=8)",
        ],
    );

    for quantum in 1..=max_quantum {
        let mut worst = [0u64; 3];
        let mut all_decided = true;
        for n in [2usize, 3, 4, 6, 8] {
            for burn in [0u32, quantum / 2, quantum] {
                let inputs = setup::alternating(n);
                type MakePolicy = Box<dyn Fn(u64) -> Box<dyn HybridPolicy> + Send + Sync>;
                let policies: [MakePolicy; 3] = [
                    Box::new(|_| Box::new(BenignHybrid)),
                    Box::new(move |seed| {
                        Box::new(RandomHybrid::new(stream_rng(seed, quantum as u64, 4)))
                    }),
                    Box::new(|_| Box::new(WritePreemptor)),
                ];
                for (k, make) in policies.into_iter().enumerate() {
                    let spec = HybridSpec::uniform(n, quantum).with_initial_used(vec![burn; n]);
                    let report = Sim::new(Algorithm::Lean)
                        .inputs(inputs.clone())
                        .hybrid(spec, make)
                        .limits(Limits::run_to_completion().with_max_ops(op_cap))
                        .build()
                        .run(seed0);
                    report.check_safety(&inputs).expect("safety");
                    worst[k] = worst[k].max(report.max_ops_per_process());
                    all_decided &= report.outcome.decided();
                }
            }
        }
        let bound_holds = worst.iter().all(|&w| w <= 12) && all_decided;
        table.push(vec![
            quantum.to_string(),
            worst[0].to_string(),
            worst[1].to_string(),
            worst[2].to_string(),
            all_decided.to_string(),
            if quantum >= 8 {
                if bound_holds {
                    "yes (as proved)".into()
                } else {
                    "VIOLATED".into()
                }
            } else if bound_holds {
                "yes (not guaranteed)".into()
            } else {
                "no (not guaranteed)".into()
            },
        ]);
    }
    table
}
