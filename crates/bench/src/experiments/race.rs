//! E8 — Theorem 10 / Corollary 11: the abstract renewal race.
//!
//! Measures, independently of any consensus protocol, the round at which
//! one of `n` delayed renewal processes first leads every rival by
//! `c = 2` rounds: mean and quantiles vs `n`, the `a + b·log₂ n` fit,
//! and the geometric tail — plus the with-failures variant (the race
//! ends either with a winner or with universal extinction, Corollary
//! 11's two disjuncts).

use nc_sched::Noise;
use nc_theory::{fit_log2, quantile, run_race, OnlineStats, RaceConfig, RaceOutcome};

use crate::par_trials;
use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, f3, fstable, Table};

/// Registry entry: E8 (the with-failures leg covers what DESIGN.md's
/// index once split out as E12).
#[derive(Clone, Copy, Debug)]
pub struct RenewalRace;

impl Scenario for RenewalRace {
    fn spec(&self) -> Spec {
        Spec {
            id: "E8",
            title: "Abstract renewal race: lead-c stopping time and failure variant",
            artifact: "Theorem 10 / Corollary 11",
            outputs: &["renewal_race.csv", "renewal_race_failures.csv"],
            trials_label: "trials",
            size_label: "-",
            full: Preset {
                trials: 200,
                size: 0,
                cap: 0,
            },
            smoke: Preset {
                trials: 3,
                size: 0,
                cap: 0,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        let (sweep, failures) = run(p.trials, seed, threads);
        vec![sweep, failures]
    }
}

/// Runs the renewal-race experiment across `threads` workers. Returns
/// the sweep table and the failures table.
pub fn run(trials: u64, seed0: u64, threads: usize) -> (Table, Table) {
    let mut sweep = Table::new(
        "E8 / Corollary 11: renewal race, lead c = 2, exp(1) round noise",
        &["n", "mean R", "ci95", "p50", "p95", "p99"],
    );
    let mut points = Vec::new();
    for &n in &[2usize, 8, 32, 128, 512, 2048] {
        let cfg = RaceConfig::new(n, 2, Noise::Exponential { mean: 1.0 });
        let outcomes = par_trials(threads, trials, |t| run_race(&cfg, seed0 + t * 7));
        let mut stats = OnlineStats::new();
        let mut rounds = Vec::new();
        for outcome in outcomes {
            match outcome {
                RaceOutcome::Winner { round, .. } => {
                    stats.push(round as f64);
                    rounds.push(round as f64);
                }
                other => panic!("race must end without failures: {other:?}"),
            }
        }
        points.push((n as f64, stats.mean()));
        sweep.push(vec![
            n.to_string(),
            f2(stats.mean()),
            f2(stats.ci95()),
            f2(quantile(&rounds, 0.5)),
            f2(quantile(&rounds, 0.95)),
            f2(quantile(&rounds, 0.99)),
        ]);
    }
    let fit = fit_log2(&points);
    sweep.push(vec![
        "fit".into(),
        format!("{} + {}*log2(n)", f3(fit.intercept), f3(fit.slope)),
        String::new(),
        String::new(),
        String::new(),
        format!("R^2 = {}", f3(fit.r2)),
    ]);

    let mut failures = Table::new(
        "E8 with halting failures (n = 64): winner or extinction, never a stall",
        &["h per round", "winners", "extinctions", "mean winning R"],
    );
    for &h in &[0.0, 0.01, 0.05, 0.2, 0.5] {
        let cfg = RaceConfig::new(64, 2, Noise::Exponential { mean: 1.0 }).with_halt_prob(h);
        let outcomes = par_trials(threads, trials, |t| run_race(&cfg, seed0 + 50_000 + t * 13));
        let mut winners = 0u64;
        let mut extinct = 0u64;
        let mut stats = OnlineStats::new();
        for outcome in outcomes {
            match outcome {
                RaceOutcome::Winner { round, .. } => {
                    winners += 1;
                    stats.push(round as f64);
                }
                RaceOutcome::AllDied { .. } => extinct += 1,
                RaceOutcome::RoundCapReached => panic!("race stalled at h = {h}"),
            }
        }
        failures.push(vec![
            fstable(h, 3),
            winners.to_string(),
            extinct.to_string(),
            f2(stats.mean()),
        ]);
    }
    (sweep, failures)
}
