//! E4 — Theorem 13: the Ω(log n) lower bound.
//!
//! The construction: every operation takes 1 or 2 time units with equal
//! probability. With probability ≈ `(1 − e^{−1/2})² ≈ 0.155` (as n → ∞)
//! at least one process on *each* team runs its first `log₂ n`
//! operations at full speed, keeping the teams tied for `Ω(log n)`
//! rounds. The table reports the mean first-decision round and the
//! empirically measured probability that disagreement survives past
//! `log₂ n` *operations-at-full-speed* rounds, alongside the asymptotic
//! constant.

use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm, Limits};
use nc_sched::{Noise, TimingModel};
use nc_theory::{fit_log2, OnlineStats};

use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, f3, Table};

/// Registry entry: E4.
#[derive(Clone, Copy, Debug)]
pub struct LowerBound;

impl Scenario for LowerBound {
    fn spec(&self) -> Spec {
        Spec {
            id: "E4",
            title: "Ω(log n) lower bound via two-point {1,2} noise",
            artifact: "Theorem 13",
            outputs: &["lower_bound.csv"],
            trials_label: "trials",
            size_label: "-",
            full: Preset {
                trials: 150,
                size: 0,
                cap: 0,
            },
            smoke: Preset {
                trials: 2,
                size: 0,
                cap: 0,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        vec![run(p.trials, seed, threads)]
    }
}

/// Runs the lower-bound experiment.
pub fn run(trials: u64, seed0: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "E4 / Theorem 13: two-point {1,2} noise (lower-bound construction)",
        &[
            "n",
            "mean round (two-point)",
            "ci95",
            "mean round (exponential)",
            "Pr[round > log2 n / 2]",
        ],
    );
    let mut points = Vec::new();
    for &n in &[4usize, 16, 64, 256, 1024] {
        let inputs = setup::half_and_half(n);
        let threshold = ((n as f64).log2() / 2.0).max(2.0);
        let measure = |noise: Noise| -> Vec<f64> {
            Sim::new(Algorithm::Lean)
                .inputs(inputs.clone())
                .timing(TimingModel::figure1(noise))
                .limits(Limits::first_decision())
                .trials(trials)
                .seed0(seed0)
                .seed_stride(37)
                .threads(threads)
                .map(|report| report.first_decision_round.unwrap() as f64)
        };
        let mut tp = OnlineStats::new();
        let mut survive = 0u64;
        for round in measure(Noise::theorem13()) {
            tp.push(round);
            if round > threshold {
                survive += 1;
            }
        }
        let mut exp = OnlineStats::new();
        for round in measure(Noise::Exponential { mean: 1.0 }) {
            exp.push(round);
        }
        points.push((n as f64, tp.mean()));
        table.push(vec![
            n.to_string(),
            f2(tp.mean()),
            f2(tp.ci95()),
            f2(exp.mean()),
            f3(survive as f64 / trials as f64),
        ]);
    }
    let fit = fit_log2(&points);
    table.push(vec![
        "fit".into(),
        format!("{} + {}*log2(n)", f3(fit.intercept), f3(fit.slope)),
        String::new(),
        String::new(),
        format!(
            "asymptotic (1-e^-0.5)^2 = {}",
            f3((1.0 - (-0.5f64).exp()).powi(2))
        ),
    ]);
    table
}
