//! E17 — partition-tolerant networking: message loss, duplication,
//! link-cut schedules, and the retry/gossip recovery plane.
//!
//! E13 showed lean-consensus-over-ABD terminating on a *reliable* noisy
//! network; this scenario stresses the network itself, with the
//! deterministic fault plane of `nc_msg::faults`:
//!
//! * **loss × channel sweep** — i.i.d. message loss at increasing rates,
//!   under both broadcast expansions (independent per-recipient unicast
//!   delays vs one shared broadcast delay — the Clementi–Natale-style
//!   broadcast medium). Reports decide rate, mean max lean round,
//!   deliveries, and retry-timer traffic.
//! * **partition sweep** — a timed link-cut window isolating the first
//!   ⌊n/2⌋ nodes, of increasing duration. The majority side decides on
//!   its own; the minority must catch up after heal through phase
//!   retries and gossip/anti-entropy (decision adoption). Reports the
//!   recovery time: how long after heal the slowest minority node takes
//!   to decide.
//! * **mixed-deployment sweep** — a subset of nodes serves replica
//!   duties out of one shared `nc_memory` plane (`SharedPlane`), under
//!   loss, quantifying how bridging shared memory into the quorum
//!   changes traffic.
//!
//! Everything is deterministic in `(preset, seed)`: per-trial seeds come
//! from [`trial_seed`] with one distinct salt per sweep cell, and the
//! fault/gossip streams inside each run are salted independently of the
//! delay noise.

use nc_msg::{run_message_passing, Channel, MsgConfig, MsgReport, NetFaultSpec, Outcome};
use nc_sched::rng::trial_seed;
use nc_sched::Noise;
use nc_theory::OnlineStats;

use crate::par_trials;
use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, f3, Table};

/// Registry entry: E17.
#[derive(Clone, Copy, Debug)]
pub struct Partitions;

impl Scenario for Partitions {
    fn spec(&self) -> Spec {
        Spec {
            id: "E17",
            title: "Partition tolerance: loss/duplication, link cuts, retry + gossip recovery",
            artifact: "§10 extension (ABD under network faults; broadcast vs unicast)",
            outputs: &["net_faults.csv", "net_partitions.csv", "net_mixed.csv"],
            trials_label: "trials",
            size_label: "n",
            full: Preset {
                trials: 20,
                size: 7,
                cap: 400_000,
            },
            smoke: Preset {
                trials: 2,
                size: 5,
                cap: 120_000,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        vec![
            run_loss(p.size, p.trials, p.cap, seed, threads),
            run_partitions(p.size, p.trials, p.cap, seed, threads),
            run_mixed(p.size, p.trials, p.cap, seed, threads),
        ]
    }
}

/// Aggregates one sweep cell of faulted message-passing runs.
#[derive(Default)]
struct CellStats {
    trials: u64,
    decided: u64,
    agreed: u64,
    rounds: OnlineStats,
    deliveries: OnlineStats,
    retries: OnlineStats,
}

impl CellStats {
    fn absorb(&mut self, report: &MsgReport) {
        self.trials += 1;
        let mut decisions = report.decisions.iter().flatten();
        let first = decisions.next().copied();
        if decisions.all(|&d| Some(d) == first) {
            self.agreed += 1;
        }
        if report.outcome == Outcome::Decided {
            self.decided += 1;
            self.rounds
                .push(*report.rounds.iter().max().unwrap() as f64);
            self.deliveries.push(report.deliveries as f64);
            self.retries.push(report.retries as f64);
        }
    }

    fn decide_rate(&self) -> f64 {
        self.decided as f64 / self.trials.max(1) as f64
    }

    fn agree_rate(&self) -> f64 {
        self.agreed as f64 / self.trials.max(1) as f64
    }
}

/// Runs `trials` faulted runs of one configuration cell across
/// `threads` workers, seeds derived with [`trial_seed`] under `salt`.
fn sweep_cell(
    cfg: &MsgConfig,
    trials: u64,
    seed0: u64,
    salt: u64,
    threads: usize,
) -> (CellStats, Vec<MsgReport>) {
    let reports = par_trials(threads, trials, |t| {
        run_message_passing(cfg, trial_seed(seed0, t, salt))
    });
    let mut stats = CellStats::default();
    for report in &reports {
        stats.absorb(report);
    }
    (stats, reports)
}

fn base_cfg(n: usize, cap: u64) -> MsgConfig {
    let mut cfg = MsgConfig::new(n, Noise::Exponential { mean: 1.0 });
    if cap > 0 {
        cfg.max_deliveries = cap;
    }
    cfg
}

/// The loss × channel sweep.
pub fn run_loss(n: usize, trials: u64, cap: u64, seed0: u64, threads: usize) -> Table {
    let mut table = Table::new(
        format!(
            "E17 / network faults: lean-over-ABD vs message loss, n = {n} \
             (retry timers + gossip armed; event cap {cap})"
        ),
        &[
            "loss",
            "channel",
            "decide rate",
            "agreement rate",
            "mean max round",
            "mean deliveries",
            "mean retries",
        ],
    );
    for (i, &loss) in [0.0, 0.01, 0.05, 0.15].iter().enumerate() {
        for (j, (label, channel)) in [
            ("unicast", Channel::Unicast),
            ("broadcast", Channel::Broadcast),
        ]
        .into_iter()
        .enumerate()
        {
            let cfg = base_cfg(n, cap)
                .with_channel(channel)
                .with_faults(NetFaultSpec::none().with_loss(loss));
            let salt = 2 * i as u64 + j as u64;
            let (stats, _) = sweep_cell(&cfg, trials, seed0, salt, threads);
            table.push(vec![
                f3(loss),
                label.into(),
                f3(stats.decide_rate()),
                f3(stats.agree_rate()),
                f2(stats.rounds.mean()),
                f2(stats.deliveries.mean()),
                f2(stats.retries.mean()),
            ]);
        }
    }
    table
}

/// The partition-duration sweep: the first ⌊n/2⌋ nodes are cut off
/// during `[2, 2 + duration)`; recovery time = how long after heal the
/// slowest minority node takes to decide.
pub fn run_partitions(n: usize, trials: u64, cap: u64, seed0: u64, threads: usize) -> Table {
    let mut table = Table::new(
        format!(
            "E17 / partitions: minority side (first {} of {n} nodes) cut during [2, 2+d); \
             retry + gossip drive post-heal recovery (event cap {cap})",
            n / 2
        ),
        &[
            "partition duration",
            "decide rate",
            "agreement rate",
            "mean max round",
            "mean retries",
            "mean recovery time",
        ],
    );
    let side: Vec<u32> = (0..(n / 2) as u32).collect();
    for (i, &duration) in [0.0, 10.0, 30.0, 60.0].iter().enumerate() {
        let heal = 2.0 + duration;
        let mut faults = NetFaultSpec::none();
        if duration > 0.0 {
            faults = faults.with_partition(2.0, heal, side.clone());
        }
        // Arm a pinch of loss even at duration 0 so the recovery plane
        // is on in every cell and the sweep varies one thing only.
        faults = faults.with_loss(0.01);
        let cfg = base_cfg(n, cap).with_faults(faults);
        let salt = 100 + i as u64;
        let (stats, reports) = sweep_cell(&cfg, trials, seed0, salt, threads);
        let mut recovery = OnlineStats::new();
        for report in &reports {
            if report.outcome != Outcome::Decided {
                continue;
            }
            let worst = side
                .iter()
                .filter_map(|&i| report.decide_times[i as usize])
                .fold(0.0f64, f64::max);
            recovery.push((worst - heal).max(0.0));
        }
        table.push(vec![
            f2(duration),
            f3(stats.decide_rate()),
            f3(stats.agree_rate()),
            f2(stats.rounds.mean()),
            f2(stats.retries.mean()),
            f2(recovery.mean()),
        ]);
    }
    table
}

/// The mixed-deployment sweep: `k` nodes share one memory plane while
/// the rest keep private replicas, under mild loss.
pub fn run_mixed(n: usize, trials: u64, cap: u64, seed0: u64, threads: usize) -> Table {
    let mut table = Table::new(
        format!(
            "E17 / mixed deployment: k of {n} nodes share one nc_memory plane \
             (loss 0.05, recovery armed; event cap {cap})"
        ),
        &[
            "plane size",
            "decide rate",
            "agreement rate",
            "mean max round",
            "mean deliveries",
            "mean retries",
        ],
    );
    for (i, &k) in [0usize, 2, n].iter().enumerate() {
        let k = k.min(n);
        let mut cfg = base_cfg(n, cap).with_faults(NetFaultSpec::none().with_loss(0.05));
        if k > 0 {
            cfg = cfg.with_shared_plane((0..k as u32).collect());
        }
        let salt = 200 + i as u64;
        let (stats, _) = sweep_cell(&cfg, trials, seed0, salt, threads);
        table.push(vec![
            k.to_string(),
            f3(stats.decide_rate()),
            f3(stats.agree_rate()),
            f2(stats.rounds.mean()),
            f2(stats.deliveries.mean()),
            f2(stats.retries.mean()),
        ]);
    }
    table
}
