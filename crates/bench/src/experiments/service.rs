//! E19 — consensus as a service: the `nc_service` sharded multi-shot
//! instance manager over the deterministic request stream.
//!
//! Every prior scenario decides *one* instance per trial; this one
//! drives the service front door: `instances` single-shot instances
//! (the load generator's deterministic proposal vectors) proposed into
//! a sharded table, batched through the pooled per-shard engine
//! handles, and reduced to the canonical commit log. The sweep runs
//! the *same* request stream at shard counts 1, 2, and 4 and reports,
//! per shard count, the decide rate, mean decide round, mean op count,
//! and an FNV-1a fingerprint of the reduced commit log — the sharding
//! invariance is visible in the CSV itself (one identical fingerprint
//! column), and pinned byte-for-byte by the smoke golden.
//!
//! Per-instance seeds use the REQUIRED
//! `trial_seed(seed, id, salts::SERVICE)` derivation (inside
//! `nc_service`), so the table is a pure function of `(preset, seed)`
//! at every shard count and worker count; no wall-clock quantity is
//! reported (throughput and latency live in `bench_service`).

use nc_service::{loadgen, CommitFact, NcService, ServiceConfig};

use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, f3, Table};

/// Registry entry: E19.
#[derive(Clone, Copy, Debug)]
pub struct ServiceLayer;

impl Scenario for ServiceLayer {
    fn spec(&self) -> Spec {
        Spec {
            id: "E19",
            title: "Consensus as a service: sharded multi-shot instance manager",
            artifact: "multi-instance deployment of the §3 protocol (nc_service)",
            outputs: &["service.csv"],
            trials_label: "instances",
            size_label: "procs",
            full: Preset {
                trials: 200,
                size: 8,
                cap: 0,
            },
            smoke: Preset {
                trials: 16,
                size: 5,
                cap: 0,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        vec![run_shard_sweep(p.trials, p.size, seed, threads)]
    }
}

/// 64-bit FNV-1a over the reduced commit log's bytes — a stable,
/// dependency-free fingerprint that makes shard-count invariance a
/// visible CSV column instead of only a test assertion.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs the same `instances`-instance request stream at shard counts
/// 1, 2, and 4, one table row per shard count.
pub fn run_shard_sweep(instances: u64, procs: usize, seed: u64, threads: usize) -> Table {
    let mut table = Table::new(
        format!(
            "E19 / consensus as a service: {instances} instances of {procs}-process \
             lean-consensus through the sharded front door (reduced-log fingerprint \
             must not move across shard counts)"
        ),
        &[
            "shards",
            "instances",
            "decide rate",
            "mean round",
            "mean ops",
            "reduced log fnv64",
        ],
    );
    for shards in [1usize, 2, 4] {
        let cfg = ServiceConfig::builder()
            .procs(procs)
            .shards(shards)
            .seed(seed)
            .build()
            .expect("static E19 config is valid");
        let mut svc = NcService::new(cfg);
        for id in 0..instances {
            for value in loadgen::proposals_for(id, procs) {
                svc.propose(id, value).expect("fresh instance ids");
            }
        }
        let facts: Vec<CommitFact> = svc.run_ready(threads);
        assert_eq!(facts.len() as u64, instances, "every instance must close");
        let decided = facts.iter().filter(|f| f.value.is_some()).count();
        let mean_round =
            facts.iter().map(|f| f.round as f64).sum::<f64>() / instances.max(1) as f64;
        let mean_ops = facts.iter().map(|f| f.ops as f64).sum::<f64>() / instances.max(1) as f64;
        table.push(vec![
            shards.to_string(),
            instances.to_string(),
            f3(decided as f64 / instances.max(1) as f64),
            f2(mean_round),
            f2(mean_ops),
            format!("{:016x}", fnv64(svc.reduced_log().as_bytes())),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn every_row_carries_the_same_fingerprint() {
        let table = run_shard_sweep(8, 3, 5, 1);
        let prints: Vec<&String> = table.rows.iter().map(|r| r.last().unwrap()).collect();
        assert_eq!(table.rows.len(), 3);
        assert!(
            prints.iter().all(|p| *p == prints[0]),
            "reduced log moved across shard counts: {prints:?}"
        );
    }
}
