//! E9 — the §4 ablation: "superfluous" operations are load-bearing.
//!
//! The paper warns that eliminating the redundant write / final read
//! helps **slow** processes (who should fall behind) while fast
//! processes save nothing — keeping the race tight and delaying
//! termination. The table compares the paper's algorithm with the
//! skip-ops variant on identical seeds: rounds and simulated *time* to
//! first decision, and total operations to full completion.
//!
//! Measured nuance (see EXPERIMENTS.md): in **rounds** — the metric of
//! the paper's own Figure 1 — the prediction holds for the continuous
//! distributions at scale (skip is slower for exponential/uniform at
//! n ≥ 64), but *reverses* for the two-point distribution, where
//! near-lockstep phase alignment is what sustains the tie and the skip
//! variant's 2-op rounds inject exactly the phase jitter that breaks it.
//! In aggregate time/ops the laggards' savings dominate at these n, so
//! the skip variant looks cheaper globally; the paper's warning is about
//! the deciding processes' round count, which is what the verdict column
//! reports.

use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm};
use nc_sched::{Noise, TimingModel};
use nc_theory::OnlineStats;

use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, Table};

/// Registry entry: E9.
#[derive(Clone, Copy, Debug)]
pub struct SkipAblation;

impl Scenario for SkipAblation {
    fn spec(&self) -> Spec {
        Spec {
            id: "E9",
            title: "Skip-ops ablation: \"superfluous\" operations are load-bearing",
            artifact: "§4 discussion",
            outputs: &["ablation_skip.csv"],
            trials_label: "trials",
            size_label: "-",
            full: Preset {
                trials: 100,
                size: 0,
                cap: 0,
            },
            smoke: Preset {
                trials: 2,
                size: 0,
                cap: 0,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        vec![run(p.trials, seed, threads)]
    }
}

/// Runs the skip-ops ablation.
pub fn run(trials: u64, seed0: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "E9 / §4 ablation: paper ops vs skip-ops variant (same seeds)",
        &[
            "n",
            "distribution",
            "lean mean round",
            "skip mean round",
            "lean mean time",
            "skip mean time",
            "lean mean total ops",
            "skip mean total ops",
            "skip slower (rounds)?",
        ],
    );
    for &n in &[16usize, 64, 256] {
        for (name, noise) in [
            ("exponential(1)", Noise::Exponential { mean: 1.0 }),
            ("uniform [0,2]", Noise::Uniform { lo: 0.0, hi: 2.0 }),
            (
                "2/3,4/3",
                Noise::TwoPoint {
                    lo: 2.0 / 3.0,
                    hi: 4.0 / 3.0,
                },
            ),
        ] {
            let timing = TimingModel::figure1(noise);
            let inputs = setup::half_and_half(n);
            let mut lean_rounds = OnlineStats::new();
            let mut skip_rounds = OnlineStats::new();
            let mut lean_time = OnlineStats::new();
            let mut skip_time = OnlineStats::new();
            let mut lean_ops = OnlineStats::new();
            let mut skip_ops = OnlineStats::new();
            // Two sweeps over identical per-trial seeds (paired runs):
            // trial t of each sweep uses seed0 + t * 23.
            let measure = |alg: Algorithm| {
                Sim::new(alg)
                    .inputs(inputs.clone())
                    .timing(timing.clone())
                    .trials(trials)
                    .seed0(seed0)
                    .seed_stride(23)
                    .threads(threads)
                    .map(|r| {
                        (
                            r.first_decision_round.unwrap() as f64,
                            r.first_decision_time.unwrap(),
                            r.total_ops as f64,
                        )
                    })
            };
            let lean_runs = measure(Algorithm::Lean);
            let skip_runs = measure(Algorithm::Skipping);
            for (a, b) in lean_runs.into_iter().zip(skip_runs) {
                lean_rounds.push(a.0);
                lean_time.push(a.1);
                lean_ops.push(a.2);
                skip_rounds.push(b.0);
                skip_time.push(b.1);
                skip_ops.push(b.2);
            }
            table.push(vec![
                n.to_string(),
                name.into(),
                f2(lean_rounds.mean()),
                f2(skip_rounds.mean()),
                f2(lean_time.mean()),
                f2(skip_time.mean()),
                f2(lean_ops.mean()),
                f2(skip_ops.mean()),
                (skip_rounds.mean() > lean_rounds.mean()).to_string(),
            ]);
        }
    }
    table
}
