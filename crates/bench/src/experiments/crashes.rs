//! E11 — §10: adaptive (non-random) crash failures.
//!
//! The leader-killer adversary crashes whichever process pulls a full
//! round ahead of every other live process, up to a budget of `f`
//! crashes. (A 2-round lead is already a decision, so the adversary must
//! strike at lead 1 — the "kill each emerging leader" strategy behind
//! the paper's O(f log n) restart argument.)
//!
//! Measured result: mean rounds stay **flat** in `f` — the budget is
//! spent, but termination is unaffected. This is direct evidence for the
//! paper's §10 conjecture that the true bound is `O(log n)` even under
//! adaptive crashes: termination comes from mass adoption of the leading
//! team's value ("agreement among leaders", §9), not from one
//! irreplaceable frontrunner, so killing frontrunners buys the adversary
//! nothing.

use nc_engine::noisy::run_noisy_with_scratch;
use nc_engine::{setup, Algorithm, Limits};
use nc_sched::adversary::LeaderKiller;
use nc_sched::{Noise, TimingModel};
use nc_theory::OnlineStats;

use crate::par_trials_scratch;
use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, Table};

/// Registry entry: E11.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveCrashes;

impl Scenario for AdaptiveCrashes {
    fn spec(&self) -> Spec {
        Spec {
            id: "E11",
            title: "Adaptive leader-killer crashes: flat rounds vs crash budget",
            artifact: "§10 (adaptive crashes)",
            outputs: &["crash_failures.csv"],
            trials_label: "trials",
            size_label: "n",
            full: Preset {
                trials: 100,
                size: 16,
                cap: 0,
            },
            smoke: Preset {
                trials: 3,
                size: 8,
                cap: 0,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64) -> Vec<Table> {
        vec![run(p.size, p.trials, seed)]
    }
}

/// Runs the adaptive-crash experiment.
pub fn run(n: usize, trials: u64, seed0: u64) -> Table {
    let mut table = Table::new(
        format!("E11 / §10: adaptive leader-killer, n = {n} (flat rounds support the O(log n) conjecture)"),
        &[
            "crash budget f",
            "mean first round",
            "ci95",
            "rounds / (f+1)",
            "mean crashes used",
        ],
    );
    let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 });
    for f in [0usize, 1, 2, 4, 8, 12] {
        let mut rounds = OnlineStats::new();
        let mut used = OnlineStats::new();
        let results = par_trials_scratch(trials, |scratch, t| {
            let seed = seed0 + t * 53;
            let inputs = setup::half_and_half(n);
            let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
            let mut killer = LeaderKiller::new(f, 1);
            let report = run_noisy_with_scratch(
                scratch,
                &mut inst,
                &timing,
                seed,
                Limits::run_to_completion(),
                Some(&mut killer),
                None,
            );
            report.check_safety(&inputs).expect("safety");
            (report.first_decision_round, killer.crashed().len() as f64)
        });
        for (round, crashed) in results {
            if let Some(r) = round {
                rounds.push(r as f64);
            }
            used.push(crashed);
        }
        table.push(vec![
            f.to_string(),
            f2(rounds.mean()),
            f2(rounds.ci95()),
            f2(rounds.mean() / (f as f64 + 1.0)),
            f2(used.mean()),
        ]);
    }
    table
}
