//! E11 — §10: adaptive (non-random) crash failures.
//!
//! The leader-killer adversary crashes whichever process pulls a full
//! round ahead of every other live process, up to a budget of `f`
//! crashes. (A 2-round lead is already a decision, so the adversary must
//! strike at lead 1 — the "kill each emerging leader" strategy behind
//! the paper's O(f log n) restart argument.)
//!
//! Measured result: mean rounds stay **flat** in `f` — the budget is
//! spent, but termination is unaffected. This is direct evidence for the
//! paper's §10 conjecture that the true bound is `O(log n)` even under
//! adaptive crashes: termination comes from mass adoption of the leading
//! team's value ("agreement among leaders", §9), not from one
//! irreplaceable frontrunner, so killing frontrunners buys the adversary
//! nothing.

use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm};
use nc_sched::adversary::LeaderKiller;
use nc_sched::{Noise, TimingModel};
use nc_theory::OnlineStats;

use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, Table};

/// Registry entry: E11.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveCrashes;

impl Scenario for AdaptiveCrashes {
    fn spec(&self) -> Spec {
        Spec {
            id: "E11",
            title: "Adaptive leader-killer crashes: flat rounds vs crash budget",
            artifact: "§10 (adaptive crashes)",
            outputs: &["crash_failures.csv"],
            trials_label: "trials",
            size_label: "n",
            full: Preset {
                trials: 100,
                size: 16,
                cap: 0,
            },
            smoke: Preset {
                trials: 3,
                size: 8,
                cap: 0,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        vec![run(p.size, p.trials, seed, threads)]
    }
}

/// Runs the adaptive-crash experiment.
pub fn run(n: usize, trials: u64, seed0: u64, threads: usize) -> Table {
    let mut table = Table::new(
        format!("E11 / §10: adaptive leader-killer, n = {n} (flat rounds support the O(log n) conjecture)"),
        &[
            "crash budget f",
            "mean first round",
            "ci95",
            "rounds / (f+1)",
            "mean crashes used",
        ],
    );
    let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 });
    for f in [0usize, 1, 2, 4, 8, 12] {
        let mut rounds = OnlineStats::new();
        let mut used = OnlineStats::new();
        let inputs = setup::half_and_half(n);
        let results = Sim::new(Algorithm::Lean)
            .inputs(inputs.clone())
            .timing(timing.clone())
            .crash_adversary(move |_| LeaderKiller::new(f, 1))
            .trials(trials)
            .seed0(seed0)
            .seed_stride(53)
            .threads(threads)
            .map(|report| {
                report.check_safety(&inputs).expect("safety");
                // The killer only ever crashes live processes and there
                // are no random failures here, so the halted flags count
                // exactly the crashes the adversary spent.
                let crashes = report.halted.iter().filter(|&&h| h).count();
                (report.first_decision_round, crashes as f64)
            });
        for (round, crashed) in results {
            if let Some(r) = round {
                rounds.push(r as f64);
            }
            used.push(crashed);
        }
        table.push(vec![
            f.to_string(),
            f2(rounds.mean()),
            f2(rounds.ci95()),
            f2(rounds.mean() / (f as f64 + 1.0)),
            f2(used.mean()),
        ]);
    }
    table
}
