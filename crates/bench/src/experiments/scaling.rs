//! E3 — Theorem 12: expected Θ(log n) rounds, with and without random
//! halting failures, plus the exponential tail.
//!
//! For each failure rate `h` the table reports mean first-decision round
//! across a log-spaced `n` sweep and the least-squares fit
//! `a + b·log₂ n`; the tail table reports `Pr[round > k]` at `n = 256`,
//! which Corollary 11 predicts decays geometrically in `k / O(log n)`.

use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm, Limits};
use nc_sched::{FailureModel, Noise, TimingModel};
use nc_theory::{fit_log2, OnlineStats};

use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, f3, fstable, Table};

/// Registry entry: E3.
#[derive(Clone, Copy, Debug)]
pub struct TerminationScaling;

impl Scenario for TerminationScaling {
    fn spec(&self) -> Spec {
        Spec {
            id: "E3",
            title: "Θ(log n) termination, halting-failure sweep, exponential tail",
            artifact: "Theorem 12",
            outputs: &["termination_scaling.csv", "termination_tail.csv"],
            trials_label: "trials",
            size_label: "-",
            full: Preset {
                trials: 100,
                size: 0,
                cap: 0,
            },
            smoke: Preset {
                trials: 2,
                size: 0,
                cap: 0,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        let (sweep, tail) = run(p.trials, seed, threads);
        vec![sweep, tail]
    }
}

/// Mean first-decision round; failed (all-halted) runs are skipped.
fn sweep_point(h: f64, n: usize, trials: u64, seed0: u64, threads: usize) -> (OnlineStats, u64) {
    let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 })
        .with_failures(FailureModel::Random { per_op: h });
    let rounds = Sim::new(Algorithm::Lean)
        .inputs(setup::half_and_half(n))
        .timing(timing)
        .limits(Limits::first_decision())
        .trials(trials)
        .seed0(seed0)
        .seed_stride(131)
        .threads(threads)
        .map(|report| report.first_decision_round);
    let mut stats = OnlineStats::new();
    let mut extinct = 0;
    for r in rounds {
        match r {
            Some(r) => stats.push(r as f64),
            None => extinct += 1,
        }
    }
    (stats, extinct)
}

/// Runs the termination-scaling experiment. Returns the sweep table and
/// the tail table.
pub fn run(trials: u64, seed0: u64, threads: usize) -> (Table, Table) {
    let ns = [2usize, 8, 32, 128, 512];
    let hs = [0.0, 0.001, 0.01];

    let mut sweep = Table::new(
        "E3 / Theorem 12: mean first-decision round vs n (lean, exp(1) noise)",
        &[
            "h per op",
            "n",
            "trials",
            "mean round",
            "ci95",
            "extinct runs",
        ],
    );

    for &h in &hs {
        let mut points = Vec::new();
        for &n in &ns {
            let (stats, extinct) = sweep_point(h, n, trials, seed0, threads);
            sweep.push(vec![
                fstable(h, 3),
                n.to_string(),
                trials.to_string(),
                f2(stats.mean()),
                f2(stats.ci95()),
                extinct.to_string(),
            ]);
            if stats.count() > 0 {
                points.push((n as f64, stats.mean()));
            }
        }
        if points.len() >= 2 {
            let fit = fit_log2(&points);
            sweep.push(vec![
                fstable(h, 3),
                "fit".into(),
                String::new(),
                format!("{} + {}*log2(n)", f3(fit.intercept), f3(fit.slope)),
                format!("R^2 = {}", f3(fit.r2)),
                String::new(),
            ]);
        }
    }

    // Tail at n = 256, h = 0.
    let n = 256;
    let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 });
    let rounds: Vec<f64> = Sim::new(Algorithm::Lean)
        .inputs(setup::half_and_half(n))
        .timing(timing)
        .limits(Limits::first_decision())
        .trials(trials * 4)
        .seed0(seed0 + 777)
        .threads(threads)
        .map(|report| report.first_decision_round.unwrap() as f64);
    let mut tail = Table::new(
        format!(
            "E3 tail: Pr[first-decision round > k] at n = {n} ({} trials)",
            rounds.len()
        ),
        &["k", "Pr[round > k]"],
    );
    let mean = rounds.iter().sum::<f64>() / rounds.len() as f64;
    for mult in 1..=5 {
        let k = (mean * mult as f64).round();
        let p = rounds.iter().filter(|&&r| r > k).count() as f64 / rounds.len() as f64;
        tail.push(vec![format!("{} ({mult}x mean)", fstable(k, 0)), f3(p)]);
    }

    (sweep, tail)
}
