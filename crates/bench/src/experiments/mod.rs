//! One module per experiment in DESIGN.md's per-experiment index; each
//! module also registers itself in [`crate::scenario::REGISTRY`], which
//! is what the `repro` binary and the golden/determinism tests drive.
//!
//! | Module | Exp | Paper artifact |
//! |--------|-----|----------------|
//! | [`fig1`] | E1 | Figure 1 (§9) |
//! | [`validity`] | E2 | Lemma 3 cost |
//! | [`scaling`] | E3 | Theorem 12 Θ(log n) with failures |
//! | [`lower`] | E4 | Theorem 13 Ω(log n) |
//! | [`hybrid`] | E5 | Theorem 14 quantum bound |
//! | [`bounded`] | E6 | Theorem 15 bounded space |
//! | [`unfair`] | E7 | Theorem 1 unfairness |
//! | [`race`] | E8 | Theorem 10 / Corollary 11 |
//! | [`ablation`] | E9 | §4 skip-ops paradox |
//! | [`baseline`] | E10 | randomized baselines |
//! | [`crashes`] | E11 | §10 adaptive crashes |
//! | [`msgpass`] | E13 | §10 message-passing extension (ABD) |
//! | [`statistical`] | E14 | §10 statistical adversary |
//! | [`value_faults`] | E15 | related-work value faults (ε-noise, stuck registers) |
//! | [`adversary_search`] | E16 | Theorem 12 / §10: searched adaptive adversaries |
//! | [`partitions`] | E17 | §10 extension: network faults, partitions, gossip recovery |
//! | [`service`] | E19 | multi-instance deployment: the `nc_service` sharded instance manager |
//! | [`durability`] | E20 | durable service plane: commit journals, eviction, crash recovery |

pub mod ablation;
pub mod adversary_search;
pub mod baseline;
pub mod bounded;
pub mod crashes;
pub mod durability;
pub mod fig1;
pub mod hybrid;
pub mod lower;
pub mod msgpass;
pub mod partitions;
pub mod race;
pub mod scaling;
pub mod service;
pub mod statistical;
pub mod unfair;
pub mod validity;
pub mod value_faults;
