//! E14 — the §10 statistical adversary.
//!
//! The model's fixed per-operation bound `Δ_ij ≤ M` exists only to give
//! the noise a scale; §10 conjectures that the weaker *statistical*
//! constraint `Σ_{j≤r} Δ_ij ≤ r·M` suffices for O(log n) termination.
//! The save-and-spend policy ([`nc_sched::DelayPolicy::SaveAndSpend`])
//! honours the statistical budget while violating any useful
//! per-operation bound — delays of `0, …, 0, period·M` — and this
//! experiment measures lean-consensus against it across burst periods.

use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm, Limits};
use nc_sched::{DelayPolicy, Noise, TimingModel};
use nc_theory::{fit_log2, OnlineStats};

use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, f3, Table};

/// Registry entry: E14.
#[derive(Clone, Copy, Debug)]
pub struct StatisticalAdversary;

impl Scenario for StatisticalAdversary {
    fn spec(&self) -> Spec {
        Spec {
            id: "E14",
            title: "Save-and-spend statistical adversary: burst-period sweep",
            artifact: "§10 (statistical adversary)",
            outputs: &["statistical_adversary.csv"],
            trials_label: "trials",
            size_label: "-",
            full: Preset {
                trials: 60,
                size: 0,
                cap: 0,
            },
            smoke: Preset {
                trials: 2,
                size: 0,
                cap: 0,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        vec![run(p.trials, seed, threads)]
    }
}

/// Runs the statistical-adversary experiment.
pub fn run(trials: u64, seed0: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "E14 / §10: save-and-spend statistical adversary (budget m = 1 per op)",
        &["burst period", "n", "mean first round", "ci95"],
    );
    for &period in &[1u64, 8, 64, 512] {
        let delay = DelayPolicy::SaveAndSpend { m: 1.0, period };
        let mut points = Vec::new();
        for &n in &[4usize, 16, 64, 256] {
            let timing =
                TimingModel::figure1(Noise::Exponential { mean: 1.0 }).with_delay(delay.clone());
            let mut rounds = OnlineStats::new();
            for r in Sim::new(Algorithm::Lean)
                .inputs(setup::half_and_half(n))
                .timing(timing)
                .limits(Limits::first_decision())
                .trials(trials)
                .seed0(seed0)
                .seed_stride(61)
                .threads(threads)
                .map(|report| {
                    report
                        .first_decision_round
                        .expect("statistical adversary must not prevent termination")
                        as f64
                })
            {
                rounds.push(r);
            }
            points.push((n as f64, rounds.mean()));
            table.push(vec![
                period.to_string(),
                n.to_string(),
                f2(rounds.mean()),
                f2(rounds.ci95()),
            ]);
        }
        let fit = fit_log2(&points);
        table.push(vec![
            period.to_string(),
            "fit".into(),
            format!("{} + {}*log2(n)", f3(fit.intercept), f3(fit.slope)),
            format!("R^2 = {}", f3(fit.r2)),
        ]);
    }
    table
}
