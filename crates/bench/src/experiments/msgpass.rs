//! E13 — the §10 message-passing extension.
//!
//! lean-consensus runs unchanged over ABD-emulated registers; each
//! message suffers i.i.d. noisy delay. The table reports, per delay
//! distribution and n: mean first... strictly, mean *max* lean round,
//! messages delivered, and agreement — and quantifies the quorum
//! noise-attenuation effect (quorum waits average ~2n message delays per
//! emulated operation, concentrating per-op durations, so the race needs
//! more rounds than raw shared memory with the same distribution).

use nc_memory::Bit;
use nc_sched::Noise;
use nc_theory::OnlineStats;

use nc_msg::{run_message_passing, MsgConfig, Outcome};

use crate::par_trials;
use crate::scenario::{Preset, Scenario, Spec};
use crate::table::{f2, Table};

/// Registry entry: E13.
#[derive(Clone, Copy, Debug)]
pub struct MessagePassing;

impl Scenario for MessagePassing {
    fn spec(&self) -> Spec {
        Spec {
            id: "E13",
            title: "Lean-consensus over ABD registers on a noisy network",
            artifact: "§10 (message-passing extension)",
            outputs: &["message_passing.csv", "message_passing_crashes.csv"],
            trials_label: "trials",
            size_label: "max-n",
            // A single n = 9 two-point trial delivers ~170k messages;
            // the smoke tier stops at n = 5 to keep debug-build golden
            // runs in the milliseconds.
            full: Preset {
                trials: 15,
                size: 9,
                cap: 0,
            },
            smoke: Preset {
                trials: 2,
                size: 5,
                cap: 0,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        let (sweep, crashes) = run(p.trials, p.size, seed, threads);
        vec![sweep, crashes]
    }
}

/// Runs the message-passing experiment over cluster sizes up to
/// `max_n` across `threads` workers. Returns the sweep table and the
/// crash-tolerance table.
pub fn run(trials: u64, max_n: usize, seed0: u64, threads: usize) -> (Table, Table) {
    let mut sweep = Table::new(
        "E13 / §10: lean-consensus over ABD registers on a noisy network",
        &[
            "delay distribution",
            "n",
            "agreement",
            "mean max round",
            "mean deliveries",
            "mean sim time",
        ],
    );
    for (name, delay) in [
        ("exponential(1)", Noise::Exponential { mean: 1.0 }),
        ("uniform [0,2]", Noise::Uniform { lo: 0.0, hi: 2.0 }),
        (
            "2/3,4/3",
            Noise::TwoPoint {
                lo: 2.0 / 3.0,
                hi: 4.0 / 3.0,
            },
        ),
    ] {
        for &n in [3usize, 5, 9].iter().filter(|&&n| n <= max_n) {
            let mut rounds = OnlineStats::new();
            let mut deliveries = OnlineStats::new();
            let mut times = OnlineStats::new();
            let mut agree = true;
            let reports = par_trials(threads, trials, |t| {
                let seed = seed0 + t * 29;
                let cfg = MsgConfig::new(n, delay);
                run_message_passing(&cfg, seed)
            });
            for (t, report) in reports.into_iter().enumerate() {
                let seed = seed0 + t as u64 * 29;
                assert_eq!(
                    report.outcome,
                    Outcome::Decided,
                    "{name} n={n} seed {seed} did not complete"
                );
                let decisions: Vec<Bit> = report.decisions.iter().map(|d| d.unwrap()).collect();
                agree &= decisions.iter().all(|&d| d == decisions[0]);
                rounds.push(*report.rounds.iter().max().unwrap() as f64);
                deliveries.push(report.deliveries as f64);
                times.push(report.sim_time);
            }
            sweep.push(vec![
                name.into(),
                n.to_string(),
                agree.to_string(),
                f2(rounds.mean()),
                f2(deliveries.mean()),
                f2(times.mean()),
            ]);
        }
    }

    let mut crash_table = Table::new(
        "E13 crash tolerance: minority crashes mid-run (ABD quorums carry on)",
        &["n", "crashed", "live agreement", "mean max round"],
    );
    for &(n, crash_count) in [(3usize, 1usize), (5, 2), (9, 4)]
        .iter()
        .filter(|&&(n, _)| n <= max_n)
    {
        let mut rounds = OnlineStats::new();
        let mut agree = true;
        for t in 0..trials {
            let seed = seed0 + 31_000 + t * 7;
            let crashes: Vec<(u32, u64)> = (0..crash_count as u32)
                .map(|i| (i, 40 + 60 * i as u64))
                .collect();
            let cfg = MsgConfig::new(n, Noise::Exponential { mean: 1.0 }).with_crashes(crashes);
            let report = run_message_passing(&cfg, seed);
            assert_eq!(report.outcome, Outcome::Decided, "n={n} seed {seed}");
            let live: Vec<Bit> = report.decisions[crash_count..]
                .iter()
                .map(|d| d.expect("live node must decide"))
                .collect();
            agree &= live.iter().all(|&d| d == live[0]);
            rounds.push(*report.rounds.iter().max().unwrap() as f64);
        }
        crash_table.push(vec![
            n.to_string(),
            crash_count.to_string(),
            agree.to_string(),
            f2(rounds.mean()),
        ]);
    }
    (sweep, crash_table)
}
