//! E2 — Lemma 3: with unanimous inputs, every process decides the input
//! after **exactly 8 operations**, under any schedule and any n.
//!
//! The table reports, per (algorithm, n), the min/max per-process
//! operation count over noisy runs and a round-robin adversarial run —
//! for the paper's algorithm both must be exactly 8.

use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm};
use nc_memory::Bit;
use nc_sched::adversary::RoundRobin;
use nc_sched::{Noise, TimingModel};

use crate::scenario::{Preset, Scenario, Spec};
use crate::table::Table;

/// Registry entry: E2.
#[derive(Clone, Copy, Debug)]
pub struct ValidityCost;

impl Scenario for ValidityCost {
    fn spec(&self) -> Spec {
        Spec {
            id: "E2",
            title: "Validity cost: exactly 8 ops with unanimous inputs",
            artifact: "Lemma 3",
            outputs: &["validity_cost.csv"],
            trials_label: "trials",
            size_label: "-",
            full: Preset {
                trials: 20,
                size: 0,
                cap: 0,
            },
            smoke: Preset {
                trials: 2,
                size: 0,
                cap: 0,
            },
        }
    }

    fn run(&self, p: Preset, seed: u64, threads: usize) -> Vec<Table> {
        vec![run(p.trials, seed, threads)]
    }
}

/// Runs the validity-cost experiment.
pub fn run(trials: u64, seed0: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "E2 / Lemma 3: per-process ops with unanimous inputs (expect exactly 8 for lean)",
        &[
            "algorithm",
            "n",
            "schedule",
            "min ops",
            "max ops",
            "all decided input",
        ],
    );
    let algorithms = [Algorithm::Lean, Algorithm::Skipping, Algorithm::Randomized];
    for alg in algorithms {
        for n in [1usize, 4, 16, 64] {
            for input in Bit::BOTH {
                let inputs = setup::unanimous(n, input);
                // Noisy schedule.
                let mut min_ops = u64::MAX;
                let mut max_ops = 0u64;
                let mut valid = true;
                let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 });
                let results = Sim::new(alg)
                    .inputs(inputs.clone())
                    .timing(timing)
                    .trials(trials)
                    .seed0(seed0)
                    .threads(threads)
                    .map(|report| {
                        report.check_safety(&inputs).expect("safety");
                        (
                            *report.ops.iter().min().unwrap(),
                            *report.ops.iter().max().unwrap(),
                            report.decisions.iter().all(|&d| d == Some(input)),
                        )
                    });
                for (lo, hi, ok) in results {
                    min_ops = min_ops.min(lo);
                    max_ops = max_ops.max(hi);
                    valid &= ok;
                }
                table.push(vec![
                    alg.label().into(),
                    n.to_string(),
                    format!("noisy exp(1) input {input}"),
                    min_ops.to_string(),
                    max_ops.to_string(),
                    valid.to_string(),
                ]);
            }
            // Adversarial round-robin (one run; deterministic).
            let inputs = setup::unanimous(n, Bit::One);
            let report = Sim::new(alg)
                .inputs(inputs.clone())
                .adversary(|_| RoundRobin::new())
                .build()
                .run(seed0);
            report.check_safety(&inputs).expect("safety");
            table.push(vec![
                alg.label().into(),
                n.to_string(),
                "round-robin".into(),
                report.ops.iter().min().unwrap().to_string(),
                report.ops.iter().max().unwrap().to_string(),
                report
                    .decisions
                    .iter()
                    .all(|&d| d == Some(Bit::One))
                    .to_string(),
            ]);
        }
    }
    table
}
