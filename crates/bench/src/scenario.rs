//! The scenario registry: one descriptor + runner per experiment.
//!
//! Every experiment module registers itself here by implementing
//! [`Scenario`]: a static [`Spec`] (id, title, paper artifact, output
//! CSV names, full-scale and smoke presets) plus a `run` method that
//! interprets a [`Preset`] and returns one [`Table`] per declared
//! output. The single `repro` binary drives the whole suite off
//! [`REGISTRY`] — adding an experiment is one module + one registry
//! line, not a new binary.
//!
//! Two preset tiers per scenario:
//!
//! * **full** — the CI-sized defaults the old `repro_all` binary used
//!   (the deleted standalone binaries defaulted ~2× higher; multiply
//!   with `--scale` for paper-grade runs);
//! * **smoke** — a tiny fixed-seed configuration (seconds for the whole
//!   suite, even in debug builds) whose CSVs are committed under
//!   `crates/bench/tests/golden/` and byte-compared by
//!   `tests/golden_repro.rs` on every test run. Smoke output is the
//!   regression fingerprint of the entire experiment pipeline: engine,
//!   scheduler, statistics, and formatting.

use std::path::PathBuf;

use crate::experiments::{
    ablation, adversary_search, baseline, bounded, crashes, durability, fig1, hybrid, lower,
    msgpass, partitions, race, scaling, service, statistical, unfair, validity, value_faults,
};
use crate::table::Table;

/// The seed every smoke run (and therefore every golden CSV) is pinned
/// to. Changing it invalidates all goldens at once — regenerate with
/// `cargo run --release -p nc-bench --bin repro -- --smoke --out-dir
/// crates/bench/tests/golden`.
pub const SMOKE_SEED: u64 = 1;

/// A scale-free parameter preset for one scenario run.
///
/// The three knobs cover every experiment's tunable surface; each
/// scenario's [`Spec`] labels what its knobs mean (`trials_label`,
/// `size_label`), and knobs a scenario ignores are zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Preset {
    /// Trial count (per point, where applicable). `--scale` multiplies
    /// this and only this — sizes and caps are structural.
    pub trials: u64,
    /// Primary size knob: `n`, `max-n`, or `max-quantum`, per
    /// [`Spec::size_label`]. `0` = not applicable.
    pub size: usize,
    /// Operation-budget cap for the scenario legs that run adversarial
    /// schedules to exhaustion (E5's preemptor, E10's lockstep). `0` =
    /// not applicable.
    pub cap: u64,
}

impl Preset {
    /// Applies the `--scale` multiplier to the trial count.
    pub fn scaled(self, scale: u64) -> Self {
        Preset {
            trials: self.trials.saturating_mul(scale.max(1)),
            ..self
        }
    }
}

/// The static descriptor of a registered scenario.
#[derive(Clone, Copy, Debug)]
pub struct Spec {
    /// Experiment id from DESIGN.md's index (`"E1"`, …, `"E14"`).
    pub id: &'static str,
    /// One-line scenario title (the tables carry their own long titles).
    pub title: &'static str,
    /// The paper artifact this scenario reproduces.
    pub artifact: &'static str,
    /// Output CSV file names (relative to `--out-dir`), in the order
    /// [`Scenario::run`] returns its tables.
    pub outputs: &'static [&'static str],
    /// What [`Preset::trials`] counts for this scenario.
    pub trials_label: &'static str,
    /// What [`Preset::size`] means for this scenario (`"-"` = unused).
    pub size_label: &'static str,
    /// The CI-sized full-scale preset (`--scale` multiplies trials).
    pub full: Preset,
    /// The tiny fixed-seed preset pinned by the golden CSVs.
    pub smoke: Preset,
}

impl Spec {
    /// Renders a preset using this scenario's knob labels, e.g.
    /// `trials=1000, max-n=100000`. Knobs the scenario doesn't use
    /// (zero, per the [`Preset`] contract) are omitted.
    pub fn describe(&self, p: Preset) -> String {
        let mut parts = Vec::new();
        if p.trials != 0 {
            parts.push(format!("{}={}", self.trials_label, p.trials));
        }
        if self.size_label != "-" {
            parts.push(format!("{}={}", self.size_label, p.size));
        }
        if p.cap != 0 {
            parts.push(format!("cap={}", p.cap));
        }
        parts.join(", ")
    }
}

/// Out-of-band execution context the `repro` driver passes to every
/// scenario: scratch-state knobs (where on-disk journals live) that
/// must **never** change a scenario's CSV bytes — the golden harness
/// runs with a default context and would catch any leak.
#[derive(Clone, Debug, Default)]
pub struct RunCtx {
    /// Scratch root for scenarios that exercise the on-disk commit
    /// journal (E20); `None` means each run makes (and removes) its
    /// own temp directory. Set by `repro --journal-dir DIR`.
    pub journal_dir: Option<PathBuf>,
}

/// A registered experiment: a static descriptor plus a preset-driven
/// runner returning one table per declared output file.
pub trait Scenario: Sync {
    /// The scenario's static descriptor.
    fn spec(&self) -> Spec;
    /// Runs the scenario at `preset` with the given base seed, fanning
    /// its sweeps across `threads` workers (0 = all cores; parallelism
    /// is per-sweep state, so concurrent scenario runs with different
    /// worker counts cannot interfere). Must return exactly
    /// `spec().outputs.len()` tables, in output order, and must be a
    /// pure function of `(preset, seed)` — bit-identical at every
    /// worker count (pinned by the determinism tests).
    fn run(&self, preset: Preset, seed: u64, threads: usize) -> Vec<Table>;
    /// [`Scenario::run`] with an execution context. Scenarios with
    /// out-of-band scratch state (E20's journal directory) override
    /// this; everyone else ignores the context. Same purity contract:
    /// the tables are a function of `(preset, seed)` only, never of
    /// `ctx`.
    fn run_ctx(&self, preset: Preset, seed: u64, threads: usize, ctx: &RunCtx) -> Vec<Table> {
        let _ = ctx;
        self.run(preset, seed, threads)
    }
}

/// Every registered scenario, in experiment-id order. (E12 was folded
/// into E8's failure variant in DESIGN.md, and E18 — rumor-spreading
/// consensus — is still open in ROADMAP.md, hence 18 entries for
/// E1–E20.)
pub const REGISTRY: &[&dyn Scenario] = &[
    &fig1::Fig1,
    &validity::ValidityCost,
    &scaling::TerminationScaling,
    &lower::LowerBound,
    &hybrid::HybridQuantum,
    &bounded::BoundedSpace,
    &unfair::Unfairness,
    &race::RenewalRace,
    &ablation::SkipAblation,
    &baseline::Baselines,
    &crashes::AdaptiveCrashes,
    &msgpass::MessagePassing,
    &statistical::StatisticalAdversary,
    &value_faults::ValueFaults,
    &adversary_search::AdversarySearch,
    &partitions::Partitions,
    &service::ServiceLayer,
    &durability::Durability,
];

/// Looks up a scenario by id (case-insensitive).
pub fn by_id(id: &str) -> Option<&'static dyn Scenario> {
    REGISTRY
        .iter()
        .copied()
        .find(|s| s.spec().id.eq_ignore_ascii_case(id))
}

/// Renders the registry as the complete `docs/experiments.md` document
/// (`repro --list --markdown` prints this; the committed file is its
/// verbatim output).
pub fn catalogue_markdown() -> String {
    let mut out = String::new();
    out.push_str("# Experiment catalogue\n\n");
    out.push_str(
        "<!-- Generated by `cargo run --release -p nc-bench --bin repro -- --list --markdown`.\n     Regenerate instead of editing by hand. -->\n\n",
    );
    out.push_str(
        "Every experiment is a [`Scenario`] registered in\n\
         `crates/bench/src/scenario.rs`; the single `repro` binary drives them\n\
         all (`--list`, `--only E1,E7`, `--smoke`, `--scale`, `--out-dir`) and\n\
         writes a byte-reproducible `manifest.json` (plus a wall-clock\n\
         `timings.json` sidecar) next to the CSVs. Smoke presets are pinned by\n\
         golden CSVs under `crates/bench/tests/golden/`.\n\n",
    );
    out.push_str(
        "| ID | Title | Paper artifact | Outputs | Full preset | Smoke preset |\n\
         |----|-------|----------------|---------|-------------|--------------|\n",
    );
    for sc in REGISTRY {
        let s = sc.spec();
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            s.id,
            s.title,
            s.artifact,
            s.outputs.join(", "),
            s.describe(s.full),
            s.describe(s.smoke),
        ));
    }
    out.push_str(
        "\nFull presets are CI-sized; `--scale 10` on the full tier is\n\
         paper-grade. Smoke runs use seed 1 and complete in seconds; their\n\
         CSVs are the committed goldens, regenerated with\n\
         `cargo run --release -p nc-bench --bin repro -- --smoke --out-dir crates/bench/tests/golden`.\n",
    );
    out.push_str(
        "\n## Per-trial seed derivation\n\n\
         **New scenarios must derive per-trial seeds with\n\
         `nc_sched::rng::trial_seed(seed0, t, salt)`** (one distinct salt per\n\
         sweep within the scenario). It mixes `(seed0, t, salt)` through a\n\
         SplitMix64 finalizer, so nearby trial indices and base seeds produce\n\
         unrelated runs and two sweeps can never collide on a trial stream —\n\
         affine schemes like `seed0 + t` do collide across sweeps.\n\n\
         The 13 pre-existing experiments keep their historical derivations\n\
         (`seed0 + t * <stride>`, or E1's xor-multiply) **verbatim and\n\
         frozen**: the committed golden CSVs and every recorded result pin\n\
         those exact per-trial seeds, and re-deriving them would invalidate\n\
         all goldens for zero scientific gain.\n",
    );
    out
}

/// One completed scenario run, as recorded in `manifest.json`.
///
/// Deliberately holds **no wall-clock quantity**: the manifest must be
/// a pure function of `(flags, seed, registry)` so two identical
/// `repro` runs produce byte-identical manifests (pinned by the golden
/// harness). Timings go to the `timings.json` sidecar instead
/// ([`timings_json`]).
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Scenario id (`"E1"`).
    pub id: String,
    /// Scenario title.
    pub title: String,
    /// Base seed the run used.
    pub seed: u64,
    /// Knob labels + values, as rendered by [`Spec::describe`].
    pub params: String,
    /// Raw preset the run used (post `--scale`).
    pub preset: Preset,
    /// `(file name, data-row count)` per output CSV, in output order.
    pub outputs: Vec<(String, usize)>,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the run manifest: suite-level settings plus one entry per
/// completed scenario (seed, params, output files with row counts).
/// Stable key order, two-space indent, trailing newline.
///
/// Byte-reproducible by construction: every field is a pure function
/// of `(flags, seed, registry)` — wall-clock timings and execution
/// details that cannot move a result (worker-thread count) live in the
/// [`timings_json`] sidecar, never here.
pub fn manifest_json(smoke: bool, scale: u64, seed: u64, records: &[RunRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"generated_by\": \"repro\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"id\": {},\n", json_str(&r.id)));
        out.push_str(&format!("      \"title\": {},\n", json_str(&r.title)));
        out.push_str(&format!("      \"seed\": {},\n", r.seed));
        out.push_str(&format!("      \"params\": {},\n", json_str(&r.params)));
        out.push_str(&format!(
            "      \"preset\": {{\"trials\": {}, \"size\": {}, \"cap\": {}}},\n",
            r.preset.trials, r.preset.size, r.preset.cap
        ));
        out.push_str("      \"outputs\": [\n");
        for (j, (file, rows)) in r.outputs.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"file\": {}, \"rows\": {}}}{}\n",
                json_str(file),
                rows,
                if j + 1 < r.outputs.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Renders the `timings.json` sidecar: per-scenario wall-clock
/// milliseconds, the suite total, and the worker-thread count the run
/// used. This file is *measurement* — it varies run to run by design,
/// which is exactly why it is kept out of the byte-reproducible
/// manifest (and out of the golden directory).
pub fn timings_json(threads: usize, timings: &[(String, u128)], suite_ms: u128) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"generated_by\": \"repro\",\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"suite_wall_ms\": {suite_ms},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, (id, wall_ms)) in timings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": {}, \"wall_ms\": {}}}{}\n",
            json_str(id),
            wall_ms,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let ids: Vec<&str> = REGISTRY.iter().map(|s| s.spec().id).collect();
        let unique: BTreeSet<&str> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len(), "duplicate scenario ids");
        let nums: Vec<u32> = ids.iter().map(|i| i[1..].parse().unwrap()).collect();
        let mut sorted = nums.clone();
        sorted.sort_unstable();
        assert_eq!(nums, sorted, "registry must stay in E-number order");
        assert_eq!(ids.len(), 18);
    }

    #[test]
    fn registry_outputs_are_unique() {
        let mut seen = BTreeSet::new();
        for sc in REGISTRY {
            for out in sc.spec().outputs {
                assert!(seen.insert(*out), "output {out} declared twice");
            }
        }
        assert_eq!(seen.len(), 25, "25 CSV artifacts across the suite");
    }

    #[test]
    fn by_id_is_case_insensitive() {
        assert_eq!(by_id("e7").unwrap().spec().id, "E7");
        assert_eq!(by_id("E14").unwrap().spec().id, "E14");
        assert!(by_id("E12").is_none(), "E12 is folded into E8");
    }

    #[test]
    fn describe_uses_knob_labels() {
        let spec = by_id("E1").unwrap().spec();
        let desc = spec.describe(spec.full);
        assert!(desc.contains("trials="), "{desc}");
        assert!(desc.contains("max-n="), "{desc}");
    }

    #[test]
    fn scaled_multiplies_trials_only() {
        let p = Preset {
            trials: 10,
            size: 7,
            cap: 3,
        };
        assert_eq!(
            p.scaled(5),
            Preset {
                trials: 50,
                size: 7,
                cap: 3
            }
        );
        // scale 0 is treated as 1, not as "run nothing".
        assert_eq!(p.scaled(0), p);
    }

    #[test]
    fn manifest_is_valid_shape_and_escapes_strings() {
        let rec = RunRecord {
            id: "E1".into(),
            title: "quote \" and \\ in title".into(),
            seed: 1,
            params: "trials=5".into(),
            preset: Preset {
                trials: 5,
                size: 12,
                cap: 0,
            },
            outputs: vec![("fig1.csv".into(), 5)],
        };
        let json = manifest_json(true, 1, 1, std::slice::from_ref(&rec));
        assert!(json.contains("\"generated_by\": \"repro\""));
        assert!(json.contains("\\\" and \\\\"));
        assert!(json.contains("{\"file\": \"fig1.csv\", \"rows\": 5}"));
        assert!(json.ends_with("}\n"));
        // Byte-reproducibility: no wall-clock or worker-count field, and
        // two renders of the same records are identical.
        assert!(!json.contains("wall_ms"), "manifest must carry no timing");
        assert!(!json.contains("threads"), "manifest must carry no threads");
        assert_eq!(json, manifest_json(true, 1, 1, &[rec]));
        // Rough balance check in lieu of a JSON parser.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn timings_sidecar_is_valid_shape() {
        let json = timings_json(2, &[("E1".into(), 12), ("E19".into(), 7)], 19);
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"suite_wall_ms\": 19"));
        assert!(json.contains("{\"id\": \"E1\", \"wall_ms\": 12},"));
        assert!(json.contains("{\"id\": \"E19\", \"wall_ms\": 7}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn markdown_catalogue_has_one_row_per_scenario() {
        let md = catalogue_markdown();
        for sc in REGISTRY {
            assert!(md.contains(&format!("| {} |", sc.spec().id)));
        }
        assert!(md.starts_with("# Experiment catalogue"));
    }
}
