//! Machine-readable message-passing benchmark: measures the `nc_msg`
//! discrete-event simulator's throughput and the cost of the recovery
//! plane under message loss, then writes `BENCH_msg.json` (alongside
//! `BENCH_engine.json`) so future PRs can track the trajectory.
//!
//! Usage:
//! `cargo run --release -p nc-bench --bin bench_msg [-- --trials 200 --n 5 --out BENCH_msg.json]`
//!
//! Workload: one cell per loss rate {0%, 1%, 5%} — `--trials` full
//! lean-over-ABD runs (exponential(1) delays, half-and-half inputs,
//! retry + gossip armed whenever loss > 0). Each cell reports delivered
//! messages per wall-clock second (the simulator's event throughput),
//! mean deliveries and retries per run, and the delivery overhead
//! relative to the loss-free cell (how much extra traffic the faults +
//! recovery plane cost end to end). Best-of-R wall time per cell.

use std::io::Write as _;
use std::time::Instant;

use nc_bench::arg;
use nc_msg::{run_message_passing, MsgConfig, NetFaultSpec, Outcome};
use nc_sched::Noise;

const REPEATS: usize = 3;

struct Cell {
    loss: f64,
    deliveries_per_sec: f64,
    mean_deliveries: f64,
    mean_retries: f64,
    mean_sim_time: f64,
}

fn bench_cell(n: usize, trials: u64, loss: f64) -> Cell {
    let cfg = if loss > 0.0 {
        MsgConfig::new(n, Noise::Exponential { mean: 1.0 })
            .with_faults(NetFaultSpec::none().with_loss(loss))
    } else {
        MsgConfig::new(n, Noise::Exponential { mean: 1.0 })
    };
    let mut best = f64::INFINITY;
    let mut deliveries = 0u64;
    let mut retries = 0u64;
    let mut sim_time = 0.0f64;
    for _ in 0..REPEATS {
        deliveries = 0;
        retries = 0;
        sim_time = 0.0;
        let start = Instant::now();
        for seed in 0..trials {
            let report = run_message_passing(&cfg, seed);
            assert_eq!(
                report.outcome,
                Outcome::Decided,
                "loss {loss} seed {seed} did not decide"
            );
            deliveries += report.deliveries;
            retries += report.retries;
            sim_time += report.sim_time;
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    Cell {
        loss,
        deliveries_per_sec: deliveries as f64 / best,
        mean_deliveries: deliveries as f64 / trials as f64,
        mean_retries: retries as f64 / trials as f64,
        mean_sim_time: sim_time / trials as f64,
    }
}

fn main() {
    let trials: u64 = arg("trials", 200);
    let n: usize = arg("n", 5);
    let out: String = arg("out", "BENCH_msg.json".to_string());

    let cells: Vec<Cell> = [0.0, 0.01, 0.05]
        .iter()
        .map(|&loss| bench_cell(n, trials, loss))
        .collect();
    let base_deliveries = cells[0].mean_deliveries;

    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        let overhead = c.mean_deliveries / base_deliveries;
        eprintln!(
            "loss {:.0}%: {:.3e} deliveries/s, {:.0} deliveries/run ({overhead:.2}x loss-free), {:.1} retries/run, sim time {:.1}",
            c.loss * 100.0,
            c.deliveries_per_sec,
            c.mean_deliveries,
            c.mean_retries,
            c.mean_sim_time,
        );
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"loss\": {:.2}, \"deliveries_per_sec\": {:.1}, \"mean_deliveries_per_run\": {:.1}, \"delivery_overhead_vs_lossfree\": {overhead:.3}, \"mean_retries_per_run\": {:.2}, \"mean_sim_time\": {:.2}}}",
            c.loss, c.deliveries_per_sec, c.mean_deliveries, c.mean_retries, c.mean_sim_time
        ));
    }

    let json = format!(
        "{{\n  \"workload\": \"lean-over-ABD full runs: n = {n}, exponential(1) delays, half-and-half inputs, run to all-decided\",\n  \"recovery\": \"retry timers + gossip armed whenever loss > 0 (RecoverySpec defaults)\",\n  \"trials\": {trials},\n  \"cells\": [{rows}\n  ],\n  \"notes\": \"Numbers from `cargo run --release -p nc-bench --bin bench_msg`; best-of-{REPEATS} wall time per cell. deliveries_per_sec is simulator event throughput (delivered messages / wall second); delivery_overhead_vs_lossfree is end-to-end delivered traffic relative to the loss-free cell (values < 1 mean the dropped messages outnumber the retry rebroadcasts that replace them); retries count phase rebroadcasts fired by the timeout chain.\"\n}}\n"
    );
    let mut file = std::fs::File::create(&out).expect("create output file");
    file.write_all(json.as_bytes()).expect("write json");
    println!("wrote {out}");
}
