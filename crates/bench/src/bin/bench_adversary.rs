//! Machine-readable adversary-plane benchmark: runs the `nc_adversary`
//! strategy-search tournament at each protocol size and writes
//! `BENCH_adversary.json` (alongside `BENCH_engine.json`,
//! `BENCH_msg.json`, and `BENCH_service.json`) so future PRs can track
//! the empirically worst searched schedule.
//!
//! Usage:
//! `cargo run --release -p nc-bench --bin bench_adversary [-- --max-n 64 --trials 40 --cap 200000 --out BENCH_adversary.json]`
//!
//! Workload: per n ∈ {4, 8, …, max-n}, a beam search over
//! [`StrategyFamily::standard`] (grid pass at `--trials` per point,
//! then the top `--beam` points re-scored at `--refine ×` the trials).
//! Each cell records the oblivious baseline's mean forced
//! first-decision round next to the strongest adaptive strategy's, and
//! the run asserts adaptive ≥ oblivious at every size — the whole point
//! of searching. A closing `fit_log2` over the worst-adaptive means
//! checks the growth stays Θ(log n)-shaped (Theorem 12 holds against
//! every adversary, searched ones included).

use std::io::Write as _;

use nc_adversary::{StrategyFamily, Tournament};
use nc_bench::arg;
use nc_sched::rng::{salts, trial_seed};
use nc_theory::fit_log2;

struct Cell {
    n: usize,
    oblivious_mean: f64,
    worst_label: String,
    worst_mean: f64,
    worst_round: usize,
    worst_trials: u64,
    capped: u64,
}

fn main() {
    let max_n: usize = arg("max-n", 64);
    let trials: u64 = arg("trials", 40);
    let cap: u64 = arg("cap", 200_000);
    let beam: usize = arg("beam", 4);
    let refine: u64 = arg("refine", 3);
    let seed: u64 = arg("seed", 0);
    let out: String = arg("out", "BENCH_adversary.json".to_string());

    let family = StrategyFamily::standard();
    let mut cells: Vec<Cell> = Vec::new();
    let mut n = 4usize;
    let mut idx = 0u64;
    while n <= max_n {
        let result = Tournament::new(n)
            .trials(trials)
            .seed0(trial_seed(seed, idx, salts::STRATEGY))
            .max_ops(cap)
            .threads(0)
            .beam(&family, beam, refine);
        let oblivious = result
            .oblivious()
            .expect("standard family has the baseline");
        let worst = result
            .worst_adaptive()
            .expect("standard family has adaptive points");
        assert!(
            worst.mean_round >= oblivious.mean_round,
            "n = {n}: searched adaptive {} ({}) scored below oblivious ({})",
            worst.label,
            worst.mean_round,
            oblivious.mean_round
        );
        eprintln!(
            "n {:3}: oblivious {:.2} rounds, worst adaptive {} at {:.2} rounds (max {}, {} trials, {} capped)",
            n, oblivious.mean_round, worst.label, worst.mean_round, worst.worst_round,
            worst.trials, worst.capped,
        );
        cells.push(Cell {
            n,
            oblivious_mean: oblivious.mean_round,
            worst_label: worst.label.clone(),
            worst_mean: worst.mean_round,
            worst_round: worst.worst_round,
            worst_trials: worst.trials,
            capped: worst.capped,
        });
        n *= 2;
        idx += 1;
    }

    let points: Vec<(f64, f64)> = cells.iter().map(|c| (c.n as f64, c.worst_mean)).collect();
    let fit = fit_log2(&points);
    eprintln!(
        "worst-adaptive fit: {:.3} + {:.3}*log2(n), R^2 = {:.3}",
        fit.intercept, fit.slope, fit.r2
    );

    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"n\": {}, \"oblivious_mean_round\": {:.3}, \"worst_strategy\": \"{}\", \"worst_mean_round\": {:.3}, \"worst_max_round\": {}, \"worst_trials\": {}, \"capped_trials\": {}, \"adaptive_over_oblivious\": {:.3}}}",
            c.n,
            c.oblivious_mean,
            c.worst_label,
            c.worst_mean,
            c.worst_round,
            c.worst_trials,
            c.capped,
            c.worst_mean / c.oblivious_mean
        ));
    }

    let json = format!(
        "{{\n  \"workload\": \"nc_adversary beam search over the standard strategy family ({} points): lean-consensus on split inputs, {trials} trials/point grid pass, top {beam} re-scored at {refine}x, op cap {cap}\",\n  \"max_n\": {max_n},\n  \"trials\": {trials},\n  \"cells\": [{rows}\n  ],\n  \"worst_adaptive_fit\": {{\"intercept\": {:.3}, \"slope_per_log2_n\": {:.3}, \"r2\": {:.3}}},\n  \"notes\": \"Numbers from `cargo run --release -p nc-bench --bin bench_adversary`; each cell's mean is the forced first-decision round (capped runs score the round frontier reached — a lower bound). adaptive_over_oblivious >= 1 at every n is asserted by the binary: the searched adaptive family always forces at least the oblivious baseline. The log2 fit over worst-adaptive means documents that even the empirically worst searched schedule keeps Theorem 12's O(log n) growth. Results are byte-identical at every worker-thread count (see crates/adversary/tests/determinism.rs); E16's golden CSV pins the smoke-scale sweep.\"\n}}\n",
        family.points().len(),
        fit.intercept,
        fit.slope,
        fit.r2
    );
    let mut file = std::fs::File::create(&out).expect("create output file");
    file.write_all(json.as_bytes()).expect("write json");
    println!("wrote {out}");
}
