//! E7: Theorem 1's pathological unfairness.
//!
//! Usage: `cargo run --release -p nc-bench --bin unfairness [-- --ops 20000 --seed 1]`

use nc_bench::{arg, experiments::unfair};

fn main() {
    nc_bench::configure_threads_from_args();
    let ops: usize = arg("ops", 20_000);
    let seed: u64 = arg("seed", 1);
    let table = unfair::run(ops, seed);
    println!("{table}");
    table
        .write_csv("results/unfairness.csv")
        .expect("write csv");
    println!("wrote results/unfairness.csv");
}
