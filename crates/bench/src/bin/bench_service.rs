//! Machine-readable service-layer benchmark: measures the `nc_service`
//! sharded instance manager's sustained throughput and decide latency,
//! then writes `BENCH_service.json` (alongside `BENCH_engine.json` and
//! `BENCH_msg.json`) so future PRs can track the trajectory.
//!
//! Usage:
//! `cargo run --release -p nc-bench --bin bench_service [-- --instances 2000 --procs 5 --out BENCH_service.json]`
//!
//! Workload: one cell per shard count {1, 2, 4}, each driving the
//! deterministic load-generator request stream (`--instances`
//! single-shot instances of `--procs`-process lean-consensus,
//! exponential(1) delays) through the front door. Per cell:
//!
//! * **saturation** — every instance arrives at t = 0; sustained
//!   decided-instances/sec is the shard fan-out's throughput (best-of-R
//!   wall time, worker threads = shard count);
//! * **open loop** — instances arrive on a virtual clock at 50% of the
//!   cell's measured saturation throughput; p99 decide latency
//!   (scheduled arrival → decided, so backlog is charged to the
//!   service) is the tail the front door shows a non-saturating
//!   client.

use std::io::Write as _;

use nc_bench::arg;
use nc_service::{drive_open_loop, LoadSpec, NcService, ServiceConfig};

const REPEATS: usize = 3;

struct Cell {
    shards: usize,
    decided_per_sec: f64,
    open_loop_rate: f64,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
    max_latency_ms: f64,
}

fn service(procs: usize, shards: usize, seed: u64) -> NcService {
    NcService::new(ServiceConfig::new(procs, shards).with_seed(seed))
}

fn bench_cell(instances: u64, procs: usize, shards: usize, seed: u64) -> Cell {
    // Saturation: best-of-R sustained throughput with one worker per
    // shard (a fresh service per repeat — instances are single-shot).
    let mut best = 0.0f64;
    for _ in 0..REPEATS {
        let mut svc = service(procs, shards, seed);
        let report = drive_open_loop(&mut svc, &LoadSpec::saturating(instances), shards);
        assert_eq!(report.decided, instances);
        best = best.max(report.decided_per_sec);
    }

    // Open loop at half the measured saturation rate: the offered load
    // a healthy deployment would run at, where p99 measures scheduling
    // tail rather than pure backlog drain.
    let rate = best * 0.5;
    let mut svc = service(procs, shards, seed);
    let open = drive_open_loop(&mut svc, &LoadSpec::open_loop(instances, rate), shards);
    assert_eq!(open.decided, instances);

    Cell {
        shards,
        decided_per_sec: best,
        open_loop_rate: rate,
        p50_latency_ms: open.p50_latency * 1e3,
        p99_latency_ms: open.p99_latency * 1e3,
        max_latency_ms: open.max_latency * 1e3,
    }
}

fn main() {
    let instances: u64 = arg("instances", 2000);
    let procs: usize = arg("procs", 5);
    let seed: u64 = arg("seed", 0);
    let out: String = arg("out", "BENCH_service.json".to_string());

    let cells: Vec<Cell> = [1usize, 2, 4]
        .iter()
        .map(|&shards| bench_cell(instances, procs, shards, seed))
        .collect();
    let base = cells[0].decided_per_sec;

    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        let speedup = c.decided_per_sec / base;
        eprintln!(
            "shards {}: {:.0} decided/s ({speedup:.2}x single-shard), open loop @ {:.0}/s: p50 {:.2} ms, p99 {:.2} ms",
            c.shards, c.decided_per_sec, c.open_loop_rate, c.p50_latency_ms, c.p99_latency_ms,
        );
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"shards\": {}, \"decided_per_sec\": {:.1}, \"speedup_vs_one_shard\": {speedup:.3}, \"open_loop_rate_per_sec\": {:.1}, \"p50_decide_latency_ms\": {:.3}, \"p99_decide_latency_ms\": {:.3}, \"max_decide_latency_ms\": {:.3}}}",
            c.shards,
            c.decided_per_sec,
            c.open_loop_rate,
            c.p50_latency_ms,
            c.p99_latency_ms,
            c.max_latency_ms
        ));
    }

    let json = format!(
        "{{\n  \"workload\": \"nc_service front door: {instances} single-shot instances of {procs}-process lean-consensus (exponential(1) delays, deterministic loadgen proposal stream), one worker thread per shard\",\n  \"instances\": {instances},\n  \"procs\": {procs},\n  \"cells\": [{rows}\n  ],\n  \"notes\": \"Numbers from `cargo run --release -p nc-bench --bin bench_service`; decided_per_sec is saturation throughput (all instances arrive at t = 0, best-of-{REPEATS}); latency cells replay the same stream open-loop at 50% of that cell's measured saturation rate, with decide latency measured from each instance's scheduled arrival to the end of the batch that decided it (backlog charged to the service). The commit logs these runs produce are byte-identical across shard counts and worker threads; see E19 and crates/service/tests/determinism.rs.\"\n}}\n"
    );
    let mut file = std::fs::File::create(&out).expect("create output file");
    file.write_all(json.as_bytes()).expect("write json");
    println!("wrote {out}");
}
