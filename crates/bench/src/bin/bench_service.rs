//! Machine-readable service-layer benchmark: measures the `nc_service`
//! sharded instance manager's sustained throughput and decide latency,
//! with and without the durable commit journal, then writes
//! `BENCH_service.json` (alongside `BENCH_engine.json` and
//! `BENCH_msg.json`) so future PRs can track the trajectory.
//!
//! Usage:
//! `cargo run --release -p nc-bench --bin bench_service [-- --instances 2000 --procs 5 --out BENCH_service.json]`
//!
//! Workload: one cell per shard count {1, 2, 4}, each driving the
//! deterministic load-generator request stream (`--instances`
//! single-shot instances of `--procs`-process lean-consensus,
//! exponential(1) delays) through the front door. Per cell:
//!
//! * **saturation** — every instance arrives at t = 0; sustained
//!   decided-instances/sec is the shard fan-out's throughput (best-of-R
//!   wall time, worker threads = shard count), measured journal-off
//!   and journal-on (per-shard segmented on-disk commit journals);
//! * **open loop** — instances arrive on a virtual clock at 50% of the
//!   cell's measured journal-off saturation throughput; p99 decide
//!   latency (scheduled arrival → decided, so backlog is charged to
//!   the service) is the tail the front door shows a non-saturating
//!   client.

use std::io::Write as _;
use std::path::PathBuf;

use nc_bench::arg;
use nc_service::{drive_open_loop, LoadSpec, NcService, Retention, ServiceConfig};

const REPEATS: usize = 3;

struct Cell {
    shards: usize,
    decided_per_sec: f64,
    decided_per_sec_journal: f64,
    journal_overhead: f64,
    open_loop_rate: f64,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
    max_latency_ms: f64,
}

/// A scratch directory under the OS temp dir, removed on drop, so
/// journal-on repeats always start from an empty journal.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("bench-service-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create journal scratch dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn service(procs: usize, shards: usize, seed: u64, journal_dir: Option<&PathBuf>) -> NcService {
    let mut builder = ServiceConfig::builder()
        .procs(procs)
        .shards(shards)
        .seed(seed)
        // Journal-on runs also exercise the retention plane the way a
        // durable deployment would: decided instances are evicted from
        // the resident table once their facts are on disk.
        .retention(if journal_dir.is_some() {
            Retention::DecidedCap(256)
        } else {
            Retention::KeepAll
        });
    if let Some(dir) = journal_dir {
        builder = builder.journal_dir(dir);
    }
    NcService::new(builder.build().expect("static bench config is valid"))
}

/// Best-of-R saturation throughput for one (journal on/off) variant.
fn saturation(instances: u64, procs: usize, shards: usize, seed: u64, journal: bool) -> f64 {
    let mut best = 0.0f64;
    for rep in 0..REPEATS {
        let scratch = journal.then(|| TempDir::new(&format!("s{shards}-r{rep}")));
        let mut svc = service(procs, shards, seed, scratch.as_ref().map(|t| &t.0));
        let report = drive_open_loop(&mut svc, &LoadSpec::saturating(instances), shards);
        assert_eq!(report.decided, instances);
        best = best.max(report.decided_per_sec);
    }
    best
}

fn bench_cell(instances: u64, procs: usize, shards: usize, seed: u64) -> Cell {
    // Saturation, journal off and on (a fresh service per repeat —
    // instances are single-shot; a fresh journal dir per journal-on
    // repeat so replay cost never pollutes the append measurement).
    let best = saturation(instances, procs, shards, seed, false);
    let best_journal = saturation(instances, procs, shards, seed, true);

    // Open loop at half the measured journal-off saturation rate: the
    // offered load a healthy deployment would run at, where p99
    // measures scheduling tail rather than pure backlog drain.
    let rate = best * 0.5;
    let mut svc = service(procs, shards, seed, None);
    let open = drive_open_loop(&mut svc, &LoadSpec::open_loop(instances, rate), shards);
    assert_eq!(open.decided, instances);

    Cell {
        shards,
        decided_per_sec: best,
        decided_per_sec_journal: best_journal,
        journal_overhead: best / best_journal,
        open_loop_rate: rate,
        p50_latency_ms: open.p50_latency * 1e3,
        p99_latency_ms: open.p99_latency * 1e3,
        max_latency_ms: open.max_latency * 1e3,
    }
}

fn main() {
    let instances: u64 = arg("instances", 2000);
    let procs: usize = arg("procs", 5);
    let seed: u64 = arg("seed", 0);
    let out: String = arg("out", "BENCH_service.json".to_string());

    let cells: Vec<Cell> = [1usize, 2, 4]
        .iter()
        .map(|&shards| bench_cell(instances, procs, shards, seed))
        .collect();
    let base = cells[0].decided_per_sec;

    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        let speedup = c.decided_per_sec / base;
        eprintln!(
            "shards {}: {:.0} decided/s journal-off, {:.0} decided/s journal-on ({:.2}x overhead), open loop @ {:.0}/s: p50 {:.2} ms, p99 {:.2} ms",
            c.shards, c.decided_per_sec, c.decided_per_sec_journal, c.journal_overhead, c.open_loop_rate, c.p50_latency_ms, c.p99_latency_ms,
        );
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"shards\": {}, \"decided_per_sec\": {:.1}, \"decided_per_sec_journal_on\": {:.1}, \"journal_overhead_x\": {:.3}, \"speedup_vs_one_shard\": {speedup:.3}, \"open_loop_rate_per_sec\": {:.1}, \"p50_decide_latency_ms\": {:.3}, \"p99_decide_latency_ms\": {:.3}, \"max_decide_latency_ms\": {:.3}}}",
            c.shards,
            c.decided_per_sec,
            c.decided_per_sec_journal,
            c.journal_overhead,
            c.open_loop_rate,
            c.p50_latency_ms,
            c.p99_latency_ms,
            c.max_latency_ms
        ));
    }

    let json = format!(
        "{{\n  \"workload\": \"nc_service front door: {instances} single-shot instances of {procs}-process lean-consensus (exponential(1) delays, deterministic loadgen proposal stream), one worker thread per shard\",\n  \"instances\": {instances},\n  \"procs\": {procs},\n  \"cells\": [{rows}\n  ],\n  \"notes\": \"Numbers from `cargo run --release -p nc-bench --bin bench_service`; decided_per_sec is saturation throughput (all instances arrive at t = 0, best-of-{REPEATS}); decided_per_sec_journal_on repeats the same stream with per-shard segmented on-disk commit journals plus DecidedCap(256) eviction (fresh journal dir per repeat), and journal_overhead_x is off/on; latency cells replay the stream open-loop at 50% of that cell's journal-off saturation rate, with decide latency measured from each instance's scheduled arrival to the end of the batch that decided it (backlog charged to the service). The commit logs these runs produce are byte-identical across shard counts, worker threads, and kill-and-reopen; see E19/E20 and crates/service/tests/persistence.rs.\"\n}}\n"
    );
    let mut file = std::fs::File::create(&out).expect("create output file");
    file.write_all(json.as_bytes()).expect("write json");
    println!("wrote {out}");
}
