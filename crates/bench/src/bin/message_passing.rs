//! E13: lean-consensus over ABD registers on a noisy network (§10).
//!
//! Usage: `cargo run --release -p nc-bench --bin message_passing [-- --trials 30 --seed 1]`

use nc_bench::{arg, experiments::msgpass};

fn main() {
    nc_bench::configure_threads_from_args();
    let trials: u64 = arg("trials", 30);
    let seed: u64 = arg("seed", 1);
    let (sweep, crashes) = msgpass::run(trials, seed);
    println!("{sweep}");
    println!("{crashes}");
    sweep
        .write_csv("results/message_passing.csv")
        .expect("write csv");
    crashes
        .write_csv("results/message_passing_crashes.csv")
        .expect("write csv");
    println!("wrote results/message_passing.csv, results/message_passing_crashes.csv");
}
