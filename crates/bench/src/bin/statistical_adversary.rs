//! E14: the save-and-spend statistical adversary (§10).
//!
//! Usage: `cargo run --release -p nc-bench --bin statistical_adversary [-- --trials 100 --seed 1]`

use nc_bench::{arg, experiments::statistical};

fn main() {
    nc_bench::configure_threads_from_args();
    let trials: u64 = arg("trials", 100);
    let seed: u64 = arg("seed", 1);
    let table = statistical::run(trials, seed);
    println!("{table}");
    table
        .write_csv("results/statistical_adversary.csv")
        .expect("write csv");
    println!("wrote results/statistical_adversary.csv");
}
