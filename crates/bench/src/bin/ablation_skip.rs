//! E9: the §4 skip-ops ablation.
//!
//! Usage: `cargo run --release -p nc-bench --bin ablation_skip [-- --trials 200 --seed 1]`

use nc_bench::{arg, experiments::ablation};

fn main() {
    nc_bench::configure_threads_from_args();
    let trials: u64 = arg("trials", 200);
    let seed: u64 = arg("seed", 1);
    let table = ablation::run(trials, seed);
    println!("{table}");
    table
        .write_csv("results/ablation_skip.csv")
        .expect("write csv");
    println!("wrote results/ablation_skip.csv");
}
