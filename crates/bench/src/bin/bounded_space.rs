//! E6: Theorem 15's bounded-space combined protocol.
//!
//! Usage: `cargo run --release -p nc-bench --bin bounded_space [-- --n 16 --trials 100 --seed 1]`

use nc_bench::{arg, experiments::bounded};

fn main() {
    nc_bench::configure_threads_from_args();
    let n: usize = arg("n", 16);
    let trials: u64 = arg("trials", 100);
    let seed: u64 = arg("seed", 1);
    let table = bounded::run(n, trials, seed);
    println!("{table}");
    table
        .write_csv("results/bounded_space.csv")
        .expect("write csv");
    println!("wrote results/bounded_space.csv");
}
