//! E8: Theorem 10 / Corollary 11's renewal race.
//!
//! Usage: `cargo run --release -p nc-bench --bin renewal_race [-- --trials 400 --seed 1]`

use nc_bench::{arg, experiments::race};

fn main() {
    nc_bench::configure_threads_from_args();
    let trials: u64 = arg("trials", 400);
    let seed: u64 = arg("seed", 1);
    let (sweep, failures) = race::run(trials, seed);
    println!("{sweep}");
    println!("{failures}");
    sweep
        .write_csv("results/renewal_race.csv")
        .expect("write csv");
    failures
        .write_csv("results/renewal_race_failures.csv")
        .expect("write csv");
    println!("wrote results/renewal_race.csv, results/renewal_race_failures.csv");
}
