//! E10: lean vs local-coin vs shared-coin baselines.
//!
//! Usage: `cargo run --release -p nc-bench --bin baseline_randomized [-- --trials 100 --seed 1]`

use nc_bench::{arg, experiments::baseline};

fn main() {
    nc_bench::configure_threads_from_args();
    let trials: u64 = arg("trials", 100);
    let seed: u64 = arg("seed", 1);
    let (noisy, lockstep) = baseline::run(trials, seed);
    println!("{noisy}");
    println!("{lockstep}");
    noisy
        .write_csv("results/baseline_noisy.csv")
        .expect("write csv");
    lockstep
        .write_csv("results/baseline_lockstep.csv")
        .expect("write csv");
    println!("wrote results/baseline_noisy.csv, results/baseline_lockstep.csv");
}
