//! Regenerates every experiment (E1-E11) with CI-sized defaults and
//! writes all CSVs under `results/`.
//!
//! Usage: `cargo run --release -p nc-bench --bin repro_all [-- --scale 1]`
//!
//! `--scale` multiplies trial counts (use 10+ for paper-grade runs;
//! defaults keep the whole suite around a few minutes).

use nc_bench::{arg, experiments::*};

fn main() {
    nc_bench::configure_threads_from_args();
    let scale: u64 = arg("scale", 1);
    let seed: u64 = arg("seed", 1);

    println!(">>> E1 Figure 1 (this is the long one)");
    let t = fig1::run(arg("max-n", 100_000), 1_000 * scale, seed);
    println!("{t}");
    t.write_csv("results/fig1.csv").unwrap();

    println!(">>> E2 validity cost");
    let t = validity::run(20 * scale, seed);
    println!("{t}");
    t.write_csv("results/validity_cost.csv").unwrap();

    println!(">>> E3 termination scaling");
    let (a, b) = scaling::run(100 * scale, seed);
    println!("{a}");
    println!("{b}");
    a.write_csv("results/termination_scaling.csv").unwrap();
    b.write_csv("results/termination_tail.csv").unwrap();

    println!(">>> E4 lower bound");
    let t = lower::run(150 * scale, seed);
    println!("{t}");
    t.write_csv("results/lower_bound.csv").unwrap();

    println!(">>> E5 hybrid quantum");
    let t = hybrid::run(seed);
    println!("{t}");
    t.write_csv("results/hybrid_quantum.csv").unwrap();

    println!(">>> E6 bounded space");
    let t = bounded::run(16, 60 * scale, seed);
    println!("{t}");
    t.write_csv("results/bounded_space.csv").unwrap();

    println!(">>> E7 unfairness");
    let t = unfair::run(10_000 * scale as usize, seed);
    println!("{t}");
    t.write_csv("results/unfairness.csv").unwrap();

    println!(">>> E8 renewal race");
    let (a, b) = race::run(200 * scale, seed);
    println!("{a}");
    println!("{b}");
    a.write_csv("results/renewal_race.csv").unwrap();
    b.write_csv("results/renewal_race_failures.csv").unwrap();

    println!(">>> E9 ablation");
    let t = ablation::run(100 * scale, seed);
    println!("{t}");
    t.write_csv("results/ablation_skip.csv").unwrap();

    println!(">>> E10 baselines");
    let (a, b) = baseline::run(60 * scale, seed);
    println!("{a}");
    println!("{b}");
    a.write_csv("results/baseline_noisy.csv").unwrap();
    b.write_csv("results/baseline_lockstep.csv").unwrap();

    println!(">>> E13 message passing (ABD)");
    let (a, b) = msgpass::run(15 * scale, seed);
    println!("{a}");
    println!("{b}");
    a.write_csv("results/message_passing.csv").unwrap();
    b.write_csv("results/message_passing_crashes.csv").unwrap();

    println!(">>> E14 statistical adversary");
    let t = statistical::run(60 * scale, seed);
    println!("{t}");
    t.write_csv("results/statistical_adversary.csv").unwrap();

    println!(">>> E11 adaptive crashes");
    let t = crashes::run(16, 100 * scale, seed);
    println!("{t}");
    t.write_csv("results/crash_failures.csv").unwrap();

    println!("\nall experiments done; CSVs under results/");
}
