//! E4: Theorem 13's Ω(log n) lower-bound construction.
//!
//! Usage: `cargo run --release -p nc-bench --bin lower_bound [-- --trials 300 --seed 1]`

use nc_bench::{arg, experiments::lower};

fn main() {
    nc_bench::configure_threads_from_args();
    let trials: u64 = arg("trials", 300);
    let seed: u64 = arg("seed", 1);
    let table = lower::run(trials, seed);
    println!("{table}");
    table
        .write_csv("results/lower_bound.csv")
        .expect("write csv");
    println!("wrote results/lower_bound.csv");
}
