//! E5: Theorem 14's 12-op bound under hybrid quantum/priority scheduling.
//!
//! Usage: `cargo run --release -p nc-bench --bin hybrid_quantum [-- --seed 1]`

use nc_bench::{arg, experiments::hybrid};

fn main() {
    nc_bench::configure_threads_from_args();
    let seed: u64 = arg("seed", 1);
    let table = hybrid::run(seed);
    println!("{table}");
    table
        .write_csv("results/hybrid_quantum.csv")
        .expect("write csv");
    println!("wrote results/hybrid_quantum.csv");
}
