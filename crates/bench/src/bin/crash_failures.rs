//! E11: §10's adaptive leader-killer crashes.
//!
//! Usage: `cargo run --release -p nc-bench --bin crash_failures [-- --n 16 --trials 200 --seed 1]`

use nc_bench::{arg, experiments::crashes};

fn main() {
    nc_bench::configure_threads_from_args();
    let n: usize = arg("n", 16);
    let trials: u64 = arg("trials", 200);
    let seed: u64 = arg("seed", 1);
    let table = crashes::run(n, trials, seed);
    println!("{table}");
    table
        .write_csv("results/crash_failures.csv")
        .expect("write csv");
    println!("wrote results/crash_failures.csv");
}
