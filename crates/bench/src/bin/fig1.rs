//! E1: reproduce the paper's Figure 1.
//!
//! Usage: `cargo run --release -p nc-bench --bin fig1 [-- --max-n 100000 --trials 10000 --seed 1]`
//!
//! `--trials` is the per-point cap; actual trials scale down with n to
//! keep the event budget bounded (the paper used a flat 10000).

use nc_bench::{arg, experiments::fig1};

fn main() {
    nc_bench::configure_threads_from_args();
    let max_n: usize = arg("max-n", 100_000);
    let trials: u64 = arg("trials", 10_000);
    let seed: u64 = arg("seed", 1);
    let table = fig1::run(max_n, trials, seed);
    println!("{table}");
    let path = "results/fig1.csv";
    table.write_csv(path).expect("write csv");
    println!("wrote {path}");
}
