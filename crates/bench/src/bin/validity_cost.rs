//! E2: Lemma 3's exact 8-operation validity cost.
//!
//! Usage: `cargo run --release -p nc-bench --bin validity_cost [-- --trials 50 --seed 1]`

use nc_bench::{arg, experiments::validity};

fn main() {
    nc_bench::configure_threads_from_args();
    let trials: u64 = arg("trials", 50);
    let seed: u64 = arg("seed", 1);
    let table = validity::run(trials, seed);
    println!("{table}");
    table
        .write_csv("results/validity_cost.csv")
        .expect("write csv");
    println!("wrote results/validity_cost.csv");
}
