//! Machine-readable engine benchmark: measures the optimized engine
//! against the naive BinaryHeap baseline and the parallel sweep's
//! multi-worker scaling, then writes `BENCH_engine.json` so future PRs
//! can track the performance trajectory.
//!
//! Usage:
//! `cargo run --release -p nc-bench --bin bench_engine [-- --trials 3000 --out BENCH_engine.json]`
//!
//! Workload: the acceptance configuration — Figure 1 point, `n = 100`
//! (plus 1000 and 10000 for the scaling picture), `U(0, 2)` noise,
//! first-decision cutoff, one full trial per iteration (instance setup
//! included, exactly like `fig1::point`). Every number is a best-of-R
//! measurement to shrug off scheduler noise.

use std::io::Write as _;
use std::time::Instant;

use nc_bench::{arg, configure_threads, experiments::fig1};
use nc_engine::baseline::run_noisy_baseline;
use nc_engine::{noisy::run_noisy_scratch, setup, EngineScratch, Limits};
use nc_sched::{Noise, TimingModel};

const REPEATS: usize = 3;

/// Best-of-R wall time for `f`, returning (seconds, events).
fn best_of<F: FnMut() -> u64>(mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..REPEATS {
        let start = Instant::now();
        events = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, events)
}

fn bench_naive(n: usize, trials: u64) -> (f64, u64) {
    let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
    let inputs = setup::half_and_half(n);
    best_of(|| {
        let mut events = 0;
        for seed in 0..trials {
            let mut inst = setup::build(setup::Algorithm::Lean, &inputs, seed);
            events +=
                run_noisy_baseline(&mut inst, &timing, seed, Limits::first_decision()).total_ops;
        }
        events
    })
}

fn bench_optimized(n: usize, trials: u64) -> (f64, u64) {
    let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
    let inputs = setup::half_and_half(n);
    let mut scratch = EngineScratch::new();
    let mut inst = setup::build_lean(&inputs);
    best_of(|| {
        let mut events = 0;
        for seed in 0..trials {
            inst.rebuild(&inputs);
            events += run_noisy_scratch(
                &mut scratch,
                &mut inst,
                &timing,
                seed,
                Limits::first_decision(),
            )
            .total_ops;
        }
        events
    })
}

fn main() {
    let trials: u64 = arg("trials", 2000);
    let out: String = arg("out", "BENCH_engine.json".to_string());
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);

    let mut single = String::new();
    let mut speedup_n100 = 0.0;
    for (i, &n) in [100usize, 1000, 10_000].iter().enumerate() {
        let t = (trials / (n as u64 / 100).max(1)).max(20);
        let (naive_s, naive_ev) = bench_naive(n, t);
        let (opt_s, opt_ev) = bench_optimized(n, t);
        assert_eq!(naive_ev, opt_ev, "engines diverged at n = {n}");
        let naive_eps = naive_ev as f64 / naive_s;
        let opt_eps = opt_ev as f64 / opt_s;
        let speedup = opt_eps / naive_eps;
        if n == 100 {
            speedup_n100 = speedup;
        }
        eprintln!(
            "n={n}: naive {naive_eps:.3e} events/s, optimized {opt_eps:.3e} events/s, speedup {speedup:.2}x"
        );
        if i > 0 {
            single.push(',');
        }
        single.push_str(&format!(
            "\n    {{\"n\": {n}, \"trials\": {t}, \"events_per_trial\": {:.1}, \"naive_events_per_sec\": {naive_eps:.1}, \"optimized_events_per_sec\": {opt_eps:.1}, \"speedup\": {speedup:.3}}}",
            naive_ev as f64 / t as f64
        ));
    }

    // Sweep scaling: fig1::point wall time vs worker count.
    let sweep_trials = trials.max(500);
    let mut scaling = String::new();
    let mut base_time = 0.0;
    let mut threads_list: Vec<usize> = vec![1];
    let mut w = 2;
    while w <= cores {
        threads_list.push(w);
        w *= 2;
    }
    if *threads_list.last().unwrap() != cores {
        threads_list.push(cores);
    }
    for (i, &threads) in threads_list.iter().enumerate() {
        configure_threads(threads);
        let (secs, _) = best_of(|| {
            let p = fig1::point(Noise::Uniform { lo: 0.0, hi: 2.0 }, 100, sweep_trials, 1);
            p.rounds.count()
        });
        if threads == 1 {
            base_time = secs;
        }
        let scale = base_time / secs;
        eprintln!("fig1 point, {threads} worker(s): {secs:.3} s ({scale:.2}x vs 1 worker)");
        if i > 0 {
            scaling.push(',');
        }
        scaling.push_str(&format!(
            "\n    {{\"threads\": {threads}, \"seconds\": {secs:.4}, \"speedup_vs_1\": {scale:.3}}}"
        ));
    }
    configure_threads(0);

    let json = format!(
        "{{\n  \"workload\": \"fig1 point: n procs, U(0,2) noise, first-decision cutoff, full trial incl. instance setup\",\n  \"baseline\": \"naive BinaryHeap driver (nc_engine::baseline, seed implementation)\",\n  \"host_cores\": {cores},\n  \"trials_n100\": {trials},\n  \"single_thread\": [{single}\n  ],\n  \"speedup_n100\": {speedup_n100:.3},\n  \"sweep_scaling_n100\": [{scaling}\n  ],\n  \"notes\": \"Numbers from `cargo run --release -p nc-bench --bin bench_engine`; best-of-{REPEATS} wall time per cell. Multi-worker sweep rows only appear on multi-core hosts. On the 1-core reference VM a queue-free random-order ablation of the execution core alone measured ~46 ns/event vs ~100 for the whole naive driver, bounding any queue-side speedup there below ~2.2x; re-measure on real multi-core hardware.\"\n}}\n"
    );
    let mut file = std::fs::File::create(&out).expect("create output file");
    file.write_all(json.as_bytes()).expect("write json");
    println!("wrote {out}");
}
