//! Machine-readable engine benchmark: measures the optimized engine
//! against the naive BinaryHeap baseline and the parallel sweep's
//! multi-worker scaling, then writes `BENCH_engine.json` so future PRs
//! can track the performance trajectory. Doubles as the CI performance
//! gate: exits nonzero if the optimized engine falls below
//! `--min-speedup` (default 1.6x) over the baseline at n = 100.
//!
//! Usage:
//! `cargo run --release -p nc-bench --bin bench_engine [-- --trials 3000 --min-speedup 1.6 --out BENCH_engine.json]`
//!
//! `--smoke` runs the reduced CI tripwire: n = 100 only, few trials, no
//! scaling/reset sections, output to `BENCH_engine.smoke.json` (so a CI
//! run never clobbers the committed record) — same `--min-speedup` gate.
//!
//! Workload: the acceptance configuration — Figure 1 point, `n = 100`
//! (plus 1000 and 10000 for the scaling picture), `U(0, 2)` noise,
//! first-decision cutoff, one full trial per iteration (instance setup
//! included, exactly like `fig1::point`). Every number is a best-of-R
//! measurement to shrug off scheduler noise.
//!
//! Per n, seven single-thread cells: the naive baseline; the sequential
//! per-event engine (scratch reuse, auto queue, `event_batch(1)`); the
//! same with the queue forced to heap and to tree (the queue ablation
//! backing [`nc_sched::select::TREE_MIN_N`]); the per-event engine on
//! the `DenseRaceMemory` plane (the memory-plane ablation in
//! isolation); the **batched** execution core at a forced micro-batch
//! (`BATCH_ABLATION_K`) on the growable `SimMemory`
//! plane; and the batched core on the dense plane — the fully
//! stride-specialized fast path (`RacePlane` scatter/gather). A
//! `--lanes`-wide pipelined cell (K trials in lockstep — still one
//! thread) rounds out the lane-interleave ablation behind
//! [`nc_bench::PIPELINE_LANES`]. The headline "optimized" number is the
//! best single-thread cell.

use std::io::Write as _;
use std::time::Instant;

use nc_bench::{arg, experiments::fig1, flag, PIPELINE_LANES};
use nc_engine::baseline::run_noisy_baseline;
use nc_engine::sim::Sim;
use nc_engine::{setup, DenseRaceMemory, Limits, QueuePolicy};
use nc_sched::{Noise, TimingModel};

const REPEATS: usize = 3;

/// Micro-batch size for the batched-core ablation cells. The engine's
/// measured default is `DEFAULT_EVENT_BATCH = 1` (batching off — see
/// its docs), so the columns force a representative K to keep the
/// batched core's cost/benefit on the record: a loss at n = 100, a win
/// at n = 10000 (where `QueuePolicy::Auto` also re-biases to the heap,
/// `TREE_MIN_N_BATCHED`).
const BATCH_ABLATION_K: usize = 16;

fn timing() -> TimingModel {
    TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 })
}

/// Best-of-R wall time for `f`, returning (seconds, events).
fn best_of<F: FnMut() -> u64>(mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..REPEATS {
        let start = Instant::now();
        events = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, events)
}

fn bench_naive(n: usize, trials: u64) -> (f64, u64) {
    let timing = timing();
    let inputs = setup::half_and_half(n);
    best_of(|| {
        let mut events = 0;
        for seed in 0..trials {
            let mut inst = setup::build(setup::Algorithm::Lean, &inputs, seed);
            events +=
                run_noisy_baseline(&mut inst, &timing, seed, Limits::first_decision()).total_ops;
        }
        events
    })
}

/// Sequential optimized engine with a chosen queue policy and
/// micro-batch size: one reused `SimRun` handle (scratch +
/// monomorphized lean instance) per cell. `batch = 1` is the legacy
/// per-event loop; `batch > 1` routes through the batched execution
/// core (`step_batch`).
fn bench_sequential(n: usize, trials: u64, policy: QueuePolicy, batch: usize) -> (f64, u64) {
    let mut sim = Sim::new(setup::Algorithm::Lean)
        .inputs(setup::half_and_half(n))
        .timing(timing())
        .limits(Limits::first_decision())
        .queue_policy(policy)
        .event_batch(batch)
        .build();
    best_of(|| {
        let mut events = 0;
        for seed in 0..trials {
            events += sim.run(seed).total_ops;
        }
        events
    })
}

/// The dense memory-plane cells: the sequential engine with the word
/// store swapped to the preallocated `DenseRaceMemory`. At `batch = 1`
/// this isolates the plane alone (the original cache ablation); at the
/// default batch it is the fully specialized fast path — batched core +
/// `RacePlane` direct stride-2 addressing.
fn bench_dense(n: usize, trials: u64, batch: usize) -> (f64, u64) {
    let mut sim = Sim::new(setup::Algorithm::Lean)
        .inputs(setup::half_and_half(n))
        .timing(timing())
        .limits(Limits::first_decision())
        .memory_backend(DenseRaceMemory::new())
        .event_batch(batch)
        .build();
    best_of(|| {
        let mut events = 0;
        for seed in 0..trials {
            events += sim.run(seed).total_ops;
        }
        events
    })
}

/// The `SimMemory::reset` strategy micro-bench behind the shipped
/// fill(0)-in-place semantics: replay a trial-sweep write pattern
/// against a raw word vector reset either by `fill(0)` (keeping `len`)
/// or by the old `clear()` + geometric regrow. Returns
/// `(fill_secs, clear_secs)` for `prefix` words/trial.
fn bench_reset_strategy(prefix: usize, trials: usize) -> (f64, f64) {
    fn write(words: &mut Vec<u64>, idx: usize, val: u64) {
        if idx >= words.len() {
            let new_len = (idx + 1).max(words.len() * 2).max(16);
            words.resize(new_len, 0);
        }
        words[idx] = val;
    }
    let run = |fill_in_place: bool| -> f64 {
        let mut words: Vec<u64> = Vec::new();
        let mut acc = 0u64;
        let (secs, _) = best_of(|| {
            for _ in 0..trials {
                if fill_in_place {
                    words.fill(0);
                } else {
                    words.clear();
                }
                for idx in 0..prefix {
                    write(&mut words, idx, idx as u64);
                    acc = acc.wrapping_add(words[idx / 2]);
                }
            }
            acc
        });
        secs
    };
    (run(true), run(false))
}

/// The full optimized stack: pipelined lanes, auto queue, default
/// (per-event) micro-batch. Run on one worker so the number stays a
/// single-thread measurement.
fn bench_pipelined(n: usize, trials: u64, lanes: usize) -> (f64, u64) {
    best_of(|| {
        Sim::new(setup::Algorithm::Lean)
            .inputs(setup::half_and_half(n))
            .timing(timing())
            .limits(Limits::first_decision())
            .trials(trials)
            .seed0(0)
            .seed_stride(1)
            .threads(1)
            .lanes(lanes)
            .map(|report| report.total_ops)
            .iter()
            .sum()
    })
}

fn main() {
    let smoke = flag("smoke");
    let trials: u64 = arg("trials", if smoke { 300 } else { 2000 });
    // The pipelined column is the lane-interleave ablation; 4 lanes by
    // default regardless of the production PIPELINE_LANES setting, so
    // the K > 1 trade stays measured on every record.
    let lanes: usize = arg("lanes", 4);
    let min_speedup: f64 = arg("min-speedup", 1.6);
    let out: String = arg(
        "out",
        if smoke {
            "BENCH_engine.smoke.json".to_string()
        } else {
            "BENCH_engine.json".to_string()
        },
    );
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);

    // `--probe [--n N]`: the K × queue tuning sweep behind
    // DEFAULT_EVENT_BATCH and the batched TREE_MIN_N crossover
    // measurement — prints cells, writes nothing, skips the gate.
    if flag("probe") {
        let n: usize = arg("n", 100);
        let t = (trials / (n as u64 / 100).max(1)).max(20);
        eprintln!("probe: n = {n}, {t} trials/cell, best-of-{REPEATS}");
        for policy in [QueuePolicy::Heap, QueuePolicy::Tree] {
            for k in [1usize, 2, 4, 8, 16, 32, 64] {
                let (s, ev) = bench_sequential(n, t, policy, k);
                eprintln!("  {policy:?} K={k}: {:.3e} ev/s", ev as f64 / s);
            }
        }
        for k in [1usize, 2, 4, 8, 16, 32, 64] {
            let (s, ev) = bench_dense(n, t, k);
            eprintln!("  Dense K={k}: {:.3e} ev/s", ev as f64 / s);
        }
        return;
    }

    // Single-thread cells (the pipelined bench pins its TrialSet to one
    // worker explicitly).
    let ns: &[usize] = if smoke { &[100] } else { &[100, 1000, 10_000] };
    let mut single = String::new();
    let mut speedup_n100 = 0.0;
    for (i, &n) in ns.iter().enumerate() {
        let t = (trials / (n as u64 / 100).max(1)).max(20);
        let (naive_s, naive_ev) = bench_naive(n, t);
        let (seq_s, seq_ev) = bench_sequential(n, t, QueuePolicy::Auto, 1);
        let (heap_s, _) = bench_sequential(n, t, QueuePolicy::Heap, 1);
        let (tree_s, _) = bench_sequential(n, t, QueuePolicy::Tree, 1);
        let (dense_s, dense_ev) = bench_dense(n, t, 1);
        let (batched_s, batched_ev) = bench_sequential(n, t, QueuePolicy::Auto, BATCH_ABLATION_K);
        let (stride_s, stride_ev) = bench_dense(n, t, BATCH_ABLATION_K);
        let (pipe_s, pipe_ev) = bench_pipelined(n, t, lanes);
        assert_eq!(naive_ev, seq_ev, "engines diverged at n = {n}");
        assert_eq!(naive_ev, dense_ev, "dense backend diverged at n = {n}");
        assert_eq!(naive_ev, batched_ev, "batched core diverged at n = {n}");
        assert_eq!(naive_ev, stride_ev, "stride fast path diverged at n = {n}");
        assert_eq!(naive_ev, pipe_ev, "pipelined engine diverged at n = {n}");
        let naive_eps = naive_ev as f64 / naive_s;
        let seq_eps = seq_ev as f64 / seq_s;
        let heap_eps = naive_ev as f64 / heap_s;
        let tree_eps = naive_ev as f64 / tree_s;
        let dense_eps = dense_ev as f64 / dense_s;
        let batched_eps = batched_ev as f64 / batched_s;
        let stride_eps = stride_ev as f64 / stride_s;
        let pipe_eps = pipe_ev as f64 / pipe_s;
        // The headline is the best single-thread configuration the
        // builder can be asked for: per-event sequential, the dense
        // memory plane, the batched core (either plane), or the K-lane
        // pipelined interleave.
        let best_eps = seq_eps
            .max(dense_eps)
            .max(batched_eps)
            .max(stride_eps)
            .max(pipe_eps);
        let speedup = best_eps / naive_eps;
        if n == 100 {
            speedup_n100 = speedup;
        }
        eprintln!(
            "n={n}: naive {naive_eps:.3e} ev/s, sequential {seq_eps:.3e} (heap {heap_eps:.3e}, tree {tree_eps:.3e}), dense {dense_eps:.3e}, batched(K={BATCH_ABLATION_K}) {batched_eps:.3e}, stride-specialized {stride_eps:.3e}, pipelined x{lanes} {pipe_eps:.3e} ev/s, speedup {speedup:.2}x"
        );
        if i > 0 {
            single.push(',');
        }
        single.push_str(&format!(
            "\n    {{\"n\": {n}, \"trials\": {t}, \"events_per_trial\": {:.1}, \"naive_events_per_sec\": {naive_eps:.1}, \"heap_events_per_sec\": {heap_eps:.1}, \"tree_events_per_sec\": {tree_eps:.1}, \"dense_memory_events_per_sec\": {dense_eps:.1}, \"batched_events_per_sec\": {batched_eps:.1}, \"specialized_stride_events_per_sec\": {stride_eps:.1}, \"pipelined_{lanes}lane_events_per_sec\": {pipe_eps:.1}, \"optimized_events_per_sec\": {best_eps:.1}, \"speedup\": {speedup:.3}, \"speedup_sequential\": {:.3}}}",
            naive_ev as f64 / t as f64,
            seq_eps / naive_eps
        ));
    }

    // Sweep scaling: fig1::point wall time vs worker count. On a 1-core
    // host the single row carries no scaling information, so the record
    // is explicitly marked host-limited (a multi-core re-measurement
    // then shows up as a diff instead of silently overwriting).
    let mut scaling = String::new();
    if !smoke {
        let sweep_trials = trials.max(500);
        let mut base_time = 0.0;
        let mut threads_list: Vec<usize> = vec![1];
        let mut w = 2;
        while w <= cores {
            threads_list.push(w);
            w *= 2;
        }
        if *threads_list.last().unwrap() != cores {
            threads_list.push(cores);
        }
        for (i, &threads) in threads_list.iter().enumerate() {
            let (secs, _) = best_of(|| {
                let p = fig1::point(
                    Noise::Uniform { lo: 0.0, hi: 2.0 },
                    100,
                    sweep_trials,
                    1,
                    threads,
                );
                p.rounds.count()
            });
            if threads == 1 {
                base_time = secs;
            }
            let scale = base_time / secs;
            eprintln!("fig1 point, {threads} worker(s): {secs:.3} s ({scale:.2}x vs 1 worker)");
            if i > 0 {
                scaling.push(',');
            }
            scaling.push_str(&format!(
                "\n      {{\"threads\": {threads}, \"seconds\": {secs:.4}, \"speedup_vs_1\": {scale:.3}}}"
            ));
        }
    }
    let host_limited = cores == 1;

    // SimMemory::reset strategy record: the shipped fill(0)-in-place
    // semantics vs the old clear+geometric-regrow, on a raw replay of
    // the per-trial write pattern (see SimMemory::reset docs).
    let mut reset_cells = String::new();
    if !smoke {
        for (i, &prefix) in [64usize, 1024].iter().enumerate() {
            let reps = 2_000_000 / prefix;
            let (fill_s, clear_s) = bench_reset_strategy(prefix, reps);
            eprintln!(
                "reset strategy, {prefix}-word prefix: fill(0)-in-place {fill_s:.4}s vs clear+regrow {clear_s:.4}s ({:.2}x)",
                clear_s / fill_s
            );
            if i > 0 {
                reset_cells.push(',');
            }
            reset_cells.push_str(&format!(
                "\n    {{\"prefix_words\": {prefix}, \"trials\": {reps}, \"fill_in_place_secs\": {fill_s:.4}, \"clear_regrow_secs\": {clear_s:.4}, \"fill_speedup\": {:.3}}}",
                clear_s / fill_s
            ));
        }
    }

    let scaling_close = if scaling.is_empty() { "" } else { "\n    " };
    let json = format!(
        "{{\n  \"workload\": \"fig1 point: n procs, U(0,2) noise, first-decision cutoff, full trial incl. instance setup\",\n  \"baseline\": \"naive BinaryHeap driver (nc_engine::baseline, seed implementation)\",\n  \"optimized\": \"SoA scratch engine, auto queue (heap < TREE_MIN_N <= tree); best of per-event sequential (PIPELINE_LANES={PIPELINE_LANES}), the DenseRaceMemory plane, the batched core (forced K={BATCH_ABLATION_K}, either plane), and the {lanes}-lane pipelined ablation, one thread\",\n  \"host_cores\": {cores},\n  \"smoke\": {smoke},\n  \"trials_n100\": {trials},\n  \"single_thread\": [{single}\n  ],\n  \"speedup_n100\": {speedup_n100:.3},\n  \"sweep_scaling_n100\": {{\n    \"host_limited\": {host_limited},\n    \"rows\": [{scaling}{scaling_close}]\n  }},\n  \"reset_fill_vs_clear\": [{reset_cells}\n  ],\n  \"notes\": \"Numbers from `cargo run --release -p nc-bench --bin bench_engine`; best-of-{REPEATS} wall time per cell. speedup_sequential isolates the per-event engine without batching or trial pipelining; heap/tree columns are the per-event queue ablation behind TREE_MIN_N; dense_memory is the DenseRaceMemory word-store-plane ablation alone (Sim::memory_backend, event_batch(1)); batched is the micro-batched execution core (forced K={BATCH_ABLATION_K}; the engine default is K=1, batching off, per DEFAULT_EVENT_BATCH's measured docs) on the growable SimMemory plane; specialized_stride is the batched core on the dense plane (the RacePlane scatter/gather fast path); the pipelined column is the K-lane lockstep interleave; reset_fill_vs_clear records why SimMemory::reset ships fill(0)-in-place. sweep_scaling_n100.host_limited = true means the host had 1 core, so the scaling rows carry no parallel-speedup information. On the 1-core reference VM the interleave LOSES (K working sets overflow the VM's cache), so PIPELINE_LANES defaults to 1 there; re-measure --lanes 2..8 on hardware with real per-core cache.\"\n}}\n"
    );
    let mut file = std::fs::File::create(&out).expect("create output file");
    file.write_all(json.as_bytes()).expect("write json");
    println!("wrote {out}");

    if speedup_n100 < min_speedup {
        eprintln!(
            "PERF REGRESSION: optimized engine is {speedup_n100:.3}x the naive baseline at n=100 (gate: {min_speedup}x)"
        );
        std::process::exit(1);
    }
}
