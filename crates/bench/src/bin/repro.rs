//! The one experiment driver: runs any subset of the scenario registry
//! (E1–E20), writes CSVs plus a byte-reproducible `manifest.json` and
//! a wall-clock `timings.json` sidecar, and optionally byte-checks the
//! output (CSVs and manifest) against a golden directory.
//!
//! ```sh
//! # Catalogue (add --markdown for the docs/experiments.md document):
//! cargo run --release -p nc-bench --bin repro -- --list
//!
//! # Everything, CI-sized, CSVs + manifest under results/:
//! cargo run --release -p nc-bench --bin repro
//!
//! # Paper-grade Figure 1 only, all cores:
//! cargo run --release -p nc-bench --bin repro -- --only E1 --scale 10
//!
//! # Tiny fixed-seed smoke tier, checked against the committed goldens
//! # (exactly what CI's repro-smoke job runs):
//! cargo run --release -p nc-bench --bin repro -- --smoke \
//!     --check crates/bench/tests/golden
//!
//! # Regenerate the goldens after an intentional change:
//! cargo run --release -p nc-bench --bin repro -- --smoke \
//!     --out-dir crates/bench/tests/golden
//! ```
//!
//! Flags: `--list`, `--markdown`, `--only E1,E7`, `--smoke`,
//! `--scale K`, `--trials T`, `--size S` (override the selected tier's
//! preset knobs on every selected scenario — e.g. a quick mid-size
//! Figure 1 is `--only E1 --trials 50 --size 20`), `--seed S`,
//! `--out-dir DIR`, `--check DIR`, `--threads N`, `--journal-dir DIR`
//! (scratch root for E20's on-disk commit journals — out-of-band
//! state that never moves a CSV byte, so it composes with `--check`).
//! Exit status is nonzero on unknown ids or golden drift.

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use nc_bench::scenario::{
    by_id, catalogue_markdown, manifest_json, timings_json, Preset, RunCtx, RunRecord, Scenario,
    REGISTRY, SMOKE_SEED,
};
use nc_bench::{arg, flag};

fn main() -> ExitCode {
    // Worker count for every scenario's sweeps (0 = all cores). This is
    // per-sweep state plumbed through `Scenario::run`, not a
    // process-global knob; it never affects any result.
    let threads: usize = arg("threads", 0);

    if flag("list") {
        if flag("markdown") {
            print!("{}", catalogue_markdown());
        } else {
            println!("{:<4} {:<62} {:<28} OUTPUTS", "ID", "TITLE", "ARTIFACT");
            for sc in REGISTRY {
                let s = sc.spec();
                println!(
                    "{:<4} {:<62} {:<28} {}",
                    s.id,
                    s.title,
                    s.artifact,
                    s.outputs.join(", ")
                );
                println!(
                    "     full: {}   smoke: {}",
                    s.describe(s.full),
                    s.describe(s.smoke)
                );
            }
        }
        return ExitCode::SUCCESS;
    }

    let smoke = flag("smoke");
    let scale: u64 = arg("scale", 1);
    let seed: u64 = arg("seed", SMOKE_SEED);
    let out_dir = arg::<String>("out-dir", "results".into());
    let check_dir = arg::<String>("check", String::new());
    // Scratch root for journal-exercising scenarios. Deliberately NOT
    // part of the --check refusal below: the journal location is
    // out-of-band state that must never change a CSV, so checking the
    // goldens with an explicit --journal-dir is a meaningful CI leg.
    let ctx = RunCtx {
        journal_dir: match arg::<String>("journal-dir", String::new()) {
            dir if dir.is_empty() => None,
            dir => Some(dir.into()),
        },
    };
    // Per-run preset overrides (0 = keep the selected tier's value).
    let trials_override: u64 = arg("trials", 0);
    let size_override: usize = arg("size", 0);
    // The committed goldens pin the unmodified smoke tier at the
    // default seed and scale; comparing any other configuration against
    // them is guaranteed spurious drift, so refuse up front instead of
    // printing 17 DRIFT lines that look like a real regression.
    if !check_dir.is_empty()
        && (!smoke
            || scale != 1
            || seed != SMOKE_SEED
            || trials_override != 0
            || size_override != 0)
    {
        eprintln!(
            "--check compares against smoke goldens: it requires --smoke with default \
             --scale/--seed and no --trials/--size overrides \
             (got smoke={smoke}, scale={scale}, seed={seed}, \
             trials={trials_override}, size={size_override})"
        );
        return ExitCode::FAILURE;
    }

    let selected: Vec<&'static dyn Scenario> = match arg::<String>("only", String::new()) {
        ids if ids.is_empty() => REGISTRY.to_vec(),
        ids => {
            let mut picked = Vec::new();
            for id in ids.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                match by_id(id) {
                    Some(sc) => picked.push(sc),
                    None => {
                        eprintln!("unknown scenario id {id:?}; try --list");
                        return ExitCode::FAILURE;
                    }
                }
            }
            picked
        }
    };

    let suite_start = Instant::now();
    let mut records: Vec<RunRecord> = Vec::new();
    let mut timings: Vec<(String, u128)> = Vec::new();
    for sc in &selected {
        let spec = sc.spec();
        let mut preset: Preset = if smoke { spec.smoke } else { spec.full }.scaled(scale);
        // Overrides only touch knobs the scenario actually uses, so a
        // suite-wide `--size` doesn't hand a size to sizeless scenarios.
        if trials_override != 0 && preset.trials != 0 {
            preset.trials = trials_override;
        }
        if size_override != 0 && spec.size_label != "-" {
            preset.size = size_override;
        }
        println!(">>> {} {} [{}]", spec.id, spec.title, spec.describe(preset));
        let start = Instant::now();
        let tables = sc.run_ctx(preset, seed, threads, &ctx);
        let wall_ms = start.elapsed().as_millis();
        assert_eq!(
            tables.len(),
            spec.outputs.len(),
            "{} returned {} tables for {} declared outputs",
            spec.id,
            tables.len(),
            spec.outputs.len()
        );
        let mut outputs = Vec::new();
        for (table, name) in tables.iter().zip(spec.outputs) {
            println!("{table}");
            let path = Path::new(&out_dir).join(name);
            table.write_csv(&path).expect("write csv");
            println!("wrote {} ({} rows)", path.display(), table.rows.len());
            outputs.push((name.to_string(), table.rows.len()));
        }
        println!("<<< {} done in {} ms", spec.id, wall_ms);
        timings.push((spec.id.to_string(), wall_ms));
        records.push(RunRecord {
            id: spec.id.into(),
            title: spec.title.into(),
            seed,
            params: spec.describe(preset),
            preset,
            outputs,
        });
    }

    // The manifest is byte-reproducible (pure function of flags + seed +
    // registry); wall-clock timings and the worker count go to the
    // `timings.json` sidecar so runs that produce the same results
    // produce the same manifest.
    let manifest = manifest_json(smoke, scale, seed, &records);
    let manifest_path = Path::new(&out_dir).join("manifest.json");
    std::fs::write(&manifest_path, manifest).expect("write manifest");
    let suite_ms = suite_start.elapsed().as_millis();
    let timings_path = Path::new(&out_dir).join("timings.json");
    std::fs::write(&timings_path, timings_json(threads, &timings, suite_ms))
        .expect("write timings");
    println!(
        "\n{} scenario(s) done in {} ms; manifest at {}, timings at {}",
        records.len(),
        suite_ms,
        manifest_path.display(),
        timings_path.display()
    );

    if check_dir.is_empty() {
        return ExitCode::SUCCESS;
    }

    // Golden check: every CSV just written must byte-match its
    // counterpart under --check (the committed smoke goldens), and — on
    // a full-registry run — so must the byte-reproducible manifest.
    let mut drifted = 0usize;
    if selected.len() == REGISTRY.len() {
        let fresh = std::fs::read(&manifest_path).expect("read fresh manifest");
        match std::fs::read(Path::new(&check_dir).join("manifest.json")) {
            Ok(golden) if golden == fresh => {}
            Ok(_) => {
                eprintln!("DRIFT: manifest.json differs from its committed golden");
                drifted += 1;
            }
            Err(err) => {
                eprintln!("MISSING golden manifest.json: {err}");
                drifted += 1;
            }
        }
    }
    for record in &records {
        for (name, _) in &record.outputs {
            let fresh = std::fs::read(Path::new(&out_dir).join(name)).expect("read fresh csv");
            let golden_path = Path::new(&check_dir).join(name);
            match std::fs::read(&golden_path) {
                Ok(golden) if golden == fresh => {}
                Ok(_) => {
                    eprintln!("DRIFT: {name} differs from {}", golden_path.display());
                    drifted += 1;
                }
                Err(err) => {
                    eprintln!("MISSING golden {}: {err}", golden_path.display());
                    drifted += 1;
                }
            }
        }
    }
    if drifted > 0 {
        eprintln!(
            "\n{drifted} output(s) drifted from {check_dir}. If the change is intentional, \
             regenerate with: cargo run --release -p nc-bench --bin repro -- --smoke --out-dir {check_dir}"
        );
        return ExitCode::FAILURE;
    }
    println!("golden check passed against {check_dir}");
    ExitCode::SUCCESS
}
