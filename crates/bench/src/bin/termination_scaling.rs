//! E3: Theorem 12's Θ(log n) rounds, failure sweep, tail decay.
//!
//! Usage: `cargo run --release -p nc-bench --bin termination_scaling [-- --trials 200 --seed 1]`

use nc_bench::{arg, experiments::scaling};

fn main() {
    nc_bench::configure_threads_from_args();
    let trials: u64 = arg("trials", 200);
    let seed: u64 = arg("seed", 1);
    let (sweep, tail) = scaling::run(trials, seed);
    println!("{sweep}");
    println!("{tail}");
    sweep
        .write_csv("results/termination_scaling.csv")
        .expect("write csv");
    tail.write_csv("results/termination_tail.csv")
        .expect("write csv");
    println!("wrote results/termination_scaling.csv, results/termination_tail.csv");
}
