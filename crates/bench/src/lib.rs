//! Experiment harness for the `noisy-consensus` workspace.
//!
//! Each experiment in DESIGN.md's per-experiment index (E1–E11) is a
//! function in [`experiments`] returning a [`Table`]; the binaries in
//! `src/bin/` are thin wrappers that run one experiment with CLI-tunable
//! parameters, print the table, and drop a CSV under `results/`.
//! `cargo run --release -p nc-bench --bin repro_all` regenerates
//! everything.
//!
//! Criterion benchmarks (native-thread latency, component throughput,
//! Figure 1 point cost) live under `benches/`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;

pub use table::Table;

/// The paper's Figure 1 x-axis: 1, 2, 5 per decade, from 1 to `max_n`.
pub fn figure1_ns(max_n: usize) -> Vec<usize> {
    let mut ns = Vec::new();
    let mut decade = 1usize;
    'outer: loop {
        for mult in [1usize, 2, 5] {
            let n = decade.saturating_mul(mult);
            if n > max_n {
                break 'outer;
            }
            ns.push(n);
        }
        match decade.checked_mul(10) {
            Some(d) => decade = d,
            None => break,
        }
    }
    if ns.last() != Some(&max_n) {
        ns.push(max_n);
    }
    ns
}

/// Trials per Figure 1 point: targets a fixed event budget per point so
/// small `n` gets many trials (up to `base`) and huge `n` still gets a
/// statistically useful handful.
pub fn trials_for(n: usize, base: u64) -> u64 {
    let budget = 40_000_000u64; // ~events per point at first-decision cutoff
    (budget / (n as u64 * 40).max(1)).clamp(30, base)
}

/// Parses `--key value` style arguments; returns the value for `key`.
pub fn arg<T: std::str::FromStr>(key: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == format!("--{key}") {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_ns_matches_paper_grid() {
        assert_eq!(
            figure1_ns(1000),
            vec![1, 2, 5, 10, 20, 50, 100, 200, 500, 1000]
        );
        assert_eq!(figure1_ns(1), vec![1]);
        // Non-grid max is appended.
        assert_eq!(figure1_ns(30), vec![1, 2, 5, 10, 20, 30]);
        assert_eq!(*figure1_ns(100_000).last().unwrap(), 100_000);
    }

    #[test]
    fn trials_scale_down_with_n() {
        assert_eq!(trials_for(1, 10_000), 10_000);
        assert!(trials_for(100_000, 10_000) >= 30);
        assert!(trials_for(100_000, 10_000) < trials_for(100, 10_000));
    }

    #[test]
    fn arg_returns_default_without_flag() {
        assert_eq!(arg("definitely-not-passed", 42u64), 42);
    }
}
