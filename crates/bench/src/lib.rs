//! Experiment harness for the `noisy-consensus` workspace.
//!
//! Each experiment in DESIGN.md's per-experiment index (E1–E14) is a
//! module in [`experiments`] that registers itself as a
//! [`scenario::Scenario`]: a static descriptor (id, paper artifact,
//! output CSVs, full-scale and smoke presets) plus a preset-driven
//! runner returning [`Table`]s. The single `repro` binary drives the
//! whole registry:
//!
//! ```sh
//! cargo run --release -p nc-bench --bin repro -- --list
//! cargo run --release -p nc-bench --bin repro -- --only E1,E7 --scale 10
//! cargo run --release -p nc-bench --bin repro -- --smoke --check crates/bench/tests/golden
//! ```
//!
//! Every run writes its CSVs plus a machine-readable `manifest.json`
//! under `--out-dir` (default `results/`). Smoke runs are pinned by
//! committed golden CSVs (`tests/golden_repro.rs`).
//!
//! Criterion benchmarks (native-thread latency, component throughput,
//! Figure 1 point cost) live under `benches/`; the engine perf gate is
//! the separate `bench_engine` binary.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod scenario;
pub mod table;

pub use table::Table;

use nc_engine::noisy::run_noisy_batch;
use nc_engine::{setup, EngineScratch, Instance, Limits, RunReport};
use nc_memory::Bit;
use nc_sched::TimingModel;
use rayon::prelude::*;

use nc_core::LeanConsensus;

/// Configures the worker count for all parallel trial sweeps
/// (0 = one worker per available core). Binaries expose this as
/// `--threads` via [`configure_threads_from_args`].
pub fn configure_threads(threads: usize) {
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global();
}

/// Reads the `--threads` CLI flag (default: all cores) and applies it —
/// the one-liner every experiment binary starts with.
pub fn configure_threads_from_args() {
    configure_threads(arg("threads", 0usize));
}

/// Runs `trials` independent trial computations across the worker pool,
/// returning the results **in trial order**.
///
/// Determinism contract: `f` must be a pure function of its trial index
/// (all experiment trials are — each derives its own seed from the
/// index), so the output is bit-for-bit identical to the serial loop
/// `(0..trials).map(f)` for every worker count.
pub fn par_trials<T, F>(trials: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    par_trial_chunks(trials, || (), |(), t| f(t))
}

/// [`par_trials`] with per-worker reusable state: trials are split into
/// contiguous chunks, each chunk gets a fresh `init()` value (an
/// [`EngineScratch`], a reusable instance, …) that its trials mutate
/// serially. Results come back in trial order.
///
/// The same determinism contract applies: the state is scratch memory,
/// so chunk boundaries (and therefore the worker count) must not affect
/// any result — which holds exactly because the engine re-seeds all
/// scratch state from the trial's own seed.
pub fn par_trial_chunks<S, T, Init, F>(trials: u64, init: Init, f: F) -> Vec<T>
where
    T: Send,
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, u64) -> T + Sync,
{
    if trials == 0 {
        return Vec::new();
    }
    let workers = rayon::current_num_threads().max(1) as u64;
    // A few chunks per worker smooths imbalance from uneven trial cost
    // without shrinking chunks so far that scratch reuse stops paying.
    let chunk = trials.div_ceil(workers * 4).max(1);
    let ranges: Vec<(u64, u64)> = (0..trials)
        .step_by(chunk as usize)
        .map(|lo| (lo, (lo + chunk).min(trials)))
        .collect();
    let nested: Vec<Vec<T>> = ranges
        .into_par_iter()
        .map(|(lo, hi)| {
            let mut state = init();
            (lo..hi).map(|t| f(&mut state, t)).collect()
        })
        .collect();
    nested.into_iter().flatten().collect()
}

/// [`par_trial_chunks`] specialized to the common case where the only
/// per-worker state is an [`EngineScratch`].
pub fn par_trials_scratch<T, F>(trials: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut EngineScratch, u64) -> T + Sync,
{
    par_trial_chunks(trials, EngineScratch::new, f)
}

/// Lanes each worker interleaves in the software-pipelined sweep
/// ([`par_lean_trials_pipelined`]) by default.
///
/// Interleaving K > 1 independent trials multiplies the per-worker
/// working set by K in exchange for overlapping the lanes' cache-miss
/// chains. On the 1-core reference VM that trade **loses** at every
/// measured scale (2 lanes: −8% at n = 1000, −25% at n = 10000; 4
/// lanes: worse — see `BENCH_engine.json`'s pipelined column), because
/// the VM's cache is too small to hold even two lanes' state, so the
/// default is 1 (sequential trials, zero overhead — `bench_engine`
/// asserts the K > 1 path stays bit-identical). Raise it via the
/// `lanes` argument on hardware with enough private cache per core for
/// K working sets; re-measure with
/// `cargo run --release -p nc-bench --bin bench_engine -- --lanes K`.
pub const PIPELINE_LANES: usize = 1;

/// The software-pipelined variant of [`par_trial_chunks`] for
/// monomorphized lean-consensus sweeps — the Figure 1 hot path.
///
/// Trials split into contiguous chunks across the worker pool exactly
/// like [`par_trial_chunks`]; within a chunk, each worker advances up
/// to `lanes` trials in lockstep through
/// [`nc_engine::noisy::run_noisy_batch`], one event per lane per turn,
/// so the lanes' independent dependency chains overlap in the core's
/// pipeline (hiding queue-pop latency). Trial `t` runs with seed
/// `seed_of(t)` on a fresh rebuild of `inputs`; `finish` maps its
/// [`RunReport`] to the result. Results come back **in trial order**.
///
/// Determinism contract: lanes share no state and every trial is a pure
/// function of its index, so the output is bit-for-bit identical for
/// every worker count *and* every lane width, including `lanes == 1`
/// (pinned by the determinism regression tests).
pub fn par_lean_trials_pipelined<T, SeedF, FinF>(
    trials: u64,
    lanes: usize,
    inputs: &[Bit],
    timing: &TimingModel,
    limits: Limits,
    seed_of: SeedF,
    finish: FinF,
) -> Vec<T>
where
    T: Send,
    SeedF: Fn(u64) -> u64 + Sync,
    FinF: Fn(RunReport) -> T + Sync,
{
    if trials == 0 {
        return Vec::new();
    }
    let lanes = lanes.max(1);
    let workers = rayon::current_num_threads().max(1) as u64;
    let chunk = trials.div_ceil(workers * 4).max(1);
    let ranges: Vec<(u64, u64)> = (0..trials)
        .step_by(chunk as usize)
        .map(|lo| (lo, (lo + chunk).min(trials)))
        .collect();
    let nested: Vec<Vec<T>> = ranges
        .into_par_iter()
        .map(|(lo, hi)| {
            let width = lanes.min((hi - lo) as usize);
            let mut scratches: Vec<EngineScratch> =
                (0..width).map(|_| EngineScratch::new()).collect();
            let mut insts: Vec<Instance<LeanConsensus>> =
                (0..width).map(|_| setup::build_lean(inputs)).collect();
            let mut seeds = vec![0u64; width];
            let mut out = Vec::with_capacity((hi - lo) as usize);
            let mut t = lo;
            while t < hi {
                let g = ((hi - t) as usize).min(width);
                for (j, seed) in seeds[..g].iter_mut().enumerate() {
                    *seed = seed_of(t + j as u64);
                }
                for inst in insts[..g].iter_mut() {
                    inst.rebuild(inputs);
                }
                let reports = run_noisy_batch(
                    &mut scratches[..g],
                    &mut insts[..g],
                    timing,
                    &seeds[..g],
                    limits,
                );
                out.extend(reports.into_iter().map(&finish));
                t += g as u64;
            }
            out
        })
        .collect();
    nested.into_iter().flatten().collect()
}

/// The paper's Figure 1 x-axis: 1, 2, 5 per decade, from 1 to `max_n`.
pub fn figure1_ns(max_n: usize) -> Vec<usize> {
    let mut ns = Vec::new();
    let mut decade = 1usize;
    'outer: loop {
        for mult in [1usize, 2, 5] {
            let n = decade.saturating_mul(mult);
            if n > max_n {
                break 'outer;
            }
            ns.push(n);
        }
        match decade.checked_mul(10) {
            Some(d) => decade = d,
            None => break,
        }
    }
    if ns.last() != Some(&max_n) {
        ns.push(max_n);
    }
    ns
}

/// Trials per Figure 1 point: targets a fixed event budget per point so
/// small `n` gets many trials (up to `base`) and huge `n` still gets a
/// statistically useful handful. `base` caps everything (so e.g.
/// `--trials 5` runs 5 trials, not a panicking `clamp(30, 5)`).
pub fn trials_for(n: usize, base: u64) -> u64 {
    let budget = 40_000_000u64; // ~events per point at first-decision cutoff
    (budget / (n as u64 * 40).max(1)).max(30).min(base.max(1))
}

/// Returns whether a bare `--key` flag (no value) was passed.
pub fn flag(key: &str) -> bool {
    let want = format!("--{key}");
    std::env::args().any(|a| a == want)
}

/// Parses `--key value` style arguments; returns the value for `key`.
pub fn arg<T: std::str::FromStr>(key: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == format!("--{key}") {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_ns_matches_paper_grid() {
        assert_eq!(
            figure1_ns(1000),
            vec![1, 2, 5, 10, 20, 50, 100, 200, 500, 1000]
        );
        assert_eq!(figure1_ns(1), vec![1]);
        // Non-grid max is appended.
        assert_eq!(figure1_ns(30), vec![1, 2, 5, 10, 20, 30]);
        assert_eq!(*figure1_ns(100_000).last().unwrap(), 100_000);
    }

    #[test]
    fn trials_scale_down_with_n() {
        assert_eq!(trials_for(1, 10_000), 10_000);
        assert!(trials_for(100_000, 10_000) >= 30);
        assert!(trials_for(100_000, 10_000) < trials_for(100, 10_000));
        // Small explicit --trials values are honored, not panicked on.
        assert_eq!(trials_for(100, 5), 5);
        assert_eq!(trials_for(100, 0), 1);
    }

    #[test]
    fn arg_returns_default_without_flag() {
        assert_eq!(arg("definitely-not-passed", 42u64), 42);
    }

    #[test]
    fn par_trials_preserves_trial_order() {
        let out = par_trials(1000, |t| t * t);
        assert_eq!(out, (0..1000u64).map(|t| t * t).collect::<Vec<_>>());
        assert!(par_trials(0, |t| t).is_empty());
    }

    #[test]
    fn par_trial_chunks_state_is_per_chunk_scratch_only() {
        // The per-chunk state must not leak into results: a counter that
        // workers mutate still yields a pure function of the trial index
        // as long as f ignores it for its output.
        let out = par_trial_chunks(
            257,
            || 0u64,
            |acc, t| {
                *acc += 1;
                t + 1
            },
        );
        assert_eq!(out, (1..=257u64).collect::<Vec<_>>());
    }
}
