//! Experiment harness for the `noisy-consensus` workspace.
//!
//! Each experiment in DESIGN.md's per-experiment index (E1–E14) is a
//! module in [`experiments`] that registers itself as a
//! [`scenario::Scenario`]: a static descriptor (id, paper artifact,
//! output CSVs, full-scale and smoke presets) plus a preset-driven
//! runner returning [`Table`]s. The single `repro` binary drives the
//! whole registry:
//!
//! ```sh
//! cargo run --release -p nc-bench --bin repro -- --list
//! cargo run --release -p nc-bench --bin repro -- --only E1,E7 --scale 10
//! cargo run --release -p nc-bench --bin repro -- --smoke --check crates/bench/tests/golden
//! ```
//!
//! Every run writes its CSVs plus a machine-readable `manifest.json`
//! under `--out-dir` (default `results/`). Smoke runs are pinned by
//! committed golden CSVs (`tests/golden_repro.rs`).
//!
//! Engine-driven trial sweeps go through [`nc_engine::sim::TrialSet`]
//! (which owns scratch pooling, lane pipelining, and worker fan-out);
//! the [`par_trials`] / [`par_trial_chunks`] helpers here cover the
//! non-engine sweeps (renewal races, message-passing runs). In both,
//! **parallelism is per-call state**: every sweep takes its own worker
//! count, there is no process-global thread knob, and results are
//! bit-for-bit identical at every worker count.
//!
//! Criterion benchmarks (native-thread latency, component throughput,
//! Figure 1 point cost) live under `benches/`; the engine perf gate is
//! the separate `bench_engine` binary.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod scenario;
pub mod table;

pub use table::Table;

pub use nc_engine::sim::{par_spans, resolve_threads, PIPELINE_LANES};

/// Runs `trials` independent trial computations across `threads`
/// workers (0 = all cores), returning the results **in trial order**.
///
/// Determinism contract: `f` must be a pure function of its trial index
/// (all experiment trials are — each derives its own seed from the
/// index), so the output is bit-for-bit identical to the serial loop
/// `(0..trials).map(f)` for every worker count.
pub fn par_trials<T, F>(threads: usize, trials: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    par_trial_chunks(threads, trials, || (), |(), t| f(t))
}

/// [`par_trials`] with per-worker reusable state: trials are split into
/// contiguous spans (by [`par_spans`], the same chunked fan-out that
/// powers `TrialSet` sweeps), each span gets a fresh `init()` value
/// that its trials mutate serially. Results come back in trial order.
///
/// The same determinism contract applies: the state is scratch memory,
/// so span boundaries (and therefore the worker count) must not affect
/// any result.
pub fn par_trial_chunks<S, T, Init, F>(threads: usize, trials: u64, init: Init, f: F) -> Vec<T>
where
    T: Send,
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, u64) -> T + Sync,
{
    par_spans(threads, trials, |lo, hi| {
        let mut state = init();
        (lo..hi).map(|t| f(&mut state, t)).collect()
    })
}

/// The paper's Figure 1 x-axis: 1, 2, 5 per decade, from 1 to `max_n`.
pub fn figure1_ns(max_n: usize) -> Vec<usize> {
    let mut ns = Vec::new();
    let mut decade = 1usize;
    'outer: loop {
        for mult in [1usize, 2, 5] {
            let n = decade.saturating_mul(mult);
            if n > max_n {
                break 'outer;
            }
            ns.push(n);
        }
        match decade.checked_mul(10) {
            Some(d) => decade = d,
            None => break,
        }
    }
    if ns.last() != Some(&max_n) {
        ns.push(max_n);
    }
    ns
}

/// Trials per Figure 1 point: targets a fixed event budget per point so
/// small `n` gets many trials (up to `base`) and huge `n` still gets a
/// statistically useful handful. `base` caps everything (so e.g.
/// `--trials 5` runs 5 trials, not a panicking `clamp(30, 5)`).
pub fn trials_for(n: usize, base: u64) -> u64 {
    let budget = 40_000_000u64; // ~events per point at first-decision cutoff
    (budget / (n as u64 * 40).max(1)).max(30).min(base.max(1))
}

/// Returns whether a bare `--key` flag (no value) was passed.
pub fn flag(key: &str) -> bool {
    let want = format!("--{key}");
    std::env::args().any(|a| a == want)
}

/// Parses `--key value` style arguments; returns the value for `key`.
pub fn arg<T: std::str::FromStr>(key: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == format!("--{key}") {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_ns_matches_paper_grid() {
        assert_eq!(
            figure1_ns(1000),
            vec![1, 2, 5, 10, 20, 50, 100, 200, 500, 1000]
        );
        assert_eq!(figure1_ns(1), vec![1]);
        // Non-grid max is appended.
        assert_eq!(figure1_ns(30), vec![1, 2, 5, 10, 20, 30]);
        assert_eq!(*figure1_ns(100_000).last().unwrap(), 100_000);
    }

    #[test]
    fn trials_scale_down_with_n() {
        assert_eq!(trials_for(1, 10_000), 10_000);
        assert!(trials_for(100_000, 10_000) >= 30);
        assert!(trials_for(100_000, 10_000) < trials_for(100, 10_000));
        // Small explicit --trials values are honored, not panicked on.
        assert_eq!(trials_for(100, 5), 5);
        assert_eq!(trials_for(100, 0), 1);
    }

    #[test]
    fn arg_returns_default_without_flag() {
        assert_eq!(arg("definitely-not-passed", 42u64), 42);
    }

    #[test]
    fn par_trials_preserves_trial_order_at_every_worker_count() {
        let serial: Vec<u64> = (0..1000u64).map(|t| t * t).collect();
        for threads in [0usize, 1, 2, 3, 8] {
            assert_eq!(par_trials(threads, 1000, |t| t * t), serial, "{threads}");
        }
        assert!(par_trials(4, 0, |t| t).is_empty());
    }

    #[test]
    fn par_trial_chunks_state_is_per_chunk_scratch_only() {
        // The per-chunk state must not leak into results: a counter that
        // workers mutate still yields a pure function of the trial index
        // as long as f ignores it for its output.
        for threads in [1usize, 4] {
            let out = par_trial_chunks(
                threads,
                257,
                || 0u64,
                |acc, t| {
                    *acc += 1;
                    t + 1
                },
            );
            assert_eq!(out, (1..=257u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn resolve_threads_zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
