//! Regression tests for the parallel-sweep determinism contract: a
//! sweep's results are a pure function of its seed — bit-for-bit
//! identical whether trials run serially or fanned out across any
//! number of workers, and identical between the optimized engine and
//! the naive baseline.
//!
//! Parallelism is per-sweep state ([`nc_engine::sim::TrialSet::threads`]
//! and `Scenario::run`'s `threads` argument), so these tests run freely
//! in parallel with each other — the process-global worker knob (and
//! the mutex that once serialized every test here against it) is gone.
//!
//! (The companion property test that the event order itself — `(time,
//! seq)` tie-breaking — is total and stable under equal `f64` times
//! lives next to the queue: `nc_sched::queue::tests`.)

use nc_bench::experiments::fig1;
use nc_bench::scenario::{REGISTRY, SMOKE_SEED};
use nc_engine::baseline::run_noisy_baseline;
use nc_engine::sim::Sim;
use nc_engine::{setup, Limits};
use nc_sched::{Noise, TimingModel};

/// Summary of a point that must match bitwise across worker counts.
fn point_fingerprint(threads: usize) -> Vec<(u64, u64, u64)> {
    Noise::figure1_suite()
        .into_iter()
        .map(|(_, noise)| {
            let p = fig1::point(noise, 12, 64, 99, threads);
            (
                p.rounds.mean().to_bits(),
                p.rounds.ci95().to_bits(),
                p.skipped,
            )
        })
        .collect()
}

#[test]
fn every_scenario_smoke_is_bitwise_identical_serial_vs_parallel() {
    // The registry-wide version of the fig1 fingerprint test below:
    // every registered scenario's smoke preset must produce cell-for-
    // cell identical tables at 1 and 4 workers. (Scenario output cells
    // are strings formatted from the measured values, so equal tables
    // here are exactly what the golden CSVs pin.)
    for sc in REGISTRY {
        let spec = sc.spec();
        let serial = sc.run(spec.smoke, SMOKE_SEED, 1);
        assert_eq!(
            serial,
            sc.run(spec.smoke, SMOKE_SEED, 4),
            "{} diverged between 1 and 4 workers",
            spec.id
        );
    }
}

#[test]
fn fig1_point_is_bitwise_identical_serial_vs_parallel() {
    let serial = point_fingerprint(1);
    for threads in [2, 3, 8] {
        assert_eq!(
            serial,
            point_fingerprint(threads),
            "sweep diverged at {threads} workers"
        );
    }
}

#[test]
fn parallel_sweep_reports_match_baseline_engine_exactly() {
    // Full RunReports from the optimized engine running inside the
    // parallel sweep must equal the naive serial baseline's, trial by
    // trial.
    let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
    let inputs = setup::half_and_half(10);
    let parallel = Sim::new(setup::Algorithm::Lean)
        .inputs(inputs.clone())
        .timing(timing.clone())
        .limits(Limits::first_decision())
        .trials(32)
        .seed0(1000)
        .seed_stride(7)
        .threads(4)
        .reports();
    for (t, report) in parallel.into_iter().enumerate() {
        let seed = 1000 + t as u64 * 7;
        let mut inst = setup::build(setup::Algorithm::Lean, &inputs, seed);
        let naive = run_noisy_baseline(&mut inst, &timing, seed, Limits::first_decision());
        assert_eq!(report, naive, "trial {t}");
    }
}

#[test]
fn builder_lean_fast_path_matches_baseline_boxed_instances() {
    // The builder's monomorphized lean fast path (rebuild-in-place,
    // fused step) must produce identical reports to the naive baseline
    // driving boxed trait-object instances.
    let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 });
    let inputs = setup::half_and_half(16);
    let mut sim = Sim::new(setup::Algorithm::Lean)
        .inputs(inputs.clone())
        .timing(timing.clone())
        .limits(Limits::first_decision())
        .build();
    for seed in 0..16u64 {
        let typed = sim.run(seed);
        let mut boxed_inst = setup::build(setup::Algorithm::Lean, &inputs, seed);
        let boxed = run_noisy_baseline(&mut boxed_inst, &timing, seed, Limits::first_decision());
        assert_eq!(typed, boxed, "seed {seed}");
    }
}

#[test]
fn pipelined_sweep_is_bitwise_identical_across_lane_widths() {
    // The software-pipelined sweep (K trials interleaved per worker)
    // must be invisible in the results: full RunReports identical for
    // every lane width, including the non-interleaved width 1 — and
    // that at several worker counts, so pipelining composes with the
    // thread-fan-out contract.
    let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
    let inputs = setup::half_and_half(12);
    let sweep = |threads: usize, lanes: usize| -> Vec<nc_engine::RunReport> {
        Sim::new(setup::Algorithm::Lean)
            .inputs(inputs.clone())
            .timing(timing.clone())
            .limits(Limits::first_decision())
            .trials(48)
            .seed0(7000)
            .seed_stride(11)
            .threads(threads)
            .lanes(lanes)
            .reports()
    };
    let reference = sweep(1, 1);
    for threads in [1usize, 4] {
        for lanes in [1usize, 2, 4, 7] {
            assert_eq!(
                sweep(threads, lanes),
                reference,
                "sweep diverged at {threads} workers × {lanes} lanes"
            );
        }
    }
    // And the reference itself matches the serial baseline engine.
    for (t, report) in reference.iter().enumerate() {
        let seed = 7000 + t as u64 * 11;
        let mut inst = setup::build(setup::Algorithm::Lean, &inputs, seed);
        let naive = run_noisy_baseline(&mut inst, &timing, seed, Limits::first_decision());
        assert_eq!(*report, naive, "trial {t}");
    }
}

#[test]
fn concurrent_sweeps_with_different_worker_counts_do_not_interfere() {
    // The scenario that forced the old process-global thread knob to be
    // mutex-serialized: two sweeps running at the same time with
    // different worker counts. With per-TrialSet threads both must
    // still match the serial reference exactly.
    let run_sweep =
        |threads: usize| fig1::point(Noise::Uniform { lo: 0.0, hi: 2.0 }, 10, 48, 5, threads);
    let reference = run_sweep(1);
    let (a, b) = std::thread::scope(|s| {
        let a = s.spawn(|| run_sweep(3));
        let b = s.spawn(|| run_sweep(8));
        (a.join().unwrap(), b.join().unwrap())
    });
    for (label, p) in [("3 workers", a), ("8 workers", b)] {
        assert_eq!(
            p.rounds.mean().to_bits(),
            reference.rounds.mean().to_bits(),
            "{label}"
        );
        assert_eq!(
            p.rounds.ci95().to_bits(),
            reference.rounds.ci95().to_bits(),
            "{label}"
        );
        assert_eq!(p.skipped, reference.skipped, "{label}");
    }
}
