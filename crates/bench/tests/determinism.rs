//! Regression tests for the parallel-sweep determinism contract: a
//! sweep's results are a pure function of its seed — bit-for-bit
//! identical whether trials run serially or fanned out across any
//! number of workers, and identical between the optimized engine and
//! the naive baseline.
//!
//! (The companion property test that the event order itself — `(time,
//! seq)` tie-breaking — is total and stable under equal `f64` times
//! lives next to the queue: `nc_sched::queue::tests`.)

use std::sync::Mutex;

use nc_bench::experiments::fig1;
use nc_bench::scenario::{REGISTRY, SMOKE_SEED};
use nc_bench::{configure_threads, par_trials_scratch};

/// `configure_threads` mutates a process-global worker count and the
/// harness runs tests on parallel threads, so serial-vs-parallel tests
/// must hold this lock — otherwise a sibling's `configure_threads(0)`
/// can land between a test's `configure_threads(1)` and its sweep,
/// making the "serial" side run wide (and the comparison vacuous).
static THREAD_KNOB: Mutex<()> = Mutex::new(());

fn hold_thread_knob() -> std::sync::MutexGuard<'static, ()> {
    // A panic while holding the lock already fails that test; don't
    // let the poison mask the other tests' results.
    THREAD_KNOB.lock().unwrap_or_else(|e| e.into_inner())
}
use nc_engine::baseline::run_noisy_baseline;
use nc_engine::noisy::run_noisy_scratch;
use nc_engine::{setup, Limits};
use nc_sched::{Noise, TimingModel};

/// Summary of a point that must match bitwise across worker counts.
fn point_fingerprint(threads: usize) -> Vec<(u64, u64, u64)> {
    configure_threads(threads);
    let mut out = Vec::new();
    for (_, noise) in Noise::figure1_suite() {
        let p = fig1::point(noise, 12, 64, 99);
        out.push((
            p.rounds.mean().to_bits(),
            p.rounds.ci95().to_bits(),
            p.skipped,
        ));
    }
    // Restore the default for other tests in this binary.
    configure_threads(0);
    out
}

#[test]
fn every_scenario_smoke_is_bitwise_identical_serial_vs_parallel() {
    // The registry-wide version of the fig1 fingerprint test below:
    // every registered scenario's smoke preset must produce cell-for-
    // cell identical tables at 1 and 4 workers. (Scenario output cells
    // are strings formatted from the measured values, so equal tables
    // here are exactly what the golden CSVs pin.)
    let _serial = hold_thread_knob();
    for sc in REGISTRY {
        let spec = sc.spec();
        let run_at = |threads: usize| {
            configure_threads(threads);
            let tables = sc.run(spec.smoke, SMOKE_SEED);
            configure_threads(0);
            tables
        };
        let serial = run_at(1);
        assert_eq!(
            serial,
            run_at(4),
            "{} diverged between 1 and 4 workers",
            spec.id
        );
    }
}

#[test]
fn fig1_point_is_bitwise_identical_serial_vs_parallel() {
    let _serial = hold_thread_knob();
    let serial = point_fingerprint(1);
    for threads in [2, 3, 8] {
        assert_eq!(
            serial,
            point_fingerprint(threads),
            "sweep diverged at {threads} workers"
        );
    }
}

#[test]
fn parallel_sweep_reports_match_baseline_engine_exactly() {
    // Full RunReports from the optimized engine running inside the
    // parallel harness must equal the naive serial baseline's, trial by
    // trial.
    let _serial = hold_thread_knob();
    let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
    let inputs = setup::half_and_half(10);
    configure_threads(4);
    let parallel = par_trials_scratch(32, |scratch, t| {
        let seed = 1000 + t * 7;
        let mut inst = setup::build(setup::Algorithm::Lean, &inputs, seed);
        run_noisy_scratch(scratch, &mut inst, &timing, seed, Limits::first_decision())
    });
    configure_threads(0);
    for (t, report) in parallel.into_iter().enumerate() {
        let seed = 1000 + t as u64 * 7;
        let mut inst = setup::build(setup::Algorithm::Lean, &inputs, seed);
        let naive = run_noisy_baseline(&mut inst, &timing, seed, Limits::first_decision());
        assert_eq!(report, naive, "trial {t}");
    }
}

#[test]
fn lean_typed_instances_match_boxed_instances() {
    // The monomorphized fast path (build_lean + rebuild) and the boxed
    // generic path must produce identical reports.
    let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 });
    let inputs = setup::half_and_half(16);
    let mut lean_inst = setup::build_lean(&inputs);
    let mut scratch = nc_engine::EngineScratch::new();
    for seed in 0..16u64 {
        lean_inst.rebuild(&inputs);
        let typed = run_noisy_scratch(
            &mut scratch,
            &mut lean_inst,
            &timing,
            seed,
            Limits::first_decision(),
        );
        let mut boxed_inst = setup::build(setup::Algorithm::Lean, &inputs, seed);
        let boxed = nc_engine::run_noisy(&mut boxed_inst, &timing, seed, Limits::first_decision());
        assert_eq!(typed, boxed, "seed {seed}");
    }
}

#[test]
fn pipelined_sweep_is_bitwise_identical_across_lane_widths() {
    // The software-pipelined sweep (K trials interleaved per worker)
    // must be invisible in the results: full RunReports identical for
    // every lane width, including the non-interleaved width 1 — and
    // that at several worker counts, so pipelining composes with the
    // thread-fan-out contract.
    let _serial = hold_thread_knob();
    let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
    let inputs = setup::half_and_half(12);
    let sweep = |threads: usize, lanes: usize| -> Vec<nc_engine::RunReport> {
        configure_threads(threads);
        let out = nc_bench::par_lean_trials_pipelined(
            48,
            lanes,
            &inputs,
            &timing,
            Limits::first_decision(),
            |t| 7000 + t * 11,
            |report| report,
        );
        configure_threads(0);
        out
    };
    let reference = sweep(1, 1);
    for threads in [1usize, 4] {
        for lanes in [1usize, 2, 4, 7] {
            assert_eq!(
                sweep(threads, lanes),
                reference,
                "sweep diverged at {threads} workers × {lanes} lanes"
            );
        }
    }
    // And the reference itself matches the serial baseline engine.
    for (t, report) in reference.iter().enumerate() {
        let seed = 7000 + t as u64 * 11;
        let mut inst = setup::build(setup::Algorithm::Lean, &inputs, seed);
        let naive = run_noisy_baseline(&mut inst, &timing, seed, Limits::first_decision());
        assert_eq!(*report, naive, "trial {t}");
    }
}
