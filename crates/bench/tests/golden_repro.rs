//! Golden-run reproduction harness: every registered scenario's smoke
//! preset re-runs here and must byte-match its committed CSV under
//! `tests/golden/` — the same way `soa_equivalence.rs` pins the engine,
//! this pins the whole experiment pipeline (engine, scheduler,
//! statistics, float formatting, CSV layout).
//!
//! Float→text goes through `table::fstable` (fixed precision, canonical
//! zero/non-finite forms), so the bytes are stable across hosts up to
//! libm (`exp`/`ln`) differences — CI and the goldens both use
//! x86-64 linux, where they agree.
//!
//! On an intentional behavior change, regenerate with:
//!
//! ```sh
//! cargo run --release -p nc-bench --bin repro -- --smoke \
//!     --out-dir crates/bench/tests/golden
//! ```
//!
//! and commit the diff — the review then shows exactly which numbers
//! moved.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use nc_bench::scenario::{manifest_json, RunRecord, REGISTRY, SMOKE_SEED};

const REGEN: &str =
    "regenerate with: cargo run --release -p nc-bench --bin repro -- --smoke --out-dir crates/bench/tests/golden";

fn golden_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden"))
}

#[test]
fn every_scenario_smoke_run_matches_its_committed_golden() {
    let mut records: Vec<RunRecord> = Vec::new();
    for sc in REGISTRY {
        let spec = sc.spec();
        // Worker count 0 (all cores): the determinism suite pins that
        // the count cannot affect a single byte.
        let tables = sc.run(spec.smoke, SMOKE_SEED, 0);
        assert_eq!(
            tables.len(),
            spec.outputs.len(),
            "{}: table count != declared outputs",
            spec.id
        );
        let mut outputs = Vec::new();
        for (table, name) in tables.iter().zip(spec.outputs) {
            let path = golden_dir().join(name);
            let golden = fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{}: missing golden {name} ({e}); {REGEN}", spec.id));
            assert_eq!(
                table.to_csv_string(),
                golden,
                "{}: {name} drifted from its golden; if intentional, {REGEN}",
                spec.id
            );
            outputs.push((name.to_string(), table.rows.len()));
        }
        records.push(RunRecord {
            id: spec.id.into(),
            title: spec.title.into(),
            seed: SMOKE_SEED,
            params: spec.describe(spec.smoke),
            preset: spec.smoke,
            outputs,
        });
    }

    // The manifest is byte-reproducible now that wall-clock timing and
    // the worker count live in the `timings.json` sidecar: the exact
    // bytes a smoke run writes are a golden too (the same flags CI's
    // repro-smoke job uses: smoke, scale 1, default seed).
    let manifest = manifest_json(true, 1, SMOKE_SEED, &records);
    let golden = fs::read_to_string(golden_dir().join("manifest.json"))
        .unwrap_or_else(|e| panic!("missing golden manifest.json ({e}); {REGEN}"));
    assert_eq!(
        manifest, golden,
        "manifest.json drifted from its golden; if intentional, {REGEN}"
    );
}

#[test]
fn golden_dir_holds_no_stale_files() {
    // A renamed or deleted output must not leave a dead golden behind —
    // CI's drift check only looks at files the registry declares, so a
    // stale golden would otherwise rot silently.
    let declared: BTreeSet<&str> = REGISTRY
        .iter()
        .flat_map(|sc| sc.spec().outputs.iter().copied())
        .collect();
    for entry in fs::read_dir(golden_dir()).expect("tests/golden must exist") {
        let name = entry.unwrap().file_name().into_string().unwrap();
        if name == "manifest.json" {
            continue; // a golden itself, pinned by the manifest test above
        }
        if name == "timings.json" {
            continue; // wall-clock sidecar dropped by regeneration; gitignored
        }
        assert!(
            declared.contains(name.as_str()),
            "stale golden {name}: no registered scenario declares it ({REGEN}, then delete it)"
        );
    }
}
