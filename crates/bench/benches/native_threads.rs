//! E12: wall-clock decision latency of lean-consensus on real threads.
//!
//! One iteration = create a consensus object, spawn `t` threads with
//! split inputs, everyone proposes, join. Run with
//! `cargo bench -p nc-bench --bench native_threads`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nc_core::{Bit, NativeConsensus};
use std::sync::Arc;

fn decide(threads: usize) {
    let consensus = Arc::new(NativeConsensus::new());
    crossbeam::scope(|s| {
        for i in 0..threads {
            let c = Arc::clone(&consensus);
            s.spawn(move |_| {
                c.propose(Bit::from(i % 2 == 0)).expect("round limit");
            });
        }
    })
    .unwrap();
}

fn bench_native(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_decision_latency");
    for threads in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| decide(t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_native);
criterion_main!(benches);
