//! Microbenchmarks of the substrates: simulated memory ops, atomic
//! array ops, noise sampling, and the event-driven simulation loop.
//!
//! Run with `cargo bench -p nc-bench --bench components`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nc_memory::{Addr, SegArray, SimMemory};
use nc_sched::{stream_rng, Noise};
use nc_theory::{run_race, RaceConfig};
use std::hint::black_box;

fn bench_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory");
    group.bench_function("sim_write_read", |b| {
        let mut mem = SimMemory::with_capacity(1024);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 512;
            mem.write(Addr::new(i), i as u64);
            black_box(mem.read(Addr::new(i)));
        });
    });
    group.bench_function("seg_array_store_load", |b| {
        let arr = SegArray::new();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 4096;
            arr.store(i, i as u64);
            black_box(arr.load(i));
        });
    });
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_sampling");
    for (name, noise) in Noise::figure1_suite() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &noise, |b, n| {
            let mut rng = stream_rng(1, 2, 3);
            b.iter(|| black_box(n.sample(&mut rng)));
        });
    }
    group.finish();
}

fn bench_race(c: &mut Criterion) {
    let mut group = c.benchmark_group("renewal_race");
    group.sample_size(20);
    for n in [16usize, 256, 4096] {
        let cfg = RaceConfig::new(n, 2, Noise::Exponential { mean: 1.0 });
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            b.iter(|| {
                seed += 1;
                black_box(run_race(cfg, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_memory, bench_sampling, bench_race);
criterion_main!(benches);
