//! Microbenchmark of the event-queue primitives: BinaryHeap pop+push
//! churn vs. the indexed peek-and-replace sift-down.
//!
//! This isolates optimization (1) of the engine rework from the
//! protocol/memory costs measured by `figure1_points`. One iteration =
//! one "hold" operation: remove the earliest event, insert its successor
//! at a later time.
//!
//! Run with `cargo bench -p nc-bench --bench event_queue`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nc_sched::queue::{Event, EventQueue};
use nc_sched::tree::EventTree;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::collections::BinaryHeap;
use std::hint::black_box;

/// Max-heap wrapper replicating the naive driver's ordering.
#[derive(Debug)]
struct Rev(Event);

impl PartialEq for Rev {
    fn eq(&self, other: &Self) -> bool {
        self.0.key_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for Rev {}
impl PartialOrd for Rev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Rev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.key_cmp(&self.0)
    }
}

fn bench_hold(c: &mut Criterion) {
    for n in [100usize, 10_000] {
        let mut group = c.benchmark_group(format!("event_queue_hold_n{n}"));

        group.bench_with_input(BenchmarkId::from_parameter("binaryheap"), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(7);
            let mut heap = BinaryHeap::with_capacity(n);
            for pid in 0..n {
                heap.push(Rev(Event::new(rng.random::<f64>(), pid as u64, pid as u32)));
            }
            let mut seq = n as u64;
            b.iter(|| {
                let top = heap.pop().unwrap().0;
                seq += 1;
                heap.push(Rev(Event::new(
                    top.time() + rng.random::<f64>(),
                    seq,
                    top.pid(),
                )));
                black_box(heap.peek().unwrap().0.time())
            });
        });

        group.bench_with_input(BenchmarkId::from_parameter("replace_top"), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(7);
            let mut q = EventQueue::with_capacity(n);
            for pid in 0..n {
                q.push(Event::new(rng.random::<f64>(), pid as u64, pid as u32));
            }
            let mut seq = n as u64;
            b.iter(|| {
                let top = *q.peek().unwrap();
                seq += 1;
                let new_top =
                    q.replace_top(Event::new(top.time() + rng.random::<f64>(), seq, top.pid()));
                black_box(new_top.time())
            });
        });

        group.bench_with_input(
            BenchmarkId::from_parameter("tournament_tree"),
            &n,
            |b, &n| {
                let mut rng = SmallRng::seed_from_u64(7);
                let mut q = EventTree::new();
                q.reset(n);
                for pid in 0..n {
                    q.set(Event::new(rng.random::<f64>(), pid as u64, pid as u32));
                }
                let mut seq = n as u64;
                b.iter(|| {
                    let top = q.peek().unwrap();
                    seq += 1;
                    q.set(Event::new(top.time() + rng.random::<f64>(), seq, top.pid()));
                    black_box(q.peek().unwrap().time())
                });
            },
        );

        group.finish();
    }
}

criterion_group!(benches, bench_hold);
criterion_main!(benches);
