//! Throughput of the discrete-event engine on Figure 1 workloads: one
//! iteration = one full first-decision simulation at the given n.
//!
//! Run with `cargo bench -p nc-bench --bench figure1_points`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nc_engine::{run_noisy, setup, Algorithm, Limits};
use nc_sched::{Noise, TimingModel};
use std::hint::black_box;

fn bench_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_point");
    group.sample_size(20);
    let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 });
    for n in [10usize, 100, 1000, 10_000] {
        let inputs = setup::half_and_half(n);
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                seed += 1;
                let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
                black_box(run_noisy(&mut inst, &timing, seed, Limits::first_decision()))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_points);
criterion_main!(benches);
