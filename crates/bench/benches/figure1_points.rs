//! Throughput of the discrete-event engine on Figure 1 workloads: one
//! iteration = one full first-decision simulation at the given n.
//!
//! The `speedup` group is the PR-gating comparison: the optimized engine
//! (peek-and-replace queue + scratch reuse + batched noise, driven
//! through the `Sim` builder's reusable handle) vs. the naive BinaryHeap
//! baseline (`nc_engine::baseline`, compiled via the `baseline`
//! feature), on the acceptance workload `n = 100`, `U(0, 2)` noise,
//! first-decision cutoff.
//!
//! Run with `cargo bench -p nc-bench --bench figure1_points`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nc_engine::baseline::run_noisy_baseline;
use nc_engine::sim::Sim;
use nc_engine::{setup, Algorithm, Limits};
use nc_sched::{Noise, TimingModel};
use std::hint::black_box;

fn bench_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_point");
    group.sample_size(20);
    let timing = TimingModel::figure1(Noise::Exponential { mean: 1.0 });
    for n in [10usize, 100, 1000, 10_000] {
        let mut seed = 0u64;
        let mut sim = Sim::new(Algorithm::Lean)
            .inputs(setup::half_and_half(n))
            .timing(timing.clone())
            .limits(Limits::first_decision())
            .build();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                seed += 1;
                black_box(sim.run(seed))
            });
        });
    }
    group.finish();
}

/// The acceptance-criterion comparison: optimized vs. naive engine on
/// the same trial stream (`n = 100`, uniform `[0, 2]` noise,
/// first-decision cutoff).
fn bench_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("speedup_n100_uniform");
    group.sample_size(30);
    let timing = TimingModel::figure1(Noise::Uniform { lo: 0.0, hi: 2.0 });
    let inputs = setup::half_and_half(100);

    let mut seed = 0u64;
    group.bench_function("naive_binaryheap", |b| {
        b.iter(|| {
            seed += 1;
            let mut inst = setup::build(Algorithm::Lean, &inputs, seed);
            black_box(run_noisy_baseline(
                &mut inst,
                &timing,
                seed,
                Limits::first_decision(),
            ))
        });
    });

    let mut seed = 0u64;
    let mut sim = Sim::new(Algorithm::Lean)
        .inputs(inputs.clone())
        .timing(timing.clone())
        .limits(Limits::first_decision())
        .build();
    group.bench_function("optimized", |b| {
        b.iter(|| {
            seed += 1;
            black_box(sim.run(seed))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_speedup, bench_points);
criterion_main!(benches);
