//! The step-machine protocol interface.
//!
//! Every consensus protocol in this workspace is an explicit state
//! machine over shared-memory operations: it *surfaces* the operation it
//! wants to perform next ([`Status::Pending`]) and is *resumed* with the
//! operation's result ([`ProtocolCore::advance`]). The machine never touches
//! memory itself.
//!
//! This inversion is what lets a single protocol implementation run,
//! unchanged, under every driver in the workspace:
//!
//! * the discrete-event engine executes the pending operation at the
//!   simulated time the noisy-scheduling model assigns it;
//! * the hybrid uniprocessor driver executes it when the quantum/priority
//!   rules schedule the process;
//! * the native runner executes it immediately against real atomics;
//! * property tests execute it wherever a generated adversarial schedule
//!   says.

use std::fmt;

use nc_memory::{Bit, MemStore, Op, SimMemory, Word};

/// What a protocol instance wants to do next.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// The protocol wants to execute this shared-memory operation.
    Pending(Op),
    /// The protocol has decided; it performs no further operations.
    Decided(Bit),
}

impl Status {
    /// The decided value, if the protocol has decided.
    pub fn decision(self) -> Option<Bit> {
        match self {
            Status::Decided(b) => Some(b),
            Status::Pending(_) => None,
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Pending(op) => write!(f, "pending: {op}"),
            Status::Decided(b) => write!(f, "decided {b}"),
        }
    }
}

/// The memory-independent surface of a consensus protocol state
/// machine: surfacing pending operations, consuming their results, and
/// reporting progress.
///
/// # Contract
///
/// * [`ProtocolCore::status`] is pure: calling it repeatedly without an
///   intervening [`ProtocolCore::advance`] returns the same value.
/// * After `status()` returns [`Status::Pending`]`(Op::Read(a))`, the
///   driver must execute the read and call `advance(Some(value))`.
/// * After `status()` returns [`Status::Pending`]`(Op::Write(..))`, the
///   driver must execute the write and call `advance(None)`.
/// * Once `status()` returns [`Status::Decided`], the machine is final:
///   `advance` must not be called again.
///
/// This trait never touches memory itself, so it is implemented exactly
/// once per protocol; the memory-plane-generic [`Protocol`] subtrait
/// (usually a one-line blanket over all [`MemStore`]s) adds the fused
/// stepping entry point drivers use.
///
/// `Debug` is a supertrait so heterogeneous collections of protocols
/// (e.g. `Vec<Box<dyn Protocol>>`) stay debuggable.
pub trait ProtocolCore: fmt::Debug {
    /// The machine's current pending operation or final decision.
    fn status(&self) -> Status;

    /// Delivers the result of the pending operation and moves the machine
    /// to its next state.
    ///
    /// # Panics
    ///
    /// Implementations panic if the machine has already decided, or if
    /// `read_value` is inconsistent with the pending operation (`None`
    /// for a pending read, `Some` for a pending write) — these are driver
    /// bugs, not recoverable conditions.
    fn advance(&mut self, read_value: Option<Word>);

    /// [`ProtocolCore::advance`] followed by [`ProtocolCore::status`],
    /// as one call.
    ///
    /// Semantically redundant, but load-bearing for throughput: the
    /// discrete-event engine holds protocols as `Box<dyn Protocol>`, and
    /// its general loop needs the post-advance status after every
    /// operation. Through the provided method both calls resolve behind
    /// a single virtual dispatch (and inline into each other on the
    /// concrete type), instead of two separate vtable round-trips per
    /// event.
    ///
    /// # Panics
    ///
    /// Same contract as [`ProtocolCore::advance`].
    #[inline]
    fn advance_status(&mut self, read_value: Option<Word>) -> Status {
        self.advance(read_value);
        self.status()
    }

    /// The protocol's current round number (1-based; implementation-
    /// defined but monotone). Drivers expose this to schedule adversaries
    /// and metrics.
    fn round(&self) -> usize;

    /// The protocol's current preference — the value it would currently
    /// champion. After decision, the decided value.
    fn preference(&self) -> Bit;

    /// Total shared-memory operations this machine has completed.
    fn ops_completed(&self) -> u64;

    /// Checks out this machine's packed lean-consensus hot state
    /// ([`crate::LeanHot`]), if it has one.
    ///
    /// The discrete-event engine's batched executor drives K processes
    /// at a time from one contiguous array of packed states instead of
    /// dispatching into each protocol object per event. A protocol that
    /// returns `Some` promises that driving the returned
    /// [`LeanHot`](crate::LeanHot) via
    /// [`LeanHot::op_addr`](crate::LeanHot::op_addr) /
    /// [`LeanHot::advance`](crate::LeanHot::advance) performs exactly the
    /// operations `status()`/`advance` would, and that
    /// [`ProtocolCore::lean_hot_restore`] makes the object
    /// indistinguishable from having been stepped in place. The default
    /// (`None`) routes the protocol through the engine's per-event
    /// loops.
    #[inline]
    fn lean_hot(&self) -> Option<crate::LeanHot> {
        None
    }

    /// Restores state previously checked out with
    /// [`ProtocolCore::lean_hot`] (advanced zero or more steps by an
    /// external driver). No-op by default; drivers only call it when
    /// `lean_hot()` returned `Some`.
    #[inline]
    fn lean_hot_restore(&mut self, hot: crate::LeanHot) {
        let _ = hot;
    }
}

/// A consensus protocol runnable against the word-store plane `M`.
///
/// `M` defaults to [`SimMemory`], so `P: Protocol` and
/// `Box<dyn Protocol>` keep meaning what they always did; drivers that
/// are generic over the plane take `P: Protocol<M>` and stay fully
/// monomorphized — the memory's concrete `read`/`write` inline into the
/// protocol's fused step, which inlines into the event loop, with no
/// `dyn` anywhere on the path.
///
/// Most protocols implement this with an empty body over every plane
/// (`impl<M: MemStore> Protocol<M> for X {}`), inheriting the provided
/// [`Protocol::step_status`].
///
/// `Send` is a supertrait so engine handles caching a
/// `Box<dyn Protocol<M>>` (e.g. `nc_engine::sim::SimRun`) can migrate
/// across worker threads — `nc_service` fans pooled per-shard handles
/// out this way. Every in-tree protocol is plain data plus a seeded
/// RNG, so the bound costs nothing.
pub trait Protocol<M: MemStore = SimMemory>: ProtocolCore + Send {
    /// Executes this machine's pending operation directly against `mem`
    /// and returns the post-operation status; on an already-decided
    /// machine, returns the decision without touching memory.
    ///
    /// Semantically this IS `status()` + [`MemStore::exec`] +
    /// [`ProtocolCore::advance_status`], and the provided implementation
    /// is exactly that. It exists as a trait method so protocols can
    /// fuse the three (one state match instead of three, no `Op`
    /// encode/decode round-trip) — on the engine's hot path that fusion
    /// is a measurable fraction of whole-simulation throughput.
    /// Overrides **must** execute the identical memory operation and
    /// return the identical status; the engine's baseline-equivalence
    /// suite pins this.
    #[inline]
    fn step_status(&mut self, mem: &mut M) -> Status {
        match self.status() {
            Status::Pending(op) => {
                let observed = mem.exec(op);
                self.advance_status(observed)
            }
            done => done,
        }
    }
}

impl<P: ProtocolCore + ?Sized> ProtocolCore for Box<P> {
    fn status(&self) -> Status {
        (**self).status()
    }

    fn advance(&mut self, read_value: Option<Word>) {
        (**self).advance(read_value)
    }

    fn advance_status(&mut self, read_value: Option<Word>) -> Status {
        (**self).advance_status(read_value)
    }

    fn round(&self) -> usize {
        (**self).round()
    }

    fn preference(&self) -> Bit {
        (**self).preference()
    }

    fn ops_completed(&self) -> u64 {
        (**self).ops_completed()
    }

    fn lean_hot(&self) -> Option<crate::LeanHot> {
        (**self).lean_hot()
    }

    fn lean_hot_restore(&mut self, hot: crate::LeanHot) {
        (**self).lean_hot_restore(hot)
    }
}

impl<M: MemStore, P: Protocol<M> + ?Sized> Protocol<M> for Box<P> {
    fn step_status(&mut self, mem: &mut M) -> Status {
        (**self).step_status(mem)
    }
}

/// Executes one step of `proc` against `mem`: if the machine is pending,
/// performs its operation and advances it, returning `None`; if it has
/// decided, returns the decision without touching memory.
///
/// This is the minimal driver, used by unit tests, doc examples, and the
/// larger drivers in `nc-engine`. Generic over the word-store plane.
pub fn step<M: MemStore, P: Protocol<M> + ?Sized>(proc_: &mut P, mem: &mut M) -> Option<Bit> {
    match proc_.status() {
        Status::Decided(b) => Some(b),
        Status::Pending(op) => {
            let read = mem.exec(op);
            proc_.advance(read);
            None
        }
    }
}

/// Drives a set of protocol instances round-robin until all have decided,
/// returning their decisions in process order, or `None` if `max_steps`
/// total operations elapse first.
///
/// Round-robin is close to the worst schedule for lean-consensus (nobody
/// pulls ahead), so this helper doubles as a stress driver in tests.
pub fn run_round_robin<M: MemStore, P: Protocol<M>>(
    procs: &mut [P],
    mem: &mut M,
    max_steps: u64,
) -> Option<Vec<Bit>> {
    let mut steps = 0u64;
    loop {
        let mut all_decided = true;
        for p in procs.iter_mut() {
            if step(p, mem).is_none() {
                all_decided = false;
                steps += 1;
                if steps > max_steps {
                    return None;
                }
            }
        }
        if all_decided {
            return Some(
                procs
                    .iter()
                    .map(|p| p.status().decision().expect("all decided"))
                    .collect(),
            );
        }
    }
}

/// Drives a set of protocol instances by stepping a uniformly random
/// undecided process each step (seeded, reproducible) until all decide,
/// returning decisions in process order, or `None` if `max_steps` elapse.
///
/// Random interleaving is the discrete analogue of exponential noise, so
/// unlike [`run_round_robin`] it terminates lean-consensus with
/// probability 1 even on split inputs.
pub fn run_random_interleave<M: MemStore, P: Protocol<M>>(
    procs: &mut [P],
    mem: &mut M,
    seed: u64,
    max_steps: u64,
) -> Option<Vec<Bit>> {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut undecided: Vec<usize> = (0..procs.len()).collect();
    let mut steps = 0u64;
    while !undecided.is_empty() {
        if steps >= max_steps {
            return None;
        }
        steps += 1;
        let k = rng.random_range(0..undecided.len());
        let pid = undecided[k];
        if step(&mut procs[pid], mem).is_some() {
            undecided.swap_remove(k);
        }
    }
    Some(
        procs
            .iter()
            .map(|p| p.status().decision().expect("all decided"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_memory::Addr;

    /// A toy machine: reads address 0; decides One if it saw a nonzero,
    /// else writes 1 to address 0 and retries.
    #[derive(Debug)]
    struct Toy {
        state: u8,
        ops: u64,
    }

    impl Toy {
        fn new() -> Self {
            Toy { state: 0, ops: 0 }
        }
    }

    impl<M: MemStore> Protocol<M> for Toy {}

    impl ProtocolCore for Toy {
        fn status(&self) -> Status {
            match self.state {
                0 => Status::Pending(Op::Read(Addr::new(0))),
                1 => Status::Pending(Op::Write(Addr::new(0), 1)),
                _ => Status::Decided(Bit::One),
            }
        }

        fn advance(&mut self, read_value: Option<Word>) {
            self.ops += 1;
            match self.state {
                0 => {
                    let v = read_value.expect("read result");
                    self.state = if v != 0 { 2 } else { 1 };
                }
                1 => {
                    assert!(read_value.is_none());
                    self.state = 0;
                }
                _ => panic!("advance after decision"),
            }
        }

        fn round(&self) -> usize {
            1
        }

        fn preference(&self) -> Bit {
            Bit::One
        }

        fn ops_completed(&self) -> u64 {
            self.ops
        }
    }

    use nc_memory::Op;

    #[test]
    fn step_executes_pending_and_reports_decision() {
        let mut mem = SimMemory::new();
        let mut t = Toy::new();
        assert_eq!(step(&mut t, &mut mem), None); // read 0
        assert_eq!(step(&mut t, &mut mem), None); // write 1
        assert_eq!(step(&mut t, &mut mem), None); // read 1
        assert_eq!(step(&mut t, &mut mem), Some(Bit::One));
        assert_eq!(t.ops_completed(), 3);
        // step on a decided machine is a no-op returning the decision
        let ops_before = mem.ops_executed();
        assert_eq!(step(&mut t, &mut mem), Some(Bit::One));
        assert_eq!(mem.ops_executed(), ops_before);
    }

    #[test]
    fn run_round_robin_drives_all_to_decision() {
        let mut mem = SimMemory::new();
        let mut procs = vec![Toy::new(), Toy::new()];
        let decisions = run_round_robin(&mut procs, &mut mem, 100).unwrap();
        assert_eq!(decisions, vec![Bit::One, Bit::One]);
    }

    #[test]
    fn run_round_robin_respects_step_cap() {
        /// Never decides.
        #[derive(Debug)]
        struct Forever;
        impl<M: MemStore> Protocol<M> for Forever {}
        impl ProtocolCore for Forever {
            fn status(&self) -> Status {
                Status::Pending(Op::Read(Addr::new(0)))
            }
            fn advance(&mut self, _v: Option<Word>) {}
            fn round(&self) -> usize {
                1
            }
            fn preference(&self) -> Bit {
                Bit::Zero
            }
            fn ops_completed(&self) -> u64 {
                0
            }
        }
        let mut mem = SimMemory::new();
        let mut procs = vec![Forever, Forever];
        assert_eq!(run_round_robin(&mut procs, &mut mem, 50), None);
    }

    #[test]
    fn boxed_protocol_delegates() {
        let mut mem = SimMemory::new();
        let mut boxed: Box<dyn Protocol> = Box::new(Toy::new());
        assert_eq!(boxed.round(), 1);
        assert_eq!(boxed.preference(), Bit::One);
        while step(&mut *boxed, &mut mem).is_none() {}
        assert_eq!(boxed.status().decision(), Some(Bit::One));
        assert_eq!(boxed.ops_completed(), 3);
    }

    #[test]
    fn status_helpers() {
        assert_eq!(Status::Decided(Bit::One).decision(), Some(Bit::One));
        assert_eq!(Status::Pending(Op::Read(Addr::new(3))).decision(), None);
        assert_eq!(Status::Decided(Bit::Zero).to_string(), "decided 0");
        assert_eq!(
            Status::Pending(Op::Write(Addr::new(1), 1)).to_string(),
            "pending: write @1 <- 1"
        );
    }
}
