//! Executable statements of the paper's safety lemmas (§5).
//!
//! Every driver and test suite in the workspace funnels its executions
//! through these checkers:
//!
//! * **Agreement** — all decided processes decided the same bit.
//! * **Validity** — with unanimous inputs, every decision equals them
//!   (Lemma 3 also bounds the cost; that part is asserted in tests).
//! * **Lemma 2** (array prefix structure) — `a_b[r]` is set only if
//!   `r = 1` and `b` was somebody's input, or `r > 1` and `a_b[r-1]` is
//!   set. Equivalently: each array's set bits form a prefix rooted in an
//!   actual input.
//! * **Lemma 4(b)** (decision spread) — all decision rounds lie within
//!   one round of each other.
//!
//! The checkers take plain data (decisions, inputs, a bit-probe closure)
//! so they can run against simulated memory, recorded histories, or
//! native executions alike.

use std::error::Error;
use std::fmt;

use nc_memory::Bit;

/// A violation of one of the paper's safety properties.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SafetyViolation {
    /// Two processes decided different values.
    Disagreement {
        /// A process that decided `0`.
        zero_decider: usize,
        /// A process that decided `1`.
        one_decider: usize,
    },
    /// Inputs were unanimous but some process decided the other value.
    InvalidDecision {
        /// The unanimous input.
        input: Bit,
        /// The offending process.
        pid: usize,
        /// What it decided.
        decided: Bit,
    },
    /// `a_b[r]` is set without support (violates Lemma 2).
    BrokenPrefix {
        /// The array (`b`).
        bit: Bit,
        /// The unsupported round.
        round: usize,
    },
    /// `a_b[1]` is set but no process had input `b` (violates Lemma 2
    /// case (a)).
    ForgedInput {
        /// The array whose round-1 bit is set.
        bit: Bit,
    },
    /// Decision rounds spread over more than one round (violates
    /// Lemma 4(b)).
    DecisionSpread {
        /// Smallest decision round observed.
        earliest: usize,
        /// Largest decision round observed.
        latest: usize,
    },
}

impl fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyViolation::Disagreement {
                zero_decider,
                one_decider,
            } => write!(
                f,
                "agreement violated: P{zero_decider} decided 0 but P{one_decider} decided 1"
            ),
            SafetyViolation::InvalidDecision {
                input,
                pid,
                decided,
            } => write!(
                f,
                "validity violated: unanimous input {input} but P{pid} decided {decided}"
            ),
            SafetyViolation::BrokenPrefix { bit, round } => write!(
                f,
                "lemma 2 violated: a{bit}[{round}] is set but a{bit}[{}] is not",
                round - 1
            ),
            SafetyViolation::ForgedInput { bit } => write!(
                f,
                "lemma 2 violated: a{bit}[1] is set but no process had input {bit}"
            ),
            SafetyViolation::DecisionSpread { earliest, latest } => write!(
                f,
                "lemma 4 violated: decisions spread across rounds {earliest}..{latest}"
            ),
        }
    }
}

impl Error for SafetyViolation {}

/// Checks agreement: every decided process decided the same bit.
/// Undecided processes (`None`) are ignored — agreement is a property of
/// decisions made, whether or not the run terminated.
///
/// # Errors
///
/// Returns [`SafetyViolation::Disagreement`] naming one decider of each
/// value.
pub fn check_agreement(decisions: &[Option<Bit>]) -> Result<(), SafetyViolation> {
    let zero = decisions.iter().position(|&d| d == Some(Bit::Zero));
    let one = decisions.iter().position(|&d| d == Some(Bit::One));
    match (zero, one) {
        (Some(z), Some(o)) => Err(SafetyViolation::Disagreement {
            zero_decider: z,
            one_decider: o,
        }),
        _ => Ok(()),
    }
}

/// Checks validity: if all inputs are equal, every decision equals them.
/// With mixed inputs any decision is permitted and the check passes.
///
/// # Errors
///
/// Returns [`SafetyViolation::InvalidDecision`] for the first offender.
pub fn check_validity(inputs: &[Bit], decisions: &[Option<Bit>]) -> Result<(), SafetyViolation> {
    let Some(&first) = inputs.first() else {
        return Ok(());
    };
    if inputs.iter().any(|&i| i != first) {
        return Ok(());
    }
    for (pid, d) in decisions.iter().enumerate() {
        if let Some(decided) = *d {
            if decided != first {
                return Err(SafetyViolation::InvalidDecision {
                    input: first,
                    pid,
                    decided,
                });
            }
        }
    }
    Ok(())
}

/// Checks Lemma 2 against the final memory state: for each array `a_b`,
/// the set bits over rounds `1..=max_round` form a prefix, and the prefix
/// is non-empty only if some process had input `b`.
///
/// `bit_set(b, r)` must report whether `a_b[r]` is set (round 0 — the
/// sentinels — is not queried).
///
/// # Errors
///
/// Returns [`SafetyViolation::BrokenPrefix`] or
/// [`SafetyViolation::ForgedInput`].
pub fn check_array_prefix(
    bit_set: impl Fn(Bit, usize) -> bool,
    inputs: &[Bit],
    max_round: usize,
) -> Result<(), SafetyViolation> {
    for b in Bit::BOTH {
        if max_round >= 1 && bit_set(b, 1) && !inputs.contains(&b) {
            return Err(SafetyViolation::ForgedInput { bit: b });
        }
        for r in 2..=max_round {
            if bit_set(b, r) && !bit_set(b, r - 1) {
                return Err(SafetyViolation::BrokenPrefix { bit: b, round: r });
            }
        }
    }
    Ok(())
}

/// Checks Lemma 4(b): all decision rounds (of processes that decided)
/// differ by at most one.
///
/// # Errors
///
/// Returns [`SafetyViolation::DecisionSpread`] with the offending range.
pub fn check_decision_spread(decision_rounds: &[Option<usize>]) -> Result<(), SafetyViolation> {
    let decided: Vec<usize> = decision_rounds.iter().filter_map(|&r| r).collect();
    let (Some(&lo), Some(&hi)) = (decided.iter().min(), decided.iter().max()) else {
        return Ok(());
    };
    if hi - lo > 1 {
        Err(SafetyViolation::DecisionSpread {
            earliest: lo,
            latest: hi,
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_accepts_unanimous_and_partial() {
        assert!(check_agreement(&[Some(Bit::One), Some(Bit::One)]).is_ok());
        assert!(check_agreement(&[Some(Bit::Zero), None, Some(Bit::Zero)]).is_ok());
        assert!(check_agreement(&[None, None]).is_ok());
        assert!(check_agreement(&[]).is_ok());
    }

    #[test]
    fn agreement_rejects_split_decisions() {
        let err = check_agreement(&[Some(Bit::One), None, Some(Bit::Zero)]).unwrap_err();
        assert_eq!(
            err,
            SafetyViolation::Disagreement {
                zero_decider: 2,
                one_decider: 0
            }
        );
        assert!(err.to_string().contains("agreement violated"));
    }

    #[test]
    fn validity_accepts_matching_and_mixed() {
        assert!(check_validity(&[Bit::One; 3], &[Some(Bit::One), None, Some(Bit::One)]).is_ok());
        // Mixed inputs: anything goes.
        assert!(check_validity(&[Bit::Zero, Bit::One], &[Some(Bit::One), Some(Bit::One)]).is_ok());
        assert!(check_validity(&[], &[]).is_ok());
    }

    #[test]
    fn validity_rejects_flipped_unanimous() {
        let err = check_validity(&[Bit::Zero; 2], &[Some(Bit::Zero), Some(Bit::One)]).unwrap_err();
        assert_eq!(
            err,
            SafetyViolation::InvalidDecision {
                input: Bit::Zero,
                pid: 1,
                decided: Bit::One
            }
        );
        assert!(err.to_string().contains("validity violated"));
    }

    #[test]
    fn prefix_accepts_proper_prefixes() {
        // a0 set through round 3, a1 through round 1.
        let set = |b: Bit, r: usize| match b {
            Bit::Zero => r <= 3,
            Bit::One => r <= 1,
        };
        assert!(check_array_prefix(set, &[Bit::Zero, Bit::One], 5).is_ok());
    }

    #[test]
    fn prefix_rejects_gaps() {
        let set = |b: Bit, r: usize| b == Bit::Zero && (r == 1 || r == 3);
        let err = check_array_prefix(set, &[Bit::Zero], 4).unwrap_err();
        assert_eq!(
            err,
            SafetyViolation::BrokenPrefix {
                bit: Bit::Zero,
                round: 3
            }
        );
        assert!(err.to_string().contains("lemma 2"));
    }

    #[test]
    fn prefix_rejects_forged_inputs() {
        let set = |b: Bit, r: usize| b == Bit::One && r == 1;
        let err = check_array_prefix(set, &[Bit::Zero, Bit::Zero], 2).unwrap_err();
        assert_eq!(err, SafetyViolation::ForgedInput { bit: Bit::One });
    }

    #[test]
    fn prefix_empty_arrays_are_fine() {
        assert!(check_array_prefix(|_, _| false, &[], 10).is_ok());
        assert!(check_array_prefix(|_, _| false, &[Bit::Zero], 0).is_ok());
    }

    #[test]
    fn spread_accepts_tight_decisions() {
        assert!(check_decision_spread(&[Some(4), Some(5), Some(4)]).is_ok());
        assert!(check_decision_spread(&[Some(7)]).is_ok());
        assert!(check_decision_spread(&[None, Some(3), None, Some(3)]).is_ok());
        assert!(check_decision_spread(&[]).is_ok());
    }

    #[test]
    fn spread_rejects_wide_decisions() {
        let err = check_decision_spread(&[Some(2), None, Some(5)]).unwrap_err();
        assert_eq!(
            err,
            SafetyViolation::DecisionSpread {
                earliest: 2,
                latest: 5
            }
        );
        assert!(err.to_string().contains("lemma 4"));
    }
}
