//! The **lean-consensus** protocol of Aspnes, *Fast Deterministic
//! Consensus in a Noisy Environment* (PODC 2000), and its variants.
//!
//! lean-consensus is a deterministic, wait-free binary consensus protocol
//! for asynchronous shared memory. It is Chandra's PODC'96 algorithm with
//! every randomized part removed: processes preferring 0 race processes
//! preferring 1 up two arrays of atomic bits, `a0` and `a1`. In each round
//! `r` a process with preference `p` performs exactly four operations:
//!
//! 1. read `a0[r]`; 2. read `a1[r]` — if exactly one of them is set,
//!    adopt that side's preference;
//! 3. write `1` to `a_p[r]`;
//! 4. read `a_{1-p}[r-1]` — if it is still `0`, the rival team is at
//!    least two rounds behind: **decide `p`**.
//!
//! Agreement and validity hold under *any* schedule (§5, Lemmas 2–4);
//! termination relies on the environment letting some process pull ahead
//! (noisy scheduling: Θ(log n) rounds, §6; hybrid uniprocessor
//! scheduling: ≤ 12 operations, §7).
//!
//! # What this crate provides
//!
//! * [`ProtocolCore`] / [`Protocol`] — the step-machine interface every
//!   protocol in the workspace implements: expose the pending
//!   shared-memory [`Op`], consume its result ([`ProtocolCore`]), and
//!   step fused against any [`nc_memory::MemStore`] word-store plane
//!   ([`Protocol<M>`], defaulting to `SimMemory`). One implementation
//!   runs unchanged under the discrete-event engine (on any memory
//!   backend), the hybrid uniprocessor driver, and native threads.
//! * [`LeanConsensus`] — the paper's algorithm, operation-exact.
//! * [`SkippingLean`] — the "optimized" variant §4 warns against
//!   (skips provably redundant operations), kept for the ablation
//!   experiment showing the paradox: skipping ops *slows termination*.
//! * [`RandomizedLean`] — a local-coin variant: identical to
//!   lean-consensus except that a process seeing **both** frontier bits
//!   set re-randomizes its preference (the only placement of local
//!   randomness that preserves Lemmas 2–4; see the module docs for why
//!   an all-zero-frontier coin is genuinely unsafe, and why local coins
//!   cannot defeat lockstep schedules — that takes a shared coin, i.e.
//!   the `nc-backup` protocol).
//! * [`BoundedLean`] — the §8 combined protocol: lean-consensus through
//!   round `r_max`, then hand the current preference to a bounded-space
//!   backup protocol (any [`Protocol`] with validity).
//! * [`NativeConsensus`] — lean-consensus on real threads over
//!   lock-free atomic arrays, and [`IdConsensus`] — footnote 2's
//!   id consensus from a `lg n`-depth tree of binary objects.
//! * [`invariants`] — executable statements of Lemmas 2–4 used across
//!   the test suites.
//!
//! # Quickstart (simulated memory, randomly interleaved schedule)
//!
//! ```
//! use nc_core::{run_random_interleave, LeanConsensus, Protocol};
//! use nc_memory::{Bit, RaceLayout, SimMemory};
//!
//! let mut mem = SimMemory::new();
//! let layout = RaceLayout::at_base(0);
//! layout.install_sentinels(&mut mem);
//!
//! let mut procs: Vec<LeanConsensus> = [Bit::Zero, Bit::One, Bit::One]
//!     .iter()
//!     .map(|&input| LeanConsensus::new(layout, input))
//!     .collect();
//!
//! let decisions =
//!     run_random_interleave(&mut procs, &mut mem, 42, 1_000_000).expect("terminates");
//! assert!(decisions.iter().all(|&d| d == decisions[0]), "agreement");
//! ```
//!
//! (A perfectly fair round-robin schedule with split inputs keeps the
//! race tied forever — that is the FLP-mandated bad schedule, and exactly
//! what the paper's noise assumption rules out.)

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bounded;
pub mod id;
pub mod invariants;
pub mod lean;
pub mod protocol;
pub mod randomized;
pub mod skipping;
pub mod threaded;

pub use bounded::BoundedLean;
pub use id::IdConsensus;
pub use lean::{LeanConsensus, LeanHot};
pub use protocol::{run_random_interleave, run_round_robin, step, Protocol, ProtocolCore, Status};
pub use randomized::RandomizedLean;
pub use skipping::SkippingLean;
pub use threaded::{Decision, NativeConsensus, RoundLimitError};

pub use nc_memory::{Bit, Op, Word};
