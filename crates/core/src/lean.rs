//! The lean-consensus algorithm (§4 of the paper), operation-exact.
//!
//! > "Note that in each round the process carries out exactly four
//! > operations in the same sequence: two reads, a write, and another
//! > read."
//!
//! The operation order matters: the paper explicitly warns that
//! "optimizing" away apparently superfluous operations (the write when
//! `a_p[r]` is already set, the final read when it is deducible) helps
//! slow processes and hurts fast ones, *slowing* termination. This module
//! implements the unoptimized algorithm; [`crate::skipping`] implements
//! the warned-against variant for the ablation experiment.
//!
//! Internally the state machine is a packed, table-driven [`LeanHot`]:
//! the four-operation round is encoded as two four-entry offset tables
//! (address = `base + 2·round + bias[phase] + pref_weight[phase]·pref`)
//! and a branchless phase/preference/round update, so the per-operation
//! step compiles to straight-line arithmetic with no `Option` plumbing
//! and no unpredictable phase match. The engine's batched executor
//! borrows this representation wholesale via
//! [`ProtocolCore::lean_hot`] to keep K in-flight processes' hot state
//! in one contiguous array.

use std::fmt;

use nc_memory::{Addr, Bit, MemStore, Op, RaceLayout, Word};

use crate::protocol::{Protocol, ProtocolCore, Status};

/// Phase indices for [`LeanHot`]: where a process is inside its
/// four-operation round.
const PH_READ_A0: u8 = 0;
const PH_READ_A1: u8 = 1;
const PH_WRITE: u8 = 2;
const PH_READ_PREV_RIVAL: u8 = 3;
const PH_DONE: u8 = 4;

/// Address offset of each phase's operation relative to `2·round`, as
/// `ADDR_BIAS[phase] + ADDR_PREF[phase] · pref`:
///
/// | phase | operation          | offset            |
/// |-------|--------------------|-------------------|
/// | 0     | read `a0[r]`       | `0`               |
/// | 1     | read `a1[r]`       | `1`               |
/// | 2     | write `a_p[r]`     | `p`               |
/// | 3     | read `a_{1-p}[r-1]`| `-2 + (1 - p)`    |
const ADDR_BIAS: [i64; 4] = [0, 1, 0, -1];
const ADDR_PREF: [i64; 4] = [0, 0, 1, -1];

/// The round's phase cycle `0 → 1 → 2 → 3 → 0` (decision diverts to
/// [`PH_DONE`] instead of wrapping).
const NEXT_PHASE: [u8; 4] = [PH_READ_A1, PH_WRITE, PH_READ_PREV_RIVAL, PH_READ_A0];

/// Packed hot-path state of one lean-consensus process: the entire
/// per-operation step as table lookups and conditional moves.
///
/// This is the representation [`LeanConsensus`] runs on, and the one the
/// engine's batched executor checks out via [`ProtocolCore::lean_hot`] /
/// [`ProtocolCore::lean_hot_restore`] so K processes' state lives in one
/// dense array while a micro-batch is in flight. Invariants the packed
/// form maintains (and callers must not break, which is why the fields
/// are private): `phase ≤ 4`, `pref ∈ {0, 1}`, `round ≥ 1`, and the
/// address of every pending operation is `≥ base` (the phase-3 read of
/// round `r` targets `2(r-1) + (1-p) ≥ 0`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LeanHot {
    /// Shared-memory operations completed so far.
    ops: u64,
    /// Current round `r ≥ 1`.
    round: u64,
    /// First word of the interleaved `a0`/`a1` plane (the
    /// [`RaceLayout`] base offset).
    base: usize,
    /// `PH_*` phase index; `4` means decided.
    phase: u8,
    /// Value observed in `a0[r]` by phase 0, consulted by phase 1.
    a0_set: u8,
    /// Current preference bit as `0`/`1`.
    pref: u8,
}

impl LeanHot {
    /// Fresh state at round 1 for a process with the given input,
    /// addressing a race plane rooted at word offset `base`.
    fn fresh(base: usize, input: Bit) -> Self {
        LeanHot {
            ops: 0,
            round: 1,
            base,
            phase: PH_READ_A0,
            a0_set: 0,
            pref: input.index() as u8,
        }
    }

    /// The pending operation as `(word offset, is_write)`.
    ///
    /// Writes always store `1` ([`Bit::One`] as a word) — the protocol
    /// never writes anything else. Must not be called on a decided
    /// process.
    #[inline(always)]
    pub fn op_addr(&self) -> (usize, bool) {
        let p = self.phase as usize;
        debug_assert!(p < PH_DONE as usize, "op_addr on a decided process");
        let off = 2 * self.round as i64 + ADDR_BIAS[p] + ADDR_PREF[p] * i64::from(self.pref);
        ((self.base as i64 + off) as usize, self.phase == PH_WRITE)
    }

    /// Consumes the result of the pending operation (`0` for the write)
    /// and advances one phase. Returns `true` exactly when this step
    /// decided; the decision value is [`Self::preference`].
    ///
    /// Branchless by construction: every update is a table lookup or a
    /// conditional move keyed on the phase index, so the engine's hot
    /// loop carries no unpredictable phase branch.
    #[inline(always)]
    pub fn advance(&mut self, read_value: Word) -> bool {
        debug_assert!(self.phase < PH_DONE, "advance called on a decided process");
        let p = self.phase;
        let set = (read_value != 0) as u8;
        self.ops += 1;
        // Phase 0 latches a0[r]; phase 1 compares a1[r] against it and
        // applies §4 step 1: if exactly one of a_b[r] is set, prefer b
        // (which equals a1's value precisely when the two differ).
        self.a0_set = if p == PH_READ_A0 { set } else { self.a0_set };
        let repref = (p == PH_READ_A1) & (self.a0_set != set);
        self.pref = if repref { set } else { self.pref };
        // Phase 3 (§4 step 3): rival frontier at r-1 empty → decide;
        // otherwise enter round r+1.
        let final_read = p == PH_READ_PREV_RIVAL;
        let decided = final_read & (set == 0);
        self.round += u64::from(final_read & (set != 0));
        self.phase = if decided {
            PH_DONE
        } else {
            NEXT_PHASE[p as usize]
        };
        decided
    }

    /// Whether this process has decided.
    #[inline(always)]
    pub fn is_decided(&self) -> bool {
        self.phase == PH_DONE
    }

    /// Current round (the decision round once decided).
    #[inline(always)]
    pub fn round(&self) -> usize {
        self.round as usize
    }

    /// Current preference (the decision value once decided).
    #[inline(always)]
    pub fn preference(&self) -> Bit {
        Bit::from_word(Word::from(self.pref))
    }

    /// Shared-memory operations completed so far.
    #[inline(always)]
    pub fn ops_completed(&self) -> u64 {
        self.ops
    }
}

/// One process's lean-consensus state machine.
///
/// Create one instance per process with that process's input bit; all
/// instances of the same execution must share one [`RaceLayout`] (and the
/// sentinels `a0[0] = a1[0] = 1` must be installed in the memory before
/// any step runs — see [`RaceLayout::install_sentinels`]).
///
/// # Example
///
/// ```
/// use nc_core::{step, LeanConsensus, ProtocolCore};
/// use nc_memory::{Bit, RaceLayout, SimMemory};
///
/// let mut mem = SimMemory::new();
/// let layout = RaceLayout::at_base(0);
/// layout.install_sentinels(&mut mem);
///
/// // A solo process decides after 8 operations (Lemma 3).
/// let mut p = LeanConsensus::new(layout, Bit::One);
/// let mut decided = None;
/// while decided.is_none() {
///     decided = step(&mut p, &mut mem);
/// }
/// assert_eq!(decided, Some(Bit::One));
/// assert_eq!(p.ops_completed(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct LeanConsensus {
    layout: RaceLayout,
    input: Bit,
    hot: LeanHot,
}

impl LeanConsensus {
    /// Creates the state machine for a process with the given input,
    /// starting at round 1.
    pub fn new(layout: RaceLayout, input: Bit) -> Self {
        LeanConsensus {
            layout,
            input,
            hot: LeanHot::fresh(layout.slot(Bit::Zero, 0).offset(), input),
        }
    }

    /// The input bit this process started with.
    pub fn input(&self) -> Bit {
        self.input
    }

    /// The round in which this process decided, if it has.
    ///
    /// A process decides during its current round, so this equals
    /// [`ProtocolCore::round`] after decision.
    pub fn decision_round(&self) -> Option<usize> {
        self.hot.is_decided().then_some(self.hot.round())
    }

    /// The shared-memory layout this instance runs against.
    pub fn layout(&self) -> RaceLayout {
        self.layout
    }
}

impl ProtocolCore for LeanConsensus {
    fn status(&self) -> Status {
        if self.hot.is_decided() {
            return Status::Decided(self.hot.preference());
        }
        let (offset, is_write) = self.hot.op_addr();
        let addr = Addr::new(offset);
        Status::Pending(if is_write {
            Op::Write(addr, Bit::One.word())
        } else {
            Op::Read(addr)
        })
    }

    fn advance(&mut self, read_value: Option<Word>) {
        let v = match self.hot.phase {
            PH_READ_A0 => read_value.expect("pending read of a0[r] requires a value"),
            PH_READ_A1 => read_value.expect("pending read of a1[r] requires a value"),
            PH_WRITE => {
                assert!(
                    read_value.is_none(),
                    "pending write must not receive a read value"
                );
                0
            }
            PH_READ_PREV_RIVAL => {
                read_value.expect("pending read of a_(1-p)[r-1] requires a value")
            }
            _ => panic!("advance called on a decided process"),
        };
        self.hot.advance(v);
    }

    fn round(&self) -> usize {
        self.hot.round()
    }

    fn preference(&self) -> Bit {
        self.hot.preference()
    }

    fn ops_completed(&self) -> u64 {
        self.hot.ops_completed()
    }

    fn lean_hot(&self) -> Option<LeanHot> {
        Some(self.hot)
    }

    fn lean_hot_restore(&mut self, hot: LeanHot) {
        debug_assert_eq!(hot.base, self.hot.base, "lean_hot_restore layout mismatch");
        self.hot = hot;
    }
}

impl<M: MemStore> Protocol<M> for LeanConsensus {
    /// The fused fast path: decode the pending operation from the packed
    /// tables, perform it directly against the word store, and advance in
    /// one branchless step — instead of the `status()` → `exec` →
    /// `advance` → `status()` round-trip (three phase matches and an
    /// `Op` encode/decode). Generic over the word-store plane, so the
    /// memory's concrete `read`/`write` inline straight into the step.
    /// Bit-identical behavior by construction: the packed step performs
    /// exactly the operation `status()` surfaces and produces exactly
    /// the state `advance` would (pinned by the protocol tests and the
    /// engine's baseline-equivalence suite).
    fn step_status(&mut self, mem: &mut M) -> Status {
        if self.hot.is_decided() {
            return Status::Decided(self.hot.preference());
        }
        let (offset, is_write) = self.hot.op_addr();
        let addr = Addr::new(offset);
        let v = if is_write {
            mem.write(addr, Bit::One.word());
            0
        } else {
            mem.read(addr)
        };
        if self.hot.advance(v) {
            Status::Decided(self.hot.preference())
        } else {
            self.status()
        }
    }
}

impl fmt::Display for LeanConsensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lean(pref={}, round={}, {})",
            self.preference(),
            self.round(),
            self.status()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{run_random_interleave, run_round_robin, step};
    use nc_memory::{OpKind, SimMemory};

    fn setup(inputs: &[Bit]) -> (SimMemory, RaceLayout, Vec<LeanConsensus>) {
        let mut mem = SimMemory::new();
        let layout = RaceLayout::at_base(0);
        layout.install_sentinels(&mut mem);
        let procs = inputs
            .iter()
            .map(|&b| LeanConsensus::new(layout, b))
            .collect();
        (mem, layout, procs)
    }

    #[test]
    fn round_is_two_reads_one_write_one_read() {
        let (mut mem, _, mut procs) = setup(&[Bit::Zero]);
        let p = &mut procs[0];
        let kinds: Vec<OpKind> = (0..4)
            .map(|_| {
                let Status::Pending(op) = p.status() else {
                    panic!("decided too early")
                };
                let k = op.kind();
                step(p, &mut mem);
                k
            })
            .collect();
        assert_eq!(
            kinds,
            vec![OpKind::Read, OpKind::Read, OpKind::Write, OpKind::Read]
        );
    }

    #[test]
    fn solo_process_decides_own_input_in_8_ops() {
        for input in Bit::BOTH {
            let (mut mem, _, mut procs) = setup(&[input]);
            let p = &mut procs[0];
            let mut decision = None;
            for _ in 0..8 {
                assert_eq!(decision, None);
                step(p, &mut mem);
                decision = p.status().decision();
            }
            assert_eq!(decision, Some(input));
            assert_eq!(p.ops_completed(), 8);
            assert_eq!(p.decision_round(), Some(2));
        }
    }

    #[test]
    fn lemma3_same_inputs_decide_in_8_ops_each() {
        // Lemma 3: if every process starts with b, every process decides b
        // after executing 8 operations — under any schedule; round-robin
        // here, more schedules in the property tests.
        for input in Bit::BOTH {
            let (mut mem, _, mut procs) = setup(&[input; 5]);
            let decisions = run_round_robin(&mut procs, &mut mem, 1_000).unwrap();
            for (p, d) in procs.iter().zip(decisions) {
                assert_eq!(d, input);
                assert_eq!(p.ops_completed(), 8, "validity cost must be exactly 8 ops");
            }
        }
    }

    #[test]
    fn lockstep_split_inputs_never_terminate() {
        // Perfect round-robin keeps the teams tied by symmetry forever —
        // the exact behaviour FLP guarantees an adversary can force, and
        // the reason termination needs the noisy environment.
        let (mut mem, _, mut procs) = setup(&[Bit::Zero, Bit::One, Bit::One, Bit::Zero]);
        assert_eq!(run_round_robin(&mut procs, &mut mem, 100_000), None);
    }

    #[test]
    fn random_interleaving_mixed_inputs_agree() {
        for seed in 0..10 {
            let (mut mem, _, mut procs) = setup(&[Bit::Zero, Bit::One, Bit::One, Bit::Zero]);
            let decisions = run_random_interleave(&mut procs, &mut mem, seed, 2_000_000).unwrap();
            let first = decisions[0];
            assert!(decisions.iter().all(|&d| d == first), "agreement violated");
        }
    }

    #[test]
    fn decision_rounds_differ_by_at_most_one() {
        // Lemma 4(b): all processes decide within one round of each other.
        for seed in 0..10 {
            let (mut mem, _, mut procs) =
                setup(&[Bit::Zero, Bit::One, Bit::Zero, Bit::One, Bit::One]);
            run_random_interleave(&mut procs, &mut mem, seed, 2_000_000).unwrap();
            let rounds: Vec<usize> = procs.iter().map(|p| p.decision_round().unwrap()).collect();
            let lo = *rounds.iter().min().unwrap();
            let hi = *rounds.iter().max().unwrap();
            assert!(hi - lo <= 1, "decision rounds spread {lo}..{hi}");
        }
    }

    #[test]
    fn sentinel_read_keeps_round_1_undecided() {
        // The final read of round 1 hits the sentinel a_{1-p}[0] = 1, so
        // no process can decide in round 1.
        let (mut mem, _, mut procs) = setup(&[Bit::One]);
        let p = &mut procs[0];
        for _ in 0..4 {
            step(p, &mut mem);
        }
        assert_eq!(p.status().decision(), None);
        assert_eq!(p.round(), 2);
    }

    #[test]
    fn laggard_adopts_leader_preference() {
        // Leader (input 1) runs 8 ops solo and decides; laggard (input 0)
        // then runs and must adopt 1 (agreement).
        let (mut mem, layout, _) = setup(&[]);
        let mut leader = LeanConsensus::new(layout, Bit::One);
        let mut laggard = LeanConsensus::new(layout, Bit::Zero);
        while step(&mut leader, &mut mem).is_none() {}
        assert_eq!(leader.status().decision(), Some(Bit::One));
        let mut d = None;
        let mut guard = 0;
        while d.is_none() {
            d = step(&mut laggard, &mut mem);
            guard += 1;
            assert!(guard < 100, "laggard failed to decide");
        }
        assert_eq!(d, Some(Bit::One));
        assert_eq!(laggard.preference(), Bit::One);
    }

    #[test]
    fn preference_unchanged_on_tied_frontier() {
        // If both a0[r] and a1[r] are set, the process keeps its
        // preference (the deterministic rule §4 step 1).
        let (mut mem, layout, _) = setup(&[]);
        mem.write(layout.slot(Bit::Zero, 1), 1);
        mem.write(layout.slot(Bit::One, 1), 1);
        let mut p = LeanConsensus::new(layout, Bit::Zero);
        step(&mut p, &mut mem); // read a0[1] = 1
        step(&mut p, &mut mem); // read a1[1] = 1
        assert_eq!(p.preference(), Bit::Zero);
    }

    #[test]
    fn write_goes_to_current_preference_array() {
        let (mut mem, layout, _) = setup(&[]);
        // Rig round 1 so an input-0 process adopts preference 1.
        mem.write(layout.slot(Bit::One, 1), 1);
        let mut p = LeanConsensus::new(layout, Bit::Zero);
        step(&mut p, &mut mem); // read a0[1] = 0
        step(&mut p, &mut mem); // read a1[1] = 1 -> adopt 1
        assert_eq!(p.preference(), Bit::One);
        let Status::Pending(op) = p.status() else {
            panic!()
        };
        assert_eq!(op, Op::Write(layout.slot(Bit::One, 1), 1));
    }

    #[test]
    fn step_status_is_equivalent_to_exec_plus_advance() {
        // Drive two identical instances — one through the generic
        // status/exec/advance protocol, one through the fused
        // step_status — against two identical memories, comparing every
        // returned status, all observable state, and the full memory
        // contents at each step.
        for inputs in [vec![Bit::Zero], vec![Bit::Zero, Bit::One, Bit::One]] {
            let (mut mem_a, layout, mut procs_a) = setup(&inputs);
            let (mut mem_b, _, mut procs_b) = setup(&inputs);
            for step_no in 0..200 {
                let pid = step_no % inputs.len();
                let a = &mut procs_a[pid];
                let generic = match a.status() {
                    Status::Pending(op) => {
                        let observed = mem_a.exec(op);
                        a.advance_status(observed)
                    }
                    done => done,
                };
                let fused = procs_b[pid].step_status(&mut mem_b);
                assert_eq!(generic, fused, "step {step_no}");
                assert_eq!(a.round(), procs_b[pid].round());
                assert_eq!(a.preference(), procs_b[pid].preference());
                assert_eq!(a.ops_completed(), procs_b[pid].ops_completed());
                for off in 0..32 {
                    let addr = nc_memory::Addr::new(off);
                    assert_eq!(mem_a.peek(addr), mem_b.peek(addr), "addr {off}");
                }
            }
            let _ = layout;
        }
    }

    #[test]
    fn lean_hot_checkout_matches_in_place_stepping() {
        // The engine's batched executor checks the packed state out with
        // lean_hot(), drives it directly against the memory words via
        // op_addr()/advance(), and restores it with lean_hot_restore().
        // Pin that external drive to the in-place status()/advance()
        // protocol, op for op, over a nontrivial multi-process run.
        let inputs = [Bit::Zero, Bit::One, Bit::One, Bit::Zero, Bit::One];
        let (mut mem_a, _, mut procs_a) = setup(&inputs);
        let (mut mem_b, _, mut procs_b) = setup(&inputs);
        for step_no in 0..400 {
            let pid = (step_no * 7 + step_no / 3) % inputs.len();
            let a = &mut procs_a[pid];
            if let Status::Pending(op) = a.status() {
                let observed = mem_a.exec(op);
                a.advance_status(observed);
            }
            let b = &mut procs_b[pid];
            let mut hot = b.lean_hot().expect("lean exports hot state");
            if !hot.is_decided() {
                let (offset, is_write) = hot.op_addr();
                let addr = Addr::new(offset);
                let v = if is_write {
                    mem_b.write(addr, Bit::One.word());
                    0
                } else {
                    mem_b.read(addr)
                };
                let decided = hot.advance(v);
                assert_eq!(decided, hot.is_decided());
            }
            b.lean_hot_restore(hot);
            assert_eq!(
                procs_a[pid].status(),
                procs_b[pid].status(),
                "step {step_no}"
            );
            assert_eq!(procs_a[pid].round(), procs_b[pid].round());
            assert_eq!(procs_a[pid].preference(), procs_b[pid].preference());
            assert_eq!(procs_a[pid].ops_completed(), procs_b[pid].ops_completed());
            for off in 0..32 {
                let addr = nc_memory::Addr::new(off);
                assert_eq!(mem_a.peek(addr), mem_b.peek(addr), "addr {off}");
            }
        }
        assert!(
            procs_a.iter().any(|p| p.status().decision().is_some()),
            "exercise must reach decisions"
        );
    }

    #[test]
    fn lean_hot_addressing_matches_status_ops() {
        // op_addr()'s table-driven stride-2 addressing must agree with
        // the Op surfaced by status() in every phase, for layouts at
        // nonzero bases too.
        for base in [0usize, 10, 257] {
            let layout = RaceLayout::at_base(base);
            let mut mem = SimMemory::new();
            layout.install_sentinels(&mut mem);
            let mut p = LeanConsensus::new(layout, Bit::Zero);
            for _ in 0..64 {
                let Status::Pending(op) = p.status() else {
                    break;
                };
                let hot = p.lean_hot().unwrap();
                let (offset, is_write) = hot.op_addr();
                match op {
                    Op::Read(a) => {
                        assert!(!is_write);
                        assert_eq!(a.offset(), offset);
                    }
                    Op::Write(a, v) => {
                        assert!(is_write);
                        assert_eq!(a.offset(), offset);
                        assert_eq!(v, Bit::One.word());
                    }
                }
                step(&mut p, &mut mem);
            }
        }
    }

    #[test]
    fn input_accessor_and_display() {
        let (_, layout, _) = setup(&[]);
        let p = LeanConsensus::new(layout, Bit::One);
        assert_eq!(p.input(), Bit::One);
        assert_eq!(p.layout(), layout);
        assert!(p.to_string().contains("round=1"));
        assert_eq!(p.decision_round(), None);
    }

    #[test]
    #[should_panic(expected = "advance called on a decided process")]
    fn advance_after_decision_panics() {
        let (mut mem, _, mut procs) = setup(&[Bit::Zero]);
        let p = &mut procs[0];
        while step(p, &mut mem).is_none() {}
        p.advance(Some(0));
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn advance_read_without_value_panics() {
        let (_, layout, _) = setup(&[]);
        let mut p = LeanConsensus::new(layout, Bit::Zero);
        p.advance(None); // pending op is a read
    }

    #[test]
    #[should_panic(expected = "must not receive a read value")]
    fn advance_write_with_value_panics() {
        let (mut mem, layout, _) = setup(&[]);
        let mut p = LeanConsensus::new(layout, Bit::Zero);
        step(&mut p, &mut mem); // read a0
        step(&mut p, &mut mem); // read a1
        p.advance(Some(1)); // pending op is the write
    }
}
