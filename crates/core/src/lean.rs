//! The lean-consensus algorithm (§4 of the paper), operation-exact.
//!
//! > "Note that in each round the process carries out exactly four
//! > operations in the same sequence: two reads, a write, and another
//! > read."
//!
//! The operation order matters: the paper explicitly warns that
//! "optimizing" away apparently superfluous operations (the write when
//! `a_p[r]` is already set, the final read when it is deducible) helps
//! slow processes and hurts fast ones, *slowing* termination. This module
//! implements the unoptimized algorithm; [`crate::skipping`] implements
//! the warned-against variant for the ablation experiment.

use std::fmt;

use nc_memory::{Bit, MemStore, Op, RaceLayout, Word};

use crate::protocol::{Protocol, ProtocolCore, Status};

/// Where a process is inside its four-operation round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// About to read `a0[r]` (operation 1).
    ReadA0,
    /// About to read `a1[r]` (operation 2); remembers what `a0[r]` held.
    ReadA1 {
        /// Value observed in `a0[r]`.
        a0_set: bool,
    },
    /// About to write `1` to `a_p[r]` (operation 3).
    Write,
    /// About to read `a_{1-p}[r-1]` (operation 4).
    ReadPrevRival,
    /// Decided.
    Done(Bit),
}

/// One process's lean-consensus state machine.
///
/// Create one instance per process with that process's input bit; all
/// instances of the same execution must share one [`RaceLayout`] (and the
/// sentinels `a0[0] = a1[0] = 1` must be installed in the memory before
/// any step runs — see [`RaceLayout::install_sentinels`]).
///
/// # Example
///
/// ```
/// use nc_core::{step, LeanConsensus, ProtocolCore};
/// use nc_memory::{Bit, RaceLayout, SimMemory};
///
/// let mut mem = SimMemory::new();
/// let layout = RaceLayout::at_base(0);
/// layout.install_sentinels(&mut mem);
///
/// // A solo process decides after 8 operations (Lemma 3).
/// let mut p = LeanConsensus::new(layout, Bit::One);
/// let mut decided = None;
/// while decided.is_none() {
///     decided = step(&mut p, &mut mem);
/// }
/// assert_eq!(decided, Some(Bit::One));
/// assert_eq!(p.ops_completed(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct LeanConsensus {
    layout: RaceLayout,
    input: Bit,
    preference: Bit,
    round: usize,
    phase: Phase,
    ops: u64,
}

impl LeanConsensus {
    /// Creates the state machine for a process with the given input,
    /// starting at round 1.
    pub fn new(layout: RaceLayout, input: Bit) -> Self {
        LeanConsensus {
            layout,
            input,
            preference: input,
            round: 1,
            phase: Phase::ReadA0,
            ops: 0,
        }
    }

    /// The input bit this process started with.
    pub fn input(&self) -> Bit {
        self.input
    }

    /// The round in which this process decided, if it has.
    ///
    /// A process decides during its current round, so this equals
    /// [`ProtocolCore::round`] after decision.
    pub fn decision_round(&self) -> Option<usize> {
        matches!(self.phase, Phase::Done(_)).then_some(self.round)
    }

    /// The shared-memory layout this instance runs against.
    pub fn layout(&self) -> RaceLayout {
        self.layout
    }
}

impl ProtocolCore for LeanConsensus {
    fn status(&self) -> Status {
        let one: Word = Bit::One.word();
        match self.phase {
            Phase::ReadA0 => Status::Pending(Op::Read(self.layout.slot(Bit::Zero, self.round))),
            Phase::ReadA1 { .. } => {
                Status::Pending(Op::Read(self.layout.slot(Bit::One, self.round)))
            }
            Phase::Write => Status::Pending(Op::Write(
                self.layout.slot(self.preference, self.round),
                one,
            )),
            Phase::ReadPrevRival => Status::Pending(Op::Read(
                self.layout.slot(self.preference.rival(), self.round - 1),
            )),
            Phase::Done(b) => Status::Decided(b),
        }
    }

    fn advance(&mut self, read_value: Option<Word>) {
        self.ops += 1;
        match self.phase {
            Phase::ReadA0 => {
                let v = read_value.expect("pending read of a0[r] requires a value");
                self.phase = Phase::ReadA1 { a0_set: v != 0 };
            }
            Phase::ReadA1 { a0_set } => {
                let a1_set = read_value.expect("pending read of a1[r] requires a value") != 0;
                // §4 step 1: "If for some b, a_b[r] is 1 and a_{1-b}[r] is
                // 0, set p to b." If both or neither are set, the
                // preference is unchanged.
                match (a0_set, a1_set) {
                    (true, false) => self.preference = Bit::Zero,
                    (false, true) => self.preference = Bit::One,
                    _ => {}
                }
                self.phase = Phase::Write;
            }
            Phase::Write => {
                assert!(
                    read_value.is_none(),
                    "pending write must not receive a read value"
                );
                self.phase = Phase::ReadPrevRival;
            }
            Phase::ReadPrevRival => {
                let v = read_value.expect("pending read of a_(1-p)[r-1] requires a value");
                if v == 0 {
                    // §4 step 3: rival team hasn't reached round r-1 —
                    // they will adopt our preference before catching up.
                    self.phase = Phase::Done(self.preference);
                } else {
                    self.round += 1;
                    self.phase = Phase::ReadA0;
                }
            }
            Phase::Done(_) => panic!("advance called on a decided process"),
        }
    }

    fn round(&self) -> usize {
        self.round
    }

    fn preference(&self) -> Bit {
        self.preference
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

impl<M: MemStore> Protocol<M> for LeanConsensus {
    /// The fused fast path: one phase match performs the pending
    /// operation and surfaces the next status, instead of the
    /// `status()` → `exec` → `advance` → `status()` round-trip (three
    /// phase matches and an `Op` encode/decode). Generic over the
    /// word-store plane, so the memory's concrete `read`/`write`
    /// inline straight into the match arms. Bit-identical behavior
    /// by construction: each arm performs exactly the operation
    /// `status()` would have surfaced and returns exactly the status
    /// `advance` would have produced (pinned by the protocol tests and
    /// the engine's baseline-equivalence suite).
    fn step_status(&mut self, mem: &mut M) -> Status {
        let one: Word = Bit::One.word();
        match self.phase {
            Phase::ReadA0 => {
                self.ops += 1;
                let v = mem.exec(Op::Read(self.layout.slot(Bit::Zero, self.round)));
                self.phase = Phase::ReadA1 {
                    a0_set: v.expect("read returns a value") != 0,
                };
                Status::Pending(Op::Read(self.layout.slot(Bit::One, self.round)))
            }
            Phase::ReadA1 { a0_set } => {
                self.ops += 1;
                let a1_set = mem
                    .exec(Op::Read(self.layout.slot(Bit::One, self.round)))
                    .expect("read returns a value")
                    != 0;
                match (a0_set, a1_set) {
                    (true, false) => self.preference = Bit::Zero,
                    (false, true) => self.preference = Bit::One,
                    _ => {}
                }
                self.phase = Phase::Write;
                Status::Pending(Op::Write(
                    self.layout.slot(self.preference, self.round),
                    one,
                ))
            }
            Phase::Write => {
                self.ops += 1;
                mem.exec(Op::Write(
                    self.layout.slot(self.preference, self.round),
                    one,
                ));
                self.phase = Phase::ReadPrevRival;
                Status::Pending(Op::Read(
                    self.layout.slot(self.preference.rival(), self.round - 1),
                ))
            }
            Phase::ReadPrevRival => {
                self.ops += 1;
                let v = mem
                    .exec(Op::Read(
                        self.layout.slot(self.preference.rival(), self.round - 1),
                    ))
                    .expect("read returns a value");
                if v == 0 {
                    self.phase = Phase::Done(self.preference);
                    Status::Decided(self.preference)
                } else {
                    self.round += 1;
                    self.phase = Phase::ReadA0;
                    Status::Pending(Op::Read(self.layout.slot(Bit::Zero, self.round)))
                }
            }
            Phase::Done(b) => Status::Decided(b),
        }
    }
}

impl fmt::Display for LeanConsensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lean(pref={}, round={}, {})",
            self.preference,
            self.round,
            self.status()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{run_random_interleave, run_round_robin, step};
    use nc_memory::{OpKind, SimMemory};

    fn setup(inputs: &[Bit]) -> (SimMemory, RaceLayout, Vec<LeanConsensus>) {
        let mut mem = SimMemory::new();
        let layout = RaceLayout::at_base(0);
        layout.install_sentinels(&mut mem);
        let procs = inputs
            .iter()
            .map(|&b| LeanConsensus::new(layout, b))
            .collect();
        (mem, layout, procs)
    }

    #[test]
    fn round_is_two_reads_one_write_one_read() {
        let (mut mem, _, mut procs) = setup(&[Bit::Zero]);
        let p = &mut procs[0];
        let kinds: Vec<OpKind> = (0..4)
            .map(|_| {
                let Status::Pending(op) = p.status() else {
                    panic!("decided too early")
                };
                let k = op.kind();
                step(p, &mut mem);
                k
            })
            .collect();
        assert_eq!(
            kinds,
            vec![OpKind::Read, OpKind::Read, OpKind::Write, OpKind::Read]
        );
    }

    #[test]
    fn solo_process_decides_own_input_in_8_ops() {
        for input in Bit::BOTH {
            let (mut mem, _, mut procs) = setup(&[input]);
            let p = &mut procs[0];
            let mut decision = None;
            for _ in 0..8 {
                assert_eq!(decision, None);
                step(p, &mut mem);
                decision = p.status().decision();
            }
            assert_eq!(decision, Some(input));
            assert_eq!(p.ops_completed(), 8);
            assert_eq!(p.decision_round(), Some(2));
        }
    }

    #[test]
    fn lemma3_same_inputs_decide_in_8_ops_each() {
        // Lemma 3: if every process starts with b, every process decides b
        // after executing 8 operations — under any schedule; round-robin
        // here, more schedules in the property tests.
        for input in Bit::BOTH {
            let (mut mem, _, mut procs) = setup(&[input; 5]);
            let decisions = run_round_robin(&mut procs, &mut mem, 1_000).unwrap();
            for (p, d) in procs.iter().zip(decisions) {
                assert_eq!(d, input);
                assert_eq!(p.ops_completed(), 8, "validity cost must be exactly 8 ops");
            }
        }
    }

    #[test]
    fn lockstep_split_inputs_never_terminate() {
        // Perfect round-robin keeps the teams tied by symmetry forever —
        // the exact behaviour FLP guarantees an adversary can force, and
        // the reason termination needs the noisy environment.
        let (mut mem, _, mut procs) = setup(&[Bit::Zero, Bit::One, Bit::One, Bit::Zero]);
        assert_eq!(run_round_robin(&mut procs, &mut mem, 100_000), None);
    }

    #[test]
    fn random_interleaving_mixed_inputs_agree() {
        for seed in 0..10 {
            let (mut mem, _, mut procs) = setup(&[Bit::Zero, Bit::One, Bit::One, Bit::Zero]);
            let decisions = run_random_interleave(&mut procs, &mut mem, seed, 2_000_000).unwrap();
            let first = decisions[0];
            assert!(decisions.iter().all(|&d| d == first), "agreement violated");
        }
    }

    #[test]
    fn decision_rounds_differ_by_at_most_one() {
        // Lemma 4(b): all processes decide within one round of each other.
        for seed in 0..10 {
            let (mut mem, _, mut procs) =
                setup(&[Bit::Zero, Bit::One, Bit::Zero, Bit::One, Bit::One]);
            run_random_interleave(&mut procs, &mut mem, seed, 2_000_000).unwrap();
            let rounds: Vec<usize> = procs.iter().map(|p| p.decision_round().unwrap()).collect();
            let lo = *rounds.iter().min().unwrap();
            let hi = *rounds.iter().max().unwrap();
            assert!(hi - lo <= 1, "decision rounds spread {lo}..{hi}");
        }
    }

    #[test]
    fn sentinel_read_keeps_round_1_undecided() {
        // The final read of round 1 hits the sentinel a_{1-p}[0] = 1, so
        // no process can decide in round 1.
        let (mut mem, _, mut procs) = setup(&[Bit::One]);
        let p = &mut procs[0];
        for _ in 0..4 {
            step(p, &mut mem);
        }
        assert_eq!(p.status().decision(), None);
        assert_eq!(p.round(), 2);
    }

    #[test]
    fn laggard_adopts_leader_preference() {
        // Leader (input 1) runs 8 ops solo and decides; laggard (input 0)
        // then runs and must adopt 1 (agreement).
        let (mut mem, layout, _) = setup(&[]);
        let mut leader = LeanConsensus::new(layout, Bit::One);
        let mut laggard = LeanConsensus::new(layout, Bit::Zero);
        while step(&mut leader, &mut mem).is_none() {}
        assert_eq!(leader.status().decision(), Some(Bit::One));
        let mut d = None;
        let mut guard = 0;
        while d.is_none() {
            d = step(&mut laggard, &mut mem);
            guard += 1;
            assert!(guard < 100, "laggard failed to decide");
        }
        assert_eq!(d, Some(Bit::One));
        assert_eq!(laggard.preference(), Bit::One);
    }

    #[test]
    fn preference_unchanged_on_tied_frontier() {
        // If both a0[r] and a1[r] are set, the process keeps its
        // preference (the deterministic rule §4 step 1).
        let (mut mem, layout, _) = setup(&[]);
        mem.write(layout.slot(Bit::Zero, 1), 1);
        mem.write(layout.slot(Bit::One, 1), 1);
        let mut p = LeanConsensus::new(layout, Bit::Zero);
        step(&mut p, &mut mem); // read a0[1] = 1
        step(&mut p, &mut mem); // read a1[1] = 1
        assert_eq!(p.preference(), Bit::Zero);
    }

    #[test]
    fn write_goes_to_current_preference_array() {
        let (mut mem, layout, _) = setup(&[]);
        // Rig round 1 so an input-0 process adopts preference 1.
        mem.write(layout.slot(Bit::One, 1), 1);
        let mut p = LeanConsensus::new(layout, Bit::Zero);
        step(&mut p, &mut mem); // read a0[1] = 0
        step(&mut p, &mut mem); // read a1[1] = 1 -> adopt 1
        assert_eq!(p.preference(), Bit::One);
        let Status::Pending(op) = p.status() else {
            panic!()
        };
        assert_eq!(op, Op::Write(layout.slot(Bit::One, 1), 1));
    }

    #[test]
    fn step_status_is_equivalent_to_exec_plus_advance() {
        // Drive two identical instances — one through the generic
        // status/exec/advance protocol, one through the fused
        // step_status — against two identical memories, comparing every
        // returned status, all observable state, and the full memory
        // contents at each step.
        for inputs in [vec![Bit::Zero], vec![Bit::Zero, Bit::One, Bit::One]] {
            let (mut mem_a, layout, mut procs_a) = setup(&inputs);
            let (mut mem_b, _, mut procs_b) = setup(&inputs);
            for step_no in 0..200 {
                let pid = step_no % inputs.len();
                let a = &mut procs_a[pid];
                let generic = match a.status() {
                    Status::Pending(op) => {
                        let observed = mem_a.exec(op);
                        a.advance_status(observed)
                    }
                    done => done,
                };
                let fused = procs_b[pid].step_status(&mut mem_b);
                assert_eq!(generic, fused, "step {step_no}");
                assert_eq!(a.round(), procs_b[pid].round());
                assert_eq!(a.preference(), procs_b[pid].preference());
                assert_eq!(a.ops_completed(), procs_b[pid].ops_completed());
                for off in 0..32 {
                    let addr = nc_memory::Addr::new(off);
                    assert_eq!(mem_a.peek(addr), mem_b.peek(addr), "addr {off}");
                }
            }
            let _ = layout;
        }
    }

    #[test]
    fn input_accessor_and_display() {
        let (_, layout, _) = setup(&[]);
        let p = LeanConsensus::new(layout, Bit::One);
        assert_eq!(p.input(), Bit::One);
        assert_eq!(p.layout(), layout);
        assert!(p.to_string().contains("round=1"));
        assert_eq!(p.decision_round(), None);
    }

    #[test]
    #[should_panic(expected = "advance called on a decided process")]
    fn advance_after_decision_panics() {
        let (mut mem, _, mut procs) = setup(&[Bit::Zero]);
        let p = &mut procs[0];
        while step(p, &mut mem).is_none() {}
        p.advance(Some(0));
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn advance_read_without_value_panics() {
        let (_, layout, _) = setup(&[]);
        let mut p = LeanConsensus::new(layout, Bit::Zero);
        p.advance(None); // pending op is a read
    }

    #[test]
    #[should_panic(expected = "must not receive a read value")]
    fn advance_write_with_value_panics() {
        let (mut mem, layout, _) = setup(&[]);
        let mut p = LeanConsensus::new(layout, Bit::Zero);
        step(&mut p, &mut mem); // read a0
        step(&mut p, &mut mem); // read a1
        p.advance(Some(1)); // pending op is the write
    }
}
