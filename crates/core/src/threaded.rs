//! lean-consensus on real threads.
//!
//! The simulation substrate is for studying the model; this module is the
//! deployable artifact: wait-free binary consensus for up to thousands of
//! native threads over lock-free atomic arrays ([`nc_memory::SegArray`]).
//!
//! A real OS scheduler is, in the paper's terms, a noisy scheduler —
//! cache misses, interrupts, and preemptions supply the `X_ij`. The
//! Θ(log n) expectation therefore applies in practice, but because *no*
//! deterministic algorithm can guarantee termination under a worst-case
//! schedule (FLP), [`NativeConsensus::propose`] carries a round limit and
//! returns [`RoundLimitError`] instead of running unbounded — callers
//! wanting the §8 guarantee compose [`crate::BoundedLean`] with the
//! `nc-backup` protocol instead.

use std::error::Error;
use std::fmt;

use nc_memory::{Bit, Op, RaceLayout, SegArray};

use crate::lean::LeanConsensus;
use crate::protocol::{ProtocolCore, Status};

/// Default round limit for native runs. Real schedulers decide races in
/// a handful of rounds (Θ(log n) expected); 4096 rounds is astronomically
/// beyond that while still bounding memory to 8 KiB of flags.
pub const DEFAULT_ROUND_LIMIT: usize = 4096;

/// The outcome of a successful native consensus.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Decision {
    /// The agreed value.
    pub value: Bit,
    /// The round in which this process decided.
    pub round: usize,
    /// Shared-memory operations this process performed.
    pub ops: u64,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decided {} at round {} after {} ops",
            self.value, self.round, self.ops
        )
    }
}

/// The round limit was reached before a decision.
///
/// This can only happen under schedules adversarial enough to keep the
/// race tied for the whole limit — astronomically unlikely under real
/// scheduling, but deterministically possible (FLP). The process's last
/// preference is reported so callers can fall back to a backup protocol
/// (the §8 construction).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RoundLimitError {
    /// The configured limit that was hit.
    pub limit: usize,
    /// The preference held when the limit was hit — the correct input for
    /// a backup protocol.
    pub preference: Bit,
}

impl fmt::Display for RoundLimitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no decision within {} rounds (last preference {})",
            self.limit, self.preference
        )
    }
}

impl Error for RoundLimitError {}

/// A shared lean-consensus instance for native threads.
///
/// One `NativeConsensus` is one consensus *object*: any number of threads
/// may call [`NativeConsensus::propose`] concurrently (each thread at
/// most once) and all calls that return `Ok` return the same value.
///
/// # Example
///
/// ```
/// use nc_core::{Bit, NativeConsensus};
/// use std::sync::Arc;
///
/// let consensus = Arc::new(NativeConsensus::new());
/// let mut handles = Vec::new();
/// for i in 0..4u32 {
///     let c = Arc::clone(&consensus);
///     handles.push(std::thread::spawn(move || {
///         let input = if i % 2 == 0 { Bit::Zero } else { Bit::One };
///         c.propose(input).expect("round limit not reached").value
///     }));
/// }
/// let decisions: Vec<Bit> = handles.into_iter().map(|h| h.join().unwrap()).collect();
/// assert!(decisions.iter().all(|&d| d == decisions[0]));
/// ```
pub struct NativeConsensus {
    array: SegArray,
    layout: RaceLayout,
    round_limit: usize,
}

impl NativeConsensus {
    /// Creates a consensus object with the default round limit.
    pub fn new() -> Self {
        Self::with_round_limit(DEFAULT_ROUND_LIMIT)
    }

    /// Creates a consensus object that gives up (returns
    /// [`RoundLimitError`]) after `round_limit` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `round_limit < 2`.
    pub fn with_round_limit(round_limit: usize) -> Self {
        assert!(round_limit >= 2, "round limit must be at least 2");
        let words = RaceLayout::words_for_rounds(round_limit + 1);
        let segments = words.div_ceil(nc_memory::atomic::SEGMENT_WORDS).max(1);
        let array = SegArray::with_max_segments(segments);
        let layout = RaceLayout::at_base(0);
        // Install the paper's sentinels a0[0] = a1[0] = 1.
        array.store(layout.slot(Bit::Zero, 0).offset(), 1);
        array.store(layout.slot(Bit::One, 0).offset(), 1);
        NativeConsensus {
            array,
            layout,
            round_limit,
        }
    }

    /// The configured round limit.
    pub fn round_limit(&self) -> usize {
        self.round_limit
    }

    /// Proposes `input` and participates until decision.
    ///
    /// Wait-free apart from the bounded-memory cutoff: the calling thread
    /// performs at most `4 · round_limit` shared-memory operations
    /// regardless of what other threads do.
    ///
    /// # Errors
    ///
    /// Returns [`RoundLimitError`] if the round limit elapses without a
    /// decision (see the type's docs for when that can happen).
    pub fn propose(&self, input: Bit) -> Result<Decision, RoundLimitError> {
        let mut machine = LeanConsensus::new(self.layout, input);
        loop {
            match machine.status() {
                Status::Decided(value) => {
                    return Ok(Decision {
                        value,
                        round: machine.round(),
                        ops: machine.ops_completed(),
                    });
                }
                Status::Pending(op) => {
                    if machine.round() > self.round_limit {
                        return Err(RoundLimitError {
                            limit: self.round_limit,
                            preference: machine.preference(),
                        });
                    }
                    match op {
                        Op::Read(addr) => {
                            let v = self.array.load(addr.offset());
                            machine.advance(Some(v));
                        }
                        Op::Write(addr, value) => {
                            self.array.store(addr.offset(), value);
                            machine.advance(None);
                        }
                    }
                }
            }
        }
    }
}

impl Default for NativeConsensus {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for NativeConsensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeConsensus")
            .field("round_limit", &self.round_limit)
            .field("array", &self.array)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_proposer_decides_own_input() {
        for input in Bit::BOTH {
            let c = NativeConsensus::new();
            let d = c.propose(input).unwrap();
            assert_eq!(d.value, input);
            assert_eq!(d.round, 2);
            assert_eq!(d.ops, 8);
        }
    }

    #[test]
    fn sequential_proposers_agree_with_first() {
        let c = NativeConsensus::new();
        let first = c.propose(Bit::One).unwrap();
        for input in [Bit::Zero, Bit::One, Bit::Zero] {
            let d = c.propose(input).unwrap();
            assert_eq!(d.value, first.value);
        }
    }

    #[test]
    fn concurrent_threads_agree() {
        for trial in 0..25 {
            let c = NativeConsensus::new();
            let decisions: Vec<Decision> = crossbeam::scope(|s| {
                let handles: Vec<_> = (0..8)
                    .map(|i| {
                        let c = &c;
                        s.spawn(move |_| {
                            let input = Bit::from((i + trial) % 2 == 0);
                            c.propose(input).expect("round limit hit")
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .unwrap();
            let v = decisions[0].value;
            assert!(
                decisions.iter().all(|d| d.value == v),
                "trial {trial}: disagreement: {decisions:?}"
            );
            // Lemma 4(b): decision rounds within one of each other.
            let lo = decisions.iter().map(|d| d.round).min().unwrap();
            let hi = decisions.iter().map(|d| d.round).max().unwrap();
            assert!(hi - lo <= 1, "trial {trial}: spread {lo}..{hi}");
        }
    }

    #[test]
    fn concurrent_unanimous_inputs_cost_8_ops() {
        let c = NativeConsensus::new();
        let decisions: Vec<Decision> = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    let c = &c;
                    s.spawn(move |_| c.propose(Bit::One).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        for d in decisions {
            assert_eq!(d.value, Bit::One);
            assert_eq!(d.ops, 8, "Lemma 3: unanimous inputs cost exactly 8 ops");
        }
    }

    #[test]
    fn display_and_debug() {
        let c = NativeConsensus::with_round_limit(16);
        assert_eq!(c.round_limit(), 16);
        assert!(format!("{c:?}").contains("NativeConsensus"));
        let d = Decision {
            value: Bit::One,
            round: 2,
            ops: 8,
        };
        assert_eq!(d.to_string(), "decided 1 at round 2 after 8 ops");
        let e = RoundLimitError {
            limit: 16,
            preference: Bit::Zero,
        };
        assert!(e.to_string().contains("within 16 rounds"));
    }

    #[test]
    #[should_panic(expected = "round limit must be at least 2")]
    fn tiny_round_limit_panics() {
        NativeConsensus::with_round_limit(1);
    }
}
