//! The "optimized" lean-consensus variant the paper warns against (§4).
//!
//! > "It is tempting to optimize the algorithm by eliminating the write
//! > when it is already evident from the previous step that `a_p[r]` is
//! > set or eliminating the last read when it can be deduced from the
//! > value of `a_{1-p}[r]` that `a_{1-p}[r-1]` is set. However, this
//! > optimization reduces the work done by slow processes (whom we'd like
//! > to have fall still further behind) while maintaining the same
//! > per-round cost for fast processes (whom we'd like to have pull
//! > ahead). So we must paradoxically carry out operations that might
//! > appear to be superfluous in order to minimize the actual total
//! > cost."
//!
//! [`SkippingLean`] implements exactly those two skips. Both are
//! *logically sound* (the skipped write is idempotent; the skipped read's
//! value is implied by Lemma 2), so safety is untouched — only the
//! termination dynamics change. The ablation experiment (`nc-bench`,
//! experiment E9) measures the cost.

use std::fmt;

use nc_memory::{Bit, MemStore, Op, RaceLayout, Word};

use crate::protocol::{Protocol, ProtocolCore, Status};

/// Where a process is inside its (up to four-operation) round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    ReadA0,
    ReadA1 {
        a0_set: bool,
    },
    /// About to write `a_p[r]`; remembers whether the rival frontier bit
    /// was set (deciding whether the final read can be skipped).
    Write {
        rival_set: bool,
    },
    ReadPrevRival,
    Done(Bit),
}

/// Lean-consensus with the §4 "superfluous" operations skipped.
///
/// Same inputs, same layout conventions, and the same safety properties
/// as [`crate::LeanConsensus`] — but slow processes do *less* work per
/// round, which (per the paper's argument) keeps the race tighter and
/// delays termination. Exists for the ablation experiment.
#[derive(Clone, Debug)]
pub struct SkippingLean {
    layout: RaceLayout,
    input: Bit,
    preference: Bit,
    round: usize,
    phase: Phase,
    ops: u64,
    skipped_writes: u64,
    skipped_reads: u64,
}

impl SkippingLean {
    /// Creates the state machine for a process with the given input.
    pub fn new(layout: RaceLayout, input: Bit) -> Self {
        SkippingLean {
            layout,
            input,
            preference: input,
            round: 1,
            phase: Phase::ReadA0,
            ops: 0,
            skipped_writes: 0,
            skipped_reads: 0,
        }
    }

    /// The input bit this process started with.
    pub fn input(&self) -> Bit {
        self.input
    }

    /// The round in which this process decided, if it has.
    pub fn decision_round(&self) -> Option<usize> {
        matches!(self.phase, Phase::Done(_)).then_some(self.round)
    }

    /// Number of writes the optimization elided.
    pub fn skipped_writes(&self) -> u64 {
        self.skipped_writes
    }

    /// Number of final reads the optimization elided.
    pub fn skipped_reads(&self) -> u64 {
        self.skipped_reads
    }

    /// Moves to the next phase after the frontier reads, applying both
    /// skip rules.
    fn after_frontier(&mut self, a0_set: bool, a1_set: bool) {
        // Same preference rule as the paper's step 1.
        match (a0_set, a1_set) {
            (true, false) => self.preference = Bit::Zero,
            (false, true) => self.preference = Bit::One,
            _ => {}
        }
        let own_set = match self.preference {
            Bit::Zero => a0_set,
            Bit::One => a1_set,
        };
        let rival_set = match self.preference {
            Bit::Zero => a1_set,
            Bit::One => a0_set,
        };
        if own_set {
            // Skip the idempotent write.
            self.skipped_writes += 1;
            if rival_set {
                // a_{1-p}[r] set implies a_{1-p}[r-1] set (Lemma 2):
                // skip the final read, no decision possible this round.
                self.skipped_reads += 1;
                self.round += 1;
                self.phase = Phase::ReadA0;
            } else {
                self.phase = Phase::ReadPrevRival;
            }
        } else {
            self.phase = Phase::Write { rival_set };
        }
    }
}

impl<M: MemStore> Protocol<M> for SkippingLean {}

impl ProtocolCore for SkippingLean {
    fn status(&self) -> Status {
        let one: Word = Bit::One.word();
        match self.phase {
            Phase::ReadA0 => Status::Pending(Op::Read(self.layout.slot(Bit::Zero, self.round))),
            Phase::ReadA1 { .. } => {
                Status::Pending(Op::Read(self.layout.slot(Bit::One, self.round)))
            }
            Phase::Write { .. } => Status::Pending(Op::Write(
                self.layout.slot(self.preference, self.round),
                one,
            )),
            Phase::ReadPrevRival => Status::Pending(Op::Read(
                self.layout.slot(self.preference.rival(), self.round - 1),
            )),
            Phase::Done(b) => Status::Decided(b),
        }
    }

    fn advance(&mut self, read_value: Option<Word>) {
        self.ops += 1;
        match self.phase {
            Phase::ReadA0 => {
                let v = read_value.expect("pending read of a0[r] requires a value");
                self.phase = Phase::ReadA1 { a0_set: v != 0 };
            }
            Phase::ReadA1 { a0_set } => {
                let a1_set = read_value.expect("pending read of a1[r] requires a value") != 0;
                self.after_frontier(a0_set, a1_set);
            }
            Phase::Write { rival_set } => {
                assert!(
                    read_value.is_none(),
                    "pending write must not receive a read value"
                );
                if rival_set {
                    // Lemma 2 again: the final read is deducible.
                    self.skipped_reads += 1;
                    self.round += 1;
                    self.phase = Phase::ReadA0;
                } else {
                    self.phase = Phase::ReadPrevRival;
                }
            }
            Phase::ReadPrevRival => {
                let v = read_value.expect("pending read of a_(1-p)[r-1] requires a value");
                if v == 0 {
                    self.phase = Phase::Done(self.preference);
                } else {
                    self.round += 1;
                    self.phase = Phase::ReadA0;
                }
            }
            Phase::Done(_) => panic!("advance called on a decided process"),
        }
    }

    fn round(&self) -> usize {
        self.round
    }

    fn preference(&self) -> Bit {
        self.preference
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

impl fmt::Display for SkippingLean {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "skipping-lean(pref={}, round={}, skipped {}w/{}r)",
            self.preference, self.round, self.skipped_writes, self.skipped_reads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{run_random_interleave, run_round_robin, step};
    use nc_memory::SimMemory;

    fn setup(inputs: &[Bit]) -> (SimMemory, RaceLayout, Vec<SkippingLean>) {
        let mut mem = SimMemory::new();
        let layout = RaceLayout::at_base(0);
        layout.install_sentinels(&mut mem);
        let procs = inputs
            .iter()
            .map(|&b| SkippingLean::new(layout, b))
            .collect();
        (mem, layout, procs)
    }

    #[test]
    fn solo_process_still_decides_own_input() {
        for input in Bit::BOTH {
            let (mut mem, _, mut procs) = setup(&[input]);
            let p = &mut procs[0];
            let mut d = None;
            let mut guard = 0;
            while d.is_none() {
                d = step(p, &mut mem);
                guard += 1;
                assert!(guard < 100);
            }
            assert_eq!(d, Some(input));
            // Solo process never sees set bits it didn't just write, so no
            // skips trigger and it still costs 8 ops.
            assert_eq!(p.ops_completed(), 8);
            assert_eq!(p.skipped_writes(), 0);
            assert_eq!(p.skipped_reads(), 0);
        }
    }

    #[test]
    fn agreement_and_validity_hold() {
        for seed in 0..10 {
            let (mut mem, _, mut procs) = setup(&[Bit::Zero, Bit::One, Bit::One]);
            let decisions = run_random_interleave(&mut procs, &mut mem, seed, 2_000_000).unwrap();
            let first = decisions[0];
            assert!(decisions.iter().all(|&d| d == first));
        }
        for input in Bit::BOTH {
            let (mut mem, _, mut procs) = setup(&[input; 4]);
            let decisions = run_round_robin(&mut procs, &mut mem, 100_000).unwrap();
            assert!(decisions.iter().all(|&d| d == input), "validity");
        }
    }

    #[test]
    fn laggard_skips_the_write_behind_a_leader() {
        // Leader decides solo; the laggard then walks rounds whose bits
        // are already set and must skip writes (and final reads while the
        // rival prefix is set).
        let (mut mem, layout, _) = setup(&[]);
        let mut leader = SkippingLean::new(layout, Bit::One);
        while step(&mut leader, &mut mem).is_none() {}
        let mut laggard = SkippingLean::new(layout, Bit::One);
        while step(&mut laggard, &mut mem).is_none() {}
        assert_eq!(laggard.status().decision(), Some(Bit::One));
        assert!(
            laggard.skipped_writes() > 0,
            "laggard should have skipped at least one write"
        );
        assert!(
            laggard.ops_completed() < 8,
            "skips must reduce the laggard's op count, got {}",
            laggard.ops_completed()
        );
    }

    #[test]
    fn skipped_read_advances_round_without_deciding() {
        let (mut mem, layout, _) = setup(&[]);
        // Both frontier bits of round 1 set: process skips write AND read.
        mem.write(layout.slot(Bit::Zero, 1), 1);
        mem.write(layout.slot(Bit::One, 1), 1);
        let mut p = SkippingLean::new(layout, Bit::Zero);
        step(&mut p, &mut mem); // read a0[1] = 1
        step(&mut p, &mut mem); // read a1[1] = 1 -> both skips
        assert_eq!(p.round(), 2);
        assert_eq!(p.skipped_writes(), 1);
        assert_eq!(p.skipped_reads(), 1);
        assert_eq!(p.status().decision(), None);
    }

    #[test]
    fn write_happens_when_own_bit_unset_even_if_rival_set() {
        let (mut mem, layout, _) = setup(&[]);
        mem.write(layout.slot(Bit::One, 1), 1); // rival (for pref 0... adopts 1!)
                                                // With a0[1]=0, a1[1]=1 an input-0 process adopts 1, whose bit IS
                                                // set -> skip write. Use matching input instead:
        let mut p = SkippingLean::new(layout, Bit::One);
        step(&mut p, &mut mem); // a0[1] = 0
        step(&mut p, &mut mem); // a1[1] = 1, own bit set -> skip write
        assert_eq!(p.skipped_writes(), 1);
        // rival unset -> final read still happens
        let Status::Pending(op) = p.status() else {
            panic!()
        };
        assert_eq!(op, Op::Read(layout.slot(Bit::Zero, 0)));
    }

    #[test]
    fn rival_set_after_write_skips_final_read() {
        let (mut mem, layout, _) = setup(&[]);
        mem.write(layout.slot(Bit::One, 1), 1); // rival of a 0-preferring proc...
                                                // input 0 adopts 1 here; rig instead rival set for pref 1: set a0.
        let mut mem2 = SimMemory::new();
        layout.install_sentinels(&mut mem2);
        mem2.write(layout.slot(Bit::Zero, 1), 1);
        let mut p = SkippingLean::new(layout, Bit::One);
        // reads: a0[1]=1, a1[1]=0 -> adopts 0! own bit now set -> skips.
        // To test the Write{rival_set} path we need own unset, rival set,
        // which after preference adoption cannot happen at the frontier
        // (adoption chases the set bit). It CAN happen when both are set
        // is covered above; when only own... The Write{rival_set:true}
        // branch is reachable only if both set and own unset -> impossible
        // after adoption. So assert the adoption behaviour instead.
        step(&mut p, &mut mem2);
        step(&mut p, &mut mem2);
        assert_eq!(p.preference(), Bit::Zero);
        assert_eq!(p.skipped_writes(), 1);
    }

    #[test]
    fn display_mentions_skips() {
        let (_, layout, _) = setup(&[]);
        let p = SkippingLean::new(layout, Bit::Zero);
        assert!(p.to_string().contains("skipping-lean"));
        assert_eq!(p.input(), Bit::Zero);
        assert_eq!(p.decision_round(), None);
    }

    #[test]
    #[should_panic(expected = "advance called on a decided process")]
    fn advance_after_decision_panics() {
        let (mut mem, _, mut procs) = setup(&[Bit::Zero]);
        let p = &mut procs[0];
        while step(p, &mut mem).is_none() {}
        p.advance(Some(0));
    }
}
