//! A local-coin randomized baseline (the Chandra'96 ancestry).
//!
//! lean-consensus is Chandra's wait-free consensus algorithm with the
//! shared coins removed. [`RandomizedLean`] puts a *local* coin back in
//! the one place it is safe: when a process observes **both** frontier
//! bits `a0[r]` and `a1[r]` set — a true tie, where the deterministic
//! algorithm keeps its current preference — the randomized variant
//! re-draws its preference uniformly.
//!
//! Why this is safe: safety (§5) only constrains preference *changes
//! toward an unset side*. When both `a_b[r]` bits are set, Lemma 2
//! already guarantees both `a_b[r-1]` bits are set, so no process can
//! decide at round `r + 1` against either value and adopting either
//! preference preserves Lemmas 2–4 verbatim (the first process to set
//! `a_{1-b}[r]` still must have read `a_{1-b}[r] = 0`, which the coin
//! rule never sees).
//!
//! Why the coin fires **only** on a doubly-set frontier: a coin on an
//! *all-zero* frontier would let a process adopt `1-b` without
//! `a_{1-b}[r-1]` ever having been set, breaking Lemma 2 — and from
//! there a real disagreement is constructible (a decided-and-stopped
//! leader plus one coin-flipping laggard that walks to a rival decision
//! two rounds later). The doubly-set tie is the *only* safe place for
//! local randomness in this algorithm.
//!
//! Why it is a limited baseline: in a perfectly phase-aligned lockstep
//! schedule every process reads the round-`r` frontier *before* anyone
//! writes it, so the doubly-set tie is never even observed and the coin
//! never fires — deterministic lean-consensus and this variant both run
//! forever. Defeating lockstep requires either environment noise (the
//! paper's thesis) or a genuine shared coin (the `nc-backup` protocol,
//! which plays the Chandra-like baseline role in experiment E10). This
//! variant isolates the middle ground: *local* randomness, which helps
//! only mid-pack processes that observe ties under asymmetric schedules.

use std::fmt;

use rand::rngs::SmallRng;
use rand::RngExt;

use nc_memory::{Bit, MemStore, Op, RaceLayout, Word};

use crate::protocol::{Protocol, ProtocolCore, Status};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    ReadA0,
    ReadA1 { a0_set: bool },
    Write,
    ReadPrevRival,
    Done(Bit),
}

/// Lean-consensus with a local coin on tied frontiers.
///
/// Identical operation sequence to [`crate::LeanConsensus`] (four
/// operations per round); only the preference rule on a doubly-set
/// frontier differs.
#[derive(Clone, Debug)]
pub struct RandomizedLean {
    layout: RaceLayout,
    input: Bit,
    preference: Bit,
    round: usize,
    phase: Phase,
    ops: u64,
    coin_flips: u64,
    rng: SmallRng,
}

impl RandomizedLean {
    /// Creates the state machine for a process with the given input and
    /// its own coin stream.
    pub fn new(layout: RaceLayout, input: Bit, rng: SmallRng) -> Self {
        RandomizedLean {
            layout,
            input,
            preference: input,
            round: 1,
            phase: Phase::ReadA0,
            ops: 0,
            coin_flips: 0,
            rng,
        }
    }

    /// The input bit this process started with.
    pub fn input(&self) -> Bit {
        self.input
    }

    /// The round in which this process decided, if it has.
    pub fn decision_round(&self) -> Option<usize> {
        matches!(self.phase, Phase::Done(_)).then_some(self.round)
    }

    /// How many local coins this process has flipped.
    pub fn coin_flips(&self) -> u64 {
        self.coin_flips
    }
}

impl<M: MemStore> Protocol<M> for RandomizedLean {}

impl ProtocolCore for RandomizedLean {
    fn status(&self) -> Status {
        let one: Word = Bit::One.word();
        match self.phase {
            Phase::ReadA0 => Status::Pending(Op::Read(self.layout.slot(Bit::Zero, self.round))),
            Phase::ReadA1 { .. } => {
                Status::Pending(Op::Read(self.layout.slot(Bit::One, self.round)))
            }
            Phase::Write => Status::Pending(Op::Write(
                self.layout.slot(self.preference, self.round),
                one,
            )),
            Phase::ReadPrevRival => Status::Pending(Op::Read(
                self.layout.slot(self.preference.rival(), self.round - 1),
            )),
            Phase::Done(b) => Status::Decided(b),
        }
    }

    fn advance(&mut self, read_value: Option<Word>) {
        self.ops += 1;
        match self.phase {
            Phase::ReadA0 => {
                let v = read_value.expect("pending read of a0[r] requires a value");
                self.phase = Phase::ReadA1 { a0_set: v != 0 };
            }
            Phase::ReadA1 { a0_set } => {
                let a1_set = read_value.expect("pending read of a1[r] requires a value") != 0;
                match (a0_set, a1_set) {
                    (true, false) => self.preference = Bit::Zero,
                    (false, true) => self.preference = Bit::One,
                    (true, true) => {
                        // The one deviation from the paper's algorithm:
                        // re-randomize on a tied, fully-set frontier.
                        self.coin_flips += 1;
                        self.preference = Bit::from(self.rng.random::<bool>());
                    }
                    (false, false) => {}
                }
                self.phase = Phase::Write;
            }
            Phase::Write => {
                assert!(
                    read_value.is_none(),
                    "pending write must not receive a read value"
                );
                self.phase = Phase::ReadPrevRival;
            }
            Phase::ReadPrevRival => {
                let v = read_value.expect("pending read of a_(1-p)[r-1] requires a value");
                if v == 0 {
                    self.phase = Phase::Done(self.preference);
                } else {
                    self.round += 1;
                    self.phase = Phase::ReadA0;
                }
            }
            Phase::Done(_) => panic!("advance called on a decided process"),
        }
    }

    fn round(&self) -> usize {
        self.round
    }

    fn preference(&self) -> Bit {
        self.preference
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

impl fmt::Display for RandomizedLean {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "randomized-lean(pref={}, round={}, flips={})",
            self.preference, self.round, self.coin_flips
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{run_round_robin, step};
    use nc_memory::SimMemory;
    use nc_sched_test_rng::rng;

    /// Tiny local helper: deterministic rngs without depending on
    /// nc-sched (which would create a cycle).
    mod nc_sched_test_rng {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        pub fn rng(seed: u64) -> SmallRng {
            SmallRng::seed_from_u64(seed)
        }
    }

    fn setup(inputs: &[Bit], seed: u64) -> (SimMemory, RaceLayout, Vec<RandomizedLean>) {
        let mut mem = SimMemory::new();
        let layout = RaceLayout::at_base(0);
        layout.install_sentinels(&mut mem);
        let procs = inputs
            .iter()
            .enumerate()
            .map(|(i, &b)| RandomizedLean::new(layout, b, rng(seed ^ ((i as u64 + 1) * 1000))))
            .collect();
        (mem, layout, procs)
    }

    #[test]
    fn solo_decides_own_input_in_8_ops() {
        for input in Bit::BOTH {
            let (mut mem, _, mut procs) = setup(&[input], 1);
            let p = &mut procs[0];
            let mut d = None;
            while d.is_none() {
                d = step(p, &mut mem);
            }
            assert_eq!(d, Some(input));
            assert_eq!(p.ops_completed(), 8);
            assert_eq!(p.coin_flips(), 0, "no ties for a solo process");
        }
    }

    #[test]
    fn validity_no_coin_can_flip_unanimous_inputs() {
        for input in Bit::BOTH {
            for seed in 0..10 {
                let (mut mem, _, mut procs) = setup(&[input; 4], seed);
                let decisions = run_round_robin(&mut procs, &mut mem, 100_000).unwrap();
                assert!(decisions.iter().all(|&d| d == input), "validity broken");
            }
        }
    }

    #[test]
    fn lockstep_never_observes_ties_and_never_terminates() {
        // In phase-aligned lockstep all frontier reads precede all
        // frontier writes, so the (1,1) tie is never observed, the coin
        // never fires, and — like deterministic lean-consensus — the run
        // does not terminate. This documents why local coins are not a
        // substitute for environment noise or a shared coin.
        let (mut mem, _, mut procs) = setup(&[Bit::Zero, Bit::One, Bit::Zero, Bit::One], 5);
        assert_eq!(run_round_robin(&mut procs, &mut mem, 50_000), None);
        assert!(procs.iter().all(|p| p.coin_flips() == 0));
    }

    #[test]
    fn agreement_under_random_interleaving() {
        // Under asymmetric (randomly interleaved) schedules the variant
        // terminates and agrees; ties can occur and the coin may fire.
        use rand::RngExt;
        for seed in 0..20u64 {
            let (mut mem, _, mut procs) = setup(&[Bit::Zero, Bit::One, Bit::Zero, Bit::One], seed);
            let mut sched = rng(seed.wrapping_mul(77).wrapping_add(13));
            let mut decisions = vec![None; procs.len()];
            for _ in 0..2_000_000u64 {
                let undecided: Vec<usize> = (0..procs.len())
                    .filter(|&i| decisions[i].is_none())
                    .collect();
                if undecided.is_empty() {
                    break;
                }
                let pick = undecided[sched.random_range(0..undecided.len())];
                decisions[pick] = step(&mut procs[pick], &mut mem);
            }
            let all: Vec<Bit> = decisions
                .into_iter()
                .map(|d| d.expect("random interleaving should terminate"))
                .collect();
            assert!(
                all.iter().all(|&d| d == all[0]),
                "agreement broken (seed {seed})"
            );
        }
    }

    #[test]
    fn tie_rule_rerandomizes() {
        // Frontier fully set: preference comes from the coin (exercise
        // both outcomes across seeds).
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64 {
            let (mut mem, layout, _) = setup(&[], seed);
            mem.write(layout.slot(Bit::Zero, 1), 1);
            mem.write(layout.slot(Bit::One, 1), 1);
            let mut p = RandomizedLean::new(layout, Bit::Zero, rng(seed));
            step(&mut p, &mut mem);
            step(&mut p, &mut mem);
            assert_eq!(p.coin_flips(), 1);
            seen.insert(p.preference());
        }
        assert_eq!(seen.len(), 2, "coin never produced one of the outcomes");
    }

    #[test]
    fn single_set_frontier_adopts_deterministically() {
        let (mut mem, layout, _) = setup(&[], 3);
        mem.write(layout.slot(Bit::One, 1), 1);
        let mut p = RandomizedLean::new(layout, Bit::Zero, rng(3));
        step(&mut p, &mut mem);
        step(&mut p, &mut mem);
        assert_eq!(p.preference(), Bit::One);
        assert_eq!(p.coin_flips(), 0);
    }

    #[test]
    fn accessors_and_display() {
        let (_, layout, _) = setup(&[], 0);
        let p = RandomizedLean::new(layout, Bit::One, rng(0));
        assert_eq!(p.input(), Bit::One);
        assert_eq!(p.decision_round(), None);
        assert!(p.to_string().contains("randomized-lean"));
    }
}
