//! Id consensus from a tree of binary consensus objects (footnote 2).
//!
//! > "In many cases, id consensus can be solved in a natural way using a
//! > (lg n)-depth tree of binary consensus protocols."
//!
//! Processes must agree on the **id of some active process** (not just a
//! bit). The construction decides the winner id one bit per level, LSB
//! first. At level `ℓ` each process
//!
//! 1. *announces* its current candidate id in the register for the
//!    candidate's `ℓ`-th bit (so losers can find a real candidate),
//! 2. proposes the candidate's `ℓ`-th bit to that level's binary
//!    consensus,
//! 3. if the decided bit differs from its candidate's, adopts the id
//!    found in the winning announcement register.
//!
//! Invariant: entering level `ℓ`, every process's candidate agrees with
//! the decided bits `0..ℓ`, and every candidate is some process's
//! original id. Binary-consensus validity guarantees the decided bit was
//! proposed, hence its announcement register was written *before* the
//! proposal — so the adopting read always finds a valid candidate.
//! After `⌈lg(id-space)⌉` levels all candidates are equal.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use nc_memory::Bit;

use crate::threaded::{NativeConsensus, RoundLimitError};

/// A wait-free id-consensus object for native threads.
///
/// `propose(id)` returns the agreed id, which is always some proposer's
/// id (validity) and the same for all callers (agreement).
///
/// # Example
///
/// ```
/// use nc_core::id::IdConsensus;
/// use std::sync::Arc;
///
/// let obj = Arc::new(IdConsensus::new(16));
/// let handles: Vec<_> = (0..4u32)
///     .map(|i| {
///         let o = Arc::clone(&obj);
///         std::thread::spawn(move || o.propose(i).unwrap())
///     })
///     .collect();
/// let winners: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
/// assert!(winners.iter().all(|&w| w == winners[0]));
/// assert!(winners[0] < 4, "winner must be a proposer");
/// ```
pub struct IdConsensus {
    /// One (binary consensus, two announcement registers) per bit level.
    /// Announcement registers store `id + 1` (0 = empty).
    levels: Vec<(NativeConsensus, [AtomicU64; 2])>,
}

impl IdConsensus {
    /// Creates an id-consensus object for ids in `0..id_space`.
    ///
    /// # Panics
    ///
    /// Panics if `id_space == 0`.
    pub fn new(id_space: u32) -> Self {
        assert!(id_space > 0, "id space must be non-empty");
        let bits = (u32::BITS - (id_space - 1).leading_zeros()).max(1) as usize;
        let levels = (0..bits)
            .map(|_| {
                (
                    NativeConsensus::new(),
                    [AtomicU64::new(0), AtomicU64::new(0)],
                )
            })
            .collect();
        IdConsensus { levels }
    }

    /// Number of bit levels (the `lg n` tree depth).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Proposes `id` and returns the agreed id.
    ///
    /// # Errors
    ///
    /// Propagates [`RoundLimitError`] from an underlying binary consensus
    /// (see [`NativeConsensus::propose`]; astronomically unlikely under
    /// real scheduling).
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the id space the object was created for.
    pub fn propose(&self, id: u32) -> Result<u32, RoundLimitError> {
        assert!(
            (id as u64) < (1u64 << self.levels.len()),
            "id {id} outside the configured id space"
        );
        let mut candidate = id;
        for (level, (consensus, announce)) in self.levels.iter().enumerate() {
            let my_bit = (candidate >> level) & 1;
            // Announce before proposing: the decided bit's announcement
            // register is guaranteed non-empty by validity.
            announce[my_bit as usize].store(u64::from(candidate) + 1, Ordering::SeqCst);
            let decided = consensus.propose(Bit::from(my_bit == 1))?.value;
            let decided_bit = decided.word() as u32;
            if decided_bit != my_bit {
                let found = announce[decided_bit as usize].load(Ordering::SeqCst);
                debug_assert_ne!(found, 0, "winning announcement must exist (validity)");
                candidate = (found - 1) as u32;
            }
        }
        Ok(candidate)
    }
}

impl fmt::Debug for IdConsensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IdConsensus")
            .field("depth", &self.depth())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_logarithmic() {
        assert_eq!(IdConsensus::new(1).depth(), 1);
        assert_eq!(IdConsensus::new(2).depth(), 1);
        assert_eq!(IdConsensus::new(3).depth(), 2);
        assert_eq!(IdConsensus::new(16).depth(), 4);
        assert_eq!(IdConsensus::new(17).depth(), 5);
        assert_eq!(IdConsensus::new(1 << 20).depth(), 20);
    }

    #[test]
    fn solo_proposer_wins_with_own_id() {
        let obj = IdConsensus::new(64);
        assert_eq!(obj.propose(37).unwrap(), 37);
        // Later proposers adopt the settled winner.
        assert_eq!(obj.propose(12).unwrap(), 37);
        assert_eq!(obj.propose(0).unwrap(), 37);
    }

    #[test]
    fn sequential_proposers_agree_on_first() {
        let obj = IdConsensus::new(8);
        let first = obj.propose(5).unwrap();
        for id in [0u32, 3, 7] {
            assert_eq!(obj.propose(id).unwrap(), first);
        }
    }

    #[test]
    fn concurrent_proposers_agree_on_a_proposed_id() {
        for trial in 0..20u32 {
            let obj = IdConsensus::new(32);
            let proposers: Vec<u32> = (0..6).map(|i| (i * 5 + trial) % 32).collect();
            let winners: Vec<u32> = crossbeam::scope(|s| {
                let handles: Vec<_> = proposers
                    .iter()
                    .map(|&id| {
                        let obj = &obj;
                        s.spawn(move |_| obj.propose(id).unwrap())
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .unwrap();
            let w = winners[0];
            assert!(
                winners.iter().all(|&x| x == w),
                "trial {trial}: {winners:?}"
            );
            assert!(
                proposers.contains(&w),
                "trial {trial}: winner {w} was never proposed ({proposers:?})"
            );
        }
    }

    #[test]
    fn boundary_ids_work() {
        let obj = IdConsensus::new(16);
        let w = obj.propose(15).unwrap();
        assert_eq!(w, 15);
        assert_eq!(obj.propose(0).unwrap(), 15);
    }

    #[test]
    #[should_panic(expected = "outside the configured id space")]
    fn out_of_space_id_panics() {
        IdConsensus::new(8).propose(8).unwrap();
    }

    #[test]
    fn debug_impl() {
        assert!(format!("{:?}", IdConsensus::new(4)).contains("depth"));
    }
}
