//! The bounded-space combined protocol (§8).
//!
//! lean-consensus as stated needs unbounded arrays. The paper's remedy:
//!
//! 1. run lean-consensus through round `r_max`;
//! 2. at round `r_max + 1`, switch to a *backup* protocol — any
//!    bounded-space consensus protocol with polynomial expected work and
//!    the **validity** property — using the preference held at the end of
//!    round `r_max` as the backup's input.
//!
//! Agreement across the seam follows from Lemmas 2 and 4: if any process
//! decides `b` inside lean-consensus at round `r ≤ r_max`, no process
//! ever writes `a_{1-b}[r]`, so every process that reaches the backup
//! enters it with input `b`, and the backup's validity forces `b` out.
//!
//! Theorem 15: with `r_max = O(log² n)` the backup runs with probability
//! at most `n^{-c}`, so its polynomial cost adds `O(1)` to the expected
//! work and the `a0`/`a1` arrays hold `O(log² n)` bits.
//!
//! [`BoundedLean`] is generic over the backup: anything implementing
//! [`Protocol`] plus a constructor closure. The real backup lives in
//! `nc-backup`; tests here use a trivial stand-in.

use std::fmt;

use nc_memory::{Bit, MemStore, RaceLayout, Word};

use crate::lean::LeanConsensus;
use crate::protocol::{Protocol, ProtocolCore, Status};

/// Suggested `r_max` for `n` processes: `(⌈log₂(n+1)⌉ + 2)²`, clamped to
/// at least 9.
///
/// Theorem 15 wants `r_max = T · c · log n` with `T = O(log n)`; the
/// constants here are implementation-chosen so that (per the measured
/// tail of Theorem 12, see EXPERIMENTS.md) the backup fires with
/// vanishing probability at every `n` the experiments touch.
pub fn recommended_r_max(n: usize) -> usize {
    let log = (usize::BITS - n.saturating_add(1).leading_zeros()) as usize; // ⌈log₂(n+1)⌉
    ((log + 2) * (log + 2)).max(9)
}

/// The §8 combined protocol: lean-consensus with an `r_max` cutoff and a
/// backup consensus protocol behind it.
///
/// `B` is the backup's state machine; the `make_backup` closure is called
/// at most once, with the preference lean-consensus held when it crossed
/// the cutoff. The backup must operate on a *disjoint* memory region
/// (the closure typically captures a layout for it).
pub struct BoundedLean<B, F> {
    lean: LeanConsensus,
    r_max: usize,
    make_backup: Option<F>,
    backup: Option<B>,
}

impl<B, F> BoundedLean<B, F>
where
    B: ProtocolCore,
    F: FnOnce(Bit) -> B,
{
    /// Creates the combined protocol for one process.
    ///
    /// # Panics
    ///
    /// Panics if `r_max < 2` (lean-consensus cannot decide before round
    /// 2, so smaller cutoffs would *always* run the backup).
    pub fn new(layout: RaceLayout, input: Bit, r_max: usize, make_backup: F) -> Self {
        assert!(r_max >= 2, "r_max must be at least 2, got {r_max}");
        BoundedLean {
            lean: LeanConsensus::new(layout, input),
            r_max,
            make_backup: Some(make_backup),
            backup: None,
        }
    }

    /// Whether this process has switched to the backup protocol.
    pub fn backup_engaged(&self) -> bool {
        self.backup.is_some()
    }

    /// The round cutoff `r_max`.
    pub fn r_max(&self) -> usize {
        self.r_max
    }

    /// Registers (bits) of the `a0`/`a1` arrays this configuration can
    /// ever touch: `2 · (r_max + 1)` including the sentinels — the
    /// `O(log² n)` space bound of Theorem 15.
    pub fn lean_space_words(&self) -> usize {
        RaceLayout::words_for_rounds(self.r_max)
    }

    fn maybe_switch(&mut self) {
        if self.backup.is_none()
            && self.lean.status().decision().is_none()
            && self.lean.round() > self.r_max
        {
            let make = self
                .make_backup
                .take()
                .expect("backup constructor consumed twice");
            self.backup = Some(make(self.lean.preference()));
        }
    }
}

/// The combined protocol runs on whatever plane its components run on
/// (the default fused step is correct across the seam: it executes
/// whichever sub-machine is active).
impl<M, B, F> Protocol<M> for BoundedLean<B, F>
where
    M: MemStore,
    B: Protocol<M>,
    F: FnOnce(Bit) -> B + Send,
{
}

impl<B, F> ProtocolCore for BoundedLean<B, F>
where
    B: ProtocolCore,
    F: FnOnce(Bit) -> B,
{
    fn status(&self) -> Status {
        match &self.backup {
            Some(b) => b.status(),
            None => self.lean.status(),
        }
    }

    fn advance(&mut self, read_value: Option<Word>) {
        match &mut self.backup {
            Some(b) => b.advance(read_value),
            None => {
                self.lean.advance(read_value);
                self.maybe_switch();
            }
        }
    }

    fn round(&self) -> usize {
        match &self.backup {
            // Keep the round counter monotone across the seam.
            Some(b) => self.r_max + b.round(),
            None => self.lean.round(),
        }
    }

    fn preference(&self) -> Bit {
        match &self.backup {
            Some(b) => b.preference(),
            None => self.lean.preference(),
        }
    }

    fn ops_completed(&self) -> u64 {
        self.lean.ops_completed() + self.backup.as_ref().map_or(0, |b| b.ops_completed())
    }
}

impl<B: fmt::Debug, F> fmt::Debug for BoundedLean<B, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedLean")
            .field("lean", &self.lean)
            .field("r_max", &self.r_max)
            .field("backup", &self.backup)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{run_round_robin, step};
    use nc_memory::{Op, SimMemory};

    /// A stand-in backup: decides its input after one read of a scratch
    /// address (valid by construction).
    #[derive(Debug)]
    struct EchoBackup {
        input: Bit,
        done: bool,
        ops: u64,
    }

    impl EchoBackup {
        fn new(input: Bit) -> Self {
            EchoBackup {
                input,
                done: false,
                ops: 0,
            }
        }
    }

    impl<M: MemStore> Protocol<M> for EchoBackup {}

    impl ProtocolCore for EchoBackup {
        fn status(&self) -> Status {
            if self.done {
                Status::Decided(self.input)
            } else {
                Status::Pending(Op::Read(nc_memory::Addr::new(1_000_000)))
            }
        }

        fn advance(&mut self, read_value: Option<Word>) {
            assert!(read_value.is_some());
            assert!(!self.done);
            self.ops += 1;
            self.done = true;
        }

        fn round(&self) -> usize {
            1
        }

        fn preference(&self) -> Bit {
            self.input
        }

        fn ops_completed(&self) -> u64 {
            self.ops
        }
    }

    fn combined(
        layout: RaceLayout,
        input: Bit,
        r_max: usize,
    ) -> BoundedLean<EchoBackup, impl FnOnce(Bit) -> EchoBackup> {
        BoundedLean::new(layout, input, r_max, EchoBackup::new)
    }

    #[test]
    fn fast_path_never_engages_backup() {
        let mut mem = SimMemory::new();
        let layout = RaceLayout::at_base(0);
        layout.install_sentinels(&mut mem);
        let mut p = combined(layout, Bit::One, 10);
        while step(&mut p, &mut mem).is_none() {}
        assert_eq!(p.status().decision(), Some(Bit::One));
        assert!(!p.backup_engaged());
        assert_eq!(p.ops_completed(), 8);
    }

    #[test]
    fn lockstep_split_inputs_engage_backup_at_r_max() {
        // Perfect lockstep never lets lean decide; the cutoff must fire
        // and the (valid) backup decides.
        let mut mem = SimMemory::new();
        let layout = RaceLayout::at_base(0);
        layout.install_sentinels(&mut mem);
        let r_max = 5;
        let mut procs: Vec<_> = [Bit::Zero, Bit::One]
            .iter()
            .map(|&b| combined(layout, b, r_max))
            .collect();
        let decisions = run_round_robin(&mut procs, &mut mem, 100_000).unwrap();
        for p in &procs {
            assert!(p.backup_engaged(), "lockstep must reach the cutoff");
        }
        // Both engaged the backup with their held preferences; EchoBackup
        // echoes them, so decisions mirror inputs here (EchoBackup is NOT
        // a real consensus protocol — agreement across the seam is only
        // guaranteed when lean decided on one side, tested below, or when
        // the backup actually solves consensus, tested in nc-backup).
        assert_eq!(decisions.len(), 2);
    }

    #[test]
    fn seam_agreement_lean_decision_forces_backup_inputs() {
        // Leader decides inside lean; a laggard crossing the cutoff must
        // enter the backup with the leader's value (Lemma 2/4 across the
        // seam), so even an echo backup agrees.
        let mut mem = SimMemory::new();
        let layout = RaceLayout::at_base(0);
        layout.install_sentinels(&mut mem);
        let mut leader = combined(layout, Bit::One, 4);
        while step(&mut leader, &mut mem).is_none() {}
        assert_eq!(leader.status().decision(), Some(Bit::One));

        let mut laggard = combined(layout, Bit::Zero, 4);
        let mut d = None;
        let mut guard = 0;
        while d.is_none() {
            d = step(&mut laggard, &mut mem);
            guard += 1;
            assert!(guard < 1000);
        }
        assert_eq!(d, Some(Bit::One), "laggard must adopt the decided value");
    }

    #[test]
    fn switch_happens_exactly_after_round_r_max() {
        let mut mem = SimMemory::new();
        let layout = RaceLayout::at_base(0);
        layout.install_sentinels(&mut mem);
        // Two lockstep processes, r_max = 3: lean runs rounds 1..=3
        // (12 ops each), then the backup engages.
        let mut procs: Vec<_> = [Bit::Zero, Bit::One]
            .iter()
            .map(|&b| combined(layout, b, 3))
            .collect();
        for _ in 0..12 {
            for p in procs.iter_mut() {
                assert!(!p.backup_engaged());
                step(p, &mut mem);
            }
        }
        for p in &procs {
            assert!(p.backup_engaged());
            assert_eq!(p.round(), 3 + 1); // r_max + backup round 1
        }
    }

    #[test]
    fn space_bound_is_two_per_round_plus_sentinels() {
        let mut mem = SimMemory::new();
        let layout = RaceLayout::at_base(0);
        layout.install_sentinels(&mut mem);
        let p = combined(layout, Bit::Zero, 7);
        assert_eq!(p.lean_space_words(), 16);
        assert_eq!(p.r_max(), 7);
    }

    #[test]
    fn recommended_r_max_grows_like_log_squared() {
        assert!(recommended_r_max(1) >= 9);
        let r10 = recommended_r_max(10);
        let r1000 = recommended_r_max(1000);
        let r100000 = recommended_r_max(100_000);
        assert!(r10 < r1000 && r1000 < r100000);
        // log2(100001) ≈ 17, so (17+2)² = 361; sanity-check the scale.
        assert!((200..=500).contains(&r100000), "got {r100000}");
    }

    #[test]
    fn ops_are_summed_across_the_seam() {
        let mut mem = SimMemory::new();
        let layout = RaceLayout::at_base(0);
        layout.install_sentinels(&mut mem);
        let mut procs: Vec<_> = [Bit::Zero, Bit::One]
            .iter()
            .map(|&b| combined(layout, b, 2))
            .collect();
        run_round_robin(&mut procs, &mut mem, 10_000).unwrap();
        for p in &procs {
            // 2 lean rounds (8 ops) + 1 backup op.
            assert_eq!(p.ops_completed(), 9);
        }
    }

    #[test]
    #[should_panic(expected = "r_max must be at least 2")]
    fn tiny_r_max_panics() {
        let layout = RaceLayout::at_base(0);
        let _ = combined(layout, Bit::Zero, 1);
    }

    #[test]
    fn debug_impl_is_nonempty() {
        let layout = RaceLayout::at_base(0);
        let p = combined(layout, Bit::Zero, 5);
        assert!(format!("{p:?}").contains("BoundedLean"));
    }
}
