//! Cross-plane atomicity-checker properties: serial executions recorded
//! against **any** [`MemStore`] backend satisfy the sequential register
//! specification, seeded violations are rejected, and the checker's
//! verdict is identical whichever plane produced the history.
//!
//! This is the end-to-end link between the word-store layer and the
//! [`nc_memory::history`] checker: if a backend ever deviated from
//! last-write-wins (a growth bug in `DenseRaceMemory`, a stale word
//! surviving a fill-in-place reset), the recorded history would fail
//! `check_register_semantics` — and the differential assertions here
//! would catch the plane whose history diverged.

use proptest::prelude::*;

use nc_memory::{
    check_register_semantics, check_register_semantics_from, Addr, DenseRaceMemory, Event,
    HistoryError, MemStore, Op, Pid, SimMemory, Word,
};

/// Executes `ops` serially against `mem`, recording each as an [`Event`]
/// with strictly increasing times.
fn record<M: MemStore>(mem: &mut M, ops: &[(bool, usize, u64)]) -> Vec<Event> {
    ops.iter()
        .enumerate()
        .map(|(i, &(is_read, off, val))| {
            let op = if is_read {
                Op::Read(Addr::new(off))
            } else {
                Op::Write(Addr::new(off), val)
            };
            let observed = mem.exec(op);
            Event {
                time: (i + 1) as f64,
                pid: Pid::new((i % 5) as u32),
                op,
                observed,
            }
        })
        .collect()
}

/// Flips the observed value of the `k`-th read event (if any), seeding a
/// register-semantics violation. Returns the index it corrupted.
fn corrupt_kth_read(history: &mut [Event], k: usize) -> Option<usize> {
    let reads: Vec<usize> = history
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.op, Op::Read(_)))
        .map(|(i, _)| i)
        .collect();
    let &idx = reads.get(k % reads.len().max(1))?;
    let observed = history[idx].observed.expect("reads carry observations");
    history[idx].observed = Some(observed ^ 1);
    Some(idx)
}

fn op_strategy() -> impl Strategy<Value = Vec<(bool, usize, u64)>> {
    proptest::collection::vec((any::<bool>(), 0usize..64, 1u64..16), 1..200)
}

proptest! {
    /// Serial executions through every plane yield checker-accepted
    /// histories, and the histories are identical event for event.
    #[test]
    fn serial_histories_are_accepted_on_every_plane(ops in op_strategy()) {
        let mut sim = SimMemory::new();
        let mut dense = DenseRaceMemory::with_rounds(2); // tiny: force growth
        let hist_sim = record(&mut sim, &ops);
        let hist_dense = record(&mut dense, &ops);
        prop_assert_eq!(&hist_sim, &hist_dense, "planes observed different values");
        prop_assert!(check_register_semantics(&hist_sim).is_ok());
        prop_assert!(check_register_semantics(&hist_dense).is_ok());
    }

    /// A seeded violation (one read's observation flipped) is rejected
    /// identically — same error variant, same event index — whichever
    /// plane recorded the history.
    #[test]
    fn seeded_violations_are_rejected_identically(ops in op_strategy(), k in 0usize..50) {
        let mut sim = SimMemory::new();
        let mut dense = DenseRaceMemory::new();
        let mut hist_sim = record(&mut sim, &ops);
        let mut hist_dense = record(&mut dense, &ops);
        let c1 = corrupt_kth_read(&mut hist_sim, k);
        let c2 = corrupt_kth_read(&mut hist_dense, k);
        prop_assert_eq!(c1, c2);
        if let Some(idx) = c1 {
            let e_sim = check_register_semantics(&hist_sim)
                .expect_err("corrupted read must be rejected (sim)");
            let e_dense = check_register_semantics(&hist_dense)
                .expect_err("corrupted read must be rejected (dense)");
            prop_assert_eq!(&e_sim, &e_dense, "planes rejected differently");
            match e_sim {
                HistoryError::StaleRead { index, .. } => prop_assert!(index <= idx),
                other => prop_assert!(false, "unexpected error {other:?}"),
            }
        }
    }

    /// Reset then re-record: in-place zeroing must leave no stale words
    /// behind on either plane (histories after a reset check clean and
    /// match each other).
    #[test]
    fn histories_after_reset_stay_clean(first in op_strategy(), second in op_strategy()) {
        let mut sim = SimMemory::new();
        let mut dense = DenseRaceMemory::with_rounds(2);
        let _ = record(&mut sim, &first);
        let _ = record(&mut dense, &first);
        MemStore::reset(&mut sim);
        MemStore::reset(&mut dense);
        let hist_sim = record(&mut sim, &second);
        let hist_dense = record(&mut dense, &second);
        prop_assert_eq!(&hist_sim, &hist_dense);
        prop_assert!(check_register_semantics(&hist_sim).is_ok());
    }

    /// Pre-seeded initial state (the engine's sentinel pattern) checks
    /// out identically across planes via `check_register_semantics_from`.
    #[test]
    fn initial_state_checks_across_planes(ops in op_strategy()) {
        let mut initial = std::collections::HashMap::new();
        initial.insert(Addr::new(0), 1 as Word);
        initial.insert(Addr::new(1), 1 as Word);
        let mut sim = SimMemory::new();
        let mut dense = DenseRaceMemory::new();
        for (addr, val) in &initial {
            sim.write(*addr, *val);
            MemStore::write(&mut dense, *addr, *val);
        }
        let hist_sim = record(&mut sim, &ops);
        let hist_dense = record(&mut dense, &ops);
        prop_assert_eq!(&hist_sim, &hist_dense);
        prop_assert!(check_register_semantics_from(&hist_sim, &initial).is_ok());
        prop_assert!(check_register_semantics_from(&hist_dense, &initial).is_ok());
    }
}
