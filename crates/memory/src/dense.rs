//! [`DenseRaceMemory`] — a preallocated, fixed-stride word store
//! specialized to the racing-arrays access pattern.
//!
//! [`crate::SimMemory`] starts empty and grows lazily, so a fresh trial
//! pays a handful of resize-and-zero steps exactly on the hot first
//! writes of every round, and every write carries the grow branch with
//! a live resize target behind it. `DenseRaceMemory` inverts the trade
//! for the execution core ROADMAP's cache refactor targets: the dense
//! prefix covering [`crate::RaceLayout`]'s per-round lanes (two words
//! per round, fixed stride 2) is allocated and zeroed **up front**, so
//! in the steady state of a trial sweep
//!
//! * reads and writes inside the prefix are a single always-hit bounds
//!   check and a direct indexed access — no `Option` unwrapping on
//!   reads, no reachable resize on writes, and a stable data pointer
//!   the optimizer can hoist across the engine's fused protocol step;
//! * [`DenseRaceMemory::reset`] zeroes only the touched prefix in place
//!   (the fill-in-place contract of [`MemStore::reset`]) and never
//!   releases or reallocates storage.
//!
//! Addresses beyond the prefix still work — the store grows
//! geometrically like `SimMemory`, so the §8 backup's regions and any
//! other layout remain fully supported; they just don't get the
//! prealloc benefit until touched once. Observable behavior is
//! identical to `SimMemory` in every case (pinned by this module's
//! differential proptests and the engine's equivalence matrices).

use crate::layout::Region;
use crate::store::MemStore;
use crate::types::{Addr, Word};

/// Rounds covered by the default preallocation: lean-consensus races
/// under the paper's noise models decide in `O(log n)` rounds, so 512
/// rounds (1026 words, 8 KiB) covers every realistic race with room to
/// spare while staying well inside L1+L2.
pub const DEFAULT_PREALLOC_ROUNDS: usize = 512;

/// A dense, preallocated flat address space of atomic registers.
///
/// Same observable semantics as [`crate::SimMemory`] (zero-initialised,
/// unbounded, last-write-wins, bump-allocated regions), different
/// storage policy: see the [module docs](self).
///
/// # Example
///
/// ```
/// use nc_memory::{Addr, DenseRaceMemory, MemStore, Op};
///
/// let mut mem = DenseRaceMemory::new();
/// assert_eq!(mem.read(Addr::new(1_000_000)), 0); // untouched => 0
/// mem.write(Addr::new(3), 7);
/// assert_eq!(mem.exec(Op::Read(Addr::new(3))), Some(7));
/// ```
#[derive(Clone, Debug)]
pub struct DenseRaceMemory {
    words: Vec<Word>,
    /// High-water mark of written addresses (max offset + 1) since the
    /// last reset — the prefix [`DenseRaceMemory::reset`] must re-zero.
    hi: usize,
    next_region: usize,
    ops_executed: u64,
}

impl DenseRaceMemory {
    /// A store preallocated for [`DEFAULT_PREALLOC_ROUNDS`] racing
    /// rounds.
    pub fn new() -> Self {
        Self::with_rounds(DEFAULT_PREALLOC_ROUNDS)
    }

    /// A store whose dense prefix covers rounds `0..=max_round` of a
    /// [`crate::RaceLayout`] at base 0 (i.e. `2 * (max_round + 1)`
    /// words). Addresses beyond the prefix grow on demand.
    pub fn with_rounds(max_round: usize) -> Self {
        DenseRaceMemory {
            words: vec![0; 2 * (max_round + 1)],
            hi: 0,
            next_region: 0,
            ops_executed: 0,
        }
    }

    /// Grows the backing storage to cover `idx`. Outlined so the write
    /// fast path stays a compare-and-store.
    #[cold]
    #[inline(never)]
    fn grow_to(&mut self, idx: usize) {
        let new_len = (idx + 1).max(self.words.len() * 2);
        self.words.resize(new_len, 0);
    }
}

impl Default for DenseRaceMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStore for DenseRaceMemory {
    #[inline]
    fn read(&mut self, addr: Addr) -> Word {
        self.ops_executed += 1;
        let idx = addr.offset();
        // Inside the dense prefix this is one predictable branch; the
        // out-of-prefix read (conceptually-unbounded semantics) never
        // allocates, matching `SimMemory`.
        if idx < self.words.len() {
            self.words[idx]
        } else {
            0
        }
    }

    #[inline]
    fn write(&mut self, addr: Addr, value: Word) {
        self.ops_executed += 1;
        let idx = addr.offset();
        if idx >= self.words.len() {
            self.grow_to(idx);
        }
        self.words[idx] = value;
        if idx >= self.hi {
            self.hi = idx + 1;
        }
    }

    fn alloc(&mut self, len: usize) -> Region {
        let region = Region::new(Addr::new(self.next_region), len);
        self.next_region = self
            .next_region
            .checked_add(len)
            .expect("simulated address space exhausted");
        region
    }

    fn reset(&mut self) {
        self.words[..self.hi].fill(0);
        self.hi = 0;
        self.next_region = 0;
        self.ops_executed = 0;
    }

    fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    fn peek(&self, addr: Addr) -> Word {
        self.words.get(addr.offset()).copied().unwrap_or(0)
    }

    fn footprint_words(&self) -> usize {
        self.hi
    }

    #[inline]
    fn race_plane(&mut self) -> Option<crate::store::RacePlane<'_>> {
        // The whole point of this backend: a faithful preallocated
        // array, so batched callers may address the prefix directly
        // (they fall back to per-op `read`/`write` — and its `grow_to`
        // slow path — for any batch that would reach past it).
        Some(crate::store::RacePlane {
            words: &mut self.words,
            hi: &mut self.hi,
            ops: &mut self.ops_executed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimMemory;
    use crate::types::Op;
    use proptest::prelude::*;

    #[test]
    fn fresh_store_reads_zero_everywhere() {
        let mut mem = DenseRaceMemory::new();
        for off in [0usize, 1, 17, 1 << 20] {
            assert_eq!(mem.read(Addr::new(off)), 0);
        }
        // Reads never count as consumed footprint.
        assert_eq!(mem.footprint_words(), 0);
    }

    #[test]
    fn write_read_roundtrip_and_growth_beyond_prefix() {
        let mut mem = DenseRaceMemory::with_rounds(1); // 4-word prefix
        mem.write(Addr::new(2), 5);
        assert_eq!(mem.read(Addr::new(2)), 5);
        // Beyond the prefix: grows, zero-fills, round-trips.
        mem.write(Addr::new(100), 9);
        assert_eq!(mem.read(Addr::new(100)), 9);
        assert_eq!(mem.read(Addr::new(99)), 0);
        assert_eq!(mem.footprint_words(), 101);
    }

    #[test]
    fn reset_zeroes_used_prefix_and_restarts_regions() {
        let mut mem = DenseRaceMemory::new();
        let r = mem.alloc(8);
        mem.write(Addr::new(3), 77);
        mem.write(Addr::new(5000), 5); // beyond the prealloc
        mem.reset();
        assert_eq!(mem.ops_executed(), 0);
        assert_eq!(mem.footprint_words(), 0);
        assert_eq!(mem.read(Addr::new(3)), 0);
        assert_eq!(mem.read(Addr::new(5000)), 0);
        assert_eq!(mem.alloc(8).base(), r.base());
    }

    #[test]
    fn ops_counting_matches_contract() {
        let mut mem = DenseRaceMemory::new();
        mem.read(Addr::new(0));
        mem.write(Addr::new(0), 1);
        mem.exec(Op::Read(Addr::new(0)));
        assert_eq!(mem.ops_executed(), 3);
        assert_eq!(mem.peek(Addr::new(0)), 1);
        assert_eq!(mem.ops_executed(), 3, "peek must not count");
    }

    #[test]
    fn race_plane_access_is_indistinguishable_from_per_op_calls() {
        // Drive the same op sequence through the MemStore methods and
        // through the RacePlane window (following its contract), then
        // compare every observable: values, op count, footprint.
        let mut per_op = DenseRaceMemory::with_rounds(8);
        let mut planar = DenseRaceMemory::with_rounds(8);
        let script: Vec<(usize, Option<Word>)> = (0..40)
            .map(|i| (i * 7 % 17, if i % 3 == 0 { Some(i as Word) } else { None }))
            .collect();
        for &(idx, write) in &script {
            let addr = Addr::new(idx);
            let expect = match write {
                Some(v) => {
                    per_op.write(addr, v);
                    None
                }
                None => Some(per_op.read(addr)),
            };
            let plane = planar.race_plane().expect("dense store exposes its plane");
            assert!(idx < plane.words.len(), "script stays in the prefix");
            *plane.ops += 1;
            match write {
                Some(v) => {
                    plane.words[idx] = v;
                    *plane.hi = (*plane.hi).max(idx + 1);
                }
                None => assert_eq!(Some(plane.words[idx]), expect),
            }
        }
        assert_eq!(per_op.ops_executed(), planar.ops_executed());
        assert_eq!(per_op.footprint_words(), planar.footprint_words());
        for idx in 0..32 {
            let addr = Addr::new(idx);
            assert_eq!(per_op.peek(addr), planar.peek(addr), "word {idx}");
        }
    }

    #[test]
    fn only_the_dense_backend_exposes_a_race_plane() {
        assert!(DenseRaceMemory::new().race_plane().is_some());
        assert!(SimMemory::new().race_plane().is_none());
        assert!(crate::FaultyMemory::pass_through(DenseRaceMemory::new())
            .race_plane()
            .is_none());
    }

    proptest! {
        /// Differential register semantics: any interleaved sequence of
        /// reads/writes/resets observes identical values and operation
        /// counts on `DenseRaceMemory` and `SimMemory`.
        #[test]
        fn behaves_exactly_like_sim_memory(
            ops in proptest::collection::vec((0u8..4, 0usize..2100, any::<u64>()), 0..300),
        ) {
            let mut dense = DenseRaceMemory::with_rounds(4); // tiny prefix: force growth
            let mut sim = SimMemory::new();
            for (kind, off, val) in ops {
                let addr = Addr::new(off);
                match kind {
                    0 => prop_assert_eq!(dense.read(addr), sim.read(addr)),
                    1 => {
                        dense.write(addr, val);
                        sim.write(addr, val);
                    }
                    2 => prop_assert_eq!(
                        MemStore::alloc(&mut dense, off % 64),
                        MemStore::alloc(&mut sim, off % 64)
                    ),
                    _ => {
                        MemStore::reset(&mut dense);
                        MemStore::reset(&mut sim);
                    }
                }
                prop_assert_eq!(MemStore::ops_executed(&dense), MemStore::ops_executed(&sim));
                prop_assert_eq!(MemStore::peek(&dense, addr), MemStore::peek(&sim, addr));
            }
        }
    }
}
