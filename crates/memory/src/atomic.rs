//! Native atomic register arrays for real-thread execution.
//!
//! The simulation substrate models registers; this module *is* registers.
//! [`SegArray`] is a growable array of `AtomicU64` words that never moves
//! allocated storage (readers hold references into segments while other
//! threads extend the array), which is what the paper's conceptually
//! infinite arrays `a0`/`a1` need when lean-consensus runs on real
//! threads.
//!
//! Storage is a fixed table of segment slots, each lazily initialised on
//! first touch. Lazy initialisation uses [`std::sync::OnceLock`]: reads
//! and writes to already-initialised segments are wait-free atomic
//! `load`/`store`; the one-time segment allocation may briefly block a
//! concurrent initialiser, a deviation from strict wait-freedom that is
//! confined to `O(capacity / SEGMENT_WORDS)` events per run and does not
//! affect the algorithm's step counting (memory allocation is not a
//! shared-memory operation in the model).
//!
//! All atomic accesses use `SeqCst`, so every execution of single-word
//! loads and stores is linearizable — the interleaving model the paper's
//! safety proofs (§5) assume.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::types::Word;

/// Number of 64-bit registers per lazily-allocated segment.
pub const SEGMENT_WORDS: usize = 1024;

/// Default maximum number of segments (4096 segments × 1024 words ≈ 4.2M
/// registers ≈ 2.1M lean-consensus rounds — far beyond the `O(log n)`
/// rounds the paper proves, and far beyond any plausible run).
pub const DEFAULT_MAX_SEGMENTS: usize = 4096;

/// A lock-free growable array of atomic 64-bit registers.
///
/// * Registers read as `0` until first written.
/// * Storage grows lazily in segments of [`SEGMENT_WORDS`] registers.
/// * Allocated registers never move, so `&SegArray` can be shared across
///   threads (`SegArray` is `Sync`) and used concurrently without locks.
///
/// # Example
///
/// ```
/// use nc_memory::SegArray;
///
/// let a = SegArray::new();
/// assert_eq!(a.load(10_000), 0);
/// a.store(10_000, 7);
/// assert_eq!(a.load(10_000), 7);
/// ```
pub struct SegArray {
    segments: Box<[OnceLock<Box<[AtomicU64]>>]>,
}

impl SegArray {
    /// Creates an array with the default capacity
    /// ([`DEFAULT_MAX_SEGMENTS`] segments).
    pub fn new() -> Self {
        Self::with_max_segments(DEFAULT_MAX_SEGMENTS)
    }

    /// Creates an array with room for `max_segments` segments
    /// (`max_segments × SEGMENT_WORDS` registers).
    ///
    /// Only the slot table (one pointer-sized cell per segment) is
    /// allocated up front; segment storage is allocated on first touch.
    pub fn with_max_segments(max_segments: usize) -> Self {
        let mut slots = Vec::with_capacity(max_segments);
        slots.resize_with(max_segments, OnceLock::new);
        SegArray {
            segments: slots.into_boxed_slice(),
        }
    }

    /// Total number of addressable registers.
    pub fn capacity(&self) -> usize {
        self.segments.len() * SEGMENT_WORDS
    }

    /// Number of segments that have been materialised so far.
    pub fn allocated_segments(&self) -> usize {
        self.segments.iter().filter(|s| s.get().is_some()).count()
    }

    fn segment(&self, seg: usize) -> &[AtomicU64] {
        assert!(
            seg < self.segments.len(),
            "register index beyond SegArray capacity ({} registers); \
             use with_max_segments or the bounded protocol",
            self.capacity()
        );
        self.segments[seg].get_or_init(|| {
            let mut v = Vec::with_capacity(SEGMENT_WORDS);
            v.resize_with(SEGMENT_WORDS, || AtomicU64::new(0));
            v.into_boxed_slice()
        })
    }

    /// Returns a reference to the atomic register at `index`, allocating
    /// its segment if needed.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity()`.
    pub fn register(&self, index: usize) -> &AtomicU64 {
        &self.segment(index / SEGMENT_WORDS)[index % SEGMENT_WORDS]
    }

    /// Atomically reads the register at `index` (`SeqCst`).
    ///
    /// Reads of never-touched segments see `0`, but do allocate the
    /// segment; protocols in this workspace only read addresses they may
    /// also write, so this keeps the fast path branch-free.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity()`.
    pub fn load(&self, index: usize) -> Word {
        self.register(index).load(Ordering::SeqCst)
    }

    /// Atomically writes the register at `index` (`SeqCst`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity()`.
    pub fn store(&self, index: usize, value: Word) {
        self.register(index).store(value, Ordering::SeqCst);
    }
}

impl Default for SegArray {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SegArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegArray")
            .field("capacity", &self.capacity())
            .field("allocated_segments", &self.allocated_segments())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_array_reads_zero() {
        let a = SegArray::new();
        assert_eq!(a.load(0), 0);
        assert_eq!(a.load(SEGMENT_WORDS * 3 + 5), 0);
    }

    #[test]
    fn store_load_roundtrip_across_segments() {
        let a = SegArray::new();
        for i in [
            0,
            1,
            SEGMENT_WORDS - 1,
            SEGMENT_WORDS,
            SEGMENT_WORDS * 2 + 7,
        ] {
            a.store(i, i as u64 + 1);
        }
        for i in [
            0,
            1,
            SEGMENT_WORDS - 1,
            SEGMENT_WORDS,
            SEGMENT_WORDS * 2 + 7,
        ] {
            assert_eq!(a.load(i), i as u64 + 1);
        }
    }

    #[test]
    fn segments_allocate_lazily() {
        let a = SegArray::new();
        assert_eq!(a.allocated_segments(), 0);
        a.store(0, 1);
        assert_eq!(a.allocated_segments(), 1);
        a.store(SEGMENT_WORDS * 5, 1);
        assert_eq!(a.allocated_segments(), 2);
    }

    #[test]
    fn capacity_matches_limits() {
        let a = SegArray::with_max_segments(2);
        assert_eq!(a.capacity(), 2 * SEGMENT_WORDS);
        a.store(2 * SEGMENT_WORDS - 1, 9);
        assert_eq!(a.load(2 * SEGMENT_WORDS - 1), 9);
    }

    #[test]
    #[should_panic(expected = "beyond SegArray capacity")]
    fn out_of_capacity_panics() {
        let a = SegArray::with_max_segments(1);
        a.store(SEGMENT_WORDS, 1);
    }

    #[test]
    fn debug_is_nonempty() {
        let a = SegArray::with_max_segments(1);
        let s = format!("{a:?}");
        assert!(s.contains("SegArray"));
        assert!(s.contains("capacity"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SegArray>();
    }

    /// Bits written by many threads are all visible afterwards — the
    /// monotone write pattern lean-consensus relies on (only 0 -> 1
    /// transitions on each register).
    #[test]
    fn concurrent_monotone_writes_are_all_visible() {
        let a = SegArray::new();
        let threads = 8;
        let per_thread = 500;
        crossbeam::scope(|s| {
            for t in 0..threads {
                let a = &a;
                s.spawn(move |_| {
                    for i in 0..per_thread {
                        a.store(t * per_thread + i, 1);
                    }
                });
            }
        })
        .unwrap();
        for idx in 0..threads * per_thread {
            assert_eq!(a.load(idx), 1, "register {idx} lost its write");
        }
    }

    /// Concurrent readers of a register being set never observe anything
    /// but 0 or the written value, and once they see 1 it stays 1
    /// (registers are regular/atomic, not flickering).
    #[test]
    fn concurrent_reader_sees_monotone_flag() {
        for _ in 0..20 {
            let a = SegArray::with_max_segments(1);
            crossbeam::scope(|s| {
                let reader = s.spawn(|_| {
                    let mut seen_one = false;
                    for _ in 0..10_000 {
                        let v = a.load(7);
                        assert!(v == 0 || v == 1);
                        if seen_one {
                            assert_eq!(v, 1, "flag reverted to 0");
                        }
                        if v == 1 {
                            seen_one = true;
                        }
                    }
                });
                s.spawn(|_| {
                    a.store(7, 1);
                });
                reader.join().unwrap();
            })
            .unwrap();
        }
    }
}
