//! Address-space layouts.
//!
//! The paper's lean-consensus uses two conceptually infinite arrays of
//! bits, `a0` and `a1`, prefixed with read-only sentinel cells
//! `a0[0] = a1[0] = 1`. [`RaceLayout`] interleaves the two arrays into a
//! single flat address space so that growth in the round number maps to
//! growth in one dimension — which is exactly what both [`crate::sim::SimMemory`]
//! and [`crate::atomic::SegArray`] provide.
//!
//! [`Region`] is the currency of composition: the §8 bounded protocol runs
//! lean-consensus and a backup protocol side by side in one memory, each
//! inside its own region.

use crate::store::MemStore;
use crate::types::{Addr, Bit, Word};

/// A contiguous, exclusively-owned range of register addresses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Region {
    base: Addr,
    len: usize,
}

impl Region {
    /// Creates a region starting at `base` covering `len` registers.
    pub const fn new(base: Addr, len: usize) -> Self {
        Region { base, len }
    }

    /// First address of the region.
    pub const fn base(self) -> Addr {
        self.base
    }

    /// Number of registers in the region.
    pub const fn len(self) -> usize {
        self.len
    }

    /// Whether the region is empty.
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The `i`-th register of the region.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn at(self, i: usize) -> Addr {
        assert!(
            i < self.len,
            "region index {i} out of bounds (len {})",
            self.len
        );
        self.base.plus(i)
    }

    /// Whether `addr` falls inside this region.
    pub fn contains(self, addr: Addr) -> bool {
        let o = addr.offset();
        o >= self.base.offset() && o < self.base.offset() + self.len
    }

    /// Splits the region in two at `mid`: the first `mid` registers and the
    /// remainder.
    ///
    /// # Panics
    ///
    /// Panics if `mid > len`.
    pub fn split_at(self, mid: usize) -> (Region, Region) {
        assert!(
            mid <= self.len,
            "split point {mid} beyond region length {}",
            self.len
        );
        (
            Region::new(self.base, mid),
            Region::new(self.base.plus(mid), self.len - mid),
        )
    }
}

/// Addressing scheme for the paper's racing bit arrays `a0`/`a1`.
///
/// Slot `(b, r)` — array `a_b`, round `r` — lives at address
/// `base + 2·r + b`. Interleaving by round keeps the address high-water
/// mark proportional to the largest round reached, so an execution that
/// terminates in round `R` touches only `O(R)` registers regardless of
/// which array "wins".
///
/// Round 0 holds the paper's sentinels: `a0[0] = a1[0] = 1`, written once
/// by [`RaceLayout::install_sentinels`] before the race starts and never
/// written again.
///
/// ```
/// use nc_memory::{Bit, RaceLayout};
/// let l = RaceLayout::at_base(100);
/// assert_eq!(l.slot(Bit::Zero, 0).offset(), 100);
/// assert_eq!(l.slot(Bit::One, 0).offset(), 101);
/// assert_eq!(l.slot(Bit::Zero, 3).offset(), 106);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct RaceLayout {
    base: Addr,
}

impl RaceLayout {
    /// A layout rooted at address offset `base`.
    pub const fn at_base(base: usize) -> Self {
        RaceLayout {
            base: Addr::new(base),
        }
    }

    /// A layout occupying the start of `region`.
    ///
    /// The region must have room for the sentinels plus at least one round
    /// (≥ 4 registers); rounds beyond `region.len() / 2 - 1` overflow the
    /// region and are the caller's responsibility to avoid (the bounded
    /// protocol of §8 enforces this with its `r_max` cutoff).
    ///
    /// # Panics
    ///
    /// Panics if the region has fewer than 4 registers.
    pub fn in_region(region: Region) -> Self {
        assert!(
            region.len() >= 4,
            "race layout needs at least 4 registers (sentinels + round 1), got {}",
            region.len()
        );
        RaceLayout {
            base: region.base(),
        }
    }

    /// Address of `a_b[round]`.
    pub fn slot(self, b: Bit, round: usize) -> Addr {
        self.base.plus(2 * round + b.index())
    }

    /// Number of registers needed to run rounds `0..=max_round`
    /// (sentinels included).
    pub const fn words_for_rounds(max_round: usize) -> usize {
        2 * (max_round + 1)
    }

    /// Writes the paper's read-only sentinels `a0[0] = a1[0] = 1` into
    /// any word-store plane.
    ///
    /// This models initial state, not protocol steps; it runs before
    /// the trial's [`MemStore::reseed`], so fault-injecting stores
    /// never perturb it.
    pub fn install_sentinels<M: MemStore>(self, mem: &mut M) {
        let one: Word = Bit::One.word();
        mem.write(self.slot(Bit::Zero, 0), one);
        mem.write(self.slot(Bit::One, 0), one);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimMemory;
    use proptest::prelude::*;

    #[test]
    fn region_accessors() {
        let r = Region::new(Addr::new(10), 4);
        assert_eq!(r.base(), Addr::new(10));
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.at(0), Addr::new(10));
        assert_eq!(r.at(3), Addr::new(13));
        assert!(Region::new(Addr::new(0), 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn region_at_out_of_bounds_panics() {
        Region::new(Addr::new(0), 2).at(2);
    }

    #[test]
    fn region_split() {
        let r = Region::new(Addr::new(10), 10);
        let (a, b) = r.split_at(3);
        assert_eq!(a, Region::new(Addr::new(10), 3));
        assert_eq!(b, Region::new(Addr::new(13), 7));
        let (c, d) = r.split_at(0);
        assert!(c.is_empty());
        assert_eq!(d.len(), 10);
    }

    #[test]
    #[should_panic(expected = "beyond region length")]
    fn region_split_beyond_len_panics() {
        Region::new(Addr::new(0), 2).split_at(3);
    }

    #[test]
    fn race_layout_interleaves_rounds() {
        let l = RaceLayout::at_base(0);
        assert_eq!(l.slot(Bit::Zero, 0).offset(), 0);
        assert_eq!(l.slot(Bit::One, 0).offset(), 1);
        assert_eq!(l.slot(Bit::Zero, 1).offset(), 2);
        assert_eq!(l.slot(Bit::One, 1).offset(), 3);
        assert_eq!(l.slot(Bit::One, 10).offset(), 21);
    }

    #[test]
    fn race_layout_slots_are_injective() {
        let l = RaceLayout::at_base(7);
        let mut seen = std::collections::HashSet::new();
        for r in 0..100 {
            for b in Bit::BOTH {
                assert!(
                    seen.insert(l.slot(b, r)),
                    "duplicate address for ({b}, {r})"
                );
            }
        }
    }

    #[test]
    fn words_for_rounds_matches_max_slot() {
        for max_round in 0..50 {
            let l = RaceLayout::at_base(0);
            let max_addr = l.slot(Bit::One, max_round).offset();
            assert_eq!(RaceLayout::words_for_rounds(max_round), max_addr + 1);
        }
    }

    #[test]
    fn sentinels_are_installed_once() {
        let mut mem = SimMemory::new();
        let l = RaceLayout::at_base(0);
        l.install_sentinels(&mut mem);
        assert_eq!(mem.peek(l.slot(Bit::Zero, 0)), 1);
        assert_eq!(mem.peek(l.slot(Bit::One, 0)), 1);
        assert_eq!(mem.peek(l.slot(Bit::Zero, 1)), 0);
        assert_eq!(mem.peek(l.slot(Bit::One, 1)), 0);
    }

    #[test]
    fn in_region_uses_region_base() {
        let region = Region::new(Addr::new(40), 8);
        let l = RaceLayout::in_region(region);
        assert_eq!(l.slot(Bit::Zero, 0), Addr::new(40));
        assert!(region.contains(l.slot(Bit::One, 3)));
    }

    #[test]
    #[should_panic(expected = "at least 4 registers")]
    fn in_region_too_small_panics() {
        RaceLayout::in_region(Region::new(Addr::new(0), 3));
    }

    proptest! {
        /// Distinct (bit, round) pairs map to distinct addresses and stay
        /// within the expected bound.
        #[test]
        fn slot_injective_and_bounded(base in 0usize..1000, rounds in 1usize..200) {
            let l = RaceLayout::at_base(base);
            let mut seen = std::collections::HashSet::new();
            for r in 0..rounds {
                for b in Bit::BOTH {
                    let a = l.slot(b, r);
                    prop_assert!(seen.insert(a));
                    prop_assert!(a.offset() < base + RaceLayout::words_for_rounds(rounds - 1));
                }
            }
        }
    }
}
