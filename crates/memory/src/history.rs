//! Recorded operation histories and the register-semantics checker.
//!
//! The paper's correctness argument (§5) works in the interleaving model:
//! operations occur in a global sequence `π1, π2, …` and each read returns
//! the value of the last previous write to the same location. The engine
//! records every executed operation as an [`Event`];
//! [`check_register_semantics`] then replays the history against the
//! sequential specification of atomic registers. This gives an end-to-end
//! check that the simulation substrate really implements the model the
//! proofs assume — any bug in the engine's interleaving or in the memory
//! shows up as a semantics violation.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::types::{Addr, Op, Pid, Word};

/// One executed shared-memory operation, as recorded by a driver.
///
/// `time` is the model time at which the operation occurred. The
/// interleaving model requires distinct times for distinct operations
/// (the paper rules out simultaneity by assumption); the checker verifies
/// that events are presented in strictly increasing time order.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Event {
    /// Model time of the operation.
    pub time: f64,
    /// The process that performed it.
    pub pid: Pid,
    /// The operation itself.
    pub op: Op,
    /// For reads: the value the read returned. `None` for writes.
    pub observed: Option<Word>,
}

impl Event {
    /// Convenience constructor for a read event.
    pub fn read(time: f64, pid: Pid, addr: Addr, observed: Word) -> Self {
        Event {
            time,
            pid,
            op: Op::Read(addr),
            observed: Some(observed),
        }
    }

    /// Convenience constructor for a write event.
    pub fn write(time: f64, pid: Pid, addr: Addr, value: Word) -> Self {
        Event {
            time,
            pid,
            op: Op::Write(addr, value),
            observed: None,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.op, self.observed) {
            (Op::Read(a), Some(v)) => write!(f, "[t={}] {} read {a} = {v}", self.time, self.pid),
            (Op::Read(a), None) => write!(f, "[t={}] {} read {a} = ?", self.time, self.pid),
            (Op::Write(a, v), _) => write!(f, "[t={}] {} write {a} <- {v}", self.time, self.pid),
        }
    }
}

/// A violation of the sequential register specification found in a history.
#[derive(Clone, PartialEq, Debug)]
pub enum HistoryError {
    /// Two consecutive events are not in strictly increasing time order.
    ///
    /// The interleaving model requires a total order on operations; the
    /// paper additionally assumes simultaneous operations occur with
    /// probability zero.
    NonMonotoneTime {
        /// Index of the offending event in the history.
        index: usize,
        /// Time of the previous event.
        previous: f64,
        /// Time of the offending event.
        current: f64,
    },
    /// A read returned something other than the most recent write.
    StaleRead {
        /// Index of the offending event in the history.
        index: usize,
        /// The reading process.
        pid: Pid,
        /// The address read.
        addr: Addr,
        /// The value the read reported.
        observed: Word,
        /// The value the last preceding write stored (0 if never written).
        expected: Word,
    },
    /// A read event is missing its observed value.
    MissingObservation {
        /// Index of the offending event in the history.
        index: usize,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::NonMonotoneTime {
                index,
                previous,
                current,
            } => write!(
                f,
                "event {index}: time {current} does not advance past previous event time {previous}"
            ),
            HistoryError::StaleRead {
                index,
                pid,
                addr,
                observed,
                expected,
            } => write!(
                f,
                "event {index}: {pid} read {addr} = {observed}, but last write stored {expected}"
            ),
            HistoryError::MissingObservation { index } => {
                write!(f, "event {index}: read event has no observed value")
            }
        }
    }
}

impl Error for HistoryError {}

/// Checks a history against the sequential specification of atomic
/// read/write registers: events strictly ordered by time, and every read
/// returns the value of the last preceding write to the same address
/// (or `0` if the address was never written; initial values installed
/// before the run should be recorded as write events or pre-seeded via
/// [`check_register_semantics_from`]).
///
/// # Errors
///
/// Returns the first [`HistoryError`] encountered, if any.
///
/// ```
/// use nc_memory::{check_register_semantics, Addr, Event, Pid};
///
/// let a = Addr::new(0);
/// let history = [
///     Event::write(1.0, Pid::new(0), a, 5),
///     Event::read(2.0, Pid::new(1), a, 5),
/// ];
/// assert!(check_register_semantics(&history).is_ok());
/// ```
pub fn check_register_semantics(history: &[Event]) -> Result<(), HistoryError> {
    check_register_semantics_from(history, &HashMap::new())
}

/// Like [`check_register_semantics`], but with initial register contents
/// (addresses absent from `initial` start at `0`). Used for histories
/// whose memory was pre-seeded with sentinel values before the recorded
/// run began.
///
/// # Errors
///
/// Returns the first [`HistoryError`] encountered, if any.
pub fn check_register_semantics_from(
    history: &[Event],
    initial: &HashMap<Addr, Word>,
) -> Result<(), HistoryError> {
    let mut state: HashMap<Addr, Word> = initial.clone();
    let mut last_time = f64::NEG_INFINITY;
    for (index, ev) in history.iter().enumerate() {
        if ev.time <= last_time {
            return Err(HistoryError::NonMonotoneTime {
                index,
                previous: last_time,
                current: ev.time,
            });
        }
        last_time = ev.time;
        match ev.op {
            Op::Write(addr, value) => {
                state.insert(addr, value);
            }
            Op::Read(addr) => {
                let expected = state.get(&addr).copied().unwrap_or(0);
                match ev.observed {
                    None => return Err(HistoryError::MissingObservation { index }),
                    Some(observed) if observed != expected => {
                        return Err(HistoryError::StaleRead {
                            index,
                            pid: ev.pid,
                            addr,
                            observed,
                            expected,
                        });
                    }
                    Some(_) => {}
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn a(n: usize) -> Addr {
        Addr::new(n)
    }

    fn p(n: u32) -> Pid {
        Pid::new(n)
    }

    #[test]
    fn empty_history_is_valid() {
        assert!(check_register_semantics(&[]).is_ok());
    }

    #[test]
    fn read_before_any_write_must_see_zero() {
        let ok = [Event::read(1.0, p(0), a(0), 0)];
        assert!(check_register_semantics(&ok).is_ok());
        let bad = [Event::read(1.0, p(0), a(0), 1)];
        assert!(matches!(
            check_register_semantics(&bad),
            Err(HistoryError::StaleRead {
                expected: 0,
                observed: 1,
                ..
            })
        ));
    }

    #[test]
    fn read_sees_last_write_not_first() {
        let h = [
            Event::write(1.0, p(0), a(0), 1),
            Event::write(2.0, p(1), a(0), 2),
            Event::read(3.0, p(2), a(0), 2),
        ];
        assert!(check_register_semantics(&h).is_ok());
        let h_stale = [
            Event::write(1.0, p(0), a(0), 1),
            Event::write(2.0, p(1), a(0), 2),
            Event::read(3.0, p(2), a(0), 1),
        ];
        let err = check_register_semantics(&h_stale).unwrap_err();
        assert!(matches!(err, HistoryError::StaleRead { index: 2, .. }));
        assert!(err.to_string().contains("read @0 = 1"));
    }

    #[test]
    fn addresses_are_independent() {
        let h = [
            Event::write(1.0, p(0), a(0), 7),
            Event::read(2.0, p(0), a(1), 0),
            Event::read(3.0, p(0), a(0), 7),
        ];
        assert!(check_register_semantics(&h).is_ok());
    }

    #[test]
    fn equal_times_rejected() {
        let h = [
            Event::write(1.0, p(0), a(0), 1),
            Event::read(1.0, p(1), a(0), 1),
        ];
        assert!(matches!(
            check_register_semantics(&h),
            Err(HistoryError::NonMonotoneTime { index: 1, .. })
        ));
    }

    #[test]
    fn decreasing_times_rejected() {
        let h = [
            Event::write(2.0, p(0), a(0), 1),
            Event::read(1.0, p(1), a(0), 1),
        ];
        assert!(matches!(
            check_register_semantics(&h),
            Err(HistoryError::NonMonotoneTime { .. })
        ));
    }

    #[test]
    fn missing_observation_rejected() {
        let h = [Event {
            time: 1.0,
            pid: p(0),
            op: Op::Read(a(0)),
            observed: None,
        }];
        assert!(matches!(
            check_register_semantics(&h),
            Err(HistoryError::MissingObservation { index: 0 })
        ));
    }

    #[test]
    fn initial_state_is_honoured() {
        let mut initial = HashMap::new();
        initial.insert(a(0), 1);
        let h = [Event::read(1.0, p(0), a(0), 1)];
        assert!(check_register_semantics_from(&h, &initial).is_ok());
        assert!(check_register_semantics(&h).is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let err = HistoryError::NonMonotoneTime {
            index: 3,
            previous: 2.0,
            current: 1.5,
        };
        assert!(err.to_string().contains("event 3"));
        let err = HistoryError::MissingObservation { index: 9 };
        assert!(err.to_string().contains("event 9"));
    }

    #[test]
    fn event_display_formats() {
        assert_eq!(
            Event::read(1.0, p(2), a(3), 4).to_string(),
            "[t=1] P2 read @3 = 4"
        );
        assert_eq!(
            Event::write(2.5, p(0), a(1), 9).to_string(),
            "[t=2.5] P0 write @1 <- 9"
        );
    }

    // Generates a *correct* history by simulating a register, then checks
    // the checker accepts it; corrupting one read must be rejected.
    proptest! {
        #[test]
        fn checker_accepts_generated_valid_histories(
            ops in proptest::collection::vec((0usize..8, any::<bool>(), 0u64..16), 1..100)
        ) {
            let mut state: HashMap<Addr, Word> = HashMap::new();
            let mut history = Vec::new();
            let mut t = 0.0;
            for (off, is_write, val) in ops {
                t += 1.0;
                let addr = a(off);
                if is_write {
                    state.insert(addr, val);
                    history.push(Event::write(t, p(0), addr, val));
                } else {
                    let v = state.get(&addr).copied().unwrap_or(0);
                    history.push(Event::read(t, p(0), addr, v));
                }
            }
            prop_assert!(check_register_semantics(&history).is_ok());
        }

        #[test]
        fn checker_rejects_corrupted_reads(
            ops in proptest::collection::vec((0usize..4, any::<bool>(), 1u64..16), 4..60),
        ) {
            let mut state: HashMap<Addr, Word> = HashMap::new();
            let mut history = Vec::new();
            let mut t = 0.0;
            for (off, is_write, val) in ops {
                t += 1.0;
                let addr = a(off);
                if is_write {
                    state.insert(addr, val);
                    history.push(Event::write(t, p(0), addr, val));
                } else {
                    let v = state.get(&addr).copied().unwrap_or(0);
                    history.push(Event::read(t, p(0), addr, v));
                }
            }
            // Corrupt the first read, if there is one.
            if let Some(ev) = history.iter_mut().find(|e| matches!(e.op, Op::Read(_))) {
                ev.observed = Some(ev.observed.unwrap() + 1);
                prop_assert!(check_register_semantics(&history).is_err());
            }
        }
    }
}
