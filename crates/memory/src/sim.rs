//! Simulated shared memory for the discrete-event engine.
//!
//! The paper's model (§3) is an interleaving model: operations happen in a
//! global sequence and each read returns the last previous write to the
//! same location. Because the engine executes one operation at a time,
//! the simulated memory can be a plain growable array of words with no
//! interior synchronisation — atomicity is a property of the engine's
//! serial execution, which the [`crate::history`] checker can verify after
//! the fact.

use crate::layout::Region;
use crate::store::MemStore;
use crate::types::{Addr, Op, Word};

/// A growable, zero-initialised flat address space of atomic registers.
///
/// * Reads of never-written addresses return `0`, matching the paper's
///   "arrays of atomic read/write bits, each initialized to zero".
/// * Writes extend the backing storage on demand, so the address space is
///   conceptually unbounded (the paper's infinite arrays).
/// * [`SimMemory::alloc`] hands out disjoint [`Region`]s so several
///   protocol instances (e.g. lean-consensus plus its §8 backup) can share
///   one memory without address collisions.
///
/// # Example
///
/// ```
/// use nc_memory::{Addr, Op, SimMemory};
///
/// let mut mem = SimMemory::new();
/// assert_eq!(mem.read(Addr::new(1_000_000)), 0); // untouched => 0
/// mem.write(Addr::new(3), 7);
/// assert_eq!(mem.exec(Op::Read(Addr::new(3))), Some(7));
/// assert_eq!(mem.exec(Op::Write(Addr::new(3), 9)), None);
/// assert_eq!(mem.read(Addr::new(3)), 9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimMemory {
    words: Vec<Word>,
    next_region: usize,
    ops_executed: u64,
}

impl SimMemory {
    /// Creates an empty memory. All addresses read as `0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a memory with backing storage preallocated for `words`
    /// registers (an optimisation only; the address space is still
    /// unbounded).
    pub fn with_capacity(words: usize) -> Self {
        SimMemory {
            words: Vec::with_capacity(words),
            next_region: 0,
            ops_executed: 0,
        }
    }

    /// Returns the memory to its pristine observable state — all
    /// registers read zero, no regions allocated, operation counter
    /// cleared — while keeping the backing storage, so trial sweeps can
    /// reuse one memory without reallocating.
    ///
    /// Zeroing happens **in place** (`fill(0)` over the used storage,
    /// keeping `len`): measured ~2x faster across a trial sweep than
    /// the old clear-then-regrow-geometrically scheme, because the next
    /// trial's writes never re-enter the grow branch (see
    /// `BENCH_engine.json`'s `reset_fill_vs_clear` record). This is the
    /// [`MemStore::reset`] contract; a consequence is that
    /// [`SimMemory::footprint_words`] persists across resets as a
    /// high-water mark.
    pub fn reset(&mut self) {
        self.words.fill(0);
        self.next_region = 0;
        self.ops_executed = 0;
    }

    /// Reserves a fresh region of `len` registers, disjoint from every
    /// region handed out before.
    ///
    /// Allocation is a bump allocator over the flat address space; it does
    /// not touch backing storage (registers stay zero until written).
    pub fn alloc(&mut self, len: usize) -> Region {
        let region = Region::new(Addr::new(self.next_region), len);
        self.next_region = self
            .next_region
            .checked_add(len)
            .expect("simulated address space exhausted");
        region
    }

    /// Atomically reads the register at `addr`.
    pub fn read(&mut self, addr: Addr) -> Word {
        self.ops_executed += 1;
        self.words.get(addr.offset()).copied().unwrap_or(0)
    }

    /// Atomically writes `value` to the register at `addr`, growing the
    /// backing storage if needed.
    pub fn write(&mut self, addr: Addr, value: Word) {
        self.ops_executed += 1;
        let idx = addr.offset();
        if idx >= self.words.len() {
            // Grow geometrically so long races don't reallocate per round.
            let new_len = (idx + 1).max(self.words.len() * 2).max(16);
            self.words.resize(new_len, 0);
        }
        self.words[idx] = value;
    }

    /// Executes one operation under interleaving semantics, returning the
    /// value read (for reads) or `None` (for writes).
    pub fn exec(&mut self, op: Op) -> Option<Word> {
        match op {
            Op::Read(addr) => Some(self.read(addr)),
            Op::Write(addr, value) => {
                self.write(addr, value);
                None
            }
        }
    }

    /// Returns the current value at `addr` **without** counting it as an
    /// operation. For assertions and metrics only — protocols must go
    /// through [`SimMemory::exec`].
    pub fn peek(&self, addr: Addr) -> Word {
        self.words.get(addr.offset()).copied().unwrap_or(0)
    }

    /// Total number of operations executed so far (reads + writes).
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Number of registers that currently have backing storage. This is
    /// the (geometrically padded) high-water mark of written addresses,
    /// i.e. the space the executions have consumed — it persists across
    /// [`SimMemory::reset`] by the in-place-zeroing contract.
    pub fn footprint_words(&self) -> usize {
        self.words.len()
    }
}

/// `SimMemory` is the default word-store plane: the [`MemStore`] methods
/// delegate to the inherent ones above.
impl MemStore for SimMemory {
    #[inline]
    fn read(&mut self, addr: Addr) -> Word {
        SimMemory::read(self, addr)
    }

    #[inline]
    fn write(&mut self, addr: Addr, value: Word) {
        SimMemory::write(self, addr, value)
    }

    #[inline]
    fn exec(&mut self, op: Op) -> Option<Word> {
        SimMemory::exec(self, op)
    }

    fn alloc(&mut self, len: usize) -> Region {
        SimMemory::alloc(self, len)
    }

    fn reset(&mut self) {
        SimMemory::reset(self)
    }

    fn ops_executed(&self) -> u64 {
        SimMemory::ops_executed(self)
    }

    fn peek(&self, addr: Addr) -> Word {
        SimMemory::peek(self, addr)
    }

    fn footprint_words(&self) -> usize {
        SimMemory::footprint_words(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Bit;
    use proptest::prelude::*;

    #[test]
    fn fresh_memory_reads_zero_everywhere() {
        let mut mem = SimMemory::new();
        for off in [0usize, 1, 17, 1 << 20] {
            assert_eq!(mem.read(Addr::new(off)), 0);
        }
        // Reads never allocate backing storage.
        assert_eq!(mem.footprint_words(), 0);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut mem = SimMemory::new();
        mem.write(Addr::new(5), 99);
        assert_eq!(mem.read(Addr::new(5)), 99);
        assert_eq!(mem.read(Addr::new(4)), 0);
        assert_eq!(mem.read(Addr::new(6)), 0);
    }

    #[test]
    fn exec_read_returns_value_exec_write_returns_none() {
        let mut mem = SimMemory::new();
        assert_eq!(mem.exec(Op::Write(Addr::new(2), 11)), None);
        assert_eq!(mem.exec(Op::Read(Addr::new(2))), Some(11));
    }

    #[test]
    fn overwrite_keeps_latest_value() {
        let mut mem = SimMemory::new();
        mem.write(Addr::new(0), 1);
        mem.write(Addr::new(0), 2);
        mem.write(Addr::new(0), 3);
        assert_eq!(mem.read(Addr::new(0)), 3);
    }

    #[test]
    fn alloc_returns_disjoint_regions() {
        let mut mem = SimMemory::new();
        let r1 = mem.alloc(10);
        let r2 = mem.alloc(5);
        let r3 = mem.alloc(0);
        let r4 = mem.alloc(1);
        assert_eq!(r1.base(), Addr::new(0));
        assert_eq!(r2.base(), Addr::new(10));
        assert_eq!(r3.base(), Addr::new(15));
        assert_eq!(r4.base(), Addr::new(15));
        assert!(r1.contains(Addr::new(9)));
        assert!(!r1.contains(Addr::new(10)));
        assert!(r2.contains(Addr::new(10)));
    }

    #[test]
    fn ops_executed_counts_reads_and_writes() {
        let mut mem = SimMemory::new();
        mem.read(Addr::new(0));
        mem.write(Addr::new(0), 1);
        mem.exec(Op::Read(Addr::new(0)));
        assert_eq!(mem.ops_executed(), 3);
        // peek does not count
        assert_eq!(mem.peek(Addr::new(0)), 1);
        assert_eq!(mem.ops_executed(), 3);
    }

    #[test]
    fn footprint_tracks_high_water_mark() {
        let mut mem = SimMemory::new();
        mem.write(Addr::new(100), Bit::One.word());
        assert!(mem.footprint_words() >= 101);
    }

    #[test]
    fn reset_restores_pristine_state_keeping_capacity() {
        let mut mem = SimMemory::new();
        let r = mem.alloc(8);
        mem.write(Addr::new(3), 77);
        mem.write(Addr::new(100), 5);
        let cap_before = mem.words.capacity();
        let footprint_before = mem.footprint_words();
        mem.reset();
        assert_eq!(mem.ops_executed(), 0);
        // In-place zeroing keeps the storage: the footprint persists as
        // a high-water mark, but every register reads zero again.
        assert_eq!(mem.footprint_words(), footprint_before);
        assert_eq!(mem.read(Addr::new(3)), 0);
        assert_eq!(mem.read(Addr::new(100)), 0);
        // Regions start over from the base.
        let r2 = mem.alloc(8);
        assert_eq!(r2.base(), r.base());
        // Writes after reset see zeroed storage, not stale values.
        mem.write(Addr::new(50), 1);
        assert_eq!(mem.read(Addr::new(3)), 0);
        assert!(mem.words.capacity() >= cap_before.min(101));
    }

    #[test]
    fn with_capacity_preallocates_but_reads_zero() {
        let mut mem = SimMemory::with_capacity(64);
        assert_eq!(mem.read(Addr::new(10)), 0);
    }

    proptest! {
        /// Register semantics: after any sequence of writes, each address
        /// holds the last value written to it.
        #[test]
        fn last_write_wins(writes in proptest::collection::vec((0usize..64, any::<u64>()), 0..200)) {
            let mut mem = SimMemory::new();
            let mut model = std::collections::HashMap::new();
            for (off, val) in &writes {
                mem.write(Addr::new(*off), *val);
                model.insert(*off, *val);
            }
            for off in 0usize..64 {
                let expect = model.get(&off).copied().unwrap_or(0);
                prop_assert_eq!(mem.read(Addr::new(off)), expect);
            }
        }

        /// Allocation never hands out overlapping regions.
        #[test]
        fn alloc_disjoint(lens in proptest::collection::vec(0usize..100, 1..20)) {
            let mut mem = SimMemory::new();
            let regions: Vec<_> = lens.iter().map(|&l| mem.alloc(l)).collect();
            for (i, a) in regions.iter().enumerate() {
                for b in regions.iter().skip(i + 1) {
                    let a_end = a.base().offset() + a.len();
                    let b_start = b.base().offset();
                    prop_assert!(a_end <= b_start);
                }
            }
        }
    }
}
