//! Shared-memory substrate for the `noisy-consensus` workspace.
//!
//! The model of Aspnes's *Fast Deterministic Consensus in a Noisy
//! Environment* (PODC 2000) is an asynchronous shared-memory system in
//! which processes communicate **only** through atomic read/write
//! registers, and operations interleave in a global sequence: each read
//! returns the value of the last preceding write to the same location.
//!
//! This crate provides everything the rest of the workspace needs to talk
//! about that memory:
//!
//! * [`types`] — the vocabulary: process ids ([`Pid`]), addresses
//!   ([`Addr`]), register values ([`Word`]), binary preferences ([`Bit`]),
//!   and pending operations ([`Op`]).
//! * [`store`] — [`MemStore`], the pluggable word-store interface every
//!   simulated memory plane implements; drivers and protocols are
//!   generic (monomorphized) over it.
//! * [`sim`] — [`SimMemory`], a growable, zero-initialised simulated
//!   address space with region allocation, used by the discrete-event
//!   engine. All locations behave as atomic read/write registers under the
//!   interleaving semantics. The default [`MemStore`] plane.
//! * [`dense`] — [`DenseRaceMemory`], a preallocated fixed-stride plane
//!   specialized to [`RaceLayout`]'s per-round lanes (the execution-core
//!   cache ablation backend).
//! * [`faulty`] — [`FaultyMemory`], a composable wrapper injecting
//!   deterministic seeded value faults (stuck-at registers, write drops,
//!   read bit-flips) described by a [`FaultSpec`].
//! * [`history`] — recorded operation histories ([`Event`]) and a checker
//!   ([`check_register_semantics`]) that validates a history against the
//!   sequential register specification (every read returns the most recent
//!   write).
//! * [`atomic`] — [`SegArray`], a lock-free growable array of `u64`
//!   registers backed by real `std::sync::atomic` words, used by the
//!   native thread runner. This is the "infinite array" of the paper,
//!   realised as lazily-allocated fixed-size segments.
//! * [`layout`] — address-space layouts: [`RaceLayout`] interleaves the
//!   paper's two unbounded bit arrays `a0`/`a1` into one growable space,
//!   and [`Region`] hands out disjoint address ranges for protocol
//!   composition (lean-consensus + backup in the bounded protocol of §8).
//!
//! # Example
//!
//! ```
//! use nc_memory::{Bit, Op, RaceLayout, SimMemory};
//!
//! let mut mem = SimMemory::new();
//! let layout = RaceLayout::at_base(0);
//! // The paper prefixes a0/a1 with read-only sentinel cells a_b[0] = 1.
//! layout.install_sentinels(&mut mem);
//!
//! // A round-1 write of process preferring 1, then a read of the rival array.
//! mem.exec(Op::Write(layout.slot(Bit::One, 1), 1));
//! let rival = mem.exec(Op::Read(layout.slot(Bit::Zero, 1)));
//! assert_eq!(rival, Some(0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod atomic;
pub mod dense;
pub mod faulty;
pub mod history;
pub mod layout;
pub mod sim;
pub mod store;
pub mod types;

pub use atomic::SegArray;
pub use dense::DenseRaceMemory;
pub use faulty::{FaultSpec, FaultyMemory};
pub use history::{check_register_semantics, check_register_semantics_from, Event, HistoryError};
pub use layout::{RaceLayout, Region};
pub use sim::SimMemory;
pub use store::{MemStore, RacePlane};
pub use types::{Addr, Bit, Op, OpKind, Pid, Word};
