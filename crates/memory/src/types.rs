//! Core vocabulary types shared across the workspace.
//!
//! These are deliberately small, `Copy`, and eagerly implement the common
//! traits so that every other crate (scheduler, engine, protocols, theory)
//! can use them in keys, logs, and test assertions without friction.

use std::fmt;
use std::ops::Not;

/// The value stored in a single shared register.
///
/// The paper's lean-consensus only needs bits, but the backup protocol of
/// §8 stores packed `(round, preference)` pairs and random-walk counters,
/// so the common register width is a 64-bit word.
pub type Word = u64;

/// Identifier of a process (zero-based, dense).
///
/// Process ids are assigned by whoever creates the processes (the
/// simulation engine or the native runner) and are dense in `0..n`, which
/// lets them double as vector indices via [`Pid::index`].
///
/// ```
/// use nc_memory::Pid;
/// let p = Pid::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "P3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Pid(u32);

impl Pid {
    /// Creates a process id from its dense index.
    pub const fn new(id: u32) -> Self {
        Pid(id)
    }

    /// Returns the raw id.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize`, suitable for indexing per-process
    /// vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u32> for Pid {
    fn from(id: u32) -> Self {
        Pid(id)
    }
}

/// Address of a shared atomic read/write register.
///
/// Addresses index a flat, conceptually unbounded, zero-initialised
/// address space (see [`crate::sim::SimMemory`]). Layouts
/// ([`crate::layout`]) carve this space into the structures the protocols
/// need.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Addr(usize);

impl Addr {
    /// Creates an address from a raw offset.
    pub const fn new(offset: usize) -> Self {
        Addr(offset)
    }

    /// Returns the raw offset.
    pub const fn offset(self) -> usize {
        self.0
    }

    /// Returns the address `delta` slots after `self`.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the underlying offset (debug and release).
    pub const fn plus(self, delta: usize) -> Self {
        match self.0.checked_add(delta) {
            Some(o) => Addr(o),
            None => panic!("address offset overflow"),
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl From<usize> for Addr {
    fn from(offset: usize) -> Self {
        Addr(offset)
    }
}

/// A binary consensus value / preference.
///
/// `Bit` is the input and output alphabet of binary consensus and the
/// index of the paper's two racing arrays `a0` and `a1`. Using a dedicated
/// enum (rather than `bool`) keeps call sites self-describing
/// (`layout.slot(Bit::One, r)` instead of `layout.slot(true, r)`).
///
/// ```
/// use nc_memory::Bit;
/// assert_eq!(!Bit::Zero, Bit::One);
/// assert_eq!(Bit::from_word(7), Bit::One); // nonzero => One
/// assert_eq!(Bit::One.word(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Bit {
    /// The value 0.
    #[default]
    Zero,
    /// The value 1.
    One,
}

impl Bit {
    /// Both bit values, in numeric order.
    pub const BOTH: [Bit; 2] = [Bit::Zero, Bit::One];

    /// Converts a register word to a bit: zero maps to [`Bit::Zero`], any
    /// nonzero word to [`Bit::One`].
    pub const fn from_word(w: Word) -> Self {
        if w == 0 {
            Bit::Zero
        } else {
            Bit::One
        }
    }

    /// The register word representing this bit (`0` or `1`).
    pub const fn word(self) -> Word {
        match self {
            Bit::Zero => 0,
            Bit::One => 1,
        }
    }

    /// The bit as an array index (`0` or `1`).
    pub const fn index(self) -> usize {
        self.word() as usize
    }

    /// The opposite bit — the paper's `1 - b`.
    pub const fn rival(self) -> Self {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
        }
    }
}

impl Not for Bit {
    type Output = Bit;

    fn not(self) -> Bit {
        self.rival()
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Self {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl From<Bit> for bool {
    fn from(b: Bit) -> bool {
        b == Bit::One
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.word())
    }
}

/// A single pending shared-memory operation.
///
/// Protocols in this workspace are *step machines*: they surface the next
/// `Op` they want to perform and are resumed with its result. This is what
/// lets one protocol implementation run under the discrete-event engine,
/// the hybrid uniprocessor scheduler, and native threads alike.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Atomically read the register at the address.
    Read(Addr),
    /// Atomically write the word to the register at the address.
    Write(Addr, Word),
}

impl Op {
    /// The address this operation touches.
    pub const fn addr(self) -> Addr {
        match self {
            Op::Read(a) | Op::Write(a, _) => a,
        }
    }

    /// The kind of this operation (read or write), without its operands.
    pub const fn kind(self) -> OpKind {
        match self {
            Op::Read(_) => OpKind::Read,
            Op::Write(_, _) => OpKind::Write,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read(a) => write!(f, "read {a}"),
            Op::Write(a, w) => write!(f, "write {a} <- {w}"),
        }
    }
}

/// The type of a shared-memory operation, used to pick the per-type noise
/// distribution `F_π` of the noisy-scheduling model (§3.1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OpKind {
    /// A register read.
    Read,
    /// A register write.
    Write,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => f.write_str("read"),
            OpKind::Write => f.write_str("write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_roundtrip_and_display() {
        let p = Pid::new(42);
        assert_eq!(p.get(), 42);
        assert_eq!(p.index(), 42);
        assert_eq!(p.to_string(), "P42");
        assert_eq!(Pid::from(7u32), Pid::new(7));
    }

    #[test]
    fn pid_ordering_is_by_id() {
        assert!(Pid::new(1) < Pid::new(2));
        assert_eq!(Pid::default(), Pid::new(0));
    }

    #[test]
    fn addr_arithmetic() {
        let a = Addr::new(10);
        assert_eq!(a.plus(5).offset(), 15);
        assert_eq!(Addr::from(3usize), Addr::new(3));
        assert_eq!(a.to_string(), "@10");
    }

    #[test]
    #[should_panic(expected = "address offset overflow")]
    fn addr_plus_overflow_panics() {
        let _ = Addr::new(usize::MAX).plus(1);
    }

    #[test]
    fn bit_rival_is_involution() {
        for b in Bit::BOTH {
            assert_eq!(b.rival().rival(), b);
            assert_eq!(!(!b), b);
            assert_ne!(b.rival(), b);
        }
    }

    #[test]
    fn bit_word_conversions() {
        assert_eq!(Bit::from_word(0), Bit::Zero);
        assert_eq!(Bit::from_word(1), Bit::One);
        assert_eq!(Bit::from_word(u64::MAX), Bit::One);
        assert_eq!(Bit::Zero.word(), 0);
        assert_eq!(Bit::One.word(), 1);
        assert_eq!(Bit::Zero.index(), 0);
        assert_eq!(Bit::One.index(), 1);
    }

    #[test]
    fn bit_bool_conversions() {
        assert_eq!(Bit::from(true), Bit::One);
        assert_eq!(Bit::from(false), Bit::Zero);
        assert!(bool::from(Bit::One));
        assert!(!bool::from(Bit::Zero));
    }

    #[test]
    fn bit_display() {
        assert_eq!(Bit::Zero.to_string(), "0");
        assert_eq!(Bit::One.to_string(), "1");
    }

    #[test]
    fn op_accessors() {
        let r = Op::Read(Addr::new(4));
        let w = Op::Write(Addr::new(9), 2);
        assert_eq!(r.addr(), Addr::new(4));
        assert_eq!(w.addr(), Addr::new(9));
        assert_eq!(r.kind(), OpKind::Read);
        assert_eq!(w.kind(), OpKind::Write);
        assert_eq!(r.to_string(), "read @4");
        assert_eq!(w.to_string(), "write @9 <- 2");
    }

    #[test]
    fn op_kind_display() {
        assert_eq!(OpKind::Read.to_string(), "read");
        assert_eq!(OpKind::Write.to_string(), "write");
    }
}
